//! # hs-workload — request traces and arrival processes
//!
//! The paper drives its testbed with replayed **ShareGPT** (chatbot) and
//! **LongBench** (summarization) traces, generating arrival times from a
//! Poisson process because the datasets carry no timestamps (§V "Model
//! and workloads setup"). Neither dataset is available here, so this crate
//! generates synthetic traces matching the published length statistics
//! (DESIGN.md "Substitutions"):
//!
//! * [`sharegpt_like`] — short-to-medium prompts, medium generations
//!   (log-normal lengths; mean ≈ 160 input / 210 output tokens, the
//!   moments reported by the DistServe/vLLM line of work);
//! * [`longbench_like`] — long prompts (4–12 k tokens), short
//!   generations — the summarization regime whose huge `K_in` stresses
//!   prefill communication;
//! * [`heavy_tail_like`] — Pareto prompt lengths ([`ParetoSpec`]), the
//!   power-law population where rare giants dominate the token budget;
//! * [`arrival`] — Poisson arrivals, a two-state MMPP for the *bursty*
//!   conditions under which homogeneous INA collapses (§I, §II-C), a
//!   [`Mmpp::flash_crowd`] viral-spike profile, and a [`Diurnal`]
//!   day/night cycle (non-homogeneous Poisson via thinning);
//! * [`trace`] — materialized request records, replay iteration, and
//!   CSV/JSONL export/import for recorded production traces;
//! * [`stats`] — means/percentiles used by every experiment report;
//! * [`fault`] — timed fabric-fault schedules ([`FaultPlan`]) replayed
//!   alongside a trace to exercise graceful degradation.
//!
//! Every generator draws exclusively from a caller-supplied seeded
//! `SmallRng` stream, so traces are bit-identical across repeats and
//! rayon thread counts (`tests/determinism.rs` pins this).
#![warn(missing_docs)]

pub mod arrival;
pub mod fault;
pub mod spec;
pub mod stats;
pub mod trace;

pub use arrival::{ArrivalProcess, Diurnal, Mmpp, Poisson};
pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use spec::{
    heavy_tail_like, longbench_like, sharegpt_like, LengthModel, LengthSpec, ParetoSpec,
    WorkloadSpec,
};
pub use stats::{mean, percentile};
pub use trace::{Request, RequestId, Trace};
