//! Small statistics helpers for experiment reports.

/// Arithmetic mean; 0.0 for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// The `p`-th percentile (0–100) by linear interpolation between order
/// statistics; 0.0 for empty input.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    assert!((0.0..=100.0).contains(&p), "percentile out of range");
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    if v.len() == 1 {
        return v[0];
    }
    let rank = p / 100.0 * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    v[lo] * (1.0 - frac) + v[hi] * frac
}

/// Sample standard deviation; 0.0 for fewer than two samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Fraction of samples satisfying `pred` (e.g. SLA attainment).
pub fn fraction_where(xs: &[f64], pred: impl Fn(f64) -> bool) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().filter(|&&x| pred(x)).count() as f64 / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert_eq!(percentile(&xs, 50.0), 2.5);
        // Unsorted input.
        let ys = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&ys, 50.0), 2.5);
        assert_eq!(percentile(&[7.0], 90.0), 7.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn attainment() {
        let xs = [0.1, 0.2, 0.3, 0.4];
        assert_eq!(fraction_where(&xs, |x| x <= 0.25), 0.5);
        assert_eq!(fraction_where(&[], |_| true), 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Percentiles are monotone in `p` and bounded by min/max.
        #[test]
        fn percentile_monotone(mut xs in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut last = f64::NEG_INFINITY;
            for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
                let v = percentile(&xs, p);
                prop_assert!(v >= last - 1e-9);
                prop_assert!(v >= xs[0] - 1e-9 && v <= xs[xs.len() - 1] + 1e-9);
                last = v;
            }
        }
    }
}
