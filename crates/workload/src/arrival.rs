//! Arrival processes: Poisson and bursty MMPP.
//!
//! The paper assumes Poisson arrivals (justifying the Pollaczek–Khinchine
//! queueing estimate, §III-C1) and generates request times "using a
//! Poisson distribution with different request rates". The bursty
//! conditions that degrade homogeneous INA (§I: throughput drops of ~78 %)
//! are reproduced with a two-state Markov-modulated Poisson process.

use hs_des::{SimSpan, SimTime};
use rand::rngs::SmallRng;
use rand_distr::{Distribution, Exp};

/// A source of inter-arrival gaps.
pub trait ArrivalProcess {
    /// Draw the next inter-arrival gap.
    fn next_gap(&mut self, rng: &mut SmallRng) -> SimSpan;

    /// The long-run average rate (requests/second).
    fn mean_rate(&self) -> f64;

    /// Materialize arrival instants until `horizon`.
    fn arrivals_until(&mut self, rng: &mut SmallRng, horizon: SimTime) -> Vec<SimTime>
    where
        Self: Sized,
    {
        let mut out = Vec::new();
        let mut t = SimTime::ZERO;
        loop {
            t += self.next_gap(rng);
            if t > horizon {
                break;
            }
            out.push(t);
        }
        out
    }
}

/// Homogeneous Poisson arrivals at `rate` requests/second.
#[derive(Clone, Copy, Debug)]
pub struct Poisson {
    /// Arrival rate λ, requests per second.
    pub rate: f64,
}

impl Poisson {
    /// A Poisson process at `rate` req/s.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0, "rate must be positive");
        Poisson { rate }
    }
}

impl ArrivalProcess for Poisson {
    fn next_gap(&mut self, rng: &mut SmallRng) -> SimSpan {
        let exp = Exp::new(self.rate).expect("positive rate");
        SimSpan::from_secs_f64(exp.sample(rng))
    }

    fn mean_rate(&self) -> f64 {
        self.rate
    }
}

/// Two-state Markov-modulated Poisson process: a *calm* state at
/// `base_rate` and a *burst* state at `burst_rate`, with exponential
/// sojourn times. Burstiness is what overloads a single aggregation
/// point.
#[derive(Clone, Copy, Debug)]
pub struct Mmpp {
    /// Rate in the calm state, req/s.
    pub base_rate: f64,
    /// Rate in the burst state, req/s.
    pub burst_rate: f64,
    /// Mean sojourn in the calm state, seconds.
    pub mean_calm_s: f64,
    /// Mean sojourn in the burst state, seconds.
    pub mean_burst_s: f64,
    in_burst: bool,
    state_left: f64,
}

impl Mmpp {
    /// Construct with both sojourn means.
    pub fn new(base_rate: f64, burst_rate: f64, mean_calm_s: f64, mean_burst_s: f64) -> Self {
        assert!(base_rate > 0.0 && burst_rate > 0.0);
        assert!(mean_calm_s > 0.0 && mean_burst_s > 0.0);
        Mmpp {
            base_rate,
            burst_rate,
            mean_calm_s,
            mean_burst_s,
            in_burst: false,
            state_left: 0.0,
        }
    }

    /// A convenient bursty profile: bursts at `burst_factor ×` the base
    /// rate, 20 % of the time, with 2 s bursts.
    pub fn bursty(base_rate: f64, burst_factor: f64) -> Self {
        Mmpp::new(base_rate, base_rate * burst_factor, 8.0, 2.0)
    }
}

impl ArrivalProcess for Mmpp {
    fn next_gap(&mut self, rng: &mut SmallRng) -> SimSpan {
        let mut gap = 0.0f64;
        loop {
            if self.state_left <= 0.0 {
                // Enter the next state with an exponential sojourn.
                self.in_burst = !self.in_burst;
                let mean = if self.in_burst {
                    self.mean_burst_s
                } else {
                    self.mean_calm_s
                };
                self.state_left = Exp::new(1.0 / mean).expect("positive mean").sample(rng);
            }
            let rate = if self.in_burst {
                self.burst_rate
            } else {
                self.base_rate
            };
            let draw = Exp::new(rate).expect("positive rate").sample(rng);
            if draw <= self.state_left {
                self.state_left -= draw;
                gap += draw;
                return SimSpan::from_secs_f64(gap);
            }
            // No arrival before the state expires; spend the remainder
            // and re-draw in the next state.
            gap += self.state_left;
            self.state_left = 0.0;
        }
    }

    fn mean_rate(&self) -> f64 {
        let p_burst = self.mean_burst_s / (self.mean_burst_s + self.mean_calm_s);
        self.base_rate * (1.0 - p_burst) + self.burst_rate * p_burst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs_des::SeedSplitter;

    #[test]
    fn poisson_rate_converges() {
        let mut p = Poisson::new(10.0);
        let mut rng = SeedSplitter::new(1).stream("arrivals");
        let arrivals = p.arrivals_until(&mut rng, SimTime::from_secs(1000));
        let rate = arrivals.len() as f64 / 1000.0;
        assert!((rate / 10.0 - 1.0).abs() < 0.05, "rate = {rate}");
        // Strictly increasing timestamps.
        for w in arrivals.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn poisson_gap_cv_is_one() {
        let mut p = Poisson::new(5.0);
        let mut rng = SeedSplitter::new(2).stream("arrivals");
        let gaps: Vec<f64> = (0..20_000)
            .map(|_| p.next_gap(&mut rng).as_secs_f64())
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!((cv - 1.0).abs() < 0.05, "cv = {cv}");
    }

    #[test]
    fn mmpp_is_burstier_than_poisson() {
        let mut m = Mmpp::bursty(5.0, 10.0);
        let mut rng = SeedSplitter::new(3).stream("arrivals");
        let gaps: Vec<f64> = (0..20_000)
            .map(|_| m.next_gap(&mut rng).as_secs_f64())
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!(cv > 1.05, "MMPP cv = {cv} should exceed Poisson's 1.0");
    }

    #[test]
    fn mmpp_mean_rate_formula() {
        let m = Mmpp::new(4.0, 20.0, 8.0, 2.0);
        // p_burst = 0.2 -> mean = 4*0.8 + 20*0.2 = 7.2.
        assert!((m.mean_rate() - 7.2).abs() < 1e-9);
        // Empirical check.
        let mut m2 = m;
        let mut rng = SeedSplitter::new(4).stream("arrivals");
        let arrivals = m2.arrivals_until(&mut rng, SimTime::from_secs(2000));
        let rate = arrivals.len() as f64 / 2000.0;
        assert!((rate / 7.2 - 1.0).abs() < 0.1, "rate = {rate}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        Poisson::new(0.0);
    }
}
