//! Arrival processes: Poisson, bursty MMPP, and diurnal cycles.
//!
//! The paper assumes Poisson arrivals (justifying the Pollaczek–Khinchine
//! queueing estimate, §III-C1) and generates request times "using a
//! Poisson distribution with different request rates". The bursty
//! conditions that degrade homogeneous INA (§I: throughput drops of ~78 %)
//! are reproduced with a two-state Markov-modulated Poisson process, and
//! production traffic shapes the planner never sees — daily load cycles
//! and flash crowds — are modelled by [`Diurnal`] (a sinusoidally
//! modulated non-homogeneous Poisson process sampled by Lewis–Shedler
//! thinning) and [`Mmpp::flash_crowd`] (rare, severe rate spikes).
//!
//! Every generator draws only from the caller-supplied seeded stream, so
//! arrival sequences are bit-identical across repeats and thread counts
//! (DESIGN.md §8/§13).

use hs_des::{SimSpan, SimTime};
use rand::rngs::SmallRng;
use rand::Rng;
use rand_distr::{Distribution, Exp};

/// A source of inter-arrival gaps.
pub trait ArrivalProcess {
    /// Draw the next inter-arrival gap.
    fn next_gap(&mut self, rng: &mut SmallRng) -> SimSpan;

    /// The long-run average rate (requests/second).
    fn mean_rate(&self) -> f64;

    /// Materialize arrival instants until `horizon`.
    fn arrivals_until(&mut self, rng: &mut SmallRng, horizon: SimTime) -> Vec<SimTime>
    where
        Self: Sized,
    {
        let mut out = Vec::new();
        let mut t = SimTime::ZERO;
        loop {
            t += self.next_gap(rng);
            if t > horizon {
                break;
            }
            out.push(t);
        }
        out
    }
}

/// Homogeneous Poisson arrivals at `rate` requests/second.
///
/// Gaps are exponential with mean `1/rate`, drawn only from the seeded
/// stream — the same seed always yields the same arrival sequence:
///
/// ```
/// use hs_des::SeedSplitter;
/// use hs_workload::{ArrivalProcess, Poisson};
///
/// let mut rng = SeedSplitter::new(7).stream("arrivals");
/// let mut p = Poisson::new(10.0);
/// let gaps: Vec<u64> = (0..3).map(|_| p.next_gap(&mut rng).as_nanos()).collect();
/// assert_eq!(gaps, [261_618_517, 77_594_982, 6_931_700]);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Poisson {
    /// Arrival rate λ, requests per second.
    pub rate: f64,
}

impl Poisson {
    /// A Poisson process at `rate` req/s.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0, "rate must be positive");
        Poisson { rate }
    }
}

impl ArrivalProcess for Poisson {
    fn next_gap(&mut self, rng: &mut SmallRng) -> SimSpan {
        let exp = Exp::new(self.rate).expect("positive rate");
        SimSpan::from_secs_f64(exp.sample(rng))
    }

    fn mean_rate(&self) -> f64 {
        self.rate
    }
}

/// Two-state Markov-modulated Poisson process: a *calm* state at
/// `base_rate` and a *burst* state at `burst_rate`, with exponential
/// sojourn times. Burstiness is what overloads a single aggregation
/// point.
#[derive(Clone, Copy, Debug)]
pub struct Mmpp {
    /// Rate in the calm state, req/s.
    pub base_rate: f64,
    /// Rate in the burst state, req/s.
    pub burst_rate: f64,
    /// Mean sojourn in the calm state, seconds.
    pub mean_calm_s: f64,
    /// Mean sojourn in the burst state, seconds.
    pub mean_burst_s: f64,
    in_burst: bool,
    state_left: f64,
}

impl Mmpp {
    /// Construct with both sojourn means.
    pub fn new(base_rate: f64, burst_rate: f64, mean_calm_s: f64, mean_burst_s: f64) -> Self {
        assert!(base_rate > 0.0 && burst_rate > 0.0);
        assert!(mean_calm_s > 0.0 && mean_burst_s > 0.0);
        Mmpp {
            base_rate,
            burst_rate,
            mean_calm_s,
            mean_burst_s,
            in_burst: false,
            state_left: 0.0,
        }
    }

    /// A convenient bursty profile: bursts at `burst_factor ×` the base
    /// rate, 20 % of the time, with 2 s bursts.
    ///
    /// ```
    /// use hs_des::SeedSplitter;
    /// use hs_workload::{ArrivalProcess, Mmpp};
    ///
    /// let mut rng = SeedSplitter::new(7).stream("arrivals");
    /// let mut m = Mmpp::bursty(10.0, 5.0);
    /// let gaps: Vec<u64> = (0..3).map(|_| m.next_gap(&mut rng).as_nanos()).collect();
    /// assert_eq!(gaps, [15_518_996, 1_386_340, 3_041_786]);
    /// ```
    pub fn bursty(base_rate: f64, burst_factor: f64) -> Self {
        Mmpp::new(base_rate, base_rate * burst_factor, 8.0, 2.0)
    }

    /// A *flash-crowd* profile: long calm stretches (mean 12 s) broken by
    /// short, severe spikes (mean 3 s) at `spike_factor ×` the base rate —
    /// the viral-moment traffic a static deployment sized for the mean
    /// cannot absorb. Long-run mean rate is
    /// `base · (0.8 + 0.2 · spike_factor)`.
    ///
    /// ```
    /// use hs_des::SeedSplitter;
    /// use hs_workload::{ArrivalProcess, Mmpp};
    ///
    /// let mut rng = SeedSplitter::new(7).stream("arrivals");
    /// let mut f = Mmpp::flash_crowd(4.0, 6.0);
    /// assert_eq!(f.mean_rate(), 8.0); // 4·0.8 + 24·0.2
    /// let gaps: Vec<u64> = (0..3).map(|_| f.next_gap(&mut rng).as_nanos()).collect();
    /// assert_eq!(gaps, [32_331_242, 2_888_208, 6_337_054]);
    /// ```
    pub fn flash_crowd(base_rate: f64, spike_factor: f64) -> Self {
        Mmpp::new(base_rate, base_rate * spike_factor, 12.0, 3.0)
    }
}

impl ArrivalProcess for Mmpp {
    fn next_gap(&mut self, rng: &mut SmallRng) -> SimSpan {
        let mut gap = 0.0f64;
        loop {
            if self.state_left <= 0.0 {
                // Enter the next state with an exponential sojourn.
                self.in_burst = !self.in_burst;
                let mean = if self.in_burst {
                    self.mean_burst_s
                } else {
                    self.mean_calm_s
                };
                self.state_left = Exp::new(1.0 / mean).expect("positive mean").sample(rng);
            }
            let rate = if self.in_burst {
                self.burst_rate
            } else {
                self.base_rate
            };
            let draw = Exp::new(rate).expect("positive rate").sample(rng);
            if draw <= self.state_left {
                self.state_left -= draw;
                gap += draw;
                return SimSpan::from_secs_f64(gap);
            }
            // No arrival before the state expires; spend the remainder
            // and re-draw in the next state.
            gap += self.state_left;
            self.state_left = 0.0;
        }
    }

    fn mean_rate(&self) -> f64 {
        let p_burst = self.mean_burst_s / (self.mean_burst_s + self.mean_calm_s);
        self.base_rate * (1.0 - p_burst) + self.burst_rate * p_burst
    }
}

/// Diurnal (daily-cycle) arrivals: a non-homogeneous Poisson process with
/// sinusoidal rate modulation
///
/// ```text
/// λ(t) = base_rate · (1 + amplitude · sin(2π · (t + phase_s) / period_s))
/// ```
///
/// sampled exactly by **Lewis–Shedler thinning**: candidate gaps are drawn
/// from a homogeneous process at `λ_max = base_rate · (1 + amplitude)` and
/// each candidate is accepted with probability `λ(t)/λ_max`. The long-run
/// mean rate over whole periods is `base_rate` (the sine integrates to
/// zero), so a diurnal trace is GPU-hour-comparable with a Poisson trace
/// at the same base rate.
///
/// ```
/// use hs_des::SeedSplitter;
/// use hs_workload::{ArrivalProcess, Diurnal};
///
/// let mut rng = SeedSplitter::new(7).stream("arrivals");
/// let mut d = Diurnal::new(8.0, 0.8, 60.0);
/// let gaps: Vec<u64> = (0..3).map(|_| d.next_gap(&mut rng).as_nanos()).collect();
/// assert_eq!(gaps, [181_679_526, 4_813_681, 46_049_744]);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Diurnal {
    /// Mean rate over a full period, req/s.
    pub base_rate: f64,
    /// Relative swing in `[0, 1)`: peak = `base·(1+a)`, trough = `base·(1−a)`.
    pub amplitude: f64,
    /// Cycle length, seconds (a simulated "day").
    pub period_s: f64,
    /// Phase offset, seconds: where in the cycle `t = 0` falls.
    pub phase_s: f64,
    /// Internal clock: seconds since the stream started.
    t: f64,
}

impl Diurnal {
    /// A diurnal process with `base_rate` mean req/s, relative swing
    /// `amplitude`, and cycle length `period_s` seconds starting at the
    /// cycle's mean-rate upswing.
    pub fn new(base_rate: f64, amplitude: f64, period_s: f64) -> Self {
        assert!(base_rate > 0.0, "rate must be positive");
        assert!(
            (0.0..1.0).contains(&amplitude),
            "amplitude must be in [0, 1)"
        );
        assert!(period_s > 0.0, "period must be positive");
        Diurnal {
            base_rate,
            amplitude,
            period_s,
            phase_s: 0.0,
            t: 0.0,
        }
    }

    /// Shift the cycle so `t = 0` falls `phase_s` seconds into it (e.g.
    /// `period/4` starts the trace at peak load).
    pub fn with_phase(mut self, phase_s: f64) -> Self {
        self.phase_s = phase_s;
        self
    }

    /// The instantaneous rate `λ(t)`, req/s.
    pub fn rate_at(&self, t_s: f64) -> f64 {
        let angle = std::f64::consts::TAU * (t_s + self.phase_s) / self.period_s;
        self.base_rate * (1.0 + self.amplitude * angle.sin())
    }
}

impl ArrivalProcess for Diurnal {
    fn next_gap(&mut self, rng: &mut SmallRng) -> SimSpan {
        let lambda_max = self.base_rate * (1.0 + self.amplitude);
        let exp = Exp::new(lambda_max).expect("positive rate");
        let start = self.t;
        loop {
            self.t += exp.sample(rng);
            // Thinning: accept with probability λ(t)/λ_max.
            let u: f64 = rng.gen();
            if u * lambda_max <= self.rate_at(self.t) {
                return SimSpan::from_secs_f64(self.t - start);
            }
        }
    }

    fn mean_rate(&self) -> f64 {
        self.base_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs_des::SeedSplitter;

    #[test]
    fn poisson_rate_converges() {
        let mut p = Poisson::new(10.0);
        let mut rng = SeedSplitter::new(1).stream("arrivals");
        let arrivals = p.arrivals_until(&mut rng, SimTime::from_secs(1000));
        let rate = arrivals.len() as f64 / 1000.0;
        assert!((rate / 10.0 - 1.0).abs() < 0.05, "rate = {rate}");
        // Strictly increasing timestamps.
        for w in arrivals.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn poisson_gap_cv_is_one() {
        let mut p = Poisson::new(5.0);
        let mut rng = SeedSplitter::new(2).stream("arrivals");
        let gaps: Vec<f64> = (0..20_000)
            .map(|_| p.next_gap(&mut rng).as_secs_f64())
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!((cv - 1.0).abs() < 0.05, "cv = {cv}");
    }

    #[test]
    fn mmpp_is_burstier_than_poisson() {
        let mut m = Mmpp::bursty(5.0, 10.0);
        let mut rng = SeedSplitter::new(3).stream("arrivals");
        let gaps: Vec<f64> = (0..20_000)
            .map(|_| m.next_gap(&mut rng).as_secs_f64())
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!(cv > 1.05, "MMPP cv = {cv} should exceed Poisson's 1.0");
    }

    #[test]
    fn mmpp_mean_rate_formula() {
        let m = Mmpp::new(4.0, 20.0, 8.0, 2.0);
        // p_burst = 0.2 -> mean = 4*0.8 + 20*0.2 = 7.2.
        assert!((m.mean_rate() - 7.2).abs() < 1e-9);
        // Empirical check.
        let mut m2 = m;
        let mut rng = SeedSplitter::new(4).stream("arrivals");
        let arrivals = m2.arrivals_until(&mut rng, SimTime::from_secs(2000));
        let rate = arrivals.len() as f64 / 2000.0;
        assert!((rate / 7.2 - 1.0).abs() < 0.1, "rate = {rate}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        Poisson::new(0.0);
    }

    #[test]
    fn diurnal_mean_rate_converges_over_whole_periods() {
        let mut d = Diurnal::new(8.0, 0.8, 50.0);
        let mut rng = SeedSplitter::new(5).stream("arrivals");
        // 40 whole periods: the sine's contribution integrates away.
        let arrivals = d.arrivals_until(&mut rng, SimTime::from_secs(2000));
        let rate = arrivals.len() as f64 / 2000.0;
        assert!((rate / 8.0 - 1.0).abs() < 0.05, "rate = {rate}");
    }

    #[test]
    fn diurnal_peak_beats_trough() {
        // Phase period/4 puts t=0 at peak; 3·period/4 puts it at trough.
        let mut peak = Diurnal::new(6.0, 0.9, 400.0).with_phase(100.0);
        let mut trough = Diurnal::new(6.0, 0.9, 400.0).with_phase(300.0);
        let mut rng_a = SeedSplitter::new(6).stream("arrivals");
        let mut rng_b = SeedSplitter::new(6).stream("arrivals");
        // 20 s windows around the extremes of a 400 s cycle: rates differ
        // by ~(1+0.9)/(1-0.9) ≈ 19×.
        let hi = peak
            .arrivals_until(&mut rng_a, SimTime::from_secs(20))
            .len();
        let lo = trough
            .arrivals_until(&mut rng_b, SimTime::from_secs(20))
            .len();
        assert!(hi > 4 * lo.max(1), "peak {hi} vs trough {lo}");
    }

    #[test]
    fn diurnal_rate_at_matches_formula() {
        let d = Diurnal::new(10.0, 0.5, 100.0);
        assert!((d.rate_at(0.0) - 10.0).abs() < 1e-9);
        assert!((d.rate_at(25.0) - 15.0).abs() < 1e-9);
        assert!((d.rate_at(75.0) - 5.0).abs() < 1e-9);
        let shifted = d.with_phase(25.0);
        assert!((shifted.rate_at(0.0) - 15.0).abs() < 1e-9);
    }

    #[test]
    fn flash_crowd_mean_rate() {
        let m = Mmpp::flash_crowd(4.0, 6.0);
        // p_spike = 3/15 = 0.2 -> mean = 4·0.8 + 24·0.2 = 8.0.
        assert!((m.mean_rate() - 8.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "amplitude")]
    fn diurnal_full_swing_rejected() {
        Diurnal::new(1.0, 1.0, 10.0);
    }
}
