//! Fault injection plans — timed fabric events replayed into a run.
//!
//! §V of the paper evaluates HeroServe on a testbed whose Tofino switches
//! and 100 GbE links are shared with other tenants; the serving system
//! must keep meeting SLAs when a link browns out or a programmable switch
//! reboots. A [`FaultPlan`] is the workload-side description of such an
//! episode: a time-sorted list of [`FaultEvent`]s that the cluster engine
//! applies to the flow-level network while a trace replays.
//!
//! The plan is pure data — it knows nothing about how the engine reacts.
//! Reaction (re-rating in-flight flows, aborting flows across dead links,
//! rerouting, INA failover) lives in `hs-simnet` / `hs-cluster` /
//! `heroserve`.

use hs_des::SimTime;
use hs_topology::{LinkId, NodeId};

/// One kind of fabric/host fault (or the matching recovery).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// The link loses all capacity in both directions.
    LinkDown {
        /// The affected link.
        link: LinkId,
    },
    /// The link returns to its nominal capacity.
    LinkUp {
        /// The recovered link.
        link: LinkId,
    },
    /// The link keeps only `factor` of its nominal capacity
    /// (`0.0 < factor < 1.0`; `0.0` is equivalent to [`FaultKind::LinkDown`]).
    LinkDegrade {
        /// The affected link.
        link: LinkId,
        /// Fraction of nominal capacity retained, in `[0, 1)`.
        factor: f64,
    },
    /// The switch fails: every link adjacent to it goes down, and its
    /// in-network aggregation engine (if any) becomes unusable.
    SwitchFail {
        /// The failed switch node.
        switch: NodeId,
    },
    /// The switch comes back; adjacent links return to nominal capacity.
    SwitchRecover {
        /// The recovered switch node.
        switch: NodeId,
    },
    /// Compute on the GPU runs `slowdown`× slower (thermal throttle,
    /// noisy neighbor). `slowdown >= 1.0`.
    GpuStall {
        /// The affected GPU node.
        gpu: NodeId,
        /// Compute-time multiplier, `>= 1.0`.
        slowdown: f64,
    },
    /// The GPU returns to nominal speed.
    GpuRecover {
        /// The recovered GPU node.
        gpu: NodeId,
    },
}

/// A [`FaultKind`] pinned to a simulation time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultEvent {
    /// When the fault fires.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// A time-sorted schedule of fault events for one run.
///
/// Construct with the scenario helpers ([`FaultPlan::switch_outage`],
/// [`FaultPlan::link_outage`], [`FaultPlan::link_brownout`]) or build an
/// arbitrary schedule with [`FaultPlan::push`] / [`FaultPlan::merged`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan with no events (the common, healthy-fabric case).
    pub fn none() -> Self {
        Self::default()
    }

    /// Build from an arbitrary event list; events are sorted by time.
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        for e in &events {
            validate(&e.kind);
        }
        events.sort_by_key(|e| e.at);
        FaultPlan { events }
    }

    /// A switch dies at `fail` and reboots at `recover`.
    pub fn switch_outage(switch: NodeId, fail: SimTime, recover: SimTime) -> Self {
        assert!(fail < recover, "switch outage must end after it starts");
        Self::new(vec![
            FaultEvent {
                at: fail,
                kind: FaultKind::SwitchFail { switch },
            },
            FaultEvent {
                at: recover,
                kind: FaultKind::SwitchRecover { switch },
            },
        ])
    }

    /// A link goes dark at `down` and comes back at `up`.
    pub fn link_outage(link: LinkId, down: SimTime, up: SimTime) -> Self {
        assert!(down < up, "link outage must end after it starts");
        Self::new(vec![
            FaultEvent {
                at: down,
                kind: FaultKind::LinkDown { link },
            },
            FaultEvent {
                at: up,
                kind: FaultKind::LinkUp { link },
            },
        ])
    }

    /// A link runs at `factor` of nominal capacity between `from` and `to`.
    pub fn link_brownout(link: LinkId, factor: f64, from: SimTime, to: SimTime) -> Self {
        assert!(from < to, "brownout must end after it starts");
        Self::new(vec![
            FaultEvent {
                at: from,
                kind: FaultKind::LinkDegrade { link, factor },
            },
            FaultEvent {
                at: to,
                kind: FaultKind::LinkUp { link },
            },
        ])
    }

    /// Append one event, keeping the schedule sorted.
    pub fn push(&mut self, at: SimTime, kind: FaultKind) {
        validate(&kind);
        let pos = self.events.partition_point(|e| e.at <= at);
        self.events.insert(pos, FaultEvent { at, kind });
    }

    /// Merge two plans into one sorted schedule.
    pub fn merged(mut self, other: FaultPlan) -> Self {
        self.events.extend(other.events);
        self.events.sort_by_key(|e| e.at);
        self
    }

    /// The scheduled events, sorted by time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// `[first event, last event]` — the window during which the fabric
    /// is (potentially) degraded. `None` for an empty plan.
    pub fn window(&self) -> Option<(SimTime, SimTime)> {
        match (self.events.first(), self.events.last()) {
            (Some(a), Some(b)) => Some((a.at, b.at)),
            _ => None,
        }
    }
}

fn validate(kind: &FaultKind) {
    match *kind {
        FaultKind::LinkDegrade { factor, .. } => {
            assert!(
                factor.is_finite() && (0.0..1.0).contains(&factor),
                "degrade factor must be in [0, 1), got {factor}"
            );
        }
        FaultKind::GpuStall { slowdown, .. } => {
            assert!(
                slowdown.is_finite() && slowdown >= 1.0,
                "GPU stall slowdown must be >= 1, got {slowdown}"
            );
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_sorted_and_window_spans_plan() {
        let mut plan =
            FaultPlan::switch_outage(NodeId(3), SimTime::from_secs(10), SimTime::from_secs(20));
        plan.push(
            SimTime::from_secs(5),
            FaultKind::LinkDegrade {
                link: LinkId(0),
                factor: 0.25,
            },
        );
        let times: Vec<u64> = plan
            .events()
            .iter()
            .map(|e| e.at.as_secs_f64() as u64)
            .collect();
        assert_eq!(times, vec![5, 10, 20]);
        assert_eq!(
            plan.window(),
            Some((SimTime::from_secs(5), SimTime::from_secs(20)))
        );
    }

    #[test]
    fn merged_interleaves_two_plans() {
        let a = FaultPlan::link_outage(LinkId(1), SimTime::from_secs(1), SimTime::from_secs(9));
        let b =
            FaultPlan::link_brownout(LinkId(2), 0.5, SimTime::from_secs(4), SimTime::from_secs(6));
        let m = a.merged(b);
        assert_eq!(m.events().len(), 4);
        assert!(m.events().windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn empty_plan_has_no_window() {
        assert!(FaultPlan::none().is_empty());
        assert_eq!(FaultPlan::none().window(), None);
    }

    #[test]
    #[should_panic(expected = "degrade factor")]
    fn rejects_out_of_range_degrade() {
        FaultPlan::new(vec![FaultEvent {
            at: SimTime::ZERO,
            kind: FaultKind::LinkDegrade {
                link: LinkId(0),
                factor: 1.5,
            },
        }]);
    }
}
