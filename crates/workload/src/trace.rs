//! Materialized request traces.

use crate::arrival::ArrivalProcess;
use crate::spec::WorkloadSpec;
use hs_des::SimTime;
use rand::rngs::SmallRng;

/// Request identifier, unique within one trace.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RequestId(pub u64);

/// One inference request.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Request {
    /// Identifier.
    pub id: RequestId,
    /// Arrival instant.
    pub arrival: SimTime,
    /// Prompt length, tokens.
    pub input_tokens: u32,
    /// Generation length, tokens.
    pub output_tokens: u32,
}

/// A time-ordered request trace.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Requests, sorted by arrival.
    pub requests: Vec<Request>,
}

impl Trace {
    /// Generate a trace: arrivals from `arrivals` until `horizon`,
    /// lengths from `spec`.
    pub fn generate<A: ArrivalProcess>(
        spec: &WorkloadSpec,
        arrivals: &mut A,
        rng: &mut SmallRng,
        horizon: SimTime,
    ) -> Self {
        let times = arrivals.arrivals_until(rng, horizon);
        let requests = times
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                let (input_tokens, output_tokens) = spec.sample(rng);
                Request {
                    id: RequestId(i as u64),
                    arrival: t,
                    input_tokens,
                    output_tokens,
                }
            })
            .collect();
        Trace { requests }
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True when the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// The empirical arrival rate over the trace span, req/s.
    pub fn empirical_rate(&self) -> f64 {
        match (self.requests.first(), self.requests.last()) {
            (Some(a), Some(b)) if b.arrival > a.arrival => {
                (self.len() as f64 - 1.0) / (b.arrival - a.arrival).as_secs_f64()
            }
            _ => 0.0,
        }
    }

    /// Total tokens (input + output) across the trace.
    pub fn total_tokens(&self) -> u64 {
        self.requests
            .iter()
            .map(|r| r.input_tokens as u64 + r.output_tokens as u64)
            .sum()
    }

    /// Scale every arrival time by `factor` (rate ×1/factor) — used for
    /// rate sweeps over a fixed length sample, as the paper's per-GPU
    /// rate sweeps do.
    pub fn with_time_scale(&self, factor: f64) -> Trace {
        assert!(factor > 0.0);
        Trace {
            requests: self
                .requests
                .iter()
                .map(|r| Request {
                    arrival: SimTime::from_secs_f64(r.arrival.as_secs_f64() * factor),
                    ..*r
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::Poisson;
    use crate::spec::{fixed, sharegpt_like};
    use hs_des::SeedSplitter;

    #[test]
    fn generate_is_sorted_and_rated() {
        let mut rng = SeedSplitter::new(9).stream("trace");
        let mut arr = Poisson::new(20.0);
        let t = Trace::generate(
            &sharegpt_like(),
            &mut arr,
            &mut rng,
            SimTime::from_secs(100),
        );
        assert!(t.len() > 1500 && t.len() < 2500, "len = {}", t.len());
        for w in t.requests.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
            assert!(w[0].id < w[1].id);
        }
        assert!((t.empirical_rate() / 20.0 - 1.0).abs() < 0.1);
    }

    #[test]
    fn fixed_spec_trace_lengths() {
        let mut rng = SeedSplitter::new(9).stream("trace");
        let mut arr = Poisson::new(5.0);
        let t = Trace::generate(&fixed(128, 32), &mut arr, &mut rng, SimTime::from_secs(10));
        for r in &t.requests {
            assert_eq!(r.input_tokens, 128);
            assert_eq!(r.output_tokens, 32);
        }
        assert_eq!(t.total_tokens(), t.len() as u64 * 160);
    }

    #[test]
    fn time_scale_changes_rate() {
        let mut rng = SeedSplitter::new(9).stream("trace");
        let mut arr = Poisson::new(10.0);
        let t = Trace::generate(&fixed(8, 8), &mut arr, &mut rng, SimTime::from_secs(50));
        let slow = t.with_time_scale(2.0);
        assert!((slow.empirical_rate() - t.empirical_rate() / 2.0).abs() < 0.2);
        assert_eq!(slow.len(), t.len());
    }

    #[test]
    fn same_seed_same_trace() {
        let make = || {
            let mut rng = SeedSplitter::new(7).stream("trace");
            let mut arr = Poisson::new(5.0);
            Trace::generate(&sharegpt_like(), &mut arr, &mut rng, SimTime::from_secs(20))
        };
        let a = make();
        let b = make();
        assert_eq!(a.requests, b.requests);
    }

    #[test]
    fn empty_trace_edge_cases() {
        let t = Trace::default();
        assert!(t.is_empty());
        assert_eq!(t.empirical_rate(), 0.0);
        assert_eq!(t.total_tokens(), 0);
    }
}
