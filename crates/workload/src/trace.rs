//! Materialized request traces, with CSV/JSONL export and replay.
//!
//! Production traces arrive as flat files; [`Trace::from_csv`] and
//! [`Trace::from_jsonl`] turn them into the same [`Trace`] the
//! synthetic generators produce, so recorded traffic replays through
//! the identical engine path. Timestamps round-trip losslessly: the
//! writers emit integer nanoseconds (`arrival_ns`), and the parsers
//! also accept fractional seconds (`arrival_s`) for hand-written or
//! foreign traces. Parsed requests are sorted by arrival and renumbered
//! `0..n` because the cluster engine indexes requests positionally.

use crate::arrival::ArrivalProcess;
use crate::spec::WorkloadSpec;
use hs_des::SimTime;
use rand::rngs::SmallRng;

/// Request identifier, unique within one trace.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RequestId(pub u64);

/// One inference request.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Request {
    /// Identifier.
    pub id: RequestId,
    /// Arrival instant.
    pub arrival: SimTime,
    /// Prompt length, tokens.
    pub input_tokens: u32,
    /// Generation length, tokens.
    pub output_tokens: u32,
}

/// A time-ordered request trace.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Requests, sorted by arrival.
    pub requests: Vec<Request>,
}

impl Trace {
    /// Generate a trace: arrivals from `arrivals` until `horizon`,
    /// lengths from `spec`.
    pub fn generate<A: ArrivalProcess>(
        spec: &WorkloadSpec,
        arrivals: &mut A,
        rng: &mut SmallRng,
        horizon: SimTime,
    ) -> Self {
        let times = arrivals.arrivals_until(rng, horizon);
        let requests = times
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                let (input_tokens, output_tokens) = spec.sample(rng);
                Request {
                    id: RequestId(i as u64),
                    arrival: t,
                    input_tokens,
                    output_tokens,
                }
            })
            .collect();
        Trace { requests }
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True when the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// The empirical arrival rate over the trace span, req/s.
    pub fn empirical_rate(&self) -> f64 {
        match (self.requests.first(), self.requests.last()) {
            (Some(a), Some(b)) if b.arrival > a.arrival => {
                (self.len() as f64 - 1.0) / (b.arrival - a.arrival).as_secs_f64()
            }
            _ => 0.0,
        }
    }

    /// Total tokens (input + output) across the trace.
    pub fn total_tokens(&self) -> u64 {
        self.requests
            .iter()
            .map(|r| r.input_tokens as u64 + r.output_tokens as u64)
            .sum()
    }

    /// Serialize to CSV with header `arrival_ns,input_tokens,output_tokens`.
    ///
    /// Arrival instants are written as integer nanoseconds so
    /// [`Trace::from_csv`] reproduces the trace bit-for-bit.
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(32 * self.len() + 40);
        out.push_str("arrival_ns,input_tokens,output_tokens\n");
        for r in &self.requests {
            out.push_str(&format!(
                "{},{},{}\n",
                r.arrival.as_nanos(),
                r.input_tokens,
                r.output_tokens
            ));
        }
        out
    }

    /// Parse a CSV trace. The header row names the columns; `arrival_ns`
    /// (integer nanoseconds) or `arrival_s` (fractional seconds) plus
    /// `input_tokens` and `output_tokens` are required, any other
    /// columns are ignored. Rows are sorted by arrival and renumbered
    /// positionally (the engine indexes requests by id).
    pub fn from_csv(text: &str) -> Result<Trace, String> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().ok_or("empty CSV trace")?;
        let cols: Vec<&str> = header.split(',').map(str::trim).collect();
        let find = |name: &str| cols.iter().position(|c| *c == name);
        let arrival_ns = find("arrival_ns");
        let arrival_s = find("arrival_s");
        if arrival_ns.is_none() && arrival_s.is_none() {
            return Err("CSV trace needs an arrival_ns or arrival_s column".into());
        }
        let in_col = find("input_tokens").ok_or("CSV trace needs input_tokens")?;
        let out_col = find("output_tokens").ok_or("CSV trace needs output_tokens")?;
        let mut requests = Vec::new();
        for (lineno, line) in lines.enumerate() {
            let fields: Vec<&str> = line.split(',').map(str::trim).collect();
            let get = |col: usize| -> Result<&str, String> {
                fields
                    .get(col)
                    .copied()
                    .ok_or_else(|| format!("row {}: missing column {col}", lineno + 2))
            };
            let arrival = if let Some(c) = arrival_ns {
                let ns: u64 = get(c)?
                    .parse()
                    .map_err(|e| format!("row {}: bad arrival_ns: {e}", lineno + 2))?;
                SimTime::from_nanos(ns)
            } else {
                let s: f64 = get(arrival_s.expect("checked above"))?
                    .parse()
                    .map_err(|e| format!("row {}: bad arrival_s: {e}", lineno + 2))?;
                if !(s.is_finite() && s >= 0.0) {
                    return Err(format!(
                        "row {}: arrival_s must be finite and >= 0",
                        lineno + 2
                    ));
                }
                SimTime::from_secs_f64(s)
            };
            let input_tokens: u32 = get(in_col)?
                .parse()
                .map_err(|e| format!("row {}: bad input_tokens: {e}", lineno + 2))?;
            let output_tokens: u32 = get(out_col)?
                .parse()
                .map_err(|e| format!("row {}: bad output_tokens: {e}", lineno + 2))?;
            requests.push(Request {
                id: RequestId(0), // renumbered below
                arrival,
                input_tokens,
                output_tokens,
            });
        }
        Ok(Trace::from_unsorted(requests))
    }

    /// Serialize to JSONL: one object per line with keys `arrival_ns`,
    /// `input_tokens`, `output_tokens`. Round-trips bit-for-bit through
    /// [`Trace::from_jsonl`].
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(64 * self.len());
        for r in &self.requests {
            out.push_str(&format!(
                "{{\"arrival_ns\":{},\"input_tokens\":{},\"output_tokens\":{}}}\n",
                r.arrival.as_nanos(),
                r.input_tokens,
                r.output_tokens
            ));
        }
        out
    }

    /// Parse a JSONL trace: one object per non-empty line, with
    /// `arrival_ns` (integer) or `arrival_s` (number) plus
    /// `input_tokens`/`output_tokens`. Extra keys are ignored; rows are
    /// sorted by arrival and renumbered positionally.
    pub fn from_jsonl(text: &str) -> Result<Trace, String> {
        let mut requests = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let v = serde_json::from_str(line)
                .map_err(|e| format!("line {}: bad JSON: {e}", lineno + 1))?;
            let arrival = if let Some(ns) = v.get("arrival_ns").and_then(|x| x.as_u64()) {
                SimTime::from_nanos(ns)
            } else if let Some(s) = v.get("arrival_s").and_then(|x| x.as_f64()) {
                if !(s.is_finite() && s >= 0.0) {
                    return Err(format!(
                        "line {}: arrival_s must be finite and >= 0",
                        lineno + 1
                    ));
                }
                SimTime::from_secs_f64(s)
            } else {
                return Err(format!(
                    "line {}: needs arrival_ns or arrival_s",
                    lineno + 1
                ));
            };
            let input_tokens = v
                .get("input_tokens")
                .and_then(|x| x.as_u64())
                .ok_or_else(|| format!("line {}: needs integer input_tokens", lineno + 1))?;
            let output_tokens = v
                .get("output_tokens")
                .and_then(|x| x.as_u64())
                .ok_or_else(|| format!("line {}: needs integer output_tokens", lineno + 1))?;
            requests.push(Request {
                id: RequestId(0), // renumbered below
                arrival,
                input_tokens: u32::try_from(input_tokens)
                    .map_err(|_| format!("line {}: input_tokens too large", lineno + 1))?,
                output_tokens: u32::try_from(output_tokens)
                    .map_err(|_| format!("line {}: output_tokens too large", lineno + 1))?,
            });
        }
        Ok(Trace::from_unsorted(requests))
    }

    /// Build a trace from possibly-unsorted requests: sorts by arrival
    /// (stable, so equal-time rows keep file order) and renumbers ids
    /// positionally `0..n` — the engine requires positional ids.
    pub fn from_unsorted(mut requests: Vec<Request>) -> Trace {
        requests.sort_by_key(|r| r.arrival);
        for (i, r) in requests.iter_mut().enumerate() {
            r.id = RequestId(i as u64);
        }
        Trace { requests }
    }

    /// Scale every arrival time by `factor` (rate ×1/factor) — used for
    /// rate sweeps over a fixed length sample, as the paper's per-GPU
    /// rate sweeps do.
    pub fn with_time_scale(&self, factor: f64) -> Trace {
        assert!(factor > 0.0);
        Trace {
            requests: self
                .requests
                .iter()
                .map(|r| Request {
                    arrival: r.arrival.mul_f64(factor),
                    ..*r
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::Poisson;
    use crate::spec::{fixed, sharegpt_like};
    use hs_des::SeedSplitter;

    #[test]
    fn generate_is_sorted_and_rated() {
        let mut rng = SeedSplitter::new(9).stream("trace");
        let mut arr = Poisson::new(20.0);
        let t = Trace::generate(
            &sharegpt_like(),
            &mut arr,
            &mut rng,
            SimTime::from_secs(100),
        );
        assert!(t.len() > 1500 && t.len() < 2500, "len = {}", t.len());
        for w in t.requests.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
            assert!(w[0].id < w[1].id);
        }
        assert!((t.empirical_rate() / 20.0 - 1.0).abs() < 0.1);
    }

    #[test]
    fn fixed_spec_trace_lengths() {
        let mut rng = SeedSplitter::new(9).stream("trace");
        let mut arr = Poisson::new(5.0);
        let t = Trace::generate(&fixed(128, 32), &mut arr, &mut rng, SimTime::from_secs(10));
        for r in &t.requests {
            assert_eq!(r.input_tokens, 128);
            assert_eq!(r.output_tokens, 32);
        }
        assert_eq!(t.total_tokens(), t.len() as u64 * 160);
    }

    #[test]
    fn time_scale_changes_rate() {
        let mut rng = SeedSplitter::new(9).stream("trace");
        let mut arr = Poisson::new(10.0);
        let t = Trace::generate(&fixed(8, 8), &mut arr, &mut rng, SimTime::from_secs(50));
        let slow = t.with_time_scale(2.0);
        assert!((slow.empirical_rate() - t.empirical_rate() / 2.0).abs() < 0.2);
        assert_eq!(slow.len(), t.len());
    }

    #[test]
    fn time_scale_is_exact_in_the_nanos_domain() {
        // Scaling stays in integer nanoseconds: an odd arrival doubled
        // is exactly doubled, and a representable ×1.5 rounds exactly
        // once. The old f64-seconds round-trip drifted by 1 ns on
        // arrivals like these, which breaks bit-identical replays of
        // rate-swept traces.
        let t = Trace {
            requests: vec![Request {
                id: RequestId(0),
                arrival: SimTime::from_nanos(1_000_000_013),
                input_tokens: 8,
                output_tokens: 8,
            }],
        };
        assert_eq!(
            t.with_time_scale(2.0).requests[0].arrival.as_nanos(),
            2_000_000_026
        );
        assert_eq!(
            t.with_time_scale(1.5).requests[0].arrival.as_nanos(),
            1_500_000_020
        );
    }

    #[test]
    fn same_seed_same_trace() {
        let make = || {
            let mut rng = SeedSplitter::new(7).stream("trace");
            let mut arr = Poisson::new(5.0);
            Trace::generate(&sharegpt_like(), &mut arr, &mut rng, SimTime::from_secs(20))
        };
        let a = make();
        let b = make();
        assert_eq!(a.requests, b.requests);
    }

    #[test]
    fn empty_trace_edge_cases() {
        let t = Trace::default();
        assert!(t.is_empty());
        assert_eq!(t.empirical_rate(), 0.0);
        assert_eq!(t.total_tokens(), 0);
    }

    fn sample_trace() -> Trace {
        let mut rng = SeedSplitter::new(31).stream("trace");
        let mut arr = Poisson::new(40.0);
        Trace::generate(&sharegpt_like(), &mut arr, &mut rng, SimTime::from_secs(5))
    }

    #[test]
    fn csv_roundtrip_is_bit_exact() {
        let t = sample_trace();
        let back = Trace::from_csv(&t.to_csv()).expect("parse own CSV");
        assert_eq!(t.requests, back.requests);
    }

    #[test]
    fn jsonl_roundtrip_is_bit_exact() {
        let t = sample_trace();
        let back = Trace::from_jsonl(&t.to_jsonl()).expect("parse own JSONL");
        assert_eq!(t.requests, back.requests);
    }

    #[test]
    fn csv_accepts_arrival_seconds_and_extra_columns() {
        let csv = "user,arrival_s,input_tokens,output_tokens\n\
                   a,1.5,100,10\n\
                   b,0.25,200,20\n";
        let t = Trace::from_csv(csv).expect("parse");
        // Sorted by arrival and renumbered positionally.
        assert_eq!(t.len(), 2);
        assert_eq!(t.requests[0].id, RequestId(0));
        assert_eq!(t.requests[0].arrival, SimTime::from_millis(250));
        assert_eq!(t.requests[0].input_tokens, 200);
        assert_eq!(t.requests[1].arrival, SimTime::from_millis(1500));
        assert_eq!(t.requests[1].id, RequestId(1));
    }

    #[test]
    fn jsonl_accepts_arrival_seconds() {
        let jl =
            "{\"arrival_s\": 2.0, \"input_tokens\": 64, \"output_tokens\": 8, \"extra\": true}\n\
                  \n\
                  {\"arrival_ns\": 500000000, \"input_tokens\": 32, \"output_tokens\": 4}\n";
        let t = Trace::from_jsonl(jl).expect("parse");
        assert_eq!(t.len(), 2);
        assert_eq!(t.requests[0].arrival, SimTime::from_millis(500));
        assert_eq!(t.requests[0].input_tokens, 32);
        assert_eq!(t.requests[1].arrival, SimTime::from_secs(2));
    }

    #[test]
    fn malformed_traces_are_rejected_with_row_numbers() {
        assert!(Trace::from_csv("").is_err());
        assert!(Trace::from_csv("input_tokens,output_tokens\n1,2\n").is_err());
        let err =
            Trace::from_csv("arrival_ns,input_tokens,output_tokens\n5,x,2\n").expect_err("bad int");
        assert!(err.contains("row 2"), "err = {err}");
        let err = Trace::from_jsonl("{\"arrival_ns\": 1}\n").expect_err("missing tokens");
        assert!(err.contains("line 1"), "err = {err}");
        assert!(Trace::from_jsonl("not json\n").is_err());
    }

    #[test]
    fn from_unsorted_is_stable_for_ties() {
        let reqs = vec![
            Request {
                id: RequestId(99),
                arrival: SimTime::from_secs(1),
                input_tokens: 1,
                output_tokens: 1,
            },
            Request {
                id: RequestId(98),
                arrival: SimTime::from_secs(1),
                input_tokens: 2,
                output_tokens: 2,
            },
        ];
        let t = Trace::from_unsorted(reqs);
        // Equal arrivals keep input order; ids are positional.
        assert_eq!(t.requests[0].input_tokens, 1);
        assert_eq!(t.requests[0].id, RequestId(0));
        assert_eq!(t.requests[1].id, RequestId(1));
    }
}
