//! Workload length distributions.
//!
//! Token lengths are drawn from a [`LengthModel`]: either a clamped
//! log-normal ([`LengthSpec`], the paper's chatbot/summarization fits)
//! or a clamped Pareto ([`ParetoSpec`]) for heavy-tailed prompt
//! populations where a small fraction of requests dominates the token
//! budget. Both expose `sample` and `analytic_mean` so load estimation
//! ([`WorkloadSpec::mean_tokens`]) works identically for either shape.

use rand::rngs::SmallRng;
use rand::Rng;
use rand_distr::{Distribution, LogNormal};

/// A clamped log-normal token-length distribution.
#[derive(Clone, Copy, Debug)]
pub struct LengthSpec {
    /// Mean of the underlying normal (log-token space).
    pub mu: f64,
    /// Std-dev of the underlying normal.
    pub sigma: f64,
    /// Minimum length (inclusive).
    pub min: u32,
    /// Maximum length (inclusive).
    pub max: u32,
}

impl LengthSpec {
    /// A spec whose log-normal has approximately the given mean, with
    /// shape `sigma`, clamped to `[min, max]`.
    pub fn with_mean(mean: f64, sigma: f64, min: u32, max: u32) -> Self {
        assert!(mean > 0.0 && min >= 1 && max >= min);
        // E[lognormal] = exp(mu + sigma^2/2)  =>  mu = ln(mean) - sigma^2/2.
        LengthSpec {
            mu: mean.ln() - sigma * sigma / 2.0,
            sigma,
            min,
            max,
        }
    }

    /// Draw one length.
    pub fn sample(&self, rng: &mut SmallRng) -> u32 {
        let d = LogNormal::new(self.mu, self.sigma).expect("valid lognormal");
        let x = d.sample(rng);
        (x.round() as i64).clamp(self.min as i64, self.max as i64) as u32
    }

    /// The analytic (unclamped) mean.
    pub fn analytic_mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }
}

/// A clamped Pareto token-length distribution for heavy-tailed
/// populations: most requests are short, but the tail decays as a power
/// law `P(X > x) = (scale/x)^shape`, so a handful of giants carry a
/// disproportionate share of the token budget.
///
/// Sampling uses the inverse CDF, `x = scale · (1 − u)^(−1/shape)`,
/// with the vendored `SmallRng` — no extra distribution crate needed.
/// The analytic (unclamped) mean is `shape · scale / (shape − 1)`,
/// finite only for `shape > 1`; the constructor requires that so load
/// estimation stays meaningful.
///
/// ```
/// use hs_des::SeedSplitter;
/// use hs_workload::ParetoSpec;
///
/// let mut rng = SeedSplitter::new(7).stream("lengths");
/// let p = ParetoSpec::with_mean(160.0, 1.5, 4, 2048);
/// let lens: Vec<u32> = (0..4).map(|_| p.sample(&mut rng)).collect();
/// assert_eq!(lens, [62, 81, 76, 66]);
/// assert!((p.analytic_mean() - 160.0).abs() < 1e-9);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ParetoSpec {
    /// Scale `x_m` (minimum of the unclamped support), tokens.
    pub scale: f64,
    /// Tail index `α`; smaller is heavier. Must be `> 1` for a finite
    /// mean.
    pub shape: f64,
    /// Minimum length (inclusive), applied after sampling.
    pub min: u32,
    /// Maximum length (inclusive), applied after sampling.
    pub max: u32,
}

impl ParetoSpec {
    /// A Pareto spec with the given `scale`/`shape`, clamped to
    /// `[min, max]`. Panics unless `scale > 0`, `shape > 1`, and
    /// `1 ≤ min ≤ max`.
    pub fn new(scale: f64, shape: f64, min: u32, max: u32) -> Self {
        assert!(scale > 0.0, "Pareto scale must be positive");
        assert!(shape > 1.0, "Pareto shape must exceed 1 for a finite mean");
        assert!(min >= 1 && max >= min);
        ParetoSpec {
            scale,
            shape,
            min,
            max,
        }
    }

    /// A spec whose *unclamped* mean is `mean`, with tail index
    /// `shape`: solves `scale = mean · (shape − 1) / shape`.
    pub fn with_mean(mean: f64, shape: f64, min: u32, max: u32) -> Self {
        assert!(mean > 0.0);
        ParetoSpec::new(mean * (shape - 1.0) / shape, shape, min, max)
    }

    /// Draw one length.
    pub fn sample(&self, rng: &mut SmallRng) -> u32 {
        // Inverse-CDF: u ~ U[0,1), x = scale · (1−u)^(−1/shape).
        let u: f64 = rng.gen();
        let x = self.scale * (1.0 - u).powf(-1.0 / self.shape);
        (x.round() as i64).clamp(self.min as i64, self.max as i64) as u32
    }

    /// The analytic (unclamped) mean, `shape · scale / (shape − 1)`.
    pub fn analytic_mean(&self) -> f64 {
        self.shape * self.scale / (self.shape - 1.0)
    }
}

/// A token-length distribution: log-normal body or Pareto tail.
///
/// [`WorkloadSpec`] stores one per direction so heavy-tailed prompt
/// populations plug into the same trace generation, load estimation,
/// and planner paths as the paper's log-normal fits.
#[derive(Clone, Copy, Debug)]
pub enum LengthModel {
    /// Clamped log-normal (see [`LengthSpec`]).
    LogNormal(LengthSpec),
    /// Clamped Pareto (see [`ParetoSpec`]).
    Pareto(ParetoSpec),
}

impl LengthModel {
    /// Draw one length.
    pub fn sample(&self, rng: &mut SmallRng) -> u32 {
        match self {
            LengthModel::LogNormal(s) => s.sample(rng),
            LengthModel::Pareto(s) => s.sample(rng),
        }
    }

    /// The analytic (unclamped) mean of the underlying distribution.
    pub fn analytic_mean(&self) -> f64 {
        match self {
            LengthModel::LogNormal(s) => s.analytic_mean(),
            LengthModel::Pareto(s) => s.analytic_mean(),
        }
    }
}

impl From<LengthSpec> for LengthModel {
    fn from(s: LengthSpec) -> Self {
        LengthModel::LogNormal(s)
    }
}

impl From<ParetoSpec> for LengthModel {
    fn from(s: ParetoSpec) -> Self {
        LengthModel::Pareto(s)
    }
}

/// A full workload: input and output length distributions plus SLAs.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Name for reports ("chatbot", "summarization").
    pub name: String,
    /// Input (prompt) length distribution.
    pub input: LengthModel,
    /// Output (generation) length distribution.
    pub output: LengthModel,
    /// TTFT SLA, seconds (Table I `T_sla^pre`).
    pub ttft_sla_s: f64,
    /// TPOT SLA, seconds (Table I `T_sla^dec`).
    pub tpot_sla_s: f64,
}

impl WorkloadSpec {
    /// Draw one `(input_len, output_len)` pair.
    pub fn sample(&self, rng: &mut SmallRng) -> (u32, u32) {
        (self.input.sample(rng), self.output.sample(rng))
    }

    /// Override the SLAs (the paper uses looser SLAs in simulation than
    /// on the testbed).
    pub fn with_slas(mut self, ttft_s: f64, tpot_s: f64) -> Self {
        self.ttft_sla_s = ttft_s;
        self.tpot_sla_s = tpot_s;
        self
    }

    /// Mean tokens per request (input + output), for load estimation.
    pub fn mean_tokens(&self) -> f64 {
        self.input.analytic_mean() + self.output.analytic_mean()
    }
}

/// The chatbot workload: ShareGPT-like lengths with the paper's testbed
/// SLAs (2.5 s TTFT / 0.15 s TPOT).
pub fn sharegpt_like() -> WorkloadSpec {
    WorkloadSpec {
        name: "chatbot".into(),
        input: LengthSpec::with_mean(160.0, 1.0, 4, 2048).into(),
        output: LengthSpec::with_mean(210.0, 0.8, 16, 1024).into(),
        ttft_sla_s: 2.5,
        tpot_sla_s: 0.15,
    }
}

/// The summarization workload: LongBench-like lengths with the paper's
/// testbed SLAs (15 s TTFT / 0.15 s TPOT).
///
/// LongBench documents are far longer than 2 k tokens, but the paper
/// serves them on OPT models whose context window is 2048 — prompts are
/// necessarily truncated to fit, so the effective distribution is long
/// prompts pressed against the 2 k ceiling (≈ 10× the chatbot mean).
pub fn longbench_like() -> WorkloadSpec {
    WorkloadSpec {
        name: "summarization".into(),
        input: LengthSpec::with_mean(1600.0, 0.35, 512, 1948).into(),
        output: LengthSpec::with_mean(100.0, 0.6, 32, 512).into(),
        ttft_sla_s: 15.0,
        tpot_sla_s: 0.15,
    }
}

/// A deterministic "uniform" workload for tests: every request is
/// exactly `(input, output)` tokens.
pub fn fixed(input: u32, output: u32) -> WorkloadSpec {
    WorkloadSpec {
        name: format!("fixed-{input}x{output}"),
        input: LengthSpec {
            mu: (input as f64).ln(),
            sigma: 0.0,
            min: input,
            max: input,
        }
        .into(),
        output: LengthSpec {
            mu: (output as f64).ln(),
            sigma: 0.0,
            min: output,
            max: output,
        }
        .into(),
        ttft_sla_s: 2.5,
        tpot_sla_s: 0.15,
    }
}

/// A heavy-tailed workload: Pareto prompt lengths (tail index 1.5 —
/// most prompts short, rare context-window-filling giants) with
/// log-normal outputs and chatbot SLAs. This is the length regime a
/// static P/D split sized for the *mean* prompt handles worst.
pub fn heavy_tail_like() -> WorkloadSpec {
    WorkloadSpec {
        name: "heavy-tail".into(),
        input: ParetoSpec::with_mean(160.0, 1.5, 4, 2048).into(),
        output: LengthSpec::with_mean(210.0, 0.8, 16, 1024).into(),
        ttft_sla_s: 2.5,
        tpot_sla_s: 0.15,
    }
}

/// Bernoulli mixture of two workloads (models a shared cluster serving
/// both applications).
pub fn mixture(a: WorkloadSpec, b: WorkloadSpec, frac_a: f64) -> MixedWorkload {
    assert!((0.0..=1.0).contains(&frac_a));
    MixedWorkload { a, b, frac_a }
}

/// See [`mixture`].
#[derive(Clone, Debug)]
pub struct MixedWorkload {
    /// First component.
    pub a: WorkloadSpec,
    /// Second component.
    pub b: WorkloadSpec,
    /// Probability of drawing from `a`.
    pub frac_a: f64,
}

impl MixedWorkload {
    /// Draw one `(input, output, from_a)` triple.
    pub fn sample(&self, rng: &mut SmallRng) -> (u32, u32, bool) {
        if rng.gen_bool(self.frac_a) {
            let (i, o) = self.a.sample(rng);
            (i, o, true)
        } else {
            let (i, o) = self.b.sample(rng);
            (i, o, false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs_des::SeedSplitter;

    fn rng() -> SmallRng {
        SeedSplitter::new(42).stream("lengths")
    }

    #[test]
    fn sharegpt_moments() {
        let spec = sharegpt_like();
        let mut r = rng();
        let n = 20_000;
        let xs: Vec<u32> = (0..n).map(|_| spec.input.sample(&mut r)).collect();
        let mean = xs.iter().map(|&x| x as f64).sum::<f64>() / n as f64;
        // Clamping pulls the mean down slightly; stay within 20%.
        assert!((mean / 160.0 - 1.0).abs() < 0.2, "mean input = {mean}");
        assert!(xs.iter().all(|&x| (4..=2048).contains(&x)));
    }

    #[test]
    fn longbench_is_long_but_fits_opt_context() {
        let spec = longbench_like();
        let mut r = rng();
        let samples: Vec<u32> = (0..5000).map(|_| spec.input.sample(&mut r)).collect();
        let mean = samples.iter().map(|&x| x as f64).sum::<f64>() / 5000.0;
        assert!(mean > 1200.0 && mean < 1900.0, "mean = {mean}");
        // Summarization inputs dwarf chatbot inputs but never exceed the
        // OPT context window (2048 incl. generation headroom).
        assert!(mean > 8.0 * 160.0);
        assert!(samples.iter().all(|&x| x < 2048));
    }

    #[test]
    fn fixed_is_deterministic() {
        let spec = fixed(100, 10);
        let mut r = rng();
        for _ in 0..50 {
            assert_eq!(spec.sample(&mut r), (100, 10));
        }
    }

    #[test]
    fn with_mean_hits_target() {
        let s = LengthSpec::with_mean(500.0, 0.7, 1, 1_000_000);
        assert!((s.analytic_mean() - 500.0).abs() < 1e-6);
    }

    #[test]
    fn slas_match_paper() {
        assert_eq!(sharegpt_like().ttft_sla_s, 2.5);
        assert_eq!(sharegpt_like().tpot_sla_s, 0.15);
        assert_eq!(longbench_like().ttft_sla_s, 15.0);
        let sim = sharegpt_like().with_slas(4.0, 0.2);
        assert_eq!(sim.ttft_sla_s, 4.0);
        assert_eq!(sim.tpot_sla_s, 0.2);
    }

    #[test]
    fn pareto_with_mean_hits_target() {
        let p = ParetoSpec::with_mean(300.0, 2.0, 1, u32::MAX);
        assert!((p.analytic_mean() - 300.0).abs() < 1e-9);
        // scale = mean·(α−1)/α = 150 for α = 2.
        assert!((p.scale - 150.0).abs() < 1e-9);
    }

    #[test]
    fn pareto_empirical_mean_converges() {
        // Wide clamp + α = 2.5 (finite variance) so the sample mean
        // converges at a testable n.
        let p = ParetoSpec::with_mean(200.0, 2.5, 1, 10_000_000);
        let mut r = rng();
        let n = 200_000;
        let mean = (0..n).map(|_| p.sample(&mut r) as f64).sum::<f64>() / n as f64;
        assert!((mean / 200.0 - 1.0).abs() < 0.1, "mean = {mean}");
    }

    #[test]
    fn pareto_is_heavier_tailed_than_lognormal() {
        // Equal analytic means; compare the 99.9th percentile mass.
        let pareto = ParetoSpec::with_mean(160.0, 1.5, 1, u32::MAX);
        let lognorm = LengthSpec::with_mean(160.0, 1.0, 1, u32::MAX);
        let mut r = rng();
        let n = 50_000;
        let big = 4000u32;
        let p_hits = (0..n).filter(|_| pareto.sample(&mut r) > big).count();
        let l_hits = (0..n).filter(|_| lognorm.sample(&mut r) > big).count();
        assert!(
            p_hits > 4 * (l_hits + 1),
            "pareto {p_hits} vs lognormal {l_hits} beyond {big} tokens"
        );
    }

    #[test]
    fn heavy_tail_like_respects_context_window() {
        let spec = heavy_tail_like();
        let mut r = rng();
        let samples: Vec<u32> = (0..20_000).map(|_| spec.input.sample(&mut r)).collect();
        assert!(samples.iter().all(|&x| (4..=2048).contains(&x)));
        // The clamp truncates the tail, so the empirical mean sits
        // below the unclamped analytic mean but well above the mode.
        let mean = samples.iter().map(|&x| x as f64).sum::<f64>() / 20_000.0;
        assert!(mean > 60.0 && mean < 200.0, "mean = {mean}");
    }

    #[test]
    #[should_panic(expected = "shape must exceed 1")]
    fn pareto_infinite_mean_rejected() {
        ParetoSpec::new(100.0, 1.0, 1, 1000);
    }

    #[test]
    fn length_model_dispatch_matches_inner() {
        let ls = LengthSpec::with_mean(100.0, 0.5, 1, 1000);
        let ps = ParetoSpec::with_mean(100.0, 2.0, 1, 1000);
        let ml: LengthModel = ls.into();
        let mp: LengthModel = ps.into();
        assert!((ml.analytic_mean() - ls.analytic_mean()).abs() < 1e-12);
        assert!((mp.analytic_mean() - ps.analytic_mean()).abs() < 1e-12);
        let mut r1 = rng();
        let mut r2 = rng();
        assert_eq!(ml.sample(&mut r1), ls.sample(&mut r2));
        assert_eq!(mp.sample(&mut r1), ps.sample(&mut r2));
    }

    #[test]
    fn mixture_draws_both() {
        let m = mixture(sharegpt_like(), longbench_like(), 0.5);
        let mut r = rng();
        let mut a_count = 0;
        for _ in 0..1000 {
            let (_, _, from_a) = m.sample(&mut r);
            if from_a {
                a_count += 1;
            }
        }
        assert!(a_count > 350 && a_count < 650, "a_count = {a_count}");
    }
}
