//! Known-bad: a lock guarding simulation state. Cross-thread mutation
//! order is invisible to the event loop and nondeterministic by
//! construction; sim state must be shard-local and merged in a
//! deterministic order (see the sharded solver's `(SimTime, FlowId)`
//! event merge).

pub struct SharedLedger {
    pub balance: std::sync::Mutex<u64>,
}
