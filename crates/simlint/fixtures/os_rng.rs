//! Known-bad: draws randomness from the OS instead of the run seed, so
//! two runs with the same `(seed, workload, topology)` diverge.

pub fn jitter() -> u64 {
    use rand::Rng;
    let mut rng = rand::thread_rng();
    rng.gen_range(0..1000)
}
