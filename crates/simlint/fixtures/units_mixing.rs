//! Known-bad: adds a float-seconds wait to a nanosecond queue delay.
//! Both live in one `f64`, so nothing fails — the total is just wrong by
//! nine orders of magnitude. Cross-dimension arithmetic needs an explicit
//! conversion call (`nanos_to_secs(...)`, `path_transfer_secs(...)`).

pub fn total_wait(wait_s: f64, queue_delay_ns: f64) -> f64 {
    wait_s + queue_delay_ns
}
