//! Negative fixture: the sanctioned counterpart for every v2 rule
//! family. This file must produce zero findings under the full rule set
//! — it is the executable definition of "how to do it right".

use std::collections::BTreeMap;

use hs_des::{SimSpan, SimTime};
use rayon::prelude::*;

/// units-mixing: an explicit conversion call bridges nanoseconds into
/// seconds — the `*_secs` name declares the result dimension.
pub fn total_wait(wait_s: f64, queue_delay_ns: u64) -> f64 {
    wait_s + nanos_to_secs(queue_delay_ns)
}

fn nanos_to_secs(delay_ns: u64) -> f64 {
    delay_ns as f64 / 1e9
}

/// units-mixing: bytes cross into time by multiplying into bits first,
/// inside a `*_secs` helper — never by dividing bytes by a bps rate.
pub fn transfer_secs(chunk_bytes: u64, link_bps: f64) -> f64 {
    chunk_bytes as f64 * 8.0 / link_bps
}

/// sim-time-arith: timestamps advance in integer nanoseconds; the float
/// only enters once, through a span constructor — no round-trip.
pub fn deadline(now: SimTime, dt_s: f64) -> SimTime {
    now + SimSpan::from_secs_f64(dt_s)
}

/// nondet-reduce: parallel map into an ordered `Vec`, then a sequential
/// reduction — same work, deterministic addition order.
pub fn mean(samples: &[f64]) -> f64 {
    let doubled: Vec<f64> = samples.par_iter().map(|s| s * 2.0).collect();
    doubled.iter().sum::<f64>() / doubled.len() as f64
}

/// unordered-iter: ordered containers iterate deterministically.
pub fn checksum(table: &BTreeMap<u64, u64>) -> u64 {
    table.values().sum()
}

/// unwrap: the invariant is documented at the panic site.
pub fn front(queue: &BTreeMap<u64, u64>) -> u64 {
    *queue
        .values()
        .next()
        .expect("caller guarantees a non-empty queue")
}
