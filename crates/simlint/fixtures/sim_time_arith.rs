//! Known-bad: rebuilds a simulation timestamp from another timestamp's
//! float seconds. `SimTime` is integer nanoseconds; the f64 round-trip
//! loses low bits on large clocks and breaks bit-identical replays.
//! Stay in integer math: `now + SimSpan::...` or a des-provided helper.

use hs_des::SimTime;

pub fn shifted(now: SimTime, dt_s: f64) -> SimTime {
    SimTime::from_secs_f64(now.as_secs_f64() + dt_s)
}
