//! Known-bad: exact equality on a derived latency value. Either the
//! comparison is a sentinel in disguise or it breaks under rounding.

pub fn same_latency(estimated_latency_s: f64, measured_latency_s: f64) -> bool {
    estimated_latency_s == measured_latency_s
}
