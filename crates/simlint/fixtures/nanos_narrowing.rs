//! Known-bad: nanosecond counts overflow a u32 in ~4.3 simulated
//! seconds; narrowing silently truncates long horizons.

pub fn truncate_deadline(deadline_nanos: u64) -> u32 {
    deadline_nanos as u32
}
