//! Known-bad: iterates a hash-ordered map where the visit order leaks
//! into event scheduling (retry events are pushed in iteration order).

use rustc_hash::FxHashMap;

pub struct RetryQueue {
    pending: FxHashMap<u64, u64>,
}

impl RetryQueue {
    pub fn schedule_all(&mut self, push: &mut dyn FnMut(u64, u64)) {
        for (&coll, &at) in self.pending.iter() {
            push(coll, at);
        }
    }
}
