//! Known-bad: reads the wall clock inside sim-domain logic. A search
//! budget like this makes plan output depend on machine speed.

pub fn search_budget_exceeded(started_evals: u64) -> bool {
    let started = std::time::Instant::now();
    started.elapsed().as_secs() > 1 && started_evals > 0
}
