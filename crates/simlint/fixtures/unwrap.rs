//! Known-bad: panics without documenting the invariant. Library code on
//! the hot path must fail gracefully or carry an expect() message.

use std::collections::BTreeMap;

pub fn slot_for(table: &BTreeMap<u32, u32>, job: u32) -> u32 {
    *table.get(&job).unwrap()
}
