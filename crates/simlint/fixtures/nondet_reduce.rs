//! Known-bad: parallel float reduction. Rayon splits the slice by thread
//! count, so the addition order — and therefore the rounded sum — varies
//! from run to run. Collect into an ordered `Vec` and reduce sequentially.

use rayon::prelude::*;

pub fn total_latency(samples: &[f64]) -> f64 {
    samples.par_iter().map(|s| s * 2.0).sum::<f64>()
}
