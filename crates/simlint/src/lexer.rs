//! A zero-dependency Rust lexer, just deep enough for domain linting.
//!
//! The v1 linter blanked string literals and comments line by line and
//! matched regex-ish substrings against what was left. That breaks down
//! exactly where determinism bugs hide: multi-line method chains, raw
//! strings containing code-like text, nested block comments, and numeric
//! suffixes. v2 lexes every file into a real token stream with per-token
//! line numbers, so rules can match token *sequences* (e.g. `par_iter` …
//! `sum :: < f64 >`) across line breaks and never inside literals.
//!
//! The lexer handles the constructs that matter for correctness of the
//! analysis — raw strings (`r#"…"#`, any hash depth), byte and raw-byte
//! strings, nested block comments, char literals vs. lifetimes, numeric
//! literals with type suffixes (`1_000u64`, `2.5e-3f32`, `0xFFu8`), raw
//! identifiers (`r#type`), and multi-char operators — and deliberately
//! nothing more. It is not a parser: rules do shallow, token-window
//! matching on the output.

use std::fmt;

/// Token classes the rules distinguish.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TokKind {
    /// Identifier or keyword (keywords are not separated; rules match text).
    Ident,
    /// Lifetime such as `'a` (text excludes the quote).
    Lifetime,
    /// Integer literal; `text` keeps the exact spelling including suffix.
    Int,
    /// Float literal; `text` keeps the exact spelling including suffix.
    Float,
    /// String literal of any flavour; `text` is the *interior* (cooked
    /// strings only — raw/byte interiors are dropped, text is empty).
    Str,
    /// Char or byte literal; interior dropped.
    Char,
    /// Operator or punctuation; `text` is the exact operator.
    Op,
}

/// One code token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Token {
    /// Which class of token this is.
    pub kind: TokKind,
    /// The token text (see [`TokKind`] for what is preserved).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
}

impl Token {
    /// True when this is an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when this is an operator with exactly this text.
    pub fn is_op(&self, s: &str) -> bool {
        self.kind == TokKind::Op && self.text == s
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{:?}({})", self.line, self.kind, self.text)
    }
}

/// A comment with the 1-based line it starts on. Block comments spanning
/// several lines produce one entry per physical line so `simlint::allow`
/// annotations resolve to the line they are written on.
#[derive(Clone, Debug)]
pub struct Comment {
    /// 1-based line this comment text sits on.
    pub line: usize,
    /// The comment text of that line (without delimiters).
    pub text: String,
}

/// The result of lexing one file.
#[derive(Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comment text per line, in source order.
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// True when `line` holds at least one code token.
    pub fn line_has_code(&self, line: usize) -> bool {
        // Tokens are in line order; binary search keeps this O(log n).
        self.tokens.binary_search_by(|t| t.line.cmp(&line)).is_ok()
    }
}

/// Multi-character operators, longest first so greedy matching is correct.
const OPS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Lex `source` into tokens and comments. Never fails: unterminated
/// constructs simply run to end of file (the linter must degrade
/// gracefully on code that does not compile yet).
pub fn lex(source: &str) -> Lexed {
    let chars: Vec<char> = source.chars().collect();
    let mut out = Lexed::default();
    let mut line = 1usize;
    let mut i = 0usize;

    macro_rules! bump_lines {
        ($c:expr) => {
            if $c == '\n' {
                line += 1;
            }
        };
    }

    while i < chars.len() {
        let c = chars[i];

        // Whitespace.
        if c.is_whitespace() {
            bump_lines!(c);
            i += 1;
            continue;
        }

        // Line comment (also doc comments).
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i;
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            out.comments.push(Comment {
                line,
                text: chars[start..i].iter().collect(),
            });
            continue;
        }

        // Block comment, possibly nested, possibly multi-line.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let mut depth = 1u32;
            i += 2;
            let mut text = String::new();
            let mut at_line = line;
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    text.push_str("/*");
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    if depth > 0 {
                        text.push_str("*/");
                    }
                    i += 2;
                } else {
                    if chars[i] == '\n' {
                        out.comments.push(Comment {
                            line: at_line,
                            text: std::mem::take(&mut text),
                        });
                        line += 1;
                        at_line = line;
                    } else {
                        text.push(chars[i]);
                    }
                    i += 1;
                }
            }
            out.comments.push(Comment {
                line: at_line,
                text,
            });
            continue;
        }

        // Raw strings / raw identifiers / byte strings: r" r#" r#ident b" br" br#".
        if c == 'r' || c == 'b' {
            let prev_is_ident = i > 0 && is_ident_char(chars[i - 1]);
            if !prev_is_ident {
                let mut j = i + 1;
                let mut raw = c == 'r';
                if c == 'b' && chars.get(j) == Some(&'r') {
                    raw = true;
                    j += 1;
                }
                if raw {
                    let mut hashes = 0usize;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        // Raw (byte) string: scan to `"` followed by `hashes` hashes.
                        let start_line = line;
                        j += 1;
                        loop {
                            match chars.get(j) {
                                None => break,
                                Some('"') => {
                                    let mut k = j + 1;
                                    let mut seen = 0usize;
                                    while seen < hashes && chars.get(k) == Some(&'#') {
                                        seen += 1;
                                        k += 1;
                                    }
                                    if seen == hashes {
                                        j = k;
                                        break;
                                    }
                                    j += 1;
                                }
                                Some(&ch) => {
                                    bump_lines!(ch);
                                    j += 1;
                                }
                            }
                        }
                        out.tokens.push(Token {
                            kind: TokKind::Str,
                            text: String::new(),
                            line: start_line,
                        });
                        i = j;
                        continue;
                    }
                    if c == 'r' && hashes == 1 && chars.get(j).copied().is_some_and(is_ident_start)
                    {
                        // Raw identifier r#type.
                        let start = j;
                        while j < chars.len() && is_ident_char(chars[j]) {
                            j += 1;
                        }
                        out.tokens.push(Token {
                            kind: TokKind::Ident,
                            text: chars[start..j].iter().collect(),
                            line,
                        });
                        i = j;
                        continue;
                    }
                }
                if c == 'b' && chars.get(i + 1) == Some(&'"') {
                    // Byte string: cooked scan with escapes.
                    let start_line = line;
                    let mut j = i + 2;
                    while j < chars.len() {
                        match chars[j] {
                            '\\' => j += 2,
                            '"' => {
                                j += 1;
                                break;
                            }
                            ch => {
                                bump_lines!(ch);
                                j += 1;
                            }
                        }
                    }
                    out.tokens.push(Token {
                        kind: TokKind::Str,
                        text: String::new(),
                        line: start_line,
                    });
                    i = j;
                    continue;
                }
                if c == 'b' && chars.get(i + 1) == Some(&'\'') {
                    // Byte literal b'x'.
                    let mut j = i + 2;
                    while j < chars.len() && chars[j] != '\'' {
                        if chars[j] == '\\' {
                            j += 1;
                        }
                        j += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokKind::Char,
                        text: String::new(),
                        line,
                    });
                    i = j + 1;
                    continue;
                }
            }
            // Fall through: plain identifier starting with r/b.
        }

        // Cooked string (may span lines).
        if c == '"' {
            let start_line = line;
            let mut text = String::new();
            let mut j = i + 1;
            while j < chars.len() {
                match chars[j] {
                    '\\' => {
                        if let Some(&esc) = chars.get(j + 1) {
                            text.push('\\');
                            text.push(esc);
                        }
                        j += 2;
                    }
                    '"' => {
                        j += 1;
                        break;
                    }
                    ch => {
                        bump_lines!(ch);
                        text.push(ch);
                        j += 1;
                    }
                }
            }
            out.tokens.push(Token {
                kind: TokKind::Str,
                text,
                line: start_line,
            });
            i = j;
            continue;
        }

        // Char literal vs. lifetime.
        if c == '\'' {
            if chars.get(i + 1) == Some(&'\\') {
                // Escaped char literal: skip to closing quote.
                let mut j = i + 2;
                while j < chars.len() && chars[j] != '\'' {
                    j += 1;
                }
                out.tokens.push(Token {
                    kind: TokKind::Char,
                    text: String::new(),
                    line,
                });
                i = j + 1;
                continue;
            }
            let one = chars.get(i + 1).copied();
            let closes = chars.get(i + 2) == Some(&'\'');
            if closes && one.is_some() {
                out.tokens.push(Token {
                    kind: TokKind::Char,
                    text: String::new(),
                    line,
                });
                i += 3;
                continue;
            }
            if one.is_some_and(is_ident_start) {
                // Lifetime: 'a, 'static, …
                let start = i + 1;
                let mut j = start;
                while j < chars.len() && is_ident_char(chars[j]) {
                    j += 1;
                }
                out.tokens.push(Token {
                    kind: TokKind::Lifetime,
                    text: chars[start..j].iter().collect(),
                    line,
                });
                i = j;
                continue;
            }
            // Lone quote (should not happen in valid code): treat as op.
            out.tokens.push(Token {
                kind: TokKind::Op,
                text: "'".into(),
                line,
            });
            i += 1;
            continue;
        }

        // Numeric literal.
        if c.is_ascii_digit() {
            let start = i;
            let mut j = i;
            let mut is_float = false;
            if c == '0' && matches!(chars.get(i + 1), Some('x') | Some('o') | Some('b')) {
                j += 2;
                while j < chars.len() && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
            } else {
                while j < chars.len() && (chars[j].is_ascii_digit() || chars[j] == '_') {
                    j += 1;
                }
                // Fractional part only when `.` is followed by a digit, so
                // ranges (`0..n`), method calls (`1.max(2)`) and tuple
                // indices stay intact.
                if chars.get(j) == Some(&'.')
                    && chars
                        .get(j + 1)
                        .copied()
                        .is_some_and(|d| d.is_ascii_digit())
                {
                    is_float = true;
                    j += 1;
                    while j < chars.len() && (chars[j].is_ascii_digit() || chars[j] == '_') {
                        j += 1;
                    }
                }
                // Exponent.
                if matches!(chars.get(j), Some('e') | Some('E')) {
                    let mut k = j + 1;
                    if matches!(chars.get(k), Some('+') | Some('-')) {
                        k += 1;
                    }
                    if chars.get(k).copied().is_some_and(|d| d.is_ascii_digit()) {
                        is_float = true;
                        j = k;
                        while j < chars.len() && (chars[j].is_ascii_digit() || chars[j] == '_') {
                            j += 1;
                        }
                    }
                }
                // Type suffix (u64, f32, usize, …).
                if chars.get(j).copied().is_some_and(is_ident_start) {
                    let suffix_start = j;
                    while j < chars.len() && is_ident_char(chars[j]) {
                        j += 1;
                    }
                    let suffix: String = chars[suffix_start..j].iter().collect();
                    if suffix.starts_with('f') {
                        is_float = true;
                    }
                }
            }
            out.tokens.push(Token {
                kind: if is_float {
                    TokKind::Float
                } else {
                    TokKind::Int
                },
                text: chars[start..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }

        // Identifier / keyword.
        if is_ident_start(c) {
            let start = i;
            let mut j = i;
            while j < chars.len() && is_ident_char(chars[j]) {
                j += 1;
            }
            out.tokens.push(Token {
                kind: TokKind::Ident,
                text: chars[start..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }

        // Operators, longest match first.
        let mut matched = false;
        for op in OPS {
            let oc: Vec<char> = op.chars().collect();
            if chars[i..].starts_with(&oc) {
                out.tokens.push(Token {
                    kind: TokKind::Op,
                    text: (*op).into(),
                    line,
                });
                i += oc.len();
                matched = true;
                break;
            }
        }
        if matched {
            continue;
        }
        out.tokens.push(Token {
            kind: TokKind::Op,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    out
}

/// Skip forward past a balanced `(`/`[`/`{` group. `open` is the index of
/// the opening token; returns the index *after* the matching close, or
/// `tokens.len()` when unbalanced.
pub fn skip_balanced(tokens: &[Token], open: usize) -> usize {
    let (o, c) = match tokens[open].text.as_str() {
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        "{" => ("{", "}"),
        _ => return open + 1,
    };
    let mut depth = 0i64;
    let mut i = open;
    while i < tokens.len() {
        if tokens[i].is_op(o) {
            depth += 1;
        } else if tokens[i].is_op(c) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    tokens.len()
}

/// Skip backward past a balanced group whose *closing* token is at
/// `close`; returns the index of the opening token, or 0 when unbalanced.
pub fn skip_balanced_back(tokens: &[Token], close: usize) -> usize {
    let (o, c) = match tokens[close].text.as_str() {
        ")" => ("(", ")"),
        "]" => ("[", "]"),
        "}" => ("{", "}"),
        _ => return close,
    };
    let mut depth = 0i64;
    let mut i = close as i64;
    while i >= 0 {
        let t = &tokens[i as usize];
        if t.is_op(c) {
            depth += 1;
        } else if t.is_op(o) {
            depth -= 1;
            if depth == 0 {
                return i as usize;
            }
        }
        i -= 1;
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.iter().map(|t| t.text.clone()).collect()
    }

    #[test]
    fn basic_tokens_and_lines() {
        let l = lex("let x = 1;\nlet y = x + 2;\n");
        assert_eq!(l.tokens[0].text, "let");
        assert_eq!(l.tokens[0].line, 1);
        let y = l.tokens.iter().find(|t| t.text == "y").expect("y token");
        assert_eq!(y.line, 2);
    }

    #[test]
    fn raw_strings_hide_code_like_text() {
        let l = lex("let s = r#\"Instant::now() .unwrap()\"#; done();");
        assert!(!l.tokens.iter().any(|t| t.text == "Instant"));
        assert!(l.tokens.iter().any(|t| t.text == "done"));
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still comment */ code();");
        assert!(l.tokens.iter().any(|t| t.text == "code"));
        assert!(!l.tokens.iter().any(|t| t.text == "outer"));
    }

    #[test]
    fn multiline_block_comment_lines_tracked() {
        let l = lex("/* a\n b */\nfn f() {}\n");
        let f = l.tokens.iter().find(|t| t.text == "fn").expect("fn token");
        assert_eq!(f.line, 3);
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[1].line, 2);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| t.kind == TokKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokKind::Char).count(),
            1
        );
    }

    #[test]
    fn escaped_char_literals() {
        let l = lex(r"let c = '\n'; let q = '\''; f();");
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokKind::Char).count(),
            2
        );
        assert!(l.tokens.iter().any(|t| t.text == "f"));
    }

    #[test]
    fn numeric_suffixes_and_ranges() {
        let t = texts("let a = 1_000u64; let b = 2.5e-3f32; for i in 0..n { a.max(1) }");
        assert!(t.contains(&"1_000u64".to_string()));
        assert!(t.contains(&"2.5e-3f32".to_string()));
        assert!(t.contains(&"..".to_string()));
        // `1` then `.` then `max` — not a float.
        assert!(t.contains(&"max".to_string()));
    }

    #[test]
    fn hex_and_shift_ops() {
        let t = texts("let m = 0xFFu8; let k = 64 << 20;");
        assert!(t.contains(&"0xFFu8".to_string()));
        assert!(t.contains(&"<<".to_string()));
    }

    #[test]
    fn turbofish_tokens() {
        let t = texts("v.iter().sum::<f64>()");
        let idx = t.iter().position(|s| s == "sum").expect("sum token");
        assert_eq!(t[idx + 1], "::");
        assert_eq!(t[idx + 2], "<");
        assert_eq!(t[idx + 3], "f64");
    }

    #[test]
    fn string_interiors_preserved_for_expect_check() {
        let l = lex("v.expect(\"queue invariant\")");
        let s = l
            .tokens
            .iter()
            .find(|t| t.kind == TokKind::Str)
            .expect("string token");
        assert_eq!(s.text, "queue invariant");
    }

    #[test]
    fn comments_captured_with_lines() {
        let l = lex("// simlint::allow(unwrap, fine)\nx.unwrap();\n");
        assert_eq!(l.comments.len(), 1);
        assert_eq!(l.comments[0].line, 1);
        assert!(l.comments[0].text.contains("simlint::allow"));
        assert!(!l.line_has_code(1));
        assert!(l.line_has_code(2));
    }

    #[test]
    fn raw_identifier() {
        let t = texts("let r#type = 1;");
        assert!(t.contains(&"type".to_string()));
    }

    #[test]
    fn balanced_skipping() {
        let l = lex("f(a, (b, c))[0] + g()");
        // token 0 = f, 1 = ( … find its close.
        let end = skip_balanced(&l.tokens, 1);
        assert!(l.tokens[end].is_op("["));
        let close = end + 2; // [ 0 ]
        assert!(l.tokens[close].is_op("]"));
        assert_eq!(skip_balanced_back(&l.tokens, close), end);
    }

    #[test]
    fn multiline_cooked_string() {
        let l = lex("let s = \"line1\nline2\";\nnext();");
        let next = l.tokens.iter().find(|t| t.text == "next").expect("next");
        assert_eq!(next.line, 3);
    }
}
