//! Minimal JSON support for the report and the waiver ledger.
//!
//! simlint is deliberately zero-dependency (it must build and run as a CI
//! gate even when the rest of the workspace — including the vendored
//! stand-in crates — is broken), so it carries its own ~150-line JSON
//! subset: objects, arrays, strings with the common escapes, integers,
//! and booleans. That is exactly what `simlint.waivers.json` and the
//! `--json` report need; floats and exotic escapes are out of scope.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value. Object keys are `BTreeMap`-ordered so emission is
/// deterministic — the report itself must pass the workspace's own
/// reproducibility bar.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer (the only numeric shape the ledger/report use).
    Int(i64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with deterministically ordered keys.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Integer payload, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// Array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Build an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }
}

fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&to_string_pretty(self, 0))
    }
}

/// Pretty-print with two-space indentation (stable across runs).
pub fn to_string_pretty(v: &Json, indent: usize) -> String {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Json::Null => "null".into(),
        Json::Bool(b) => b.to_string(),
        Json::Int(n) => n.to_string(),
        Json::Str(s) => {
            let mut out = String::with_capacity(s.len() + 2);
            out.push('"');
            escape(s, &mut out);
            out.push('"');
            out
        }
        Json::Arr(items) => {
            if items.is_empty() {
                return "[]".into();
            }
            let body: Vec<String> = items
                .iter()
                .map(|it| format!("{pad_in}{}", to_string_pretty(it, indent + 1)))
                .collect();
            format!("[\n{}\n{pad}]", body.join(",\n"))
        }
        Json::Obj(map) => {
            if map.is_empty() {
                return "{}".into();
            }
            let body: Vec<String> = map
                .iter()
                .map(|(k, val)| {
                    let mut key = String::new();
                    escape(k, &mut key);
                    format!("{pad_in}\"{key}\": {}", to_string_pretty(val, indent + 1))
                })
                .collect();
            format!("{{\n{}\n{pad}}}", body.join(",\n"))
        }
    }
}

/// Parse a JSON document. Returns a message describing the first error.
pub fn parse(text: &str) -> Result<Json, String> {
    let chars: Vec<char> = text.chars().collect();
    let mut pos = 0usize;
    let v = parse_value(&chars, &mut pos)?;
    skip_ws(&chars, &mut pos);
    if pos != chars.len() {
        return Err(format!("trailing content at offset {pos}"));
    }
    Ok(v)
}

fn skip_ws(chars: &[char], pos: &mut usize) {
    while *pos < chars.len() && chars[*pos].is_whitespace() {
        *pos += 1;
    }
}

fn parse_value(chars: &[char], pos: &mut usize) -> Result<Json, String> {
    skip_ws(chars, pos);
    match chars.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some('{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(chars, pos);
            if chars.get(*pos) == Some(&'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(chars, pos);
                let key = match parse_value(chars, pos)? {
                    Json::Str(s) => s,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                skip_ws(chars, pos);
                if chars.get(*pos) != Some(&':') {
                    return Err(format!("expected ':' at offset {pos}"));
                }
                *pos += 1;
                let val = parse_value(chars, pos)?;
                map.insert(key, val);
                skip_ws(chars, pos);
                match chars.get(*pos) {
                    Some(',') => *pos += 1,
                    Some('}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    other => return Err(format!("expected ',' or '}}', got {other:?}")),
                }
            }
        }
        Some('[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(chars, pos);
            if chars.get(*pos) == Some(&']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(chars, pos)?);
                skip_ws(chars, pos);
                match chars.get(*pos) {
                    Some(',') => *pos += 1,
                    Some(']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    other => return Err(format!("expected ',' or ']', got {other:?}")),
                }
            }
        }
        Some('"') => {
            *pos += 1;
            let mut s = String::new();
            while *pos < chars.len() {
                match chars[*pos] {
                    '"' => {
                        *pos += 1;
                        return Ok(Json::Str(s));
                    }
                    '\\' => {
                        *pos += 1;
                        match chars.get(*pos) {
                            Some('"') => s.push('"'),
                            Some('\\') => s.push('\\'),
                            Some('/') => s.push('/'),
                            Some('n') => s.push('\n'),
                            Some('t') => s.push('\t'),
                            Some('r') => s.push('\r'),
                            Some('u') => {
                                let hex: String = chars.iter().skip(*pos + 1).take(4).collect();
                                let cp = u32::from_str_radix(&hex, 16)
                                    .map_err(|e| format!("bad \\u escape: {e}"))?;
                                s.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                                *pos += 4;
                            }
                            other => return Err(format!("bad escape {other:?}")),
                        }
                        *pos += 1;
                    }
                    c => {
                        s.push(c);
                        *pos += 1;
                    }
                }
            }
            Err("unterminated string".into())
        }
        Some(c) if c.is_ascii_digit() || *c == '-' => {
            let start = *pos;
            if chars[*pos] == '-' {
                *pos += 1;
            }
            while *pos < chars.len() && chars[*pos].is_ascii_digit() {
                *pos += 1;
            }
            let text: String = chars[start..*pos].iter().collect();
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|e| format!("bad integer `{text}`: {e}"))
        }
        Some('t') if chars[*pos..].starts_with(&['t', 'r', 'u', 'e']) => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some('f') if chars[*pos..].starts_with(&['f', 'a', 'l', 's', 'e']) => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some('n') if chars[*pos..].starts_with(&['n', 'u', 'l', 'l']) => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(c) => Err(format!("unexpected character `{c}` at offset {pos}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_nested() {
        let v = Json::obj(vec![
            ("budget", Json::Int(3)),
            (
                "waivers",
                Json::Arr(vec![Json::obj(vec![
                    ("file", Json::Str("a/b.rs".into())),
                    ("rule", Json::Str("unwrap".into())),
                    ("ok", Json::Bool(true)),
                ])]),
            ),
            ("note", Json::Str("line1\nline2 \"quoted\"".into())),
        ]);
        let text = to_string_pretty(&v, 0);
        let back = parse(&text).expect("round trip parses");
        assert_eq!(v, back);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{\"a\": 1} extra").is_err());
    }

    #[test]
    fn negative_and_empty() {
        assert_eq!(parse("-42").expect("int"), Json::Int(-42));
        assert_eq!(parse("[]").expect("arr"), Json::Arr(vec![]));
        assert_eq!(parse("{}").expect("obj"), Json::Obj(BTreeMap::new()));
    }
}
