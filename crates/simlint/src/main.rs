//! `simlint` CLI — the CI gate.
//!
//! Modes:
//!
//! * `simlint` — lint the sim-domain crates of the enclosing workspace
//!   (found by walking up from the current directory to the first
//!   `Cargo.toml` containing `[workspace]`). Exit 0 when clean, 1 when any
//!   finding is reported.
//! * `simlint --file <path>…` — lint specific files as sim-domain code
//!   (used to demonstrate that each known-bad fixture fails).
//! * `simlint --check-fixtures` — lint every file in this crate's
//!   `fixtures/` directory and verify each fires its named rule exactly
//!   once; exit 0 only if all behave.
//! * `simlint --list-rules` — print the rule table.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use simlint::{lint_file, lint_workspace, Rule, SIM_DOMAIN_CRATES};

fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn lint_paths(paths: &[String]) -> ExitCode {
    let mut total = 0usize;
    for p in paths {
        match fs::read_to_string(p) {
            Ok(source) => {
                for f in lint_file(p, &source) {
                    println!("{f}");
                    total += 1;
                }
            }
            Err(e) => {
                eprintln!("simlint: cannot read {p}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if total == 0 {
        println!("simlint: clean ({} file(s))", paths.len());
        ExitCode::SUCCESS
    } else {
        println!("simlint: {total} finding(s)");
        ExitCode::FAILURE
    }
}

fn check_fixtures() -> ExitCode {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let mut entries: Vec<PathBuf> = match fs::read_dir(&dir) {
        Ok(rd) => rd.filter_map(|e| e.ok().map(|e| e.path())).collect(),
        Err(e) => {
            eprintln!("simlint: cannot read {}: {e}", dir.display());
            return ExitCode::from(2);
        }
    };
    entries.sort();
    let mut bad = 0usize;
    for path in entries
        .iter()
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
    {
        let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("");
        let expect = Rule::from_name(&stem.replace('_', "-"));
        let Some(expect) = expect else {
            eprintln!("simlint: fixture {stem}.rs does not name a rule");
            bad += 1;
            continue;
        };
        let source = match fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("simlint: cannot read {}: {e}", path.display());
                bad += 1;
                continue;
            }
        };
        let findings = lint_file(&path.display().to_string(), &source);
        if findings.len() == 1 && findings[0].rule == expect {
            println!("fixture {stem}.rs: fires [{expect}] exactly once, as expected");
        } else {
            eprintln!(
                "fixture {stem}.rs: expected exactly one [{expect}] finding, got: {findings:?}"
            );
            bad += 1;
        }
    }
    if bad == 0 {
        println!("simlint: all fixtures behave");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn list_rules() {
    println!(
        "simlint rules (sim-domain crates: {}):",
        SIM_DOMAIN_CRATES.join(", ")
    );
    for r in Rule::ALL {
        println!("  {:<16} {}", r.name(), r.rationale());
    }
    println!("waiver syntax: // simlint::allow(<rule>, <reason>)   (reason mandatory)");
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--list-rules") => {
            list_rules();
            ExitCode::SUCCESS
        }
        Some("--check-fixtures") => check_fixtures(),
        Some("--file") => {
            if args.len() < 2 {
                eprintln!("simlint: --file requires at least one path");
                ExitCode::from(2)
            } else {
                lint_paths(&args[1..])
            }
        }
        Some(other) => {
            eprintln!(
                "simlint: unknown argument `{other}` \
                 (try --file, --check-fixtures, --list-rules)"
            );
            ExitCode::from(2)
        }
        None => {
            let Some(root) = find_workspace_root() else {
                eprintln!("simlint: no workspace root found above the current directory");
                return ExitCode::from(2);
            };
            match lint_workspace(&root) {
                Ok(findings) if findings.is_empty() => {
                    println!("simlint: clean (crates: {})", SIM_DOMAIN_CRATES.join(", "));
                    ExitCode::SUCCESS
                }
                Ok(findings) => {
                    for f in &findings {
                        println!("{f}");
                    }
                    println!("simlint: {} finding(s)", findings.len());
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("simlint: {e}");
                    ExitCode::from(2)
                }
            }
        }
    }
}
