//! `simlint` CLI — the CI gate.
//!
//! Modes:
//!
//! * `simlint` — lint every profiled crate of the enclosing workspace
//!   (found by walking up from the current directory to the first
//!   `Cargo.toml` containing `[workspace]`) and cross-check the committed
//!   waiver ledger `simlint.waivers.json`.
//! * `simlint --json <path>` — same, additionally writing the
//!   machine-readable report (`-` writes to stdout).
//! * `simlint --file <path>…` — lint specific files under the full rule
//!   set (triage aid; no ledger check).
//! * `simlint --check-fixtures` — lint every file in this crate's
//!   `fixtures/` directory: each `<rule>.rs` must fire its named rule
//!   exactly once under ALL rules, and each `clean_*.rs` negative
//!   fixture must produce no findings.
//! * `simlint --list-rules` — print the rule table and profiles.
//!
//! Exit codes (stable; CI scripts against them):
//!
//! * `0` — clean: no findings, no ledger violations.
//! * `1` — findings and/or ledger violations were reported.
//! * `2` — usage or I/O error (bad flag, unreadable file, missing
//!   workspace root or waiver ledger).

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use simlint::{json, lint_file, lint_workspace, Rule, WorkspaceReport, PROFILES};

fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn lint_paths(paths: &[String]) -> ExitCode {
    let mut total = 0usize;
    for p in paths {
        match fs::read_to_string(p) {
            Ok(source) => {
                for f in lint_file(p, &source, Rule::ALL).findings {
                    println!("{f}");
                    total += 1;
                }
            }
            Err(e) => {
                eprintln!("simlint: cannot read {p}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if total == 0 {
        println!("simlint: clean ({} file(s))", paths.len());
        ExitCode::SUCCESS
    } else {
        println!("simlint: {total} finding(s)");
        ExitCode::FAILURE
    }
}

fn check_fixtures() -> ExitCode {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let mut entries: Vec<PathBuf> = match fs::read_dir(&dir) {
        Ok(rd) => rd.filter_map(|e| e.ok().map(|e| e.path())).collect(),
        Err(e) => {
            eprintln!("simlint: cannot read {}: {e}", dir.display());
            return ExitCode::from(2);
        }
    };
    entries.sort();
    let mut bad = 0usize;
    let mut covered: Vec<Rule> = Vec::new();
    for path in entries
        .iter()
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
    {
        let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("");
        let source = match fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("simlint: cannot read {}: {e}", path.display());
                bad += 1;
                continue;
            }
        };
        let findings = lint_file(&path.display().to_string(), &source, Rule::ALL).findings;
        if stem.starts_with("clean_") {
            if findings.is_empty() {
                println!("fixture {stem}.rs: clean under all rules, as expected");
            } else {
                eprintln!("fixture {stem}.rs: negative fixture produced findings: {findings:?}");
                bad += 1;
            }
            continue;
        }
        let expect = Rule::from_name(&stem.replace('_', "-"));
        let Some(expect) = expect else {
            eprintln!("simlint: fixture {stem}.rs does not name a rule");
            bad += 1;
            continue;
        };
        if findings.len() == 1 && findings[0].rule == expect {
            println!("fixture {stem}.rs: fires [{expect}] exactly once, as expected");
            covered.push(expect);
        } else {
            eprintln!(
                "fixture {stem}.rs: expected exactly one [{expect}] finding, got: {findings:?}"
            );
            bad += 1;
        }
    }
    for rule in Rule::ALL {
        if !covered.contains(rule) {
            eprintln!("simlint: no fixture covers rule [{rule}]");
            bad += 1;
        }
    }
    if bad == 0 {
        println!("simlint: all fixtures behave, every rule covered");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn list_rules() {
    println!("simlint rules:");
    for r in Rule::ALL {
        println!("  {:<16} {}", r.name(), r.rationale());
    }
    println!("\nper-crate profiles:");
    for p in PROFILES {
        let names: Vec<&str> = p.rules.iter().map(|r| r.name()).collect();
        println!("  {:<12} {}", p.krate, names.join(", "));
    }
    println!(
        "\nwaiver syntax: // simlint::allow(<rule>, <reason>)   (reason mandatory;\n\
         every waiver must also appear in simlint.waivers.json — see DESIGN.md §14)"
    );
}

fn run_workspace(json_out: Option<&str>) -> ExitCode {
    let Some(root) = find_workspace_root() else {
        eprintln!("simlint: no workspace root found above the current directory");
        return ExitCode::from(2);
    };
    let report = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("simlint: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = json_out {
        let text = json::to_string_pretty(&report.to_json(), 0) + "\n";
        if path == "-" {
            print!("{text}");
        } else if let Err(e) = fs::write(path, &text) {
            eprintln!("simlint: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    }
    print_report(&report);
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn print_report(report: &WorkspaceReport) {
    for f in &report.findings {
        println!("{f}");
    }
    for v in &report.ledger_violations {
        println!("ledger: {v}");
    }
    let used = report.waivers.iter().filter(|w| w.used).count();
    if report.is_clean() {
        println!(
            "simlint: clean — {} files across {} crates, {} waiver(s) within the ledger budget",
            report.files_scanned,
            PROFILES.len(),
            used
        );
    } else {
        println!(
            "simlint: {} finding(s), {} ledger violation(s)",
            report.findings.len(),
            report.ledger_violations.len()
        );
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--list-rules") => {
            list_rules();
            ExitCode::SUCCESS
        }
        Some("--check-fixtures") => check_fixtures(),
        Some("--file") => {
            if args.len() < 2 {
                eprintln!("simlint: --file requires at least one path");
                ExitCode::from(2)
            } else {
                lint_paths(&args[1..])
            }
        }
        Some("--json") => match args.get(1) {
            Some(path) if args.len() == 2 => run_workspace(Some(path)),
            _ => {
                eprintln!("simlint: --json requires exactly one output path (or `-`)");
                ExitCode::from(2)
            }
        },
        Some(other) => {
            eprintln!(
                "simlint: unknown argument `{other}` \
                 (try --json, --file, --check-fixtures, --list-rules)"
            );
            ExitCode::from(2)
        }
        None => run_workspace(None),
    }
}
