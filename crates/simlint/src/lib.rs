//! `hs-simlint`: source-level static analysis for the simulation domain.
//!
//! The planner/scheduler comparisons in this workspace are only meaningful
//! if a given `(seed, workload, topology)` produces a bit-identical
//! `SimReport`. Stock clippy cannot express the rules that protect that
//! property, so this crate walks the sim-domain crates (`des`, `simnet`,
//! `cluster`, `switch`, `collective`, `heroserve`) and enforces them at
//! the source level:
//!
//! | rule              | what it rejects                                              |
//! |-------------------|--------------------------------------------------------------|
//! | `wall-clock`      | `Instant::now` / `SystemTime` — real time in the sim domain  |
//! | `os-rng`          | `thread_rng` / `from_entropy` / `OsRng` / `rand::random`     |
//! | `unordered-iter`  | iterating a `HashMap`/`FxHashMap`/`HashSet`/`FxHashSet`      |
//! | `float-eq`        | `==` / `!=` on latency/cost-style floats or float literals   |
//! | `nanos-narrowing` | `as` casts of nanosecond quantities to narrower types        |
//! | `unwrap`          | `.unwrap()` / `.expect("")` in non-test library code         |
//!
//! A site that is genuinely safe can carry an explicit waiver:
//!
//! ```text
//! // simlint::allow(unordered-iter, keys copied out and sorted before use)
//! ```
//!
//! on the offending line or on the comment line directly above it. The
//! reason is mandatory — `simlint::allow(rule)` without a reason does not
//! suppress the finding.
//!
//! The analysis is line-oriented and deliberately heuristic: string and
//! char literals and comments are blanked (length-preserving) before
//! matching, `#[cfg(test)]` regions are skipped by brace counting, and
//! hash-container variables are tracked per file from their declaration
//! sites. That is enough to be exact on this codebase while staying
//! dependency-free; it is not a general Rust parser.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Crates whose `src/` trees are subject to simulation-domain rules.
///
/// `bench` is excluded on purpose (wall-clock measurement is its job), as
/// are `obs`, `topology`, `model`, `workload`, and `baselines`, which hold
/// no event-ordering or clock-domain logic.
pub const SIM_DOMAIN_CRATES: &[&str] = &[
    "des",
    "simnet",
    "cluster",
    "switch",
    "collective",
    "heroserve",
];

/// The rule families simlint enforces.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Rule {
    /// Wall-clock reads (`Instant::now`, `SystemTime`) in the sim domain.
    WallClock,
    /// OS-seeded or thread-local RNG (`thread_rng`, `from_entropy`, …).
    OsRng,
    /// Iteration over hash-ordered containers in order-sensitive code.
    UnorderedIter,
    /// Exact float comparison on latency/cost-style quantities.
    FloatEq,
    /// `as` narrowing casts applied to nanosecond quantities.
    NanosNarrowing,
    /// `.unwrap()` / message-less `.expect` in non-test library code.
    Unwrap,
}

impl Rule {
    /// Every rule, in reporting order.
    pub const ALL: &'static [Rule] = &[
        Rule::WallClock,
        Rule::OsRng,
        Rule::UnorderedIter,
        Rule::FloatEq,
        Rule::NanosNarrowing,
        Rule::Unwrap,
    ];

    /// The kebab-case name used in reports and `simlint::allow(...)`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::WallClock => "wall-clock",
            Rule::OsRng => "os-rng",
            Rule::UnorderedIter => "unordered-iter",
            Rule::FloatEq => "float-eq",
            Rule::NanosNarrowing => "nanos-narrowing",
            Rule::Unwrap => "unwrap",
        }
    }

    /// Parse a rule name as written in an allow annotation.
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.name() == name)
    }

    /// One-line rationale, shown by `simlint --list-rules`.
    pub fn rationale(self) -> &'static str {
        match self {
            Rule::WallClock => {
                "real time must never reach sim logic; budgets and timestamps \
                 come from SimTime or deterministic counters"
            }
            Rule::OsRng => "all randomness must flow from the run seed via SeedSplitter",
            Rule::UnorderedIter => {
                "hash-map iteration order leaks into event scheduling and plan \
                 output; use BTreeMap or sort before iterating"
            }
            Rule::FloatEq => {
                "exact equality on derived latency/cost floats is either a \
                 sentinel in disguise or a rounding bug"
            }
            Rule::NanosNarrowing => "nanosecond counts overflow 32-bit types within seconds",
            Rule::Unwrap => {
                "hot-path library code must fail gracefully or document the \
                 invariant in an expect() message"
            }
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One rule violation at a specific source line.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Path as reported (workspace-relative when walking a workspace).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired.
    pub rule: Rule,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A parsed `simlint::allow(rule, reason)` annotation.
#[derive(Clone, Debug)]
struct Allow {
    rule: Rule,
    has_reason: bool,
}

/// Per-line view of a source file after preprocessing.
struct SourceLine {
    /// Code with string/char-literal interiors and comments blanked,
    /// length-preserving so byte offsets line up with `raw`.
    code: String,
    /// The original text (used to read expect() messages).
    raw: String,
    /// Inside a `#[cfg(test)]` region.
    in_test: bool,
    /// Allow annotations written on this line.
    allows: Vec<Allow>,
    /// True when the line is comment/whitespace only (its annotations then
    /// apply to the next code line).
    comment_only: bool,
}

/// Length-preserving blanking of comments and literal interiors.
///
/// Keeps quote characters so `.expect("` remains matchable, blanks
/// everything between them. `in_block` carries nested block-comment depth
/// across lines.
fn sanitize(line: &str, in_block: &mut u32) -> String {
    let chars: Vec<char> = line.chars().collect();
    let mut out: Vec<char> = Vec::with_capacity(chars.len());
    let mut i = 0usize;
    #[derive(PartialEq)]
    enum Mode {
        Code,
        Str { raw_hashes: Option<u32> },
    }
    let mut mode = Mode::Code;
    while i < chars.len() {
        let c = chars[i];
        if *in_block > 0 {
            if c == '*' && chars.get(i + 1) == Some(&'/') {
                *in_block -= 1;
                out.push(' ');
                out.push(' ');
                i += 2;
            } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                *in_block += 1;
                out.push(' ');
                out.push(' ');
                i += 2;
            } else {
                out.push(' ');
                i += 1;
            }
            continue;
        }
        match mode {
            Mode::Code => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    // Line comment: blank the rest of the line.
                    while i < chars.len() {
                        out.push(' ');
                        i += 1;
                    }
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    *in_block += 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if c == '"' {
                    out.push('"');
                    mode = Mode::Str { raw_hashes: None };
                    i += 1;
                } else if c == 'r'
                    && (chars.get(i + 1) == Some(&'"') || chars.get(i + 1) == Some(&'#'))
                    && (i == 0 || !is_ident_char(chars[i - 1]))
                {
                    // Raw string: r"..." or r#"..."#.
                    let mut hashes = 0u32;
                    let mut j = i + 1;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        out.extend(std::iter::repeat_n(' ', j - i));
                        out.push('"');
                        mode = Mode::Str {
                            raw_hashes: Some(hashes),
                        };
                        i = j + 1;
                    } else {
                        out.push(c);
                        i += 1;
                    }
                } else if c == '\'' {
                    // Char literal vs. lifetime: a literal closes with '.
                    let close = if chars.get(i + 1) == Some(&'\\') {
                        // Escaped char: find the next unescaped quote.
                        let mut j = i + 2;
                        while j < chars.len() && chars[j] != '\'' {
                            j += 1;
                        }
                        (j < chars.len()).then_some(j)
                    } else if i + 2 < chars.len() && chars[i + 2] == '\'' {
                        Some(i + 2)
                    } else {
                        None
                    };
                    match close {
                        Some(j) => {
                            out.push('\'');
                            out.extend(std::iter::repeat_n(' ', j - i - 1));
                            out.push('\'');
                            i = j + 1;
                        }
                        None => {
                            // Lifetime: keep verbatim.
                            out.push(c);
                            i += 1;
                        }
                    }
                } else {
                    out.push(c);
                    i += 1;
                }
            }
            Mode::Str { raw_hashes } => {
                match raw_hashes {
                    None => {
                        if c == '\\' {
                            out.push(' ');
                            out.push(' ');
                            i += 2;
                        } else if c == '"' {
                            out.push('"');
                            mode = Mode::Code;
                            i += 1;
                        } else {
                            out.push(' ');
                            i += 1;
                        }
                    }
                    Some(h) => {
                        // Close on "### with exactly h hashes.
                        if c == '"' {
                            let mut j = i + 1;
                            let mut seen = 0u32;
                            while seen < h && chars.get(j) == Some(&'#') {
                                seen += 1;
                                j += 1;
                            }
                            if seen == h {
                                out.push('"');
                                out.extend(std::iter::repeat_n(' ', j - i - 1));
                                mode = Mode::Code;
                                i = j;
                                continue;
                            }
                        }
                        out.push(' ');
                        i += 1;
                    }
                }
            }
        }
    }
    out.into_iter().collect()
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Parse every `simlint::allow(rule, reason)` on a raw line.
fn parse_allows(raw: &str) -> Vec<Allow> {
    let mut allows = Vec::new();
    let mut rest = raw;
    while let Some(pos) = rest.find("simlint::allow(") {
        rest = &rest[pos + "simlint::allow(".len()..];
        let Some(close) = rest.find(')') else { break };
        let inner = &rest[..close];
        rest = &rest[close + 1..];
        let (rule_name, reason) = match inner.find(',') {
            Some(comma) => (inner[..comma].trim(), inner[comma + 1..].trim()),
            None => (inner.trim(), ""),
        };
        if let Some(rule) = Rule::from_name(rule_name) {
            allows.push(Allow {
                rule,
                has_reason: !reason.is_empty(),
            });
        }
    }
    allows
}

/// Preprocess a file into sanitized lines with test-region and annotation
/// metadata.
fn preprocess(source: &str) -> Vec<SourceLine> {
    let mut lines = Vec::new();
    let mut in_block = 0u32;
    let mut in_test = false;
    let mut test_depth: i64 = 0;
    let mut test_opened = false;
    let mut pending_cfg_test = false;
    for raw in source.lines() {
        let raw_in_block = in_block > 0;
        let code = sanitize(raw, &mut in_block);
        let trimmed = code.trim();
        let comment_only = trimmed.is_empty();
        let line_is_test = if in_test {
            true
        } else {
            if trimmed.contains("#[cfg(test)]") || trimmed.contains("#[cfg(all(test") {
                pending_cfg_test = true;
                // `#[cfg(test)] mod t { … }` on one line: enter immediately.
                let after_attr = trimmed.rsplit(']').next().unwrap_or("");
                if !after_attr.trim().is_empty() {
                    in_test = true;
                    pending_cfg_test = false;
                }
                in_test
            } else if pending_cfg_test && !comment_only {
                if trimmed.starts_with("#[") {
                    // Further attributes between cfg(test) and the item.
                    false
                } else {
                    in_test = true;
                    pending_cfg_test = false;
                    true
                }
            } else {
                false
            }
        };
        if in_test {
            for c in code.chars() {
                match c {
                    '{' => {
                        test_depth += 1;
                        test_opened = true;
                    }
                    '}' => test_depth -= 1,
                    _ => {}
                }
            }
            if test_opened && test_depth <= 0 {
                in_test = false;
                test_opened = false;
                test_depth = 0;
            }
        }
        lines.push(SourceLine {
            code,
            raw: raw.to_string(),
            in_test: line_is_test || raw_in_block,
            allows: parse_allows(raw),
            comment_only,
        });
    }
    lines
}

/// Hash-container variable/field names declared in a file's non-test code.
fn hash_container_names(lines: &[SourceLine]) -> Vec<String> {
    const TYPES: &[&str] = &["FxHashMap", "FxHashSet", "HashMap", "HashSet"];
    let mut names: Vec<String> = Vec::new();
    for sl in lines {
        if sl.in_test {
            continue;
        }
        let code = &sl.code;
        for ty in TYPES {
            let mut from = 0usize;
            while let Some(rel) = code[from..].find(ty) {
                let at = from + rel;
                from = at + ty.len();
                // Word boundary on both sides of the type name.
                let before_ok = code[..at]
                    .chars()
                    .next_back()
                    .map(|c| !is_ident_char(c))
                    .unwrap_or(true);
                let after_ok = code[at + ty.len()..]
                    .chars()
                    .next()
                    .map(|c| !is_ident_char(c))
                    .unwrap_or(true);
                if !before_ok || !after_ok {
                    continue;
                }
                // Declaration forms: `name: FxHashMap<…>` (field, param,
                // typed let) or `let [mut] name = FxHashMap::default()`.
                let head = code[..at].trim_end();
                let name = if let Some(h) = head.strip_suffix(':') {
                    last_ident(h)
                } else if let Some(h) = head.strip_suffix('=') {
                    last_ident(h.trim_end())
                } else {
                    None
                };
                if let Some(n) = name {
                    if !names.contains(&n) {
                        names.push(n);
                    }
                }
            }
        }
    }
    names
}

/// The trailing identifier of a code fragment, if any.
fn last_ident(s: &str) -> Option<String> {
    let end = s.trim_end();
    let tail: String = end
        .chars()
        .rev()
        .take_while(|&c| is_ident_char(c))
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    if tail.is_empty() || tail.chars().next().unwrap().is_ascii_digit() {
        None
    } else {
        Some(tail)
    }
}

/// Find word-boundary occurrences of `name` in `code`.
fn occurrences(code: &str, name: &str) -> Vec<usize> {
    let mut hits = Vec::new();
    let mut from = 0usize;
    while let Some(rel) = code[from..].find(name) {
        let at = from + rel;
        from = at + name.len();
        let before_ok = code[..at]
            .chars()
            .next_back()
            .map(|c| !is_ident_char(c))
            .unwrap_or(true);
        let after_ok = code[at + name.len()..]
            .chars()
            .next()
            .map(|c| !is_ident_char(c))
            .unwrap_or(true);
        if before_ok && after_ok {
            hits.push(at);
        }
    }
    hits
}

const ITER_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain(",
    ".retain(",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
];

const NARROW_TYPES: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "f32"];

/// Identifier suffixes that mark latency/cost-style float quantities.
const FLOAT_SUFFIXES: &[&str] = &[
    "_s", "_secs", "_ms", "_us", "_bps", "_gbps", "_rps", "_util", "_frac", "latency", "cost",
];

/// Lint a single preprocessed file.
fn lint_lines(file: &str, lines: &[SourceLine]) -> Vec<Finding> {
    let containers = hash_container_names(lines);
    let mut findings = Vec::new();
    let mut prev_code_idx: Option<usize> = None;
    for (idx, sl) in lines.iter().enumerate() {
        if sl.in_test || sl.comment_only {
            continue;
        }
        let code = sl.code.as_str();
        let mut raw_findings: Vec<(Rule, String)> = Vec::new();

        // wall-clock ------------------------------------------------------
        if code.contains("Instant::now") {
            raw_findings.push((
                Rule::WallClock,
                "wall-clock read `Instant::now` in sim-domain code".into(),
            ));
        }
        if code.contains("SystemTime") {
            raw_findings.push((
                Rule::WallClock,
                "wall-clock type `SystemTime` in sim-domain code".into(),
            ));
        }

        // os-rng ----------------------------------------------------------
        for pat in ["thread_rng", "from_entropy", "OsRng", "rand::random"] {
            if code.contains(pat) {
                raw_findings.push((
                    Rule::OsRng,
                    format!("unseeded RNG source `{pat}` (randomness must come from the run seed)"),
                ));
            }
        }

        // unordered-iter --------------------------------------------------
        let loop_header_end = if code.contains("for ") && code.contains(" in ") {
            code.find('{').unwrap_or(code.len())
        } else {
            0
        };
        for name in &containers {
            let mut flagged = false;
            for at in occurrences(code, name) {
                let after = &code[at + name.len()..];
                if ITER_METHODS.iter().any(|m| after.starts_with(m)) {
                    flagged = true;
                }
                // Direct loop subject: `for … in [&[mut]] path.name {`.
                if !flagged && at < loop_header_end {
                    if let Some(in_pos) = code.find(" in ") {
                        if at > in_pos {
                            flagged = true;
                        }
                    }
                }
                if flagged {
                    raw_findings.push((
                        Rule::UnorderedIter,
                        format!(
                            "iteration over hash-ordered container `{name}` \
                             (use BTreeMap or sort first)"
                        ),
                    ));
                    break;
                }
            }
        }
        // Multi-line method chains: a line that *starts* with an iteration
        // method continues a chain whose receiver — the trailing
        // identifier of the previous code line — may be a hash container.
        let chain_head = code.trim_start();
        if chain_head.starts_with('.') && ITER_METHODS.iter().any(|m| chain_head.starts_with(m)) {
            if let Some(prev) = prev_code_idx {
                if let Some(recv) = last_ident(&lines[prev].code) {
                    if containers.contains(&recv) {
                        raw_findings.push((
                            Rule::UnorderedIter,
                            format!(
                                "iteration over hash-ordered container `{recv}` \
                                 (chained; use BTreeMap or sort first)"
                            ),
                        ));
                    }
                }
            }
        }

        // float-eq --------------------------------------------------------
        for (op_at, op) in find_eq_ops(code) {
            let lhs = operand_before(code, op_at);
            let rhs = operand_after(code, op_at + op.len());
            let suspicious = |tok: &Option<String>| {
                tok.as_deref().is_some_and(|t| {
                    is_float_literal(t)
                        || FLOAT_SUFFIXES
                            .iter()
                            .any(|s| t.rsplit('.').next().unwrap_or(t).ends_with(s))
                })
            };
            if suspicious(&lhs) || suspicious(&rhs) {
                raw_findings.push((
                    Rule::FloatEq,
                    format!(
                        "exact float comparison `{} {} {}` on a latency/cost-style quantity",
                        lhs.as_deref().unwrap_or("…"),
                        op,
                        rhs.as_deref().unwrap_or("…"),
                    ),
                ));
            }
        }

        // nanos-narrowing -------------------------------------------------
        if code.contains("nanos") || code.contains("Nanos") {
            for ty in NARROW_TYPES {
                let pat = format!(" as {ty}");
                let mut from = 0usize;
                while let Some(rel) = code[from..].find(&pat) {
                    let at = from + rel;
                    from = at + pat.len();
                    let after_ok = code[at + pat.len()..]
                        .chars()
                        .next()
                        .map(|c| !is_ident_char(c))
                        .unwrap_or(true);
                    if after_ok {
                        raw_findings.push((
                            Rule::NanosNarrowing,
                            format!("narrowing cast `as {ty}` on a nanosecond quantity"),
                        ));
                    }
                }
            }
        }

        // unwrap ----------------------------------------------------------
        {
            let mut from = 0usize;
            while let Some(rel) = code[from..].find(".unwrap()") {
                from += rel + ".unwrap()".len();
                raw_findings.push((
                    Rule::Unwrap,
                    "`.unwrap()` in library code (return a Result or use \
                     expect(\"…invariant…\"))"
                        .into(),
                ));
            }
            let mut from = 0usize;
            while let Some(rel) = code[from..].find(".expect(") {
                let at = from + rel;
                from = at + ".expect(".len();
                // Inspect the original text: a non-empty string literal (or
                // any non-literal expression) documents the invariant.
                let arg = sl.raw.get(at + ".expect(".len()..).unwrap_or("");
                let arg = arg.trim_start();
                if arg.starts_with("\"\"") || arg.is_empty() || arg.starts_with(')') {
                    raw_findings.push((
                        Rule::Unwrap,
                        "`.expect(\"\")` without an invariant message".into(),
                    ));
                }
            }
        }

        // Apply allow annotations: same line, or a comment-only line above.
        let mut active_allows: Vec<&Allow> = sl.allows.iter().collect();
        if idx > 0 && lines[idx - 1].comment_only {
            active_allows.extend(lines[idx - 1].allows.iter());
        }
        for (rule, message) in raw_findings {
            let waived = active_allows.iter().any(|a| a.rule == rule && a.has_reason);
            if !waived {
                findings.push(Finding {
                    file: file.to_string(),
                    line: idx + 1,
                    rule,
                    message,
                });
            }
        }
        prev_code_idx = Some(idx);
    }
    findings
}

/// Positions of `==` / `!=` operators (excluding `<=`, `>=`, `=>`, `===`).
fn find_eq_ops(code: &str) -> Vec<(usize, &'static str)> {
    let bytes = code.as_bytes();
    let mut ops = Vec::new();
    let mut i = 0usize;
    while i + 1 < bytes.len() {
        let two = &bytes[i..i + 2];
        if two == b"==" {
            let prev = i.checked_sub(1).map(|p| bytes[p] as char);
            let next = bytes.get(i + 2).map(|&b| b as char);
            let prev_bad = matches!(prev, Some('<') | Some('>') | Some('=') | Some('!'));
            let next_bad = matches!(next, Some('='));
            if !prev_bad && !next_bad {
                ops.push((i, "=="));
            }
            i += 2;
        } else if two == b"!=" {
            if bytes.get(i + 2) != Some(&b'=') {
                ops.push((i, "!="));
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    ops
}

/// The path-like token ending immediately before byte `at` (skipping space).
fn operand_before(code: &str, at: usize) -> Option<String> {
    let head = code[..at].trim_end();
    let tok: String = head
        .chars()
        .rev()
        .take_while(|&c| is_ident_char(c) || c == '.')
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    let tok = tok.trim_matches('.').to_string();
    (!tok.is_empty()).then_some(tok)
}

/// The path-like token starting immediately after byte `at`.
fn operand_after(code: &str, at: usize) -> Option<String> {
    let tail = code.get(at..)?.trim_start();
    let tok: String = tail
        .chars()
        .take_while(|&c| is_ident_char(c) || c == '.')
        .collect();
    let tok = tok.trim_matches('.').to_string();
    (!tok.is_empty()).then_some(tok)
}

/// `0.0`, `1.5e3`, `12.` — but not `0` or an identifier.
fn is_float_literal(tok: &str) -> bool {
    let mut chars = tok.chars();
    chars.next().is_some_and(|c| c.is_ascii_digit()) && tok.contains('.')
}

/// Lint one source file. `file` is the label used in findings.
pub fn lint_file(file: &str, source: &str) -> Vec<Finding> {
    lint_lines(file, &preprocess(source))
}

/// Recursively collect `.rs` files under `dir`, sorted for determinism.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint the `src/` tree of every sim-domain crate under `root`.
///
/// `tests/`, `benches/`, `examples/`, `vendor/`, and non-sim-domain crates
/// are out of scope by construction: only `crates/<sim-domain>/src` is
/// walked.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for krate in SIM_DOMAIN_CRATES {
        let src = root.join("crates").join(krate).join("src");
        if !src.is_dir() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("sim-domain crate source missing: {}", src.display()),
            ));
        }
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files)?;
        for path in files {
            let source = fs::read_to_string(&path)?;
            let label = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .display()
                .to_string();
            findings.extend(lint_file(&label, &source));
        }
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture(name: &str) -> String {
        let path = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("fixtures")
            .join(name);
        fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
    }

    /// Each known-bad fixture fires its rule exactly once and nothing else.
    #[test]
    fn fixtures_fire_exactly_once() {
        let cases = [
            ("wall_clock.rs", Rule::WallClock),
            ("os_rng.rs", Rule::OsRng),
            ("unordered_iter.rs", Rule::UnorderedIter),
            ("float_eq.rs", Rule::FloatEq),
            ("nanos_narrowing.rs", Rule::NanosNarrowing),
            ("unwrap.rs", Rule::Unwrap),
        ];
        for (name, rule) in cases {
            let findings = lint_file(name, &fixture(name));
            assert_eq!(
                findings.len(),
                1,
                "{name}: expected exactly one finding, got {findings:?}"
            );
            assert_eq!(findings[0].rule, rule, "{name}: wrong rule: {findings:?}");
        }
    }

    #[test]
    fn allow_with_reason_suppresses() {
        let src = "fn f() {\n    // simlint::allow(wall-clock, reporting only)\n    let t = std::time::Instant::now();\n}\n";
        assert!(lint_file("t.rs", src).is_empty());
        let same_line =
            "fn f() { let t = std::time::Instant::now(); } // simlint::allow(wall-clock, reporting only)\n";
        assert!(lint_file("t.rs", same_line).is_empty());
    }

    #[test]
    fn allow_without_reason_does_not_suppress() {
        let src = "fn f() {\n    // simlint::allow(wall-clock)\n    let t = std::time::Instant::now();\n}\n";
        let findings = lint_file("t.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, Rule::WallClock);
    }

    #[test]
    fn allow_for_other_rule_does_not_suppress() {
        let src = "fn f() {\n    // simlint::allow(os-rng, not the right rule)\n    let t = std::time::Instant::now();\n}\n";
        assert_eq!(lint_file("t.rs", src).len(), 1);
    }

    #[test]
    fn cfg_test_regions_are_skipped() {
        let src = "pub fn lib() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        let x = std::time::Instant::now();\n        let v: Option<u32> = None;\n        assert!(v.unwrap() > 0);\n    }\n}\n";
        assert!(lint_file("t.rs", src).is_empty());
    }

    #[test]
    fn code_after_test_module_is_linted_again() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n\npub fn late() { let t = std::time::Instant::now(); }\n";
        let findings = lint_file("t.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, Rule::WallClock);
        assert_eq!(findings[0].line, 6);
    }

    #[test]
    fn strings_and_comments_do_not_trigger() {
        let src = "fn f() -> &'static str {\n    // Instant::now() would be bad; so would x.unwrap().\n    \"Instant::now thread_rng .unwrap()\"\n}\n";
        assert!(lint_file("t.rs", src).is_empty());
    }

    #[test]
    fn expect_with_message_is_accepted() {
        let src = "fn f(v: Option<u32>) -> u32 {\n    v.expect(\"queue invariant: peeked entry exists\")\n}\n";
        assert!(lint_file("t.rs", src).is_empty());
        let empty = "fn f(v: Option<u32>) -> u32 {\n    v.expect(\"\")\n}\n";
        let findings = lint_file("t.rs", empty);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, Rule::Unwrap);
    }

    #[test]
    fn btreemap_iteration_is_fine() {
        let src = "use std::collections::BTreeMap;\nfn f(m: &BTreeMap<u32, u32>) -> u32 {\n    m.values().sum()\n}\n";
        assert!(lint_file("t.rs", src).is_empty());
    }

    #[test]
    fn hash_lookup_without_iteration_is_fine() {
        let src = "use rustc_hash::FxHashMap;\nstruct S { m: FxHashMap<u32, u32> }\nimpl S {\n    fn get(&self, k: u32) -> Option<u32> { self.m.get(&k).copied() }\n    fn put(&mut self, k: u32, v: u32) { self.m.insert(k, v); }\n}\n";
        assert!(lint_file("t.rs", src).is_empty());
    }

    #[test]
    fn for_loop_over_hash_map_is_flagged() {
        let src = "use rustc_hash::FxHashMap;\nfn f(m: FxHashMap<u32, u32>) {\n    for (k, v) in &m {\n        drop((k, v));\n    }\n}\n";
        let findings = lint_file("t.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, Rule::UnorderedIter);
        assert_eq!(findings[0].line, 3);
    }

    #[test]
    fn multiline_chain_over_hash_map_is_flagged() {
        let src = "use rustc_hash::FxHashMap;\nstruct S { switches: FxHashMap<u32, u32> }\nimpl S {\n    fn poll(&self) -> Vec<u32> {\n        self.switches\n            .values()\n            .copied()\n            .collect()\n    }\n}\n";
        let findings = lint_file("t.rs", src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, Rule::UnorderedIter);
        assert_eq!(findings[0].line, 6);
    }

    #[test]
    fn float_eq_against_literal_is_flagged() {
        let src = "fn f(rate_bps: f64) -> bool { rate_bps == 0.0 }\n";
        let findings = lint_file("t.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, Rule::FloatEq);
    }

    #[test]
    fn integer_eq_is_fine() {
        let src = "fn f(count: u64, phase: u8) -> bool { count == 3 && phase != 1 }\n";
        assert!(lint_file("t.rs", src).is_empty());
    }

    /// The workspace itself must lint clean — this is the same gate CI
    /// runs via `cargo run -p simlint`.
    #[test]
    fn workspace_is_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("simlint lives at <root>/crates/simlint");
        let findings = lint_workspace(root).expect("workspace walk succeeds");
        assert!(
            findings.is_empty(),
            "workspace has simlint findings:\n{}",
            findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
