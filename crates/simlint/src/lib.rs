//! `hs-simlint` v2: token-aware static analysis for the simulation domain.
//!
//! Every headline result in this workspace (fig_kv, fig_autoscale,
//! scale_1m) rests on bit-identical replays of a `(seed, workload,
//! topology)` triple. Stock clippy cannot express the rules that protect
//! that property, so this crate lexes every workspace crate into a real
//! token stream ([`lexer`]) and enforces per-crate rule profiles at the
//! source level:
//!
//! | rule              | what it rejects                                              |
//! |-------------------|--------------------------------------------------------------|
//! | `wall-clock`      | `Instant::now` / `SystemTime` — real time in the sim domain  |
//! | `os-rng`          | `thread_rng` / `from_entropy` / `OsRng` / `rand::random`     |
//! | `unordered-iter`  | iterating a `HashMap`/`FxHashMap`/`HashSet`/`FxHashSet`      |
//! | `float-eq`        | `==` / `!=` on latency/cost-style floats or float literals   |
//! | `nanos-narrowing` | `as` casts of nanosecond quantities to narrower types        |
//! | `unwrap`          | `.unwrap()` / `.expect("")` in non-test library code         |
//! | `units-mixing`    | cross-dimension arithmetic (`_bps` vs `_bytes` vs `_s` …)    |
//! | `sim-time-arith`  | sim timestamps round-tripped through raw f64 math            |
//! | `nondet-reduce`   | order-sensitive parallel float reductions over `par_iter`    |
//! | `lock-in-sim`     | `Mutex`/`RwLock`/atomics where shard-local state is the law  |
//!
//! The last four are new in v2 and need the token stream: `units-mixing`
//! infers a dimension for each operand of a binary expression from
//! identifier suffixes (`_bps`, `_bytes`, `_tokens`, `_s`, `_ns`, …),
//! declared `SimTime`/`SimSpan` types, and known conversion calls
//! (`as_secs_f64`, `path_transfer_secs`, …), and rejects cross-dimension
//! `+`/`-`/comparisons plus the classic bytes-divided-by-bits-per-second
//! slip. An explicit conversion call is the sanctioned escape hatch — its
//! name carries the result dimension, so converted operands compare clean.
//!
//! A site that is genuinely safe can carry an explicit waiver:
//!
//! ```text
//! // simlint::allow(unordered-iter, keys copied out and sorted before use)
//! ```
//!
//! on the offending line or the comment line directly above it. The reason
//! is mandatory, and v2 adds a second gate: every waiver must also appear
//! in the committed ledger `simlint.waivers.json`, whose pinned `budget`
//! may only shrink over time (the ratchet). Stale annotations and stale
//! ledger entries are themselves violations, so the waiver set cannot
//! silently grow or rot. See DESIGN.md §14.

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub mod json;
pub mod lexer;

use json::Json;
use lexer::{lex, skip_balanced, skip_balanced_back, Lexed, TokKind, Token};

/// The rule families simlint enforces.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Rule {
    /// Wall-clock reads (`Instant::now`, `SystemTime`) in the sim domain.
    WallClock,
    /// OS-seeded or thread-local RNG (`thread_rng`, `from_entropy`, …).
    OsRng,
    /// Iteration over hash-ordered containers in order-sensitive code.
    UnorderedIter,
    /// Exact float comparison on latency/cost-style quantities.
    FloatEq,
    /// `as` narrowing casts applied to nanosecond quantities.
    NanosNarrowing,
    /// `.unwrap()` / message-less `.expect` in non-test library code.
    Unwrap,
    /// Arithmetic/comparison across physical dimensions without an
    /// explicit conversion call (bits-per-second vs bytes vs tokens vs
    /// seconds vs nanoseconds vs `SimTime`).
    UnitsMixing,
    /// Simulation timestamps reconstructed from raw f64 seconds math
    /// outside `hs-des` (the integer-nanosecond clock's home crate).
    SimTimeArith,
    /// Order-sensitive parallel float reduction (`par_iter()` feeding
    /// `sum::<f64>()` / `fold` / `reduce` / hash-ordered `collect`).
    NondetReduce,
    /// Shared-state synchronization (`Mutex`/`RwLock`/atomics) in
    /// event-loop code where shard-local state is the sanctioned pattern.
    LockInSim,
}

impl Rule {
    /// Every rule, in reporting order.
    pub const ALL: &'static [Rule] = &[
        Rule::WallClock,
        Rule::OsRng,
        Rule::UnorderedIter,
        Rule::FloatEq,
        Rule::NanosNarrowing,
        Rule::Unwrap,
        Rule::UnitsMixing,
        Rule::SimTimeArith,
        Rule::NondetReduce,
        Rule::LockInSim,
    ];

    /// The kebab-case name used in reports and `simlint::allow(...)`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::WallClock => "wall-clock",
            Rule::OsRng => "os-rng",
            Rule::UnorderedIter => "unordered-iter",
            Rule::FloatEq => "float-eq",
            Rule::NanosNarrowing => "nanos-narrowing",
            Rule::Unwrap => "unwrap",
            Rule::UnitsMixing => "units-mixing",
            Rule::SimTimeArith => "sim-time-arith",
            Rule::NondetReduce => "nondet-reduce",
            Rule::LockInSim => "lock-in-sim",
        }
    }

    /// Parse a rule name as written in an allow annotation.
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.name() == name)
    }

    /// One-line rationale, shown by `simlint --list-rules`.
    pub fn rationale(self) -> &'static str {
        match self {
            Rule::WallClock => {
                "real time must never reach sim logic; budgets and timestamps \
                 come from SimTime or deterministic counters"
            }
            Rule::OsRng => "all randomness must flow from the run seed via SeedSplitter",
            Rule::UnorderedIter => {
                "hash-map iteration order leaks into event scheduling and plan \
                 output; use BTreeMap or sort before iterating"
            }
            Rule::FloatEq => {
                "exact equality on derived latency/cost floats is either a \
                 sentinel in disguise or a rounding bug"
            }
            Rule::NanosNarrowing => "nanosecond counts overflow 32-bit types within seconds",
            Rule::Unwrap => {
                "hot-path library code must fail gracefully or document the \
                 invariant in an expect() message"
            }
            Rule::UnitsMixing => {
                "bits/bytes/tokens/seconds/nanos live in one f64; mixing them \
                 silently corrupts bandwidth estimates — convert explicitly"
            }
            Rule::SimTimeArith => {
                "timestamps round-tripped through f64 seconds lose nanosecond \
                 bits; stay in integer SimTime/SimSpan outside hs-des"
            }
            Rule::NondetReduce => {
                "parallel float reduction order varies with thread count; \
                 collect to an ordered Vec and reduce sequentially"
            }
            Rule::LockInSim => {
                "locks and atomics in event-loop code hide cross-thread \
                 ordering; sim state must be shard-local and merged \
                 deterministically"
            }
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which rules apply to one workspace crate.
#[derive(Clone, Copy, Debug)]
pub struct CrateProfile {
    /// Directory name under `crates/`.
    pub krate: &'static str,
    /// Rules enforced for this crate's `src/` tree.
    pub rules: &'static [Rule],
}

/// Every rule (alias for profile tables).
const ALL10: &[Rule] = Rule::ALL;

/// Per-crate rule profiles — the whole workspace is covered, with
/// exemptions that are themselves documented policy:
///
/// * `des` owns the integer-nanosecond clock, so `sim-time-arith` (which
///   polices f64 round-trips *outside* the clock's home) does not apply.
/// * `workload` draws from seeded RNG streams and deals in arrival
///   seconds; it gets `os-rng`/`wall-clock` but not `unordered-iter`
///   (its containers are slices and BTreeMaps by construction).
/// * `obs` aggregates across real threads by design, so `lock-in-sim`
///   and `nondet-reduce` do not apply; it still must not read clocks or
///   unseeded RNG, and its unwraps must be reasoned.
/// * `bench` keeps its wall-clock exemption (measurement is its job).
pub const PROFILES: &[CrateProfile] = &[
    CrateProfile {
        krate: "des",
        rules: &[
            Rule::WallClock,
            Rule::OsRng,
            Rule::UnorderedIter,
            Rule::FloatEq,
            Rule::NanosNarrowing,
            Rule::Unwrap,
            Rule::UnitsMixing,
            Rule::NondetReduce,
            Rule::LockInSim,
        ],
    },
    CrateProfile {
        krate: "simnet",
        rules: ALL10,
    },
    CrateProfile {
        krate: "cluster",
        rules: ALL10,
    },
    CrateProfile {
        krate: "switch",
        rules: ALL10,
    },
    CrateProfile {
        krate: "collective",
        rules: ALL10,
    },
    CrateProfile {
        krate: "heroserve",
        rules: ALL10,
    },
    CrateProfile {
        krate: "workload",
        rules: &[
            Rule::WallClock,
            Rule::OsRng,
            Rule::FloatEq,
            Rule::Unwrap,
            Rule::UnitsMixing,
            Rule::SimTimeArith,
            Rule::NondetReduce,
        ],
    },
    CrateProfile {
        krate: "obs",
        rules: &[
            Rule::WallClock,
            Rule::OsRng,
            Rule::Unwrap,
            Rule::UnitsMixing,
        ],
    },
    CrateProfile {
        krate: "model",
        rules: &[
            Rule::WallClock,
            Rule::OsRng,
            Rule::FloatEq,
            Rule::NanosNarrowing,
            Rule::Unwrap,
            Rule::UnitsMixing,
        ],
    },
    CrateProfile {
        krate: "topology",
        rules: &[
            Rule::WallClock,
            Rule::OsRng,
            Rule::UnorderedIter,
            Rule::FloatEq,
            Rule::NanosNarrowing,
            Rule::Unwrap,
            Rule::UnitsMixing,
        ],
    },
    CrateProfile {
        krate: "baselines",
        rules: &[
            Rule::WallClock,
            Rule::OsRng,
            Rule::UnorderedIter,
            Rule::Unwrap,
            Rule::UnitsMixing,
            Rule::SimTimeArith,
        ],
    },
    CrateProfile {
        krate: "bench",
        rules: &[Rule::OsRng, Rule::UnitsMixing, Rule::NondetReduce],
    },
    // simlint's own source necessarily names `OsRng` as an identifier
    // (the `Rule::OsRng` variant), so the os-rng rule cannot apply to it;
    // the other determinism rules do.
    CrateProfile {
        krate: "simlint",
        rules: &[
            Rule::WallClock,
            Rule::Unwrap,
            Rule::NondetReduce,
            Rule::LockInSim,
        ],
    },
];

/// One rule violation at a specific source line.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Path as reported (workspace-relative when walking a workspace).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired.
    pub rule: Rule,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// One `simlint::allow(rule, reason)` annotation found in source.
#[derive(Clone, Debug)]
pub struct WaiverSite {
    /// Path as reported.
    pub file: String,
    /// 1-based line the waiver *applies to* (the code line).
    pub line: usize,
    /// The waived rule.
    pub rule: Rule,
    /// The stated reason (empty = invalid annotation; does not suppress).
    pub reason: String,
    /// Whether the waiver actually suppressed a finding.
    pub used: bool,
}

/// Result of linting one file.
#[derive(Default)]
pub struct FileAnalysis {
    /// Surviving findings (waived ones removed).
    pub findings: Vec<Finding>,
    /// Every waiver annotation encountered, with usage marked.
    pub waivers: Vec<WaiverSite>,
}

// ---------------------------------------------------------------------------
// Dimension inference
// ---------------------------------------------------------------------------

/// Physical dimension inferred for an operand.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Dim {
    /// Link rate in bits per second (`_bps`).
    BitsPerSec,
    /// Link rate in gigabits per second (`_gbps`) — scale bugs vs `_bps`
    /// are real, so this is a distinct dimension.
    Gbps,
    /// Byte counts (`_bytes`, `bytes`).
    Bytes,
    /// Token counts (`_tokens`, `tokens`).
    Tokens,
    /// Float seconds (`_s`, `_secs`).
    Secs,
    /// Float milliseconds (`_ms`).
    Millis,
    /// Float microseconds (`_us`).
    Micros,
    /// Integer nanoseconds (`_ns`, `nanos`).
    Nanos,
    /// The `SimTime`/`SimSpan` clock types (integer nanoseconds, typed).
    SimTime,
}

impl Dim {
    fn describe(self) -> &'static str {
        match self {
            Dim::BitsPerSec => "bits/s",
            Dim::Gbps => "Gbit/s",
            Dim::Bytes => "bytes",
            Dim::Tokens => "tokens",
            Dim::Secs => "seconds",
            Dim::Millis => "milliseconds",
            Dim::Micros => "microseconds",
            Dim::Nanos => "nanoseconds",
            Dim::SimTime => "SimTime/SimSpan",
        }
    }
}

/// Dimension carried by an identifier's *name* (suffix convention), used
/// for variables, fields, and conversion-function results alike. A
/// conversion call like `path_transfer_secs(...)` is the sanctioned way
/// to move between dimensions: the call's name declares its result.
fn dim_of_name(name: &str) -> Option<Dim> {
    // Known clock conversion methods first (names the suffix pass would
    // misread or miss).
    match name {
        "SimTime" | "SimSpan" => return Some(Dim::SimTime),
        "as_secs_f64" => return Some(Dim::Secs),
        "as_millis_f64" => return Some(Dim::Millis),
        "as_micros_f64" => return Some(Dim::Micros),
        "as_nanos" => return Some(Dim::Nanos),
        "saturating_since" => return Some(Dim::SimTime),
        _ => {}
    }
    if name.ends_with("_gbps") {
        Some(Dim::Gbps)
    } else if name.ends_with("_bps") {
        Some(Dim::BitsPerSec)
    } else if name.ends_with("_bytes") || name == "bytes" {
        Some(Dim::Bytes)
    } else if name.ends_with("_tokens") || name == "tokens" {
        Some(Dim::Tokens)
    } else if name.ends_with("_ns") || name.ends_with("_nanos") || name == "nanos" {
        Some(Dim::Nanos)
    } else if name.ends_with("_us") || name.ends_with("_micros") {
        Some(Dim::Micros)
    } else if name.ends_with("_ms") || name.ends_with("_millis") {
        Some(Dim::Millis)
    } else if name.ends_with("_s") || name.ends_with("_secs") || name.ends_with("_sec") {
        Some(Dim::Secs)
    } else {
        None
    }
}

/// `SimTime`/`SimSpan` constructors produce the typed clock value, not
/// the float dimension their name suggests.
const CLOCK_CONSTRUCTORS: &[&str] = &[
    "from_secs_f64",
    "from_secs",
    "from_millis",
    "from_micros",
    "from_nanos",
];

/// Primitive types an `as` cast can target (dimension flows through).
const PRIM_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

const NARROW_TYPES: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "f32"];

/// Identifier suffixes that mark latency/cost-style float quantities for
/// the `float-eq` rule.
const FLOAT_SUFFIXES: &[&str] = &[
    "_s", "_secs", "_ms", "_us", "_bps", "_gbps", "_rps", "_util", "_frac",
];

const HASH_TYPES: &[&str] = &["FxHashMap", "FxHashSet", "HashMap", "HashSet"];

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
    "into_keys",
    "into_values",
];

const PAR_SOURCES: &[&str] = &[
    "par_iter",
    "into_par_iter",
    "par_iter_mut",
    "par_bridge",
    "par_chunks",
    "par_windows",
    "par_drain",
];

const SYNC_PRIMITIVES: &[&str] = &[
    "Mutex",
    "RwLock",
    "Condvar",
    "AtomicBool",
    "AtomicU8",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
    "AtomicPtr",
];

// ---------------------------------------------------------------------------
// Token-stream context
// ---------------------------------------------------------------------------

/// Preprocessed per-file context shared by all rules.
struct FileCtx<'a> {
    tokens: &'a [Token],
    /// Token is inside a `#[cfg(test)]` item or `#[test]` fn.
    in_test: Vec<bool>,
    /// Token is inside a `use …;` declaration.
    in_use: Vec<bool>,
    /// Hash-container variable/field names declared in non-test code.
    containers: Vec<String>,
    /// Variables/fields declared with a `SimTime`/`SimSpan` type.
    clock_vars: Vec<String>,
}

fn ident_list(tokens: &[Token]) -> Vec<&str> {
    tokens
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.as_str())
        .collect()
}

/// Mark tokens covered by test-only items (`#[cfg(test)]` / `#[test]`,
/// including `#[cfg(all(test, …))]`, excluding `#[cfg(not(test))]`).
fn mark_tests(tokens: &[Token]) -> Vec<bool> {
    let mut flags = vec![false; tokens.len()];
    let mut i = 0usize;
    while i + 1 < tokens.len() {
        if tokens[i].is_op("#") && tokens[i + 1].is_op("[") {
            let end_attr = skip_balanced(tokens, i + 1);
            let inner = ident_list(&tokens[i + 2..end_attr.saturating_sub(1)]);
            let is_test = inner.as_slice() == ["test"]
                || (inner.contains(&"cfg") && inner.contains(&"test") && !inner.contains(&"not"));
            if is_test {
                // Skip any further attributes, then mark through the item.
                let mut j = end_attr;
                while j + 1 < tokens.len() && tokens[j].is_op("#") && tokens[j + 1].is_op("[") {
                    j = skip_balanced(tokens, j + 1);
                }
                // Find the item's body `{` (or terminating `;`) at
                // delimiter depth 0 — parens/brackets in the signature
                // (e.g. `fn t(a: [u8; 4])`) are skipped whole.
                let mut k = j;
                let mut end = tokens.len();
                while k < tokens.len() {
                    match tokens[k].text.as_str() {
                        "(" | "[" => {
                            k = skip_balanced(tokens, k);
                        }
                        "{" => {
                            end = skip_balanced(tokens, k);
                            break;
                        }
                        ";" => {
                            end = k + 1;
                            break;
                        }
                        _ => k += 1,
                    }
                }
                for flag in flags.iter_mut().take(end.min(tokens.len())).skip(i) {
                    *flag = true;
                }
                i = end;
                continue;
            }
            i = end_attr;
            continue;
        }
        i += 1;
    }
    flags
}

/// Mark tokens inside `use …;` declarations (type names there are not
/// usage sites).
fn mark_uses(tokens: &[Token]) -> Vec<bool> {
    let mut flags = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_ident("use") {
            let start = i;
            while i < tokens.len() && !tokens[i].is_op(";") {
                i += 1;
            }
            for flag in flags.iter_mut().take((i + 1).min(tokens.len())).skip(start) {
                *flag = true;
            }
        }
        i += 1;
    }
    flags
}

/// Collect declared names of interest: hash containers and clock-typed
/// variables. Declaration shapes recognized: `name: [&][mut] [path::]Type`
/// and `[let [mut]] name = [path::]Type::…`.
fn collect_decls(tokens: &[Token], in_test: &[bool], types: &[&str], out: &mut Vec<String>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokKind::Ident || in_test[i] || !types.contains(&t.text.as_str()) {
            continue;
        }
        // Walk back over a `path::` prefix.
        let mut b = i;
        while b >= 2 && tokens[b - 1].is_op("::") && tokens[b - 2].kind == TokKind::Ident {
            b -= 2;
        }
        // Walk back over `&`, `&mut`, `&'a mut`.
        let mut p = b;
        while p >= 1 {
            let prev = &tokens[p - 1];
            if prev.is_op("&") || prev.is_ident("mut") || prev.kind == TokKind::Lifetime {
                p -= 1;
            } else {
                break;
            }
        }
        let name = if p >= 2
            && (tokens[p - 1].is_op(":") || tokens[p - 1].is_op("="))
            && tokens[p - 2].kind == TokKind::Ident
        {
            Some(tokens[p - 2].text.clone())
        } else {
            None
        };
        if let Some(n) = name {
            if !out.contains(&n) {
                out.push(n);
            }
        }
    }
}

impl<'a> FileCtx<'a> {
    fn new(lexed: &'a Lexed) -> Self {
        let tokens = lexed.tokens.as_slice();
        let in_test = mark_tests(tokens);
        let in_use = mark_uses(tokens);
        let mut containers = Vec::new();
        collect_decls(tokens, &in_test, HASH_TYPES, &mut containers);
        let mut clock_vars = Vec::new();
        collect_decls(tokens, &in_test, &["SimTime", "SimSpan"], &mut clock_vars);
        FileCtx {
            tokens,
            in_test,
            in_use,
            containers,
            clock_vars,
        }
    }

    /// Dimension of the operand ending at token index `end` (inclusive),
    /// walking backward over casts, calls, indexing, and field paths.
    fn dim_before(&self, end: usize) -> Option<Dim> {
        let t = &self.tokens[end];
        // `expr as f64` — dimension flows through the cast.
        if t.kind == TokKind::Ident && PRIM_TYPES.contains(&t.text.as_str()) {
            if end >= 1 && self.tokens[end - 1].is_ident("as") {
                return if end >= 2 {
                    self.dim_before(end - 2)
                } else {
                    None
                };
            }
            return None;
        }
        // Call or index result: `path(...)` / `recv[...]`.
        if t.is_op(")") || t.is_op("]") {
            let open = skip_balanced_back(self.tokens, end);
            if open == 0 {
                return None;
            }
            let head = open - 1;
            if self.tokens[head].kind != TokKind::Ident {
                return None;
            }
            let name = self.tokens[head].text.as_str();
            if t.is_op("]") {
                // Indexing: dimension of the receiver variable.
                return self.var_dim(name);
            }
            // Call: conversion-function result. Clock constructors need
            // their type prefix to resolve to the typed clock value.
            if CLOCK_CONSTRUCTORS.contains(&name) {
                if head >= 2
                    && self.tokens[head - 1].is_op("::")
                    && (self.tokens[head - 2].is_ident("SimTime")
                        || self.tokens[head - 2].is_ident("SimSpan"))
                {
                    return Some(Dim::SimTime);
                }
                return None;
            }
            return dim_of_name(name);
        }
        if t.kind == TokKind::Ident {
            if t.is_ident("as") || PRIM_TYPES.contains(&t.text.as_str()) {
                return None;
            }
            return self.var_dim(&t.text);
        }
        None
    }

    /// Dimension of the operand starting at token index `start`, walking
    /// forward over references, paths, calls, and method chains; the
    /// *last* segment of the chain decides.
    fn dim_after(&self, start: usize) -> Option<Dim> {
        let mut i = start;
        // Skip leading `&`, `*`, unary `-`, `mut`.
        while i < self.tokens.len() {
            let t = &self.tokens[i];
            if t.is_op("&") || t.is_op("*") || t.is_op("-") || t.is_ident("mut") {
                i += 1;
            } else {
                break;
            }
        }
        if i >= self.tokens.len() || self.tokens[i].kind != TokKind::Ident {
            return None;
        }
        // Walk the longest `a::b.c(…).d` chain, remembering the last
        // named segment and whether it was called.
        let mut last_name = self.tokens[i].text.clone();
        let mut last_called = false;
        let mut prev_seg: Option<String> = None;
        let mut j = i + 1;
        while j < self.tokens.len() {
            let t = &self.tokens[j];
            if t.is_op("::") || t.is_op(".") {
                if j + 1 < self.tokens.len() && self.tokens[j + 1].kind == TokKind::Ident {
                    prev_seg = Some(std::mem::replace(
                        &mut last_name,
                        self.tokens[j + 1].text.clone(),
                    ));
                    last_called = false;
                    j += 2;
                    continue;
                }
                // Tuple index (`x.0`) — keep going, segment is unnamed.
                if j + 1 < self.tokens.len() && self.tokens[j + 1].kind == TokKind::Int {
                    j += 2;
                    continue;
                }
                break;
            }
            if t.is_op("(") {
                last_called = true;
                j = skip_balanced(self.tokens, j);
                continue;
            }
            if t.is_op("[") {
                j = skip_balanced(self.tokens, j);
                continue;
            }
            break;
        }
        if last_called {
            if CLOCK_CONSTRUCTORS.contains(&last_name.as_str()) {
                return match prev_seg.as_deref() {
                    Some("SimTime") | Some("SimSpan") => Some(Dim::SimTime),
                    _ => None,
                };
            }
            return dim_of_name(&last_name);
        }
        self.var_dim(&last_name)
    }

    /// Dimension of a plain variable/field reference: declared clock
    /// types first, then the name-suffix convention.
    fn var_dim(&self, name: &str) -> Option<Dim> {
        if self.clock_vars.iter().any(|v| v == name) {
            return Some(Dim::SimTime);
        }
        // Type names used as values (e.g. `SimTime::ZERO`) are typed.
        dim_of_name(name)
    }
}

// ---------------------------------------------------------------------------
// Rule engines
// ---------------------------------------------------------------------------

type RawFinding = (Rule, usize, String);

fn op_is_cmp_or_addsub(op: &str) -> bool {
    matches!(op, "+" | "-" | "<" | ">" | "<=" | ">=" | "==" | "!=")
}

/// True when `+`/`-` at token `i` is a binary operator (has a value-like
/// token on its left), not a unary sign.
fn is_binary_here(tokens: &[Token], i: usize) -> bool {
    if i == 0 {
        return false;
    }
    let prev = &tokens[i - 1];
    prev.kind == TokKind::Ident
        || prev.kind == TokKind::Int
        || prev.kind == TokKind::Float
        || prev.is_op(")")
        || prev.is_op("]")
}

/// True when the operand adjacent to the binary operator at `i` extends
/// into a higher-precedence `*`/`/`/`%` product (`a + b * c`): a
/// single-segment walk cannot infer the product's dimension, so the
/// units check must stand down rather than misread `b` as the operand.
fn product_adjacent(tokens: &[Token], i: usize, forward: bool) -> bool {
    const LIMIT: usize = 120;
    let stop_op = |s: &str| {
        matches!(
            s,
            "{" | "}"
                | ";"
                | ","
                | "="
                | "=="
                | "!="
                | "<="
                | ">="
                | "<"
                | ">"
                | "+"
                | "-"
                | "&&"
                | "||"
                | "=>"
                | ".."
                | "..="
        )
    };
    if forward {
        let mut depth = 0usize;
        let mut j = i + 1;
        let end = (i + LIMIT).min(tokens.len());
        while j < end {
            let t = &tokens[j];
            match t.text.as_str() {
                "(" | "[" if t.kind == TokKind::Op => depth += 1,
                ")" | "]" if t.kind == TokKind::Op => {
                    if depth == 0 {
                        return false;
                    }
                    depth -= 1;
                }
                "/" | "%" if depth == 0 && t.kind == TokKind::Op => return true,
                "*" if depth == 0 && t.kind == TokKind::Op && is_binary_here(tokens, j) => {
                    return true;
                }
                s if depth == 0 && t.kind == TokKind::Op && stop_op(s) => return false,
                _ => {}
            }
            j += 1;
        }
        false
    } else {
        let mut depth = 0usize;
        let mut j = i;
        let start = i.saturating_sub(LIMIT);
        while j > start {
            j -= 1;
            let t = &tokens[j];
            match t.text.as_str() {
                ")" | "]" if t.kind == TokKind::Op => depth += 1,
                "(" | "[" if t.kind == TokKind::Op => {
                    if depth == 0 {
                        return false;
                    }
                    depth -= 1;
                }
                "/" | "%" if depth == 0 && t.kind == TokKind::Op => return true,
                "*" if depth == 0 && t.kind == TokKind::Op && is_binary_here(tokens, j) => {
                    return true;
                }
                s if depth == 0 && t.kind == TokKind::Op && stop_op(s) => return false,
                _ => {}
            }
        }
        false
    }
}

fn scan_rules(ctx: &FileCtx<'_>, rules: &[Rule], out: &mut Vec<RawFinding>) {
    let tokens = ctx.tokens;
    let has = |r: Rule| rules.contains(&r);

    for i in 0..tokens.len() {
        if ctx.in_test[i] {
            continue;
        }
        let t = &tokens[i];
        let line = t.line;

        // wall-clock ------------------------------------------------------
        if has(Rule::WallClock) && t.kind == TokKind::Ident && !ctx.in_use[i] {
            if t.text == "Instant"
                && i + 2 < tokens.len()
                && tokens[i + 1].is_op("::")
                && tokens[i + 2].is_ident("now")
            {
                out.push((
                    Rule::WallClock,
                    line,
                    "wall-clock read `Instant::now` in sim-domain code".into(),
                ));
            }
            if t.text == "SystemTime" {
                out.push((
                    Rule::WallClock,
                    line,
                    "wall-clock type `SystemTime` in sim-domain code".into(),
                ));
            }
        }

        // os-rng ----------------------------------------------------------
        if has(Rule::OsRng) && t.kind == TokKind::Ident && !ctx.in_use[i] {
            if matches!(t.text.as_str(), "thread_rng" | "from_entropy" | "OsRng") {
                out.push((
                    Rule::OsRng,
                    line,
                    format!(
                        "unseeded RNG source `{}` (randomness must come from the run seed)",
                        t.text
                    ),
                ));
            }
            if t.text == "rand"
                && i + 2 < tokens.len()
                && tokens[i + 1].is_op("::")
                && tokens[i + 2].is_ident("random")
            {
                out.push((
                    Rule::OsRng,
                    line,
                    "unseeded RNG source `rand::random` (randomness must come from the run seed)"
                        .into(),
                ));
            }
        }

        // unordered-iter: container.method(…) ----------------------------
        if has(Rule::UnorderedIter)
            && t.kind == TokKind::Ident
            && ctx.containers.iter().any(|c| c == &t.text)
            && i + 3 < tokens.len()
            && tokens[i + 1].is_op(".")
            && tokens[i + 2].kind == TokKind::Ident
            && ITER_METHODS.contains(&tokens[i + 2].text.as_str())
            && tokens[i + 3].is_op("(")
        {
            out.push((
                Rule::UnorderedIter,
                tokens[i + 2].line,
                format!(
                    "iteration over hash-ordered container `{}` (use BTreeMap or sort first)",
                    t.text
                ),
            ));
        }

        // unordered-iter: `for pat in [&][mut] path {` --------------------
        if has(Rule::UnorderedIter) && t.is_ident("for") {
            // Find the `in` of this loop header (patterns never contain
            // the keyword), then require the subject to be a pure path.
            let mut j = i + 1;
            let mut found_in = None;
            while j < tokens.len() && j < i + 64 {
                if tokens[j].is_ident("in") {
                    found_in = Some(j);
                    break;
                }
                if tokens[j].is_op("{") || tokens[j].is_op(";") {
                    break;
                }
                j += 1;
            }
            if let Some(in_at) = found_in {
                let mut k = in_at + 1;
                let mut pure_path = true;
                let mut subject_names: Vec<&str> = Vec::new();
                while k < tokens.len() && !tokens[k].is_op("{") {
                    let s = &tokens[k];
                    match s.kind {
                        TokKind::Ident if s.text == "mut" => {}
                        TokKind::Ident => subject_names.push(&s.text),
                        TokKind::Int => {}
                        TokKind::Op if matches!(s.text.as_str(), "&" | "." | "::") => {}
                        _ => {
                            pure_path = false;
                            break;
                        }
                    }
                    k += 1;
                }
                if pure_path {
                    if let Some(name) = subject_names
                        .iter()
                        .find(|n| ctx.containers.iter().any(|c| c == **n))
                    {
                        out.push((
                            Rule::UnorderedIter,
                            tokens[in_at].line,
                            format!(
                                "iteration over hash-ordered container `{name}` \
                                 (use BTreeMap or sort first)"
                            ),
                        ));
                    }
                }
            }
        }

        // float-eq / units-mixing on binary operators ---------------------
        if t.kind == TokKind::Op && op_is_cmp_or_addsub(&t.text) && i > 0 {
            let is_eq = matches!(t.text.as_str(), "==" | "!=");
            if (has(Rule::FloatEq) && is_eq) || has(Rule::UnitsMixing) {
                let binary = if matches!(t.text.as_str(), "+" | "-") {
                    is_binary_here(tokens, i)
                } else {
                    true
                };
                if binary {
                    let lhs_dim = ctx.dim_before(i - 1);
                    let rhs_dim = ctx.dim_after(i + 1);
                    // units-mixing: both sides have a known, different
                    // dimension and no conversion call bridged them.
                    if has(Rule::UnitsMixing) {
                        if let (Some(a), Some(b)) = (lhs_dim, rhs_dim) {
                            if a != b
                                && !product_adjacent(tokens, i, false)
                                && !product_adjacent(tokens, i, true)
                            {
                                out.push((
                                    Rule::UnitsMixing,
                                    line,
                                    format!(
                                        "`{}` mixes {} with {} — insert an explicit \
                                         conversion call",
                                        t.text,
                                        a.describe(),
                                        b.describe()
                                    ),
                                ));
                            }
                        }
                    }
                    if has(Rule::FloatEq) && is_eq {
                        // A bare float literal is not enough: exact
                        // comparison against a literal sentinel is a
                        // legitimate pattern in math-kernel code (pivot
                        // checks, degenerate-variance guards). The rule
                        // targets *dimension-named* quantities.
                        let suspicious = |side: usize, fwd: bool| -> bool {
                            let name = if fwd {
                                forward_last_name(tokens, side)
                            } else {
                                backward_last_name(tokens, side)
                            };
                            name.is_some_and(|n| {
                                FLOAT_SUFFIXES.iter().any(|s| n.ends_with(s))
                                    || n.contains("latency")
                                    || n.contains("cost")
                            })
                        };
                        if suspicious(i - 1, false)
                            || (i + 1 < tokens.len() && suspicious(i + 1, true))
                        {
                            out.push((
                                Rule::FloatEq,
                                line,
                                format!(
                                    "exact float comparison `{}` on a latency/cost-style quantity",
                                    t.text
                                ),
                            ));
                        }
                    }
                }
            }
        }

        // units-mixing: bytes divided by bits-per-second ------------------
        if has(Rule::UnitsMixing) && t.is_op("/") && i > 0 && i + 1 < tokens.len() {
            let lhs = ctx.dim_before(i - 1);
            let rhs = ctx.dim_after(i + 1);
            if lhs == Some(Dim::Bytes) && matches!(rhs, Some(Dim::BitsPerSec) | Some(Dim::Gbps)) {
                out.push((
                    Rule::UnitsMixing,
                    line,
                    "dividing a byte count by a bits-per-second rate — multiply bytes \
                     by 8.0 first (or use a `*_secs` conversion helper)"
                        .into(),
                ));
            }
        }

        // nanos-narrowing -------------------------------------------------
        if has(Rule::NanosNarrowing)
            && t.is_ident("as")
            && i > 0
            && i + 1 < tokens.len()
            && tokens[i + 1].kind == TokKind::Ident
            && NARROW_TYPES.contains(&tokens[i + 1].text.as_str())
        {
            let lhs_is_nanos = ctx.dim_before(i - 1) == Some(Dim::Nanos)
                || backward_last_name(tokens, i - 1)
                    .is_some_and(|n| n.contains("nanos") || n.ends_with("_ns"));
            if lhs_is_nanos {
                out.push((
                    Rule::NanosNarrowing,
                    line,
                    format!(
                        "narrowing cast `as {}` on a nanosecond quantity",
                        tokens[i + 1].text
                    ),
                ));
            }
        }

        // unwrap ----------------------------------------------------------
        if has(Rule::Unwrap) && t.is_op(".") && i + 2 < tokens.len() {
            let m = &tokens[i + 1];
            if m.is_ident("unwrap") && tokens[i + 2].is_op("(") {
                out.push((
                    Rule::Unwrap,
                    m.line,
                    "`.unwrap()` in library code (return a Result or use \
                     expect(\"…invariant…\"))"
                        .into(),
                ));
            }
            if m.is_ident("expect")
                && tokens[i + 2].is_op("(")
                && i + 3 < tokens.len()
                && tokens[i + 3].kind == TokKind::Str
                && tokens[i + 3].text.is_empty()
            {
                out.push((
                    Rule::Unwrap,
                    m.line,
                    "`.expect(\"\")` without an invariant message".into(),
                ));
            }
        }

        // sim-time-arith --------------------------------------------------
        if has(Rule::SimTimeArith) && t.kind == TokKind::Ident {
            // (a) SimTime::from_secs_f64(… as_secs_f64 …): a timestamp
            //     reconstructed from another timestamp's float seconds.
            if (t.text == "SimTime" || t.text == "SimSpan")
                && i + 3 < tokens.len()
                && tokens[i + 1].is_op("::")
                && tokens[i + 2].is_ident("from_secs_f64")
                && tokens[i + 3].is_op("(")
            {
                let end = skip_balanced(tokens, i + 3);
                let arg_idents = ident_list(&tokens[i + 4..end.saturating_sub(1)]);
                if arg_idents.iter().any(|n| {
                    matches!(
                        *n,
                        "as_secs_f64" | "as_millis_f64" | "as_micros_f64" | "as_nanos"
                    )
                }) {
                    out.push((
                        Rule::SimTimeArith,
                        line,
                        format!(
                            "`{}::from_secs_f64` rebuilt from another timestamp's float \
                             seconds — stay in integer nanoseconds (SimTime ± SimSpan, \
                             `mul_f64`, or a des-provided helper)",
                            t.text
                        ),
                    ));
                }
            }
            // (b) `.as_nanos() as f64`: float math on a raw nanosecond
            //     count (precision loss past 2^53 ns).
            if t.text == "as_nanos"
                && i + 4 < tokens.len()
                && tokens[i + 1].is_op("(")
                && tokens[i + 2].is_op(")")
                && tokens[i + 3].is_ident("as")
                && (tokens[i + 4].is_ident("f64") || tokens[i + 4].is_ident("f32"))
            {
                out.push((
                    Rule::SimTimeArith,
                    line,
                    "float math on a raw nanosecond count (`as_nanos() as f64`) — use \
                     `as_secs_f64()` for reporting or stay in integer nanoseconds"
                        .into(),
                ));
            }
        }

        // nondet-reduce ---------------------------------------------------
        if has(Rule::NondetReduce)
            && t.kind == TokKind::Ident
            && PAR_SOURCES.contains(&t.text.as_str())
            && i + 1 < tokens.len()
            && tokens[i + 1].is_op("(")
        {
            let mut j = skip_balanced(tokens, i + 1);
            // Walk the method chain, skipping argument lists whole (a
            // sequential `.sum()` inside a closure argument is fine).
            while j + 1 < tokens.len() && tokens[j].is_op(".") {
                let m = &tokens[j + 1];
                if m.kind != TokKind::Ident {
                    break;
                }
                let mut k = j + 2;
                // Turbofish `::<…>` — collect the type idents.
                let mut tf: Vec<String> = Vec::new();
                if k + 1 < tokens.len() && tokens[k].is_op("::") && tokens[k + 1].is_op("<") {
                    let mut depth = 1i64;
                    let mut a = k + 2;
                    while a < tokens.len() && depth > 0 {
                        match tokens[a].text.as_str() {
                            "<" => depth += 1,
                            ">" => depth -= 1,
                            ">>" => depth -= 2,
                            _ => {
                                if tokens[a].kind == TokKind::Ident {
                                    tf.push(tokens[a].text.clone());
                                }
                            }
                        }
                        a += 1;
                    }
                    k = a;
                }
                let called = k < tokens.len() && tokens[k].is_op("(");
                let args_end = if called { skip_balanced(tokens, k) } else { k };
                match m.text.as_str() {
                    "sum" | "product" if called => {
                        let float_tf = tf.iter().any(|x| x == "f64" || x == "f32");
                        if float_tf || tf.is_empty() {
                            out.push((
                                Rule::NondetReduce,
                                m.line,
                                format!(
                                    "parallel `{}` reduction downstream of `{}` — float \
                                     addition order varies with thread count; collect to \
                                     an ordered Vec and reduce sequentially",
                                    m.text, t.text
                                ),
                            ));
                        }
                    }
                    "fold" | "reduce" | "fold_with" | "reduce_with" if called => {
                        out.push((
                            Rule::NondetReduce,
                            m.line,
                            format!(
                                "parallel `{}` downstream of `{}` merges per-thread \
                                 accumulators in nondeterministic order",
                                m.text, t.text
                            ),
                        ));
                    }
                    "collect" if called && tf.iter().any(|x| HASH_TYPES.contains(&x.as_str())) => {
                        out.push((
                            Rule::NondetReduce,
                            m.line,
                            format!(
                                "parallel `collect` into a hash-ordered container \
                                 downstream of `{}`",
                                t.text
                            ),
                        ));
                    }
                    _ => {}
                }
                if !called {
                    break;
                }
                j = args_end;
            }
        }

        // lock-in-sim -----------------------------------------------------
        if has(Rule::LockInSim)
            && t.kind == TokKind::Ident
            && !ctx.in_use[i]
            && SYNC_PRIMITIVES.contains(&t.text.as_str())
        {
            out.push((
                Rule::LockInSim,
                line,
                format!(
                    "shared-state synchronization primitive `{}` in event-loop code — \
                     sim state must be shard-local and merged deterministically",
                    t.text
                ),
            ));
        }
    }
}

/// The last path-segment name of the operand ending at token `end`
/// (walking back over one balanced group if present).
fn backward_last_name(tokens: &[Token], end: usize) -> Option<String> {
    let t = &tokens[end];
    if t.kind == TokKind::Ident {
        return Some(t.text.clone());
    }
    if t.is_op(")") || t.is_op("]") {
        let open = skip_balanced_back(tokens, end);
        if open >= 1 && tokens[open - 1].kind == TokKind::Ident {
            return Some(tokens[open - 1].text.clone());
        }
    }
    None
}

/// The last path-segment name of the operand starting at token `start`.
fn forward_last_name(tokens: &[Token], start: usize) -> Option<String> {
    let mut i = start;
    while i < tokens.len() && (tokens[i].is_op("&") || tokens[i].is_op("*") || tokens[i].is_op("-"))
    {
        i += 1;
    }
    if i >= tokens.len() || tokens[i].kind != TokKind::Ident {
        return None;
    }
    let mut last = tokens[i].text.clone();
    let mut j = i + 1;
    while j + 1 < tokens.len() && (tokens[j].is_op(".") || tokens[j].is_op("::")) {
        if tokens[j + 1].kind == TokKind::Ident {
            last = tokens[j + 1].text.clone();
            j += 2;
        } else {
            break;
        }
    }
    Some(last)
}

// ---------------------------------------------------------------------------
// Waiver annotations
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
struct Allow {
    rule: Rule,
    reason: String,
    line: usize,
}

/// Parse every `simlint::allow(rule, reason)` in a comment line.
fn parse_allows(line: usize, text: &str) -> Vec<Allow> {
    let mut allows = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find("simlint::allow(") {
        rest = &rest[pos + "simlint::allow(".len()..];
        let Some(close) = rest.find(')') else { break };
        let inner = &rest[..close];
        rest = &rest[close + 1..];
        let (rule_name, reason) = match inner.find(',') {
            Some(comma) => (inner[..comma].trim(), inner[comma + 1..].trim()),
            None => (inner.trim(), ""),
        };
        if let Some(rule) = Rule::from_name(rule_name) {
            allows.push(Allow {
                rule,
                reason: reason.to_string(),
                line,
            });
        }
    }
    allows
}

// ---------------------------------------------------------------------------
// Per-file entry point
// ---------------------------------------------------------------------------

/// Lint one source file under the given rule set. `file` is the label
/// used in findings and waiver sites.
pub fn lint_file(file: &str, source: &str, rules: &[Rule]) -> FileAnalysis {
    let lexed = lex(source);
    let ctx = FileCtx::new(&lexed);

    let mut raw: Vec<RawFinding> = Vec::new();
    scan_rules(&ctx, rules, &mut raw);

    // One finding per (rule, line): several matches of the same rule on a
    // line are one defect (and keep waiver counting stable).
    let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
    raw.retain(|(rule, line, _)| {
        let key = (Rule::ALL.iter().position(|r| r == rule).unwrap_or(0), *line);
        seen.insert(key)
    });
    raw.sort_by_key(|(rule, line, _)| {
        (*line, Rule::ALL.iter().position(|r| r == rule).unwrap_or(0))
    });

    // Resolve allow annotations to the code line they govern: their own
    // line when it has code, else the next line (directly below).
    let mut allows: Vec<Allow> = Vec::new();
    for c in &lexed.comments {
        // Doc comments (`///`, `//!`) are rendered documentation — an
        // allow written there is an example, not a waiver site.
        let body = c.text.trim_start();
        if body.starts_with("///") || body.starts_with("//!") {
            continue;
        }
        for mut a in parse_allows(c.line, &c.text) {
            if !lexed.line_has_code(a.line) {
                a.line += 1;
            }
            allows.push(a);
        }
    }

    let mut used = vec![false; allows.len()];
    let mut findings = Vec::new();
    for (rule, line, message) in raw {
        let mut waived = false;
        for (ai, a) in allows.iter().enumerate() {
            if a.line == line && a.rule == rule && !a.reason.is_empty() {
                used[ai] = true;
                waived = true;
            }
        }
        if !waived {
            findings.push(Finding {
                file: file.to_string(),
                line,
                rule,
                message,
            });
        }
    }

    let waivers = allows
        .into_iter()
        .zip(used)
        .map(|(a, u)| WaiverSite {
            file: file.to_string(),
            line: a.line,
            rule: a.rule,
            reason: a.reason,
            used: u,
        })
        .collect();

    FileAnalysis { findings, waivers }
}

// ---------------------------------------------------------------------------
// Waiver ledger
// ---------------------------------------------------------------------------

/// One entry of `simlint.waivers.json`: up to `max_count` waivers of
/// `rule` in `file`, with a shared reason.
#[derive(Clone, Debug)]
pub struct LedgerEntry {
    /// Workspace-relative file path.
    pub file: String,
    /// The waived rule.
    pub rule: Rule,
    /// Maximum number of waiver annotations allowed in this file.
    pub max_count: usize,
    /// Why these waivers are justified.
    pub reason: String,
}

/// The committed waiver ledger. `budget` pins the workspace-wide waiver
/// total; CI fails when annotations exceed it, when an annotation has no
/// ledger entry, or when a ledger entry has no live annotation — so the
/// committed number can only be ratcheted down, never silently up.
#[derive(Clone, Debug, Default)]
pub struct Ledger {
    /// Total waiver annotations permitted across the workspace. Must
    /// equal the sum of entry `max_count`s; may only shrink over time.
    pub budget: usize,
    /// Per-(file, rule) allowances.
    pub entries: Vec<LedgerEntry>,
}

impl Ledger {
    /// Parse the ledger from its JSON text.
    pub fn parse(text: &str) -> Result<Ledger, String> {
        let v = json::parse(text)?;
        let budget = v
            .get("budget")
            .and_then(Json::as_int)
            .ok_or("ledger: missing integer `budget`")? as usize;
        let mut entries = Vec::new();
        for (i, e) in v
            .get("waivers")
            .and_then(Json::as_arr)
            .ok_or("ledger: missing array `waivers`")?
            .iter()
            .enumerate()
        {
            let field = |k: &str| {
                e.get(k)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or(format!("ledger: waiver #{i} missing string `{k}`"))
            };
            let file = field("file")?;
            let rule_name = field("rule")?;
            let rule = Rule::from_name(&rule_name).ok_or(format!(
                "ledger: waiver #{i} has unknown rule `{rule_name}`"
            ))?;
            let reason = field("reason")?;
            if reason.trim().is_empty() {
                return Err(format!("ledger: waiver #{i} has an empty reason"));
            }
            let max_count = e
                .get("max_count")
                .and_then(Json::as_int)
                .ok_or(format!("ledger: waiver #{i} missing integer `max_count`"))?
                as usize;
            entries.push(LedgerEntry {
                file,
                rule,
                max_count,
                reason,
            });
        }
        Ok(Ledger { budget, entries })
    }

    /// Cross-check source waiver annotations against this ledger.
    /// Returns human-readable violations; empty means the gate passes.
    pub fn check(&self, sites: &[WaiverSite]) -> Vec<String> {
        let mut violations = Vec::new();
        for s in sites {
            if s.reason.is_empty() {
                violations.push(format!(
                    "{}:{}: simlint::allow({}) without a reason — the reason is mandatory",
                    s.file, s.line, s.rule
                ));
            } else if !s.used {
                violations.push(format!(
                    "{}:{}: simlint::allow({}, …) never fires — delete the stale \
                     annotation and shrink the ledger",
                    s.file, s.line, s.rule
                ));
            }
        }
        // Count used, reasoned annotations per (file, rule).
        let mut counts: Vec<(&str, Rule, usize)> = Vec::new();
        for s in sites.iter().filter(|s| s.used && !s.reason.is_empty()) {
            if let Some(c) = counts
                .iter_mut()
                .find(|(f, r, _)| *f == s.file && *r == s.rule)
            {
                c.2 += 1;
            } else {
                counts.push((&s.file, s.rule, 1));
            }
        }
        for (file, rule, n) in &counts {
            match self
                .entries
                .iter()
                .find(|e| e.file == *file && e.rule == *rule)
            {
                None => violations.push(format!(
                    "{file}: {n} simlint::allow({rule}) annotation(s) with no \
                     simlint.waivers.json entry — add one with a reason (grows the \
                     ledger, which review must approve)"
                )),
                Some(e) if *n > e.max_count => violations.push(format!(
                    "{file}: {n} simlint::allow({rule}) annotation(s) exceed the \
                     ledger max_count {}",
                    e.max_count
                )),
                Some(_) => {}
            }
        }
        for e in &self.entries {
            if !counts.iter().any(|(f, r, _)| *f == e.file && *r == e.rule) {
                violations.push(format!(
                    "simlint.waivers.json: stale entry for {}:{} — the annotation is \
                     gone; remove the entry and shrink the budget",
                    e.file, e.rule
                ));
            }
        }
        let total: usize = self.entries.iter().map(|e| e.max_count).sum();
        if total != self.budget {
            violations.push(format!(
                "simlint.waivers.json: budget {} != sum of entry max_counts {total} — \
                 the budget is the ratchet and must track the entries exactly",
                self.budget
            ));
        }
        let live: usize = counts.iter().map(|(_, _, n)| n).sum();
        if live > self.budget {
            violations.push(format!(
                "{live} live waiver annotation(s) exceed the ledger budget {} — the \
                 budget may only shrink",
                self.budget
            ));
        }
        violations.sort();
        violations
    }
}

// ---------------------------------------------------------------------------
// Workspace walk + report
// ---------------------------------------------------------------------------

/// The complete result of a workspace lint run.
#[derive(Default)]
pub struct WorkspaceReport {
    /// Surviving findings across all crates.
    pub findings: Vec<Finding>,
    /// Every waiver annotation across all crates.
    pub waivers: Vec<WaiverSite>,
    /// Ledger violations (empty when the ratchet gate passes).
    pub ledger_violations: Vec<String>,
    /// Number of `.rs` files analyzed.
    pub files_scanned: usize,
}

impl WorkspaceReport {
    /// True when CI should pass.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.ledger_violations.is_empty()
    }

    /// Serialize to the machine-readable report schema (`--json`).
    pub fn to_json(&self) -> Json {
        let findings = self
            .findings
            .iter()
            .map(|f| {
                Json::obj(vec![
                    ("file", Json::Str(f.file.clone())),
                    ("line", Json::Int(f.line as i64)),
                    ("rule", Json::Str(f.rule.name().into())),
                    ("message", Json::Str(f.message.clone())),
                ])
            })
            .collect();
        let waivers = self
            .waivers
            .iter()
            .map(|w| {
                Json::obj(vec![
                    ("file", Json::Str(w.file.clone())),
                    ("line", Json::Int(w.line as i64)),
                    ("rule", Json::Str(w.rule.name().into())),
                    ("reason", Json::Str(w.reason.clone())),
                    ("used", Json::Bool(w.used)),
                ])
            })
            .collect();
        let profiles = PROFILES
            .iter()
            .map(|p| {
                Json::obj(vec![
                    ("crate", Json::Str(p.krate.into())),
                    (
                        "rules",
                        Json::Arr(p.rules.iter().map(|r| Json::Str(r.name().into())).collect()),
                    ),
                ])
            })
            .collect();
        Json::obj(vec![
            ("version", Json::Int(2)),
            ("files_scanned", Json::Int(self.files_scanned as i64)),
            ("profiles", Json::Arr(profiles)),
            ("findings", Json::Arr(findings)),
            ("waivers", Json::Arr(waivers)),
            (
                "ledger_violations",
                Json::Arr(
                    self.ledger_violations
                        .iter()
                        .map(|v| Json::Str(v.clone()))
                        .collect(),
                ),
            ),
            (
                "summary",
                Json::obj(vec![
                    ("findings", Json::Int(self.findings.len() as i64)),
                    ("waivers", Json::Int(self.waivers.len() as i64)),
                    ("clean", Json::Bool(self.is_clean())),
                ]),
            ),
        ])
    }
}

/// Recursively collect `.rs` files under `dir`, sorted for determinism.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint the `src/` tree of every profiled crate under `root`, then check
/// the waiver ledger (`simlint.waivers.json` at the root).
///
/// `tests/`, `benches/`, `examples/`, `vendor/`, and fixture files are out
/// of scope by construction: only `crates/<name>/src` is walked.
pub fn lint_workspace(root: &Path) -> io::Result<WorkspaceReport> {
    let mut report = WorkspaceReport::default();
    for profile in PROFILES {
        let src = root.join("crates").join(profile.krate).join("src");
        if !src.is_dir() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("profiled crate source missing: {}", src.display()),
            ));
        }
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files)?;
        for path in files {
            let source = fs::read_to_string(&path)?;
            let label = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .display()
                .to_string();
            let fa = lint_file(&label, &source, profile.rules);
            report.findings.extend(fa.findings);
            report.waivers.extend(fa.waivers);
            report.files_scanned += 1;
        }
    }
    let ledger_path = root.join("simlint.waivers.json");
    let ledger_text = fs::read_to_string(&ledger_path).map_err(|e| {
        io::Error::new(
            e.kind(),
            format!(
                "cannot read {} (the committed waiver ledger is required): {e}",
                ledger_path.display()
            ),
        )
    })?;
    match Ledger::parse(&ledger_text) {
        Ok(ledger) => report.ledger_violations = ledger.check(&report.waivers),
        Err(msg) => report.ledger_violations = vec![msg],
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        lint_file("t.rs", src, Rule::ALL).findings
    }

    fn fixture(name: &str) -> String {
        let path = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("fixtures")
            .join(name);
        fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
    }

    /// Each known-bad fixture fires its rule exactly once and nothing else.
    #[test]
    fn fixtures_fire_exactly_once() {
        let cases = [
            ("wall_clock.rs", Rule::WallClock),
            ("os_rng.rs", Rule::OsRng),
            ("unordered_iter.rs", Rule::UnorderedIter),
            ("float_eq.rs", Rule::FloatEq),
            ("nanos_narrowing.rs", Rule::NanosNarrowing),
            ("unwrap.rs", Rule::Unwrap),
            ("units_mixing.rs", Rule::UnitsMixing),
            ("sim_time_arith.rs", Rule::SimTimeArith),
            ("nondet_reduce.rs", Rule::NondetReduce),
            ("lock_in_sim.rs", Rule::LockInSim),
        ];
        for (name, rule) in cases {
            let fs = findings(&fixture(name));
            assert_eq!(
                fs.len(),
                1,
                "{name}: expected exactly one finding, got {fs:?}"
            );
            assert_eq!(fs[0].rule, rule, "{name}: wrong rule: {fs:?}");
        }
    }

    /// The negative fixture demonstrates every sanctioned pattern passing.
    #[test]
    fn clean_fixture_is_clean() {
        let fs = findings(&fixture("clean_conversions.rs"));
        assert!(fs.is_empty(), "clean fixture has findings: {fs:?}");
    }

    #[test]
    fn allow_with_reason_suppresses_and_is_used() {
        let src = "fn f() {\n    // simlint::allow(wall-clock, reporting only)\n    let t = std::time::Instant::now();\n}\n";
        let fa = lint_file("t.rs", src, Rule::ALL);
        assert!(fa.findings.is_empty());
        assert_eq!(fa.waivers.len(), 1);
        assert!(fa.waivers[0].used);
        let same_line =
            "fn f() { let t = std::time::Instant::now(); } // simlint::allow(wall-clock, reporting only)\n";
        assert!(lint_file("t.rs", same_line, Rule::ALL).findings.is_empty());
    }

    #[test]
    fn allow_without_reason_does_not_suppress() {
        let src = "fn f() {\n    // simlint::allow(wall-clock)\n    let t = std::time::Instant::now();\n}\n";
        let fa = lint_file("t.rs", src, Rule::ALL);
        assert_eq!(fa.findings.len(), 1);
        assert_eq!(fa.findings[0].rule, Rule::WallClock);
        assert!(!fa.waivers[0].used);
        assert!(fa.waivers[0].reason.is_empty());
    }

    #[test]
    fn allow_for_other_rule_does_not_suppress() {
        let src = "fn f() {\n    // simlint::allow(os-rng, not the right rule)\n    let t = std::time::Instant::now();\n}\n";
        assert_eq!(lint_file("t.rs", src, Rule::ALL).findings.len(), 1);
    }

    #[test]
    fn cfg_test_regions_are_skipped() {
        let src = "pub fn lib() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        let x = std::time::Instant::now();\n        let v: Option<u32> = None;\n        assert!(v.unwrap() > 0);\n    }\n}\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn code_after_test_module_is_linted_again() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n\npub fn late() { let t = std::time::Instant::now(); }\n";
        let fs = findings(src);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].rule, Rule::WallClock);
        assert_eq!(fs[0].line, 6);
    }

    #[test]
    fn strings_and_comments_do_not_trigger() {
        let src = "fn f() -> &'static str {\n    // Instant::now() would be bad; so would x.unwrap().\n    \"Instant::now thread_rng .unwrap()\"\n}\n";
        assert!(findings(src).is_empty());
        let raw = "fn f() -> &'static str {\n    r#\"Mutex par_iter sum::<f64> SystemTime\"#\n}\n";
        assert!(findings(raw).is_empty());
    }

    #[test]
    fn use_declarations_do_not_trigger_lock_rule() {
        let src = "use std::sync::Mutex;\npub fn f() {}\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn expect_with_message_is_accepted() {
        let src = "fn f(v: Option<u32>) -> u32 {\n    v.expect(\"queue invariant: peeked entry exists\")\n}\n";
        assert!(findings(src).is_empty());
        let empty = "fn f(v: Option<u32>) -> u32 {\n    v.expect(\"\")\n}\n";
        let fs = findings(empty);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].rule, Rule::Unwrap);
    }

    #[test]
    fn btreemap_iteration_is_fine() {
        let src = "use std::collections::BTreeMap;\nfn f(m: &BTreeMap<u32, u32>) -> u32 {\n    m.values().sum()\n}\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn hash_lookup_without_iteration_is_fine() {
        let src = "use rustc_hash::FxHashMap;\nstruct S { m: FxHashMap<u32, u32> }\nimpl S {\n    fn get(&self, k: u32) -> Option<u32> { self.m.get(&k).copied() }\n    fn put(&mut self, k: u32, v: u32) { self.m.insert(k, v); }\n}\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn for_loop_over_hash_map_is_flagged() {
        let src = "use rustc_hash::FxHashMap;\nfn f(m: FxHashMap<u32, u32>) {\n    for (k, v) in &m {\n        drop((k, v));\n    }\n}\n";
        let fs = findings(src);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].rule, Rule::UnorderedIter);
        assert_eq!(fs[0].line, 3);
    }

    #[test]
    fn multiline_chain_over_hash_map_is_flagged() {
        let src = "use rustc_hash::FxHashMap;\nstruct S { switches: FxHashMap<u32, u32> }\nimpl S {\n    fn poll(&self) -> Vec<u32> {\n        self.switches\n            .values()\n            .copied()\n            .collect()\n    }\n}\n";
        let fs = findings(src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, Rule::UnorderedIter);
        assert_eq!(fs[0].line, 6);
    }

    #[test]
    fn float_eq_against_literal_is_flagged() {
        let src = "fn f(rate_bps: f64) -> bool { rate_bps == 0.0 }\n";
        let fs = findings(src);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].rule, Rule::FloatEq);
    }

    #[test]
    fn integer_eq_is_fine() {
        let src = "fn f(count: u64, phase: u8) -> bool { count == 3 && phase != 1 }\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn units_mixing_addition_is_flagged() {
        let src = "fn f(wait_s: f64, delay_ns: f64) -> f64 { wait_s + delay_ns }\n";
        let fs = findings(src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, Rule::UnitsMixing);
    }

    #[test]
    fn units_mixing_comparison_is_flagged() {
        let src =
            "fn f(sent_bytes: f64, budget_tokens: f64) -> bool { sent_bytes < budget_tokens }\n";
        let fs = findings(src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, Rule::UnitsMixing);
    }

    #[test]
    fn units_mixing_bytes_over_bps_is_flagged() {
        let src = "fn f(chunk_bytes: f64, link_bps: f64) -> f64 { chunk_bytes / link_bps }\n";
        let fs = findings(src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, Rule::UnitsMixing);
    }

    #[test]
    fn units_mixing_conversion_call_is_sanctioned() {
        // A `*_secs` conversion call declares its result dimension.
        let src = "fn f(wait_s: f64, delay_ns: u64) -> f64 { wait_s + nanos_to_secs(delay_ns) }\nfn nanos_to_secs(ns: u64) -> f64 { ns as f64 / 1e9 }\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn units_mixing_same_dim_is_fine() {
        let src = "fn f(a_s: f64, b_s: f64) -> f64 { a_s + b_s }\nfn g(x_bytes: u64, y_bytes: u64) -> bool { x_bytes < y_bytes }\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn units_mixing_literal_is_fine() {
        let src = "fn f(chunk_bytes: f64) -> f64 { chunk_bytes * 8.0 / 1e9 }\nfn g(t_s: f64) -> bool { t_s > 0.5 }\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn units_mixing_dim_flows_through_cast() {
        let src = "fn f(bytes: u64, rate_bps: f64) -> f64 { bytes as f64 / rate_bps }\n";
        let fs = findings(src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, Rule::UnitsMixing);
    }

    #[test]
    fn sim_time_roundtrip_is_flagged() {
        let src = "use hs_des::{SimSpan, SimTime};\nfn f(now: SimTime, dt_s: f64) -> SimTime {\n    SimTime::from_secs_f64(now.as_secs_f64() + dt_s)\n}\n";
        let fs = findings(src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, Rule::SimTimeArith);
    }

    #[test]
    fn sim_time_integer_math_is_fine() {
        let src = "use hs_des::{SimSpan, SimTime};\nfn f(now: SimTime, dt_s: f64) -> SimTime {\n    now + SimSpan::from_secs_f64(dt_s)\n}\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn as_secs_for_reporting_is_fine() {
        let src = "use hs_des::SimTime;\nfn f(now: SimTime, started: SimTime) -> f64 {\n    now.saturating_since(started).as_secs_f64()\n}\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn par_sum_f64_is_flagged() {
        let src = "use rayon::prelude::*;\nfn f(xs: &[f64]) -> f64 {\n    xs.par_iter().map(|x| x * 2.0).sum::<f64>()\n}\n";
        let fs = findings(src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, Rule::NondetReduce);
    }

    #[test]
    fn par_ordered_collect_is_fine() {
        let src = "use rayon::prelude::*;\nfn f(xs: &[f64]) -> f64 {\n    let v: Vec<f64> = xs.par_iter().map(|x| x * 2.0).collect();\n    v.iter().sum::<f64>()\n}\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn sequential_sum_inside_par_closure_is_fine() {
        let src = "use rayon::prelude::*;\nfn f(xs: &[Vec<f64>]) -> Vec<f64> {\n    xs.par_iter().map(|v| v.iter().sum::<f64>()).collect()\n}\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn par_fold_is_flagged() {
        let src = "use rayon::prelude::*;\nfn f(xs: &[u64]) -> u64 {\n    xs.par_iter().fold(|| 0u64, |a, b| a + b).sum()\n}\n";
        let fs = findings(src);
        assert!(
            fs.iter().any(|f| f.rule == Rule::NondetReduce),
            "fold not flagged: {fs:?}"
        );
    }

    #[test]
    fn lock_in_sim_field_is_flagged() {
        let src = "struct S { pending: std::sync::Mutex<Vec<u64>> }\n";
        let fs = findings(src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, Rule::LockInSim);
    }

    #[test]
    fn profile_gating_respected() {
        // Same source, different rule sets: obs-style profile ignores
        // Mutex but still catches unwrap.
        let src =
            "struct S { m: std::sync::Mutex<u32> }\nfn f(v: Option<u32>) -> u32 { v.unwrap() }\n";
        let all = lint_file("t.rs", src, Rule::ALL).findings;
        assert_eq!(all.len(), 2);
        let obs = lint_file("t.rs", src, &[Rule::Unwrap]).findings;
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].rule, Rule::Unwrap);
    }

    #[test]
    fn ledger_round_trip_and_check() {
        let text = r#"{
  "budget": 2,
  "waivers": [
    {"file": "crates/a/src/lib.rs", "rule": "wall-clock", "max_count": 1, "reason": "reporting only"},
    {"file": "crates/b/src/net.rs", "rule": "float-eq", "max_count": 1, "reason": "sentinel"}
  ]
}"#;
        let ledger = Ledger::parse(text).expect("ledger parses");
        assert_eq!(ledger.budget, 2);
        let sites = vec![
            WaiverSite {
                file: "crates/a/src/lib.rs".into(),
                line: 10,
                rule: Rule::WallClock,
                reason: "reporting only".into(),
                used: true,
            },
            WaiverSite {
                file: "crates/b/src/net.rs".into(),
                line: 20,
                rule: Rule::FloatEq,
                reason: "sentinel".into(),
                used: true,
            },
        ];
        assert!(ledger.check(&sites).is_empty());
    }

    #[test]
    fn ledger_flags_unlisted_and_stale_and_budget() {
        let ledger = Ledger {
            budget: 3,
            entries: vec![LedgerEntry {
                file: "crates/a/src/lib.rs".into(),
                rule: Rule::WallClock,
                max_count: 1,
                reason: "reporting".into(),
            }],
        };
        // Unlisted annotation + stale entry + budget mismatch, all at once.
        let sites = vec![WaiverSite {
            file: "crates/b/src/net.rs".into(),
            line: 5,
            rule: Rule::FloatEq,
            reason: "sentinel".into(),
            used: true,
        }];
        let v = ledger.check(&sites);
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v
            .iter()
            .any(|m| m.contains("no simlint.waivers.json entry")));
        assert!(v.iter().any(|m| m.contains("stale entry")));
        assert!(v.iter().any(|m| m.contains("budget 3 != sum")));
    }

    #[test]
    fn ledger_flags_stale_annotation() {
        let ledger = Ledger {
            budget: 1,
            entries: vec![LedgerEntry {
                file: "t.rs".into(),
                rule: Rule::WallClock,
                max_count: 1,
                reason: "x".into(),
            }],
        };
        let sites = vec![WaiverSite {
            file: "t.rs".into(),
            line: 3,
            rule: Rule::WallClock,
            reason: "x".into(),
            used: false,
        }];
        let v = ledger.check(&sites);
        assert!(v.iter().any(|m| m.contains("never fires")), "{v:?}");
    }

    #[test]
    fn report_json_schema_round_trips() {
        let report = WorkspaceReport {
            findings: vec![Finding {
                file: "crates/x/src/lib.rs".into(),
                line: 3,
                rule: Rule::UnitsMixing,
                message: "`+` mixes bytes with seconds".into(),
            }],
            waivers: vec![WaiverSite {
                file: "crates/y/src/lib.rs".into(),
                line: 9,
                rule: Rule::Unwrap,
                reason: "lock poisoning recovered".into(),
                used: true,
            }],
            ledger_violations: vec![],
            files_scanned: 7,
        };
        let text = json::to_string_pretty(&report.to_json(), 0);
        let back = json::parse(&text).expect("report JSON parses");
        assert_eq!(back.get("version").and_then(Json::as_int), Some(2));
        assert_eq!(back.get("files_scanned").and_then(Json::as_int), Some(7));
        let fs = back
            .get("findings")
            .and_then(Json::as_arr)
            .expect("findings");
        assert_eq!(fs.len(), 1);
        assert_eq!(
            fs[0].get("rule").and_then(Json::as_str),
            Some("units-mixing")
        );
        assert_eq!(fs[0].get("line").and_then(Json::as_int), Some(3));
        let ws = back.get("waivers").and_then(Json::as_arr).expect("waivers");
        assert_eq!(ws[0].get("used"), Some(&Json::Bool(true)));
        assert_eq!(
            back.get("summary").and_then(|s| s.get("clean")),
            Some(&Json::Bool(false))
        );
    }

    /// The workspace itself must lint clean — the same gate CI runs via
    /// `cargo run -p simlint`.
    #[test]
    fn workspace_is_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("simlint lives at <root>/crates/simlint");
        let report = lint_workspace(root).expect("workspace walk succeeds");
        assert!(
            report.is_clean(),
            "workspace has simlint findings/violations:\n{}\n{}",
            report
                .findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n"),
            report.ledger_violations.join("\n")
        );
    }
}
