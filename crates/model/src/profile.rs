//! Profiling + interpolation: fitting `C1…C6` (§III-C2).
//!
//! "Similar to the existing works, we use a profiling and interpolation
//! approach to figure out the values of C1 to C6." The profile source here
//! is the roofline [`GpuModel`]; the fit is ordinary least squares over a
//! grid of batch shapes and parallelism degrees. The returned
//! [`FittedModel`] reports R² so experiments can assert the linear forms
//! actually explain the profiled latencies.

use crate::compute::{decode_features, prefill_features, CostCoefficients};
use crate::config::{BatchStats, ModelConfig};
use crate::fit::{least_squares, r_squared};
use crate::gpu::GpuModel;

/// A fitted cost model with goodness-of-fit diagnostics.
#[derive(Clone, Debug)]
pub struct FittedModel {
    /// The fitted coefficients (Eqs. 12–13).
    pub coefficients: CostCoefficients,
    /// R² of the prefill fit.
    pub prefill_r2: f64,
    /// R² of the decode fit.
    pub decode_r2: f64,
    /// Number of profile points used per phase.
    pub samples: usize,
}

/// The profiling grid: batch sizes, input lengths, TP degrees, PP degrees.
#[derive(Clone, Debug)]
pub struct ProfileGrid {
    /// Batch sizes to profile.
    pub batch_sizes: Vec<u32>,
    /// Input lengths to profile.
    pub input_lens: Vec<u64>,
    /// Tensor-parallel degrees.
    pub tp: Vec<u32>,
    /// Pipeline-parallel degrees.
    pub pp: Vec<u32>,
}

impl Default for ProfileGrid {
    fn default() -> Self {
        ProfileGrid {
            batch_sizes: vec![1, 2, 4, 8, 16],
            input_lens: vec![64, 128, 256, 512, 1024, 2048],
            tp: vec![1, 2, 4, 8],
            pp: vec![1, 2, 4],
        }
    }
}

/// Fit `C1, C2, C3` against roofline prefill profiles.
pub fn fit_prefill_coefficients(
    gpu: &GpuModel,
    model: &ModelConfig,
    grid: &ProfileGrid,
    block: f64,
) -> (f64, f64, f64, f64) {
    let mut rows = Vec::new();
    let mut ys = Vec::new();
    for &q in &grid.batch_sizes {
        for &l in &grid.input_lens {
            for &tp in &grid.tp {
                let batch = BatchStats::uniform(q, l, 64);
                let [gemm, attn] = prefill_features(model, &batch, tp, block);
                rows.push(vec![gemm, attn, 1.0]);
                ys.push(gpu.prefill_compute(model, &batch, tp));
            }
        }
    }
    let beta = least_squares(&rows, &ys).expect("prefill fit is well-posed");
    let preds: Vec<f64> = rows
        .iter()
        .map(|r| beta[0] * r[0] + beta[1] * r[1] + beta[2])
        .collect();
    (beta[0], beta[1], beta[2].max(0.0), r_squared(&preds, &ys))
}

/// Fit `C4, C5, C6` against roofline decode profiles.
pub fn fit_decode_coefficients(
    gpu: &GpuModel,
    model: &ModelConfig,
    grid: &ProfileGrid,
) -> (f64, f64, f64, f64) {
    let mut rows = Vec::new();
    let mut ys = Vec::new();
    for &q in &grid.batch_sizes {
        for &l in &grid.input_lens {
            for &tp in &grid.tp {
                for &pp in &grid.pp {
                    let batch = BatchStats::uniform(q, l, 64);
                    let [gemm, kv] = decode_features(model, &batch, tp, pp);
                    rows.push(vec![gemm, kv, 1.0]);
                    ys.push(gpu.decode_compute(model, &batch, tp, pp));
                }
            }
        }
    }
    let beta = least_squares(&rows, &ys).expect("decode fit is well-posed");
    let preds: Vec<f64> = rows
        .iter()
        .map(|r| beta[0] * r[0] + beta[1] * r[1] + beta[2])
        .collect();
    (beta[0], beta[1], beta[2].max(0.0), r_squared(&preds, &ys))
}

/// Run the full profiling pipeline for `(gpu, model)`.
pub fn fit(gpu: &GpuModel, model: &ModelConfig, grid: &ProfileGrid) -> FittedModel {
    let block = 128.0;
    let (c1, c2, c3, pre_r2) = fit_prefill_coefficients(gpu, model, grid, block);
    let (c4, c5, c6, dec_r2) = fit_decode_coefficients(gpu, model, grid);
    let samples = grid.batch_sizes.len() * grid.input_lens.len() * grid.tp.len();
    FittedModel {
        coefficients: CostCoefficients {
            c1,
            c2,
            c3,
            c4,
            c5,
            c6,
            block,
        },
        prefill_r2: pre_r2,
        decode_r2: dec_r2,
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::{decode_latency_secs, prefill_latency_secs};

    #[test]
    fn prefill_fit_explains_roofline() {
        let gpu = GpuModel::a100();
        let model = ModelConfig::opt_66b();
        let fitted = fit(&gpu, &model, &ProfileGrid::default());
        assert!(
            fitted.prefill_r2 > 0.98,
            "prefill R² = {}",
            fitted.prefill_r2
        );
        assert!(fitted.decode_r2 > 0.90, "decode R² = {}", fitted.decode_r2);
        // Positive dominant terms.
        assert!(fitted.coefficients.c1 > 0.0);
        assert!(fitted.coefficients.c4 > 0.0);
    }

    #[test]
    fn fitted_model_interpolates_unseen_points() {
        let gpu = GpuModel::a100();
        let model = ModelConfig::opt_66b();
        let fitted = fit(&gpu, &model, &ProfileGrid::default());
        // A point not on the grid: q=6, len=768, tp=4.
        let batch = BatchStats::uniform(6, 768, 64);
        let pred = prefill_latency_secs(&fitted.coefficients, &model, &batch, 4);
        let truth = gpu.prefill_compute(&model, &batch, 4);
        assert!(
            (pred - truth).abs() / truth < 0.15,
            "pred {pred} vs truth {truth}"
        );
        let pred_d = decode_latency_secs(&fitted.coefficients, &model, &batch, 4, 2);
        let truth_d = gpu.decode_compute(&model, &batch, 4, 2);
        assert!(
            (pred_d - truth_d).abs() / truth_d < 0.35,
            "decode pred {pred_d} vs truth {truth_d}"
        );
    }

    #[test]
    fn fits_differ_across_gpus() {
        let model = ModelConfig::opt_66b();
        let grid = ProfileGrid::default();
        let a = fit(&GpuModel::a100(), &model, &grid);
        let v = fit(&GpuModel::v100(), &model, &grid);
        // V100 is slower: larger linear coefficient.
        assert!(v.coefficients.c1 > a.coefficients.c1);
    }
}
