//! Roofline GPU execution model — the "hardware" that gets profiled.
//!
//! The paper fits its latency equations to profiles of real A100/V100/L40
//! GPUs. We substitute a roofline model (DESIGN.md "Substitutions"): a
//! kernel's time is the max of its compute time at a fraction of peak
//! FLOPs and its memory time at a fraction of peak HBM bandwidth, plus a
//! fixed per-kernel launch overhead. Relative compute/communication
//! proportions — the quantity Fig. 1 and the planner depend on — follow
//! published spec sheets.

use crate::config::{BatchStats, ModelConfig};

/// A roofline GPU.
#[derive(Clone, Debug, PartialEq)]
pub struct GpuModel {
    /// Name ("A100-40G", ...).
    pub name: String,
    /// Peak dense FP16 FLOP/s.
    pub peak_flops: f64,
    /// Peak HBM bandwidth, bytes/s.
    pub peak_hbm: f64,
    /// Achievable fraction of peak FLOPs for large GEMMs.
    pub compute_efficiency: f64,
    /// Achievable fraction of peak bandwidth.
    pub memory_efficiency: f64,
    /// Fixed overhead per kernel launch, seconds.
    pub kernel_overhead_s: f64,
    /// Fixed per-iteration framework overhead (Python runtime, batching
    /// bookkeeping — the paper's `C3`/`C6` contributors), seconds.
    pub framework_overhead_s: f64,
}

impl GpuModel {
    /// A100 (SXM, 40/80 GB): 312 TFLOPS FP16, 1.55 TB/s.
    pub fn a100() -> Self {
        GpuModel {
            name: "A100".into(),
            peak_flops: 312e12,
            peak_hbm: 1555e9,
            compute_efficiency: 0.55,
            memory_efficiency: 0.80,
            kernel_overhead_s: 4e-6,
            framework_overhead_s: 2e-3,
        }
    }

    /// V100: 125 TFLOPS FP16 tensor, 900 GB/s.
    pub fn v100() -> Self {
        GpuModel {
            name: "V100".into(),
            peak_flops: 125e12,
            peak_hbm: 900e9,
            compute_efficiency: 0.50,
            memory_efficiency: 0.75,
            kernel_overhead_s: 5e-6,
            framework_overhead_s: 2e-3,
        }
    }

    /// L40: 181 TFLOPS FP16, 864 GB/s GDDR6.
    pub fn l40() -> Self {
        GpuModel {
            name: "L40".into(),
            peak_flops: 181e12,
            peak_hbm: 864e9,
            compute_efficiency: 0.50,
            memory_efficiency: 0.75,
            kernel_overhead_s: 4e-6,
            framework_overhead_s: 2e-3,
        }
    }

    /// Effective compute throughput (FLOP/s).
    pub fn effective_flops(&self) -> f64 {
        self.peak_flops * self.compute_efficiency
    }

    /// Effective memory bandwidth (bytes/s).
    pub fn effective_hbm(&self) -> f64 {
        self.peak_hbm * self.memory_efficiency
    }

    /// Roofline time for one kernel: `max(compute, memory) + overhead`.
    pub fn kernel_time(&self, flops: f64, bytes: f64) -> f64 {
        let tc = flops / self.effective_flops();
        let tm = bytes / self.effective_hbm();
        tc.max(tm) + self.kernel_overhead_s
    }

    /// "Measured" prefill compute latency for `batch` on this GPU with
    /// tensor parallelism `p_tens` (seconds, excluding communication).
    ///
    /// Work per GPU is `1/p_tens` of the model's prefill FLOPs; weights
    /// are streamed once from HBM (`R/p_tens` bytes) and activations
    /// roughly twice. Each layer launches ~6 fused kernels.
    pub fn prefill_compute(&self, model: &ModelConfig, batch: &BatchStats, p_tens: u32) -> f64 {
        let p = p_tens.max(1) as f64;
        let flops = model.prefill_flops(batch.k_in, batch.k_in2) / p;
        let weight_bytes = model.param_bytes() as f64 / p;
        let act_bytes =
            2.0 * batch.k_in as f64 * model.hidden as f64 * model.layers as f64 * 2.0 / p;
        let kernels = 6.0 * model.layers as f64;
        self.kernel_time(flops, weight_bytes + act_bytes)
            + (kernels - 1.0) * self.kernel_overhead_s
            + self.framework_overhead_s
    }

    /// "Measured" per-token decode compute latency for `batch` with
    /// `p_tens × p_pipe` GPUs (seconds; decode is memory-bound — every
    /// output token re-reads the weight shard).
    pub fn decode_compute(
        &self,
        model: &ModelConfig,
        batch: &BatchStats,
        p_tens: u32,
        p_pipe: u32,
    ) -> f64 {
        let p = (p_tens.max(1) * p_pipe.max(1)) as f64;
        let avg_ctx = if batch.q > 0 {
            batch.k_in as f64 / batch.q as f64
        } else {
            0.0
        };
        let flops = batch.q as f64 * model.decode_flops(avg_ctx as u64) / p;
        // Weights stream once per iteration regardless of batch size; the
        // KV cache of all live sequences streams too.
        let weight_bytes = model.param_bytes() as f64 / p;
        let kv_bytes = batch.k_in as f64 * model.kv_bytes_per_token() as f64 / p;
        let kernels = 6.0 * model.layers as f64 / p_pipe.max(1) as f64;
        self.kernel_time(flops, weight_bytes + kv_bytes)
            + (kernels - 1.0) * self.kernel_overhead_s
            + self.framework_overhead_s / p_pipe.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roofline_takes_the_max() {
        let g = GpuModel::a100();
        // Pure compute kernel.
        let t1 = g.kernel_time(1e12, 0.0);
        assert!((t1 - (1e12 / g.effective_flops() + g.kernel_overhead_s)).abs() < 1e-12);
        // Pure memory kernel.
        let t2 = g.kernel_time(0.0, 1e9);
        assert!((t2 - (1e9 / g.effective_hbm() + g.kernel_overhead_s)).abs() < 1e-12);
    }

    #[test]
    fn tensor_parallelism_shrinks_prefill() {
        let g = GpuModel::a100();
        let m = ModelConfig::opt_66b();
        let b = BatchStats::uniform(8, 1024, 64);
        let t1 = g.prefill_compute(&m, &b, 1);
        let t4 = g.prefill_compute(&m, &b, 4);
        assert!(t4 < t1, "TP should reduce prefill time");
        // Sublinear speedup because of fixed overheads.
        assert!(t4 > t1 / 4.0);
    }

    #[test]
    fn prefill_magnitude_sane_for_a100() {
        // OPT-66B, batch 8 x 1024 tokens, TP=4: hundreds of ms on A100s
        // (the paper's Fig. 1 regime is ~1-10s for LLaMA-70B on 4 GPUs).
        let g = GpuModel::a100();
        let m = ModelConfig::opt_66b();
        let b = BatchStats::uniform(8, 1024, 64);
        let t = g.prefill_compute(&m, &b, 4);
        assert!(t > 0.1 && t < 10.0, "prefill = {t}s");
    }

    #[test]
    fn decode_is_memory_bound_and_fast() {
        let g = GpuModel::a100();
        let m = ModelConfig::opt_66b();
        let b = BatchStats::uniform(8, 1024, 64);
        let t = g.decode_compute(&m, &b, 4, 1);
        // Per-token decode: tens of ms at most on 4 GPUs.
        assert!(t > 1e-3 && t < 0.15, "decode = {t}s");
        // More GPUs -> faster.
        assert!(g.decode_compute(&m, &b, 8, 1) < t);
    }

    #[test]
    fn weaker_gpus_are_slower() {
        let m = ModelConfig::opt_66b();
        let b = BatchStats::uniform(8, 1024, 64);
        let a100 = GpuModel::a100().prefill_compute(&m, &b, 4);
        let v100 = GpuModel::v100().prefill_compute(&m, &b, 4);
        let l40 = GpuModel::l40().prefill_compute(&m, &b, 4);
        assert!(v100 > a100);
        assert!(l40 > a100);
    }
}
