//! Eqs. 12–13: the planner's compute-latency forms.
//!
//! ```text
//! T_c^pre = C1/P_tens · (4h² + 2hm)·K_in·L  +  C2/(b·P_tens) · 3h·K_in2·L  +  C3    (Eq. 12)
//! T_c^dec = C4/(P_tens·P_pipe) · (4h² + 2hm)·L  +  C5/(P_tens·P_pipe) · 3h·K_in·L  +  C6 (Eq. 13)
//! ```
//!
//! (The paper writes the per-layer forms with `L` folded into the fitted
//! constants; we keep `L` explicit in the feature so one fit generalizes
//! across model depths, which changes nothing for a fixed model.)
//!
//! `C1, C2, C4, C5` are linear fitting parameters; `C3` absorbs Python
//! runtime / system noise and `C6` the pipeline-fill overhead (§III-C2).
//! [`crate::profile`] produces the coefficients.

use crate::config::{BatchStats, ModelConfig};

/// The six fitted coefficients of Eqs. 12–13.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CostCoefficients {
    /// Linear GEMM term of prefill (s per FLOP-ish unit).
    pub c1: f64,
    /// Attention term of prefill.
    pub c2: f64,
    /// Fixed prefill overhead (s).
    pub c3: f64,
    /// Linear GEMM term of decode.
    pub c4: f64,
    /// Attention/KV term of decode.
    pub c5: f64,
    /// Fixed decode overhead incl. pipeline fill (s).
    pub c6: f64,
    /// Attention kernel block size `b` (Table I), folded into Eq. 12.
    pub block: f64,
}

impl CostCoefficients {
    /// Coefficients with the default attention block size (128).
    pub fn with_block(c1: f64, c2: f64, c3: f64, c4: f64, c5: f64, c6: f64) -> Self {
        CostCoefficients {
            c1,
            c2,
            c3,
            c4,
            c5,
            c6,
            block: 128.0,
        }
    }
}

/// The two prefill regression features of Eq. 12 (GEMM term, attention
/// term) for a given shape/batch/parallelism, *before* applying `C1, C2`.
pub fn prefill_features(
    model: &ModelConfig,
    batch: &BatchStats,
    p_tens: u32,
    block: f64,
) -> [f64; 2] {
    let h = model.hidden as f64;
    let m = model.ffn as f64;
    let l = model.layers as f64;
    let p = p_tens.max(1) as f64;
    let gemm = (4.0 * h * h + 2.0 * h * m) * batch.k_in as f64 * l / p;
    let attn = 3.0 * h * batch.k_in2 as f64 * l / (block * p);
    [gemm, attn]
}

/// The two decode regression features of Eq. 13.
pub fn decode_features(
    model: &ModelConfig,
    batch: &BatchStats,
    p_tens: u32,
    p_pipe: u32,
) -> [f64; 2] {
    let h = model.hidden as f64;
    let m = model.ffn as f64;
    let l = model.layers as f64;
    let p = (p_tens.max(1) * p_pipe.max(1)) as f64;
    let gemm = (4.0 * h * h + 2.0 * h * m) * l / p;
    let kv = 3.0 * h * batch.k_in as f64 * l / p;
    [gemm, kv]
}

/// Eq. 12: prefill compute latency (seconds).
pub fn prefill_latency_secs(
    coef: &CostCoefficients,
    model: &ModelConfig,
    batch: &BatchStats,
    p_tens: u32,
) -> f64 {
    let [gemm, attn] = prefill_features(model, batch, p_tens, coef.block);
    coef.c1 * gemm + coef.c2 * attn + coef.c3
}

/// Eq. 13: per-output-token decode compute latency (seconds).
pub fn decode_latency_secs(
    coef: &CostCoefficients,
    model: &ModelConfig,
    batch: &BatchStats,
    p_tens: u32,
    p_pipe: u32,
) -> f64 {
    let [gemm, kv] = decode_features(model, batch, p_tens, p_pipe);
    coef.c4 * gemm + coef.c5 * kv + coef.c6
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coef() -> CostCoefficients {
        // Roughly 1/(170 TFLOPS effective) per FLOP for the GEMM terms.
        CostCoefficients::with_block(
            2.0 / 170e12,
            2.0 / 170e12,
            2e-3,
            2.0 / 170e12,
            4.0 / 1.2e12,
            3e-3,
        )
    }

    #[test]
    fn prefill_scales_inversely_with_tp() {
        let m = ModelConfig::opt_66b();
        let b = BatchStats::uniform(8, 1024, 64);
        let t1 = prefill_latency_secs(&coef(), &m, &b, 1);
        let t4 = prefill_latency_secs(&coef(), &m, &b, 4);
        assert!(t4 < t1 / 3.0 && t4 > t1 / 4.0 - 1e-6);
    }

    #[test]
    fn decode_scales_with_total_gpus() {
        let m = ModelConfig::opt_66b();
        let b = BatchStats::uniform(8, 1024, 64);
        let t_2x2 = decode_latency_secs(&coef(), &m, &b, 2, 2);
        let t_4x1 = decode_latency_secs(&coef(), &m, &b, 4, 1);
        // Same GPU count: identical variable terms; only C6 handling would
        // differ, which we keep constant here.
        assert!((t_2x2 - t_4x1).abs() < 1e-9);
    }

    #[test]
    fn overheads_floor_latency() {
        let m = ModelConfig::tiny_test();
        let b = BatchStats::uniform(1, 1, 1);
        let c = coef();
        assert!(prefill_latency_secs(&c, &m, &b, 64) >= c.c3);
        assert!(decode_latency_secs(&c, &m, &b, 64, 8) >= c.c6);
    }

    #[test]
    fn features_monotone_in_load() {
        let m = ModelConfig::opt_66b();
        let small = BatchStats::uniform(1, 128, 16);
        let big = BatchStats::uniform(8, 1024, 64);
        let fs = prefill_features(&m, &small, 4, 128.0);
        let fb = prefill_features(&m, &big, 4, 128.0);
        assert!(fb[0] > fs[0] && fb[1] > fs[1]);
        let ds = decode_features(&m, &small, 4, 1);
        let db = decode_features(&m, &big, 4, 1);
        assert_eq!(ds[0], db[0]); // GEMM term independent of batch
        assert!(db[1] > ds[1]); // KV term grows with context
    }
}
