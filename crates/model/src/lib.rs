//! # hs-model — LLM and GPU cost models
//!
//! The offline planner needs analytical latency and memory models to
//! search the parallelism space without running a single kernel. The paper
//! (§III-C2) models prefill and decode compute latency with the linear
//! forms of Eqs. 12–13 whose coefficients `C1…C6` are obtained "using a
//! profiling and interpolation approach". This crate provides the whole
//! chain:
//!
//! * [`config`] — transformer shapes (OPT-13B/66B/175B, LLaMA-3-70B) and
//!   parameter/KV-cache accounting (Table I's `L, h, A, m, R`).
//! * [`gpu`] — a roofline execution model for the synthetic GPU used in
//!   place of real hardware: per-phase FLOPs and HBM traffic against peak
//!   compute/bandwidth plus kernel-launch overhead. This is the
//!   "profiled" ground truth.
//! * [`compute`] — Eqs. 12–13 exactly as written, parameterized by fitted
//!   coefficients.
//! * [`profile`] — the fitting pipeline: sweep batch/length grids on the
//!   roofline model, then least-squares `C1…C6` ([`fit`]).
//! * [`memory`] — GPU memory feasibility: weight shards, KV-cache bytes
//!   per token, activation scratch (drives Algorithm 1's memory filter).

pub mod compute;
pub mod config;
pub mod fit;
pub mod gpu;
pub mod memory;
pub mod profile;

pub use compute::{decode_latency_secs, prefill_latency_secs, CostCoefficients};
pub use config::{BatchStats, ModelConfig, Precision};
pub use gpu::GpuModel;
pub use memory::MemoryModel;
pub use profile::{fit_decode_coefficients, fit_prefill_coefficients, FittedModel};
