//! GPU memory feasibility (drives Algorithm 1's memory filter).
//!
//! Algorithm 1 prunes GPUs whose free memory is below
//! `m_req = R / (P_tens · P_pipe · R_frac)` — the per-GPU weight shard
//! inflated by the reserved-memory ratio. The remaining memory holds the
//! KV cache, which bounds how many concurrent requests a decode instance
//! can hold (Fig. 10's metric).

use crate::config::ModelConfig;

/// Memory accounting for one parallel configuration of a model.
#[derive(Clone, Debug)]
pub struct MemoryModel {
    /// Per-GPU weight shard, bytes.
    pub weight_shard_bytes: u64,
    /// KV-cache bytes per token *per GPU* under this sharding.
    pub kv_bytes_per_token: u64,
    /// Activation scratch reserve per GPU, bytes.
    pub activation_reserve_bytes: u64,
}

impl MemoryModel {
    /// Build for `model` sharded over `p_tens × p_pipe` GPUs.
    ///
    /// Tensor parallelism splits each layer's weights and KV heads;
    /// pipeline parallelism splits layers. Both therefore divide the
    /// per-GPU weight shard and KV footprint.
    pub fn new(model: &ModelConfig, p_tens: u32, p_pipe: u32) -> Self {
        let ways = (p_tens.max(1) as u64) * (p_pipe.max(1) as u64);
        let weight_shard_bytes = model.param_bytes() / ways;
        let kv_bytes_per_token = (model.kv_bytes_per_token() / ways).max(1);
        // Activation scratch: a few token-buffers of h elements; modelled
        // as 512 tokens x h x precision, tensor-sharded.
        let activation_reserve_bytes =
            512 * model.hidden as u64 * model.precision.bytes() / p_tens.max(1) as u64;
        MemoryModel {
            weight_shard_bytes,
            kv_bytes_per_token,
            activation_reserve_bytes,
        }
    }

    /// The paper's `m_req = R / (P_tens · P_pipe · R_frac)`: the free
    /// memory a GPU must have to host a shard, with `r_frac ∈ (0, 1]` the
    /// fraction of GPU memory the operator allows the model to use.
    pub fn required_bytes(model: &ModelConfig, p_tens: u32, p_pipe: u32, r_frac: f64) -> u64 {
        assert!(r_frac > 0.0 && r_frac <= 1.0, "R_frac out of range");
        let ways = (p_tens.max(1) as u64) * (p_pipe.max(1) as u64);
        ((model.param_bytes() as f64) / (ways as f64 * r_frac)).ceil() as u64
    }

    /// KV-cache capacity in tokens given `free_bytes` of GPU memory after
    /// weights and activation reserve.
    pub fn kv_token_capacity(&self, gpu_memory_bytes: u64) -> u64 {
        let used = self.weight_shard_bytes + self.activation_reserve_bytes;
        gpu_memory_bytes.saturating_sub(used) / self.kv_bytes_per_token
    }

    /// Fraction of GPU memory consumed when `tokens` of KV cache are live.
    pub fn utilization(&self, gpu_memory_bytes: u64, tokens: u64) -> f64 {
        let used = self.weight_shard_bytes
            + self.activation_reserve_bytes
            + tokens * self.kv_bytes_per_token;
        (used as f64 / gpu_memory_bytes as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharding_divides_footprint() {
        let m = ModelConfig::opt_66b();
        let whole = MemoryModel::new(&m, 1, 1);
        let sharded = MemoryModel::new(&m, 4, 2);
        assert_eq!(whole.weight_shard_bytes / 8, sharded.weight_shard_bytes);
        assert_eq!(whole.kv_bytes_per_token / 8, sharded.kv_bytes_per_token);
    }

    #[test]
    fn opt_66b_needs_multiple_40g_gpus() {
        let m = ModelConfig::opt_66b();
        // ~132 GB of weights: doesn't fit on one 40 GB A100 even with
        // R_frac=1, fits on 8 with headroom.
        let one = MemoryModel::required_bytes(&m, 1, 1, 1.0);
        assert!(one > 40 * (1 << 30));
        let eight = MemoryModel::required_bytes(&m, 4, 2, 0.9);
        assert!(eight < 40 * (1 << 30));
    }

    #[test]
    fn r_frac_inflates_requirement() {
        let m = ModelConfig::opt_66b();
        let tight = MemoryModel::required_bytes(&m, 4, 2, 1.0);
        let loose = MemoryModel::required_bytes(&m, 4, 2, 0.5);
        assert_eq!(loose, 2 * tight);
    }

    #[test]
    fn kv_capacity_and_utilization() {
        let m = ModelConfig::opt_66b();
        let mm = MemoryModel::new(&m, 8, 1);
        let gpu = 40u64 * (1 << 30);
        let cap = mm.kv_token_capacity(gpu);
        assert!(cap > 10_000, "cap = {cap}");
        // Utilization at zero tokens is just weights+reserve; at capacity
        // it approaches 1.
        let base = mm.utilization(gpu, 0);
        assert!(base > 0.3 && base < 0.6, "base = {base}");
        let full = mm.utilization(gpu, cap);
        assert!(full > 0.95 && full <= 1.0, "full = {full}");
        // Monotone in tokens.
        assert!(mm.utilization(gpu, cap / 2) > base);
    }

    #[test]
    #[should_panic(expected = "R_frac")]
    fn bad_r_frac_panics() {
        let m = ModelConfig::tiny_test();
        MemoryModel::required_bytes(&m, 1, 1, 0.0);
    }
}
