//! Transformer model shapes and batch statistics (Table I inputs).

/// Numeric precision of weights/activations on the wire and in memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Precision {
    /// 16-bit floats (the paper's setting for all experiments).
    Fp16,
    /// 32-bit floats (used by some baselines' communication path).
    Fp32,
}

impl Precision {
    /// Bytes per element.
    pub fn bytes(self) -> u64 {
        match self {
            Precision::Fp16 => 2,
            Precision::Fp32 => 4,
        }
    }
}

/// A decoder-only transformer's shape parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct ModelConfig {
    /// Human-readable name.
    pub name: String,
    /// Number of transformer layers `L`.
    pub layers: u32,
    /// Hidden dimension `h`.
    pub hidden: u32,
    /// Attention heads `A`.
    pub heads: u32,
    /// FFN intermediate size `m`.
    pub ffn: u32,
    /// Vocabulary size (embeddings).
    pub vocab: u32,
    /// Weight precision.
    pub precision: Precision,
}

impl ModelConfig {
    /// OPT-13B: 40 layers, h=5120, 40 heads.
    pub fn opt_13b() -> Self {
        ModelConfig {
            name: "OPT-13B".into(),
            layers: 40,
            hidden: 5120,
            heads: 40,
            ffn: 4 * 5120,
            vocab: 50272,
            precision: Precision::Fp16,
        }
    }

    /// OPT-66B: 64 layers, h=9216, 72 heads (the testbed model).
    pub fn opt_66b() -> Self {
        ModelConfig {
            name: "OPT-66B".into(),
            layers: 64,
            hidden: 9216,
            heads: 72,
            ffn: 4 * 9216,
            vocab: 50272,
            precision: Precision::Fp16,
        }
    }

    /// OPT-175B: 96 layers, h=12288, 96 heads (the simulation model).
    pub fn opt_175b() -> Self {
        ModelConfig {
            name: "OPT-175B".into(),
            layers: 96,
            hidden: 12288,
            heads: 96,
            ffn: 4 * 12288,
            vocab: 50272,
            precision: Precision::Fp16,
        }
    }

    /// LLaMA-3-70B-like shape (Fig. 1's breakdown measurement):
    /// 80 layers, h=8192, m=28672 (SwiGLU), 64 heads.
    pub fn llama3_70b() -> Self {
        ModelConfig {
            name: "LLaMA-3-70B".into(),
            layers: 80,
            hidden: 8192,
            heads: 64,
            ffn: 28672,
            vocab: 128256,
            precision: Precision::Fp16,
        }
    }

    /// A small model for fast tests.
    pub fn tiny_test() -> Self {
        ModelConfig {
            name: "tiny".into(),
            layers: 4,
            hidden: 256,
            heads: 8,
            ffn: 1024,
            vocab: 1000,
            precision: Precision::Fp16,
        }
    }

    /// Total parameter count: per-layer attention (`4h²`) + FFN (`2hm`)
    /// blocks plus input/output embeddings.
    pub fn param_count(&self) -> u64 {
        let h = self.hidden as u64;
        let m = self.ffn as u64;
        let l = self.layers as u64;
        l * (4 * h * h + 2 * h * m) + 2 * (self.vocab as u64) * h
    }

    /// Model parameter size `R` in bytes at the configured precision.
    pub fn param_bytes(&self) -> u64 {
        self.param_count() * self.precision.bytes()
    }

    /// KV-cache bytes per token across all layers (2 tensors × h × L).
    pub fn kv_bytes_per_token(&self) -> u64 {
        2 * self.hidden as u64 * self.layers as u64 * self.precision.bytes()
    }

    /// FLOPs to prefill `k_in` total tokens with per-request squared sum
    /// `k_in2` (the attention-score term): `2 · params · K_in` matmul
    /// work plus `2 · 2 · h · L · K_in2` attention work.
    pub fn prefill_flops(&self, k_in: u64, k_in2: u64) -> f64 {
        let linear = 2.0 * self.param_count() as f64 * k_in as f64;
        let attn = 4.0 * self.hidden as f64 * self.layers as f64 * k_in2 as f64;
        linear + attn
    }

    /// FLOPs to decode one token for one sequence of current length
    /// `ctx`: `2 · params` plus attention over the cached context.
    pub fn decode_flops(&self, ctx: u64) -> f64 {
        2.0 * self.param_count() as f64 + 4.0 * self.hidden as f64 * self.layers as f64 * ctx as f64
    }

    /// Bytes of tensor-parallel synchronization per layer per token for
    /// the two all-reduce points (attention output and FFN output):
    /// `D_col(a) = D_col(f) = K_in · h` elements each (§III-C2).
    pub fn sync_bytes_per_layer(&self, tokens: u64) -> u64 {
        2 * tokens * self.hidden as u64 * self.precision.bytes()
    }

    /// Total tensor-parallel all-reduce bytes for a full forward pass over
    /// `tokens` tokens (both sync points, all layers).
    pub fn sync_bytes_total(&self, tokens: u64) -> u64 {
        self.sync_bytes_per_layer(tokens) * self.layers as u64
    }
}

/// Aggregate statistics of a batch of requests (Table I: `Q`, `K_in`,
/// `K_out`, `K_in2`), maintained by the online scheduler via moving
/// averages (§III-B).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BatchStats {
    /// Batch size `Q`.
    pub q: u32,
    /// Total input tokens `K_in = Σ l_i`.
    pub k_in: u64,
    /// Total output tokens `K_out = Σ o_i`.
    pub k_out: u64,
    /// Squared sum of input lengths `K_in2 = Σ l_i²`.
    pub k_in2: u64,
}

impl BatchStats {
    /// Stats from explicit request lengths.
    pub fn from_lengths(inputs: &[u64], outputs: &[u64]) -> Self {
        assert_eq!(inputs.len(), outputs.len());
        BatchStats {
            q: inputs.len() as u32,
            k_in: inputs.iter().sum(),
            k_out: outputs.iter().sum(),
            k_in2: inputs.iter().map(|&l| l * l).sum(),
        }
    }

    /// A uniform batch: `q` requests of `l_in` input / `l_out` output
    /// tokens each.
    pub fn uniform(q: u32, l_in: u64, l_out: u64) -> Self {
        BatchStats {
            q,
            k_in: q as u64 * l_in,
            k_out: q as u64 * l_out,
            k_in2: q as u64 * l_in * l_in,
        }
    }

    /// Fold another request into the stats.
    pub fn push(&mut self, l_in: u64, l_out: u64) {
        self.q += 1;
        self.k_in += l_in;
        self.k_out += l_out;
        self.k_in2 += l_in * l_in;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opt_param_counts_are_plausible() {
        // Published sizes: 13B, 66B, 175B within ~10%.
        let b13 = ModelConfig::opt_13b().param_count() as f64;
        let b66 = ModelConfig::opt_66b().param_count() as f64;
        let b175 = ModelConfig::opt_175b().param_count() as f64;
        assert!((b13 / 13e9 - 1.0).abs() < 0.10, "13B -> {b13:.3e}");
        assert!((b66 / 66e9 - 1.0).abs() < 0.10, "66B -> {b66:.3e}");
        assert!((b175 / 175e9 - 1.0).abs() < 0.10, "175B -> {b175:.3e}");
    }

    #[test]
    fn param_bytes_respects_precision() {
        let mut m = ModelConfig::tiny_test();
        let fp16 = m.param_bytes();
        m.precision = Precision::Fp32;
        assert_eq!(m.param_bytes(), 2 * fp16);
    }

    #[test]
    fn kv_bytes_per_token() {
        let m = ModelConfig::opt_66b();
        // 2 * 9216 * 64 * 2 bytes = 2.25 MiB per token.
        assert_eq!(m.kv_bytes_per_token(), 2 * 9216 * 64 * 2);
    }

    #[test]
    fn sync_bytes_match_paper_form() {
        let m = ModelConfig::opt_66b();
        // Per layer: 2 sync points x K_in x h elements x 2 bytes.
        assert_eq!(m.sync_bytes_per_layer(100), 2 * 100 * 9216 * 2);
        assert_eq!(m.sync_bytes_total(100), m.sync_bytes_per_layer(100) * 64);
    }

    #[test]
    fn batch_stats_from_lengths() {
        let s = BatchStats::from_lengths(&[10, 20], &[5, 7]);
        assert_eq!(s.q, 2);
        assert_eq!(s.k_in, 30);
        assert_eq!(s.k_out, 12);
        assert_eq!(s.k_in2, 100 + 400);
        let mut u = BatchStats::uniform(1, 10, 5);
        u.push(20, 7);
        assert_eq!(u, s);
    }

    #[test]
    fn flops_scale_with_tokens() {
        let m = ModelConfig::tiny_test();
        let f1 = m.prefill_flops(100, 100 * 100);
        let f2 = m.prefill_flops(200, 200 * 200);
        assert!(f2 > 2.0 * f1 * 0.99); // superlinear due to attention
        assert!(m.decode_flops(1000) > m.decode_flops(10));
    }
}
