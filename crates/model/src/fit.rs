//! Small-system linear least squares (normal equations).
//!
//! The paper fits `C1…C6` by "profiling and interpolation"; we solve the
//! same regression with dense normal equations and Gaussian elimination
//! with partial pivoting — ample for ≤ 6 coefficients and a few hundred
//! profile points.

/// Solve `min ‖X·β − y‖²` for β, where `rows[i]` is the i-th feature row.
///
/// Returns `None` when the normal matrix is singular (collinear features
/// or too few rows).
pub fn least_squares(rows: &[Vec<f64>], y: &[f64]) -> Option<Vec<f64>> {
    let n = rows.len();
    assert_eq!(n, y.len(), "row/target count mismatch");
    if n == 0 {
        return None;
    }
    let k = rows[0].len();
    assert!(rows.iter().all(|r| r.len() == k), "ragged feature rows");
    // Normal equations: (XᵀX) β = Xᵀ y.
    let mut a = vec![vec![0.0f64; k]; k];
    let mut b = vec![0.0f64; k];
    for (r, &yy) in rows.iter().zip(y) {
        for i in 0..k {
            b[i] += r[i] * yy;
            for j in 0..k {
                a[i][j] += r[i] * r[j];
            }
        }
    }
    solve(&mut a, &mut b)
}

/// In-place Gaussian elimination with partial pivoting; returns the
/// solution of `a·x = b`, or `None` if singular.
fn solve(a: &mut [Vec<f64>], b: &mut [f64]) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        })?;
        if a[pivot][col].abs() < 1e-300 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate below. Split so the pivot row can be borrowed while
        // mutating the rows beneath it.
        let (pivot_rows, rest) = a.split_at_mut(col + 1);
        let pivot_row = &pivot_rows[col];
        for (off, row_vals) in rest.iter_mut().enumerate() {
            let row = col + 1 + off;
            let f = row_vals[col] / pivot_row[col];
            if f == 0.0 {
                continue;
            }
            for (rv, pv) in row_vals[col..n].iter_mut().zip(&pivot_row[col..n]) {
                *rv -= f * pv;
            }
            b[row] -= f * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0f64; n];
    for col in (0..n).rev() {
        let mut s = b[col];
        for c in (col + 1)..n {
            s -= a[col][c] * x[c];
        }
        x[col] = s / a[col][col];
    }
    Some(x)
}

/// Coefficient of determination R² of predictions vs targets.
pub fn r_squared(predictions: &[f64], targets: &[f64]) -> f64 {
    assert_eq!(predictions.len(), targets.len());
    let n = targets.len() as f64;
    if n == 0.0 {
        return 0.0;
    }
    let mean = targets.iter().sum::<f64>() / n;
    let ss_tot: f64 = targets.iter().map(|t| (t - mean).powi(2)).sum();
    let ss_res: f64 = predictions
        .iter()
        .zip(targets)
        .map(|(p, t)| (t - p).powi(2))
        .sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_linear_recovery() {
        // y = 2 x0 + 3 x1 + 5
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![i as f64, (i * i) as f64 % 7.0, 1.0])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] + 3.0 * r[1] + 5.0).collect();
        let beta = least_squares(&rows, &y).unwrap();
        assert!((beta[0] - 2.0).abs() < 1e-9);
        assert!((beta[1] - 3.0).abs() < 1e-9);
        assert!((beta[2] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn singular_returns_none() {
        // Two identical columns.
        let rows = vec![vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]];
        let y = vec![1.0, 2.0, 3.0];
        assert!(least_squares(&rows, &y).is_none());
    }

    #[test]
    fn noisy_fit_is_close() {
        // Deterministic pseudo-noise.
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64, 1.0]).collect();
        let y: Vec<f64> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| 0.5 * r[0] + 10.0 + ((i * 2654435761) % 100) as f64 / 1000.0)
            .collect();
        let beta = least_squares(&rows, &y).unwrap();
        assert!((beta[0] - 0.5).abs() < 0.01);
        assert!((beta[1] - 10.0).abs() < 0.2);
        let preds: Vec<f64> = rows.iter().map(|r| beta[0] * r[0] + beta[1]).collect();
        assert!(r_squared(&preds, &y) > 0.999);
    }

    #[test]
    fn r_squared_edges() {
        assert_eq!(r_squared(&[1.0, 2.0], &[1.0, 2.0]), 1.0);
        assert_eq!(r_squared(&[5.0, 5.0], &[5.0, 5.0]), 1.0);
        assert!(r_squared(&[0.0, 0.0], &[1.0, 2.0]) < 0.0);
    }

    #[test]
    fn empty_input() {
        assert!(least_squares(&[], &[]).is_none());
    }
}
