//! Experiment metrics — everything §V measures.

use crate::request::{ReqPhase, ReqState};
use hs_des::SimTime;
use hs_workload::stats::{fraction_where, mean, percentile};

/// Final metrics for one request.
#[derive(Clone, Copy, Debug)]
pub struct ReqMetrics {
    /// Request id.
    pub id: u64,
    /// TTFT in seconds (`None` when prefill never completed).
    pub ttft_s: Option<f64>,
    /// End-to-end TTFT: arrival → decode start, *including* admission wait
    /// and KV-cache transfer (`None` when decoding never started).
    pub ttft_e2e_s: Option<f64>,
    /// TPOT in seconds (`None` when decoding never finished).
    pub tpot_s: Option<f64>,
    /// Whether the request completed fully.
    pub completed: bool,
    /// Whether it met both SLAs (unfinished overdue requests fail).
    pub sla_ok: bool,
}

/// One sample of the Fig. 10 memory time series.
#[derive(Clone, Copy, Debug)]
pub struct MemSample {
    /// Sample time.
    pub t: SimTime,
    /// Mean live KV utilization across decode instances, `[0, 1]`.
    pub mean_util: f64,
    /// Max live KV utilization across decode instances.
    pub max_util: f64,
}

/// The full report of one cluster simulation.
#[derive(Clone, Debug, Default)]
pub struct SimReport {
    /// Strategy name.
    pub strategy: String,
    /// Offered request rate (from the trace), req/s.
    pub offered_rate: f64,
    /// Requests arrived within the horizon.
    pub arrived: usize,
    /// Requests fully completed.
    pub completed: usize,
    /// Per-request metrics (arrival order).
    pub per_request: Vec<ReqMetrics>,
    /// SLA attainment over *evaluable* requests (completed, or overdue).
    pub sla_attainment: f64,
    /// Mean TTFT over completed requests, seconds.
    pub mean_ttft_s: f64,
    /// p90 TTFT, seconds.
    pub p90_ttft_s: f64,
    /// Mean TPOT over completed requests, seconds.
    pub mean_tpot_s: f64,
    /// p90 TPOT, seconds.
    pub p90_tpot_s: f64,
    /// Memory utilization time series (Fig. 10).
    pub mem_series: Vec<MemSample>,
    /// Collectives that ran as INA.
    pub ina_ops: u64,
    /// Collectives that ran as ring (including fallbacks).
    pub ring_ops: u64,
    /// INA requests that fell back to ring because a switch was busy.
    pub ina_fallbacks: u64,
    /// Total bytes pushed over Ethernet links.
    pub eth_bytes: f64,
    /// Total bytes pushed over NVLink links.
    pub nvlink_bytes: f64,
    /// Throughput: completed requests per second of simulated time.
    pub goodput_rps: f64,
    /// Collectives redirected away from a *failed* INA switch (distinct
    /// from `ina_fallbacks`, which counts busy-switch degradations).
    pub ina_failovers: u64,
    /// INA slot releases that had no matching acquisition (always 0 in a
    /// correct run; a nonzero value flags a collective-lifecycle
    /// accounting bug such as a double end).
    pub ina_release_underflows: u64,
    /// Flows aborted mid-transfer because a fault killed a link under them.
    pub aborted_flows: u64,
    /// Collective/KV relaunches issued after fault-induced aborts.
    pub flow_retries: u64,
    /// Mean seconds from a fault-induced abort to a relaunch that avoids
    /// all dead links (time-to-reroute; 0 when no reroutes happened).
    pub mean_reroute_s: f64,
    /// SLA attainment over requests arriving inside the fault window
    /// (`None` when the run had no fault plan or no evaluable requests).
    pub fault_window_attainment: Option<f64>,
    /// KV shipments launched (one per admitted request).
    pub kv_transfers: u64,
    /// Simnet flows launched for KV stripes (Eq. 15 parallel TP pairs),
    /// including relaunches after fault aborts.
    pub kv_stripes: u64,
    /// KV shipments relaunched after a fault aborted one of their stripes.
    pub kv_retries: u64,
    /// Admissions deferred for lack of decode KV capacity (first refusal
    /// only; retry passes don't re-count).
    pub kv_deferrals: u64,
    /// Total KV-cache bytes shipped prefill→decode (Eq. 14 volume; counted
    /// once per shipment, not re-counted on retry).
    pub kv_bytes: f64,
    /// Mean realized KV transfer time over completed shipments, seconds.
    pub mean_kv_transfer_s: f64,
    /// p90 realized KV transfer time, seconds.
    pub p90_kv_transfer_s: f64,
    /// Mean absolute error of the admission-time transfer estimate vs the
    /// realized time, seconds (estimator audit).
    pub mean_kv_est_err_s: f64,
    /// Mean end-to-end TTFT (arrival → decode start) over completed
    /// requests — the metric KV congestion moves.
    pub mean_ttft_e2e_s: f64,
    /// p90 end-to-end TTFT, seconds.
    pub p90_ttft_e2e_s: f64,
    /// Autoscaler grow actions applied (one per instance activated).
    pub scale_ups: u64,
    /// Autoscaler shrink actions applied (one per instance drained).
    pub scale_downs: u64,
    /// Occupied GPU-seconds summed over all instances (`gpu_count ×
    /// non-parked wall time`). Without an autoscaler this is exactly
    /// `total_gpus × horizon` — the equal-GPU-hours axis of the
    /// elastic-vs-static comparison.
    pub gpu_seconds: f64,
    /// `gpu_seconds / horizon`: the time-averaged GPU footprint.
    pub mean_active_gpus: f64,
    /// Active prefill instances at the horizon.
    pub final_prefill_active: usize,
    /// Active decode instances at the horizon.
    pub final_decode_active: usize,
}

/// SLA verdict for one request at `horizon`: `Some(true)` pass,
/// `Some(false)` fail, `None` still pending with all deadlines ahead
/// (excluded from attainment — standard open-loop accounting).
fn sla_verdict(r: &ReqState, ttft_sla: f64, tpot_sla: f64, horizon: SimTime) -> Option<bool> {
    let ttft = r.ttft_secs();
    let tpot = r.tpot_secs();
    if r.phase == ReqPhase::Done {
        return Some(
            ttft.map(|t| t <= ttft_sla).unwrap_or(false)
                && tpot.map(|t| t <= tpot_sla).unwrap_or(false),
        );
    }
    // Unfinished: fail if the TTFT deadline has already passed without a
    // first token, or if decoding has been running long enough that TPOT
    // can no longer be met.
    let overdue_prefill = r.prefill_done.is_none()
        && horizon.saturating_since(r.req.arrival).as_secs_f64() > ttft_sla;
    let overdue_ttft = ttft.map(|t| t > ttft_sla).unwrap_or(false);
    // Best-case final TPOT: even if every remaining token materialized at
    // `horizon`, the mean inter-token time would already exceed the SLA.
    let overdue_tpot = r.req.output_tokens > 0
        && r.prefill_done.or(r.decode_start).is_some_and(|start| {
            horizon.saturating_since(start).as_secs_f64() / r.req.output_tokens as f64 > tpot_sla
        });
    if overdue_prefill || overdue_ttft || overdue_tpot {
        Some(false)
    } else {
        None
    }
}

impl SimReport {
    /// Build per-request metrics and summary statistics.
    ///
    /// SLA evaluation: a completed request passes iff `TTFT ≤ ttft_sla`
    /// and `TPOT ≤ tpot_sla`. An unfinished request whose TTFT deadline
    /// already passed at `horizon` fails; unfinished requests still
    /// within deadline are excluded from attainment (standard open-loop
    /// accounting).
    pub fn summarize(&mut self, reqs: &[ReqState], ttft_sla: f64, tpot_sla: f64, horizon: SimTime) {
        let mut evaluable = Vec::new();
        let mut ttfts = Vec::new();
        let mut ttfts_e2e = Vec::new();
        let mut tpots = Vec::new();
        self.per_request.clear();
        self.arrived = reqs.len();
        self.completed = 0;
        for r in reqs {
            let completed = r.phase == ReqPhase::Done;
            let ttft = r.ttft_secs();
            let ttft_e2e = r.ttft_e2e_secs();
            let tpot = r.tpot_secs();
            let verdict = sla_verdict(r, ttft_sla, tpot_sla, horizon);
            if let Some(ok) = verdict {
                evaluable.push(if ok { 1.0 } else { 0.0 });
            }
            let sla_ok = verdict.unwrap_or(false);
            if completed {
                self.completed += 1;
                if let Some(t) = ttft {
                    ttfts.push(t);
                }
                if let Some(t) = ttft_e2e {
                    ttfts_e2e.push(t);
                }
                if let Some(t) = tpot {
                    tpots.push(t);
                }
            }
            self.per_request.push(ReqMetrics {
                id: r.req.id.0,
                ttft_s: ttft,
                ttft_e2e_s: ttft_e2e,
                tpot_s: tpot,
                completed,
                sla_ok,
            });
        }
        self.sla_attainment = fraction_where(&evaluable, |x| x > 0.5);
        self.mean_ttft_s = mean(&ttfts);
        self.p90_ttft_s = percentile(&ttfts, 90.0);
        self.mean_ttft_e2e_s = mean(&ttfts_e2e);
        self.p90_ttft_e2e_s = percentile(&ttfts_e2e, 90.0);
        self.mean_tpot_s = mean(&tpots);
        self.p90_tpot_s = percentile(&tpots, 90.0);
        let secs = horizon.as_secs_f64();
        self.goodput_rps = if secs > 0.0 {
            self.completed as f64 / secs
        } else {
            0.0
        };
    }

    /// SLA attainment restricted to requests that *arrived* inside
    /// `window` (inclusive) — the fault drill's "attainment during the
    /// fault" figure of merit. `None` if no request in the window is
    /// evaluable yet.
    pub fn attainment_in_window(
        reqs: &[ReqState],
        ttft_sla: f64,
        tpot_sla: f64,
        horizon: SimTime,
        window: (SimTime, SimTime),
    ) -> Option<f64> {
        let mut evaluable = Vec::new();
        for r in reqs {
            if r.req.arrival < window.0 || r.req.arrival > window.1 {
                continue;
            }
            if let Some(ok) = sla_verdict(r, ttft_sla, tpot_sla, horizon) {
                evaluable.push(if ok { 1.0 } else { 0.0 });
            }
        }
        if evaluable.is_empty() {
            None
        } else {
            Some(fraction_where(&evaluable, |x| x > 0.5))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs_workload::{Request, RequestId};

    fn finished(id: u64, arrival_s: u64, ttft_s: u64, tpot_ms: u64, out: u32) -> ReqState {
        let mut r = ReqState::new(Request {
            id: RequestId(id),
            arrival: SimTime::from_secs(arrival_s),
            input_tokens: 100,
            output_tokens: out,
        });
        r.phase = ReqPhase::Done;
        r.prefill_done = Some(SimTime::from_secs(arrival_s + ttft_s));
        r.decode_start = Some(SimTime::from_secs(arrival_s + ttft_s));
        r.finished = Some(
            SimTime::from_secs(arrival_s + ttft_s)
                + hs_des::SimSpan::from_millis(tpot_ms * out as u64),
        );
        r.tokens_generated = out;
        r
    }

    #[test]
    fn attainment_counts_both_slas() {
        let reqs = vec![
            finished(0, 0, 1, 100, 10), // ttft 1s ok, tpot 0.1 ok
            finished(1, 0, 5, 100, 10), // ttft 5s > 2.5 -> fail
            finished(2, 0, 1, 300, 10), // tpot 0.3 > 0.15 -> fail
            finished(3, 0, 2, 140, 10), // ok
        ];
        let mut rep = SimReport::default();
        rep.summarize(&reqs, 2.5, 0.15, SimTime::from_secs(100));
        assert_eq!(rep.completed, 4);
        assert!((rep.sla_attainment - 0.5).abs() < 1e-9);
        assert!(rep.mean_ttft_s > 0.0);
        // `finished()` starts decode right at prefill completion, so the
        // end-to-end TTFT collapses onto the prefill TTFT here.
        assert!((rep.mean_ttft_e2e_s - rep.mean_ttft_s).abs() < 1e-12);
        assert!((rep.p90_ttft_e2e_s - rep.p90_ttft_s).abs() < 1e-12);
        assert!(rep.goodput_rps > 0.0);
    }

    #[test]
    fn overdue_unfinished_fail_but_pending_excluded() {
        let mut overdue = ReqState::new(Request {
            id: RequestId(0),
            arrival: SimTime::from_secs(0),
            input_tokens: 10,
            output_tokens: 10,
        });
        overdue.phase = ReqPhase::Queued;
        let mut pending = ReqState::new(Request {
            id: RequestId(1),
            arrival: SimTime::from_secs(99),
            input_tokens: 10,
            output_tokens: 10,
        });
        pending.phase = ReqPhase::Queued;
        let ok = finished(2, 0, 1, 100, 10);
        let mut rep = SimReport::default();
        rep.summarize(&[overdue, pending, ok], 2.5, 0.15, SimTime::from_secs(100));
        // Evaluable: overdue (fail) + ok (pass); pending excluded.
        assert!((rep.sla_attainment - 0.5).abs() < 1e-9);
        assert_eq!(rep.completed, 1);
        assert!(!rep.per_request[0].sla_ok);
        assert!(!rep.per_request[1].sla_ok);
        assert!(rep.per_request[2].sla_ok);
    }

    /// Regression: an unfinished decode whose elapsed time already
    /// guarantees a blown TPOT must count as an SLA failure, not be
    /// silently excluded from attainment (which is what the old
    /// `summarize` did — it only checked the TTFT deadline).
    #[test]
    fn tpot_overdue_unfinished_decode_counts_as_fail() {
        let mut stuck = ReqState::new(Request {
            id: RequestId(0),
            arrival: SimTime::from_secs(0),
            input_tokens: 100,
            output_tokens: 10,
        });
        // Prefill met its deadline; decode then stalled (e.g. its KV
        // transfer is stuck on a dead link). By t=100 the best possible
        // final TPOT is 99/10 = 9.9 s/token >> 0.15.
        stuck.phase = ReqPhase::Decoding;
        stuck.prefill_done = Some(SimTime::from_secs(1));
        stuck.decode_start = Some(SimTime::from_secs(1));
        stuck.tokens_generated = 1;
        let ok = finished(1, 0, 1, 100, 10);
        let mut rep = SimReport::default();
        rep.summarize(&[stuck.clone(), ok], 2.5, 0.15, SimTime::from_secs(100));
        assert!(
            !rep.per_request[0].sla_ok,
            "TPOT-overdue decode must fail SLA"
        );
        assert!(
            (rep.sla_attainment - 0.5).abs() < 1e-9,
            "overdue decode must be evaluable (attainment = {})",
            rep.sla_attainment
        );
        // Same request early in its decode window is still pending, not
        // failed: at t=2 it could yet meet TPOT.
        let mut rep2 = SimReport::default();
        rep2.summarize(&[stuck], 2.5, 0.15, SimTime::from_secs(2));
        assert!((rep2.sla_attainment - 0.0).abs() < 1e-9);
        assert!(rep2.per_request.len() == 1 && !rep2.per_request[0].completed);
    }

    #[test]
    fn window_attainment_filters_by_arrival() {
        let reqs = vec![
            finished(0, 5, 1, 100, 10),  // in window, pass
            finished(1, 15, 5, 100, 10), // in window, fail (ttft)
            finished(2, 50, 5, 100, 10), // outside window, fail — ignored
        ];
        let horizon = SimTime::from_secs(100);
        let w = (SimTime::from_secs(0), SimTime::from_secs(20));
        let att = SimReport::attainment_in_window(&reqs, 2.5, 0.15, horizon, w).unwrap();
        assert!((att - 0.5).abs() < 1e-9);
        let empty_w = (SimTime::from_secs(90), SimTime::from_secs(95));
        assert_eq!(
            SimReport::attainment_in_window(&reqs, 2.5, 0.15, horizon, empty_w),
            None
        );
    }

    #[test]
    fn empty_report() {
        let mut rep = SimReport::default();
        rep.summarize(&[], 1.0, 1.0, SimTime::from_secs(10));
        assert_eq!(rep.sla_attainment, 0.0);
        assert_eq!(rep.completed, 0);
    }
}
