//! The pluggable communication strategy — where HeroServe and the
//! baselines differ.
//!
//! Every iteration, each tensor-parallel group runs one aggregated
//! all-reduce. The engine asks the strategy which [`Scheme`] to use, given
//! the group, the synchronization volume, and the latest monitored link
//! utilizations (the online scheduler's observation channel). The
//! strategy also declares what happens when its chosen INA switch has no
//! free aggregation capacity: SwitchML-style jobs *wait*; ATP-style jobs
//! *fall back* to ring (§IV / §V baseline semantics).

use hs_collective::Scheme;
use hs_des::SimTime;
use hs_simnet::DirLink;
use hs_topology::NodeId;
use hs_workload::FaultKind;

/// Behaviour when the chosen INA switch is at its concurrent-job limit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BusyPolicy {
    /// Queue the collective until a slot frees (synchronous INA).
    Wait,
    /// Degrade this iteration's collective to a flat ring (best-effort
    /// INA — ATP semantics: end hosts aggregate over Ethernet).
    FallbackRing,
    /// Degrade to the NVLink-first hierarchical ring (HeroServe keeps the
    /// heterogeneity win even when a switch is saturated).
    FallbackHierRing,
}

/// Per-collective decision context handed to the strategy.
#[derive(Clone, Copy, Debug)]
pub struct CommCtx<'a> {
    /// Stable identifier of the tensor-parallel group.
    pub group_id: u64,
    /// The group's GPUs.
    pub group: &'a [NodeId],
    /// Full synchronization volume for this iteration, bytes.
    pub bytes: u64,
    /// Simulation time.
    pub now: SimTime,
    /// Latest monitored per-link utilization (EWMA, `[0,1]`), indexed by
    /// dense `LinkId`.
    pub link_util: &'a [f64],
}

/// One candidate decode instance offered to [`CommStrategy::choose_decode`].
/// Candidates are presented in ascending decode-pool index order (a
/// deterministic order — never hash order) and are pre-filtered to
/// instances whose KV manager can admit the request.
#[derive(Clone, Debug)]
pub struct KvCandidate {
    /// Index into the decode pool (engine-local, dense from 0).
    pub instance: usize,
    /// Current decode load: active + joining requests.
    pub load: usize,
    /// Unreserved KV tokens remaining on this instance.
    pub headroom_tokens: u64,
    /// Total KV token capacity of this instance.
    pub capacity_tokens: u64,
    /// The instance's GPUs — the stripe destinations if chosen.
    pub dst_gpus: Vec<NodeId>,
}

/// Decision context for one decode-instance selection.
#[derive(Clone, Copy, Debug)]
pub struct KvCtx<'a> {
    /// Request id being admitted.
    pub req: u64,
    /// Full KV-cache shipment size, bytes (Eq. 14).
    pub bytes: u64,
    /// The originating prefill instance's GPUs — the stripe sources.
    pub src_gpus: &'a [NodeId],
    /// Latest monitored per-link utilization (EWMA, `[0,1]`), indexed by
    /// dense `LinkId`.
    pub link_util: &'a [f64],
    /// Simulation time.
    pub now: SimTime,
}

/// A strategy's decode-instance pick.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KvChoice {
    /// Decode-pool index of the chosen instance (must name a candidate).
    pub instance: usize,
    /// The strategy's own estimate of the KV transfer time, seconds.
    /// Recorded against the realized transfer time for estimator audit.
    pub est_transfer_s: f64,
}

/// A communication scheduling policy.
pub trait CommStrategy {
    /// Choose the scheme for one collective.
    fn choose(&mut self, ctx: &CommCtx<'_>) -> Scheme;

    /// What to do when the chosen INA switch is busy.
    fn busy_policy(&self) -> BusyPolicy {
        BusyPolicy::FallbackRing
    }

    /// Choose a route for a point-to-point transfer (KV-cache transfer,
    /// pipeline-stage hop). `None` keeps the engine's static shortest
    /// path — what DistServe/DS-ATP/DS-SwitchML do. HeroServe's policy
    /// table also covers "the next hop, the transmission path" (§III-D,
    /// Fig. 5), so its implementation load-balances across the
    /// cross-connected fabric's alternative routes.
    fn choose_path(
        &mut self,
        _src: NodeId,
        _dst: NodeId,
        _bytes: u64,
        _link_util: &[f64],
    ) -> Option<Vec<DirLink>> {
        None
    }

    /// Whether the engine should build a [`KvCandidate`] list and consult
    /// [`choose_decode`](Self::choose_decode) at admission time. Network-
    /// oblivious strategies return `false` (the default) and skip the
    /// candidate-construction cost entirely, keeping the least-loaded pick.
    fn network_aware_admission(&self) -> bool {
        false
    }

    /// Choose the decode instance for an admitted request — the NetKV-style
    /// hook: score candidates by estimated KV transfer time over current
    /// link utilization, KV headroom, and decode load. Returning `None`, or
    /// an instance that is not among the candidates, falls back to the
    /// engine's least-loaded pick; the engine re-validates capacity either
    /// way, so a stale choice can never over-admit.
    fn choose_decode(&mut self, _ctx: &KvCtx<'_>, _candidates: &[KvCandidate]) -> Option<KvChoice> {
        None
    }

    /// Periodic monitoring callback (the paper's control-plane poll loop).
    fn on_monitor(&mut self, _link_util: &[f64], _now: SimTime) {}

    /// Fabric-health change notification, delivered when a scheduled
    /// fault ([`hs_workload::FaultPlan`]) fires. Fault-oblivious
    /// strategies (the static baselines) ignore it; HeroServe's online
    /// scheduler invalidates cached routes and cost-table entries that
    /// cross dead links.
    fn on_fault(&mut self, _kind: &FaultKind, _now: SimTime) {}

    /// Attach a tracer for decision-audit events (policy selections,
    /// charges, refreshes). Strategies with nothing to audit ignore it.
    fn attach_tracer(&mut self, _tracer: &hs_obs::Tracer) {}

    /// Name for reports.
    fn name(&self) -> &str;
}

/// Resolver from `(group_id, group)` to a scheme.
type SchemeFn = Box<dyn Fn(u64, &[NodeId]) -> Scheme + Send>;

/// A fixed strategy: always the same scheme (optionally resolved per
/// group). Used for the DistServe baseline (always `Ring`) and for
/// ablations (INA-only / hierarchical-only).
pub struct StaticStrategy {
    name: String,
    scheme_of: SchemeFn,
    busy: BusyPolicy,
}

impl StaticStrategy {
    /// Always `scheme`, for every group.
    pub fn uniform(name: impl Into<String>, scheme: Scheme, busy: BusyPolicy) -> Self {
        StaticStrategy {
            name: name.into(),
            scheme_of: Box::new(move |_, _| scheme),
            busy,
        }
    }

    /// Scheme chosen per group by a closure (e.g. "the group's planner
    /// assignment").
    pub fn per_group(
        name: impl Into<String>,
        f: impl Fn(u64, &[NodeId]) -> Scheme + Send + 'static,
        busy: BusyPolicy,
    ) -> Self {
        StaticStrategy {
            name: name.into(),
            scheme_of: Box::new(f),
            busy,
        }
    }
}

impl CommStrategy for StaticStrategy {
    fn choose(&mut self, ctx: &CommCtx<'_>) -> Scheme {
        (self.scheme_of)(ctx.group_id, ctx.group)
    }

    fn busy_policy(&self) -> BusyPolicy {
        self.busy
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_strategy_is_constant() {
        let mut s = StaticStrategy::uniform("ring", Scheme::Ring, BusyPolicy::FallbackRing);
        let ctx = CommCtx {
            group_id: 0,
            group: &[NodeId(0), NodeId(1)],
            bytes: 1024,
            now: SimTime::ZERO,
            link_util: &[],
        };
        assert_eq!(s.choose(&ctx), Scheme::Ring);
        assert_eq!(s.busy_policy(), BusyPolicy::FallbackRing);
        assert_eq!(s.name(), "ring");
    }

    #[test]
    fn per_group_strategy_dispatches() {
        let mut s = StaticStrategy::per_group(
            "alt",
            |gid, _| {
                if gid % 2 == 0 {
                    Scheme::Ring
                } else {
                    Scheme::Ina { switch: NodeId(9) }
                }
            },
            BusyPolicy::Wait,
        );
        let mk = |gid| CommCtx {
            group_id: gid,
            group: &[],
            bytes: 0,
            now: SimTime::ZERO,
            link_util: &[],
        };
        assert_eq!(s.choose(&mk(0)), Scheme::Ring);
        assert_eq!(s.choose(&mk(1)), Scheme::Ina { switch: NodeId(9) });
        assert_eq!(s.busy_policy(), BusyPolicy::Wait);
    }
}
