//! KV-cache memory manager for a decode instance.
//!
//! Block-based accounting in the spirit of PagedAttention, at the
//! granularity the simulation needs: a decode instance has a total token
//! capacity (from [`hs_model::MemoryModel`] and its GPUs' memory);
//! admission reserves a request's worst-case footprint (input + maximum
//! output tokens) so decoding can never deadlock mid-generation; the
//! *live* token count (input + generated so far) is what Fig. 10's memory
//! utilization reports.

/// Token-granular KV memory accounting for one decode instance.
#[derive(Clone, Debug)]
pub struct KvManager {
    /// Total KV token capacity.
    capacity_tokens: u64,
    /// Reserved (admission-time worst case) tokens.
    reserved_tokens: u64,
    /// Live (actually materialized) tokens.
    live_tokens: u64,
    /// Admissions granted.
    admissions: u64,
    /// Admissions refused for lack of capacity.
    rejections: u64,
}

impl KvManager {
    /// A manager with the given token capacity.
    pub fn new(capacity_tokens: u64) -> Self {
        KvManager {
            capacity_tokens,
            reserved_tokens: 0,
            live_tokens: 0,
            admissions: 0,
            rejections: 0,
        }
    }

    /// Capacity in tokens.
    pub fn capacity(&self) -> u64 {
        self.capacity_tokens
    }

    /// Worst-case reserved tokens.
    pub fn reserved(&self) -> u64 {
        self.reserved_tokens
    }

    /// Live (materialized) tokens.
    pub fn live(&self) -> u64 {
        self.live_tokens
    }

    /// Can `tokens` more be reserved?
    pub fn can_admit(&self, tokens: u64) -> bool {
        self.reserved_tokens + tokens <= self.capacity_tokens
    }

    /// Unreserved tokens remaining — the admission headroom the NetKV
    /// decode-selection score weighs against transfer time and load.
    pub fn headroom(&self) -> u64 {
        self.capacity_tokens.saturating_sub(self.reserved_tokens)
    }

    /// Reserve `tokens` (admission). Returns false and counts a rejection
    /// when capacity is insufficient.
    pub fn admit(&mut self, tokens: u64) -> bool {
        if self.can_admit(tokens) {
            self.reserved_tokens += tokens;
            self.admissions += 1;
            true
        } else {
            self.rejections += 1;
            false
        }
    }

    /// Materialize `tokens` of live KV (prompt arrival, or +1 per decoded
    /// token).
    pub fn materialize(&mut self, tokens: u64) {
        self.live_tokens += tokens;
        debug_assert!(
            self.live_tokens <= self.reserved_tokens,
            "live KV exceeded reservation"
        );
    }

    /// Release a finished request: `reserved` returns to the pool and its
    /// `live` tokens are freed.
    pub fn release(&mut self, reserved: u64, live: u64) {
        debug_assert!(self.reserved_tokens >= reserved, "over-release (reserved)");
        debug_assert!(self.live_tokens >= live, "over-release (live)");
        self.reserved_tokens = self.reserved_tokens.saturating_sub(reserved);
        self.live_tokens = self.live_tokens.saturating_sub(live);
    }

    /// Live-token utilization in `[0, 1]`.
    pub fn live_utilization(&self) -> f64 {
        if self.capacity_tokens == 0 {
            return 1.0;
        }
        self.live_tokens as f64 / self.capacity_tokens as f64
    }

    /// Reservation utilization in `[0, 1]` (admission pressure).
    pub fn reserved_utilization(&self) -> f64 {
        if self.capacity_tokens == 0 {
            return 1.0;
        }
        self.reserved_tokens as f64 / self.capacity_tokens as f64
    }

    /// `(admissions, rejections)` counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.admissions, self.rejections)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admit_until_full() {
        let mut m = KvManager::new(100);
        assert!(m.admit(60));
        assert_eq!(m.headroom(), 40);
        assert!(!m.admit(50));
        assert!(m.admit(40));
        assert_eq!(m.reserved(), 100);
        assert_eq!(m.headroom(), 0);
        assert_eq!(m.counters(), (2, 1));
    }

    #[test]
    fn materialize_and_release() {
        let mut m = KvManager::new(100);
        assert!(m.admit(50));
        m.materialize(30);
        m.materialize(5);
        assert_eq!(m.live(), 35);
        assert!((m.live_utilization() - 0.35).abs() < 1e-12);
        assert!((m.reserved_utilization() - 0.5).abs() < 1e-12);
        m.release(50, 35);
        assert_eq!(m.reserved(), 0);
        assert_eq!(m.live(), 0);
    }

    #[test]
    fn zero_capacity_is_always_full() {
        let mut m = KvManager::new(0);
        assert!(!m.admit(1));
        assert_eq!(m.live_utilization(), 1.0);
    }

    #[test]
    fn release_saturates_in_release_builds() {
        let mut m = KvManager::new(10);
        m.admit(5);
        m.materialize(3);
        m.release(5, 3);
        // Further releases are clamped (debug_assert in debug builds).
        assert_eq!(m.reserved(), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Reserved never exceeds capacity and live never exceeds reserved
        /// under arbitrary admit/materialize/release sequences that mirror
        /// real request lifecycles.
        #[test]
        fn accounting_invariants(ops in proptest::collection::vec((1u64..50, 1u64..20), 1..50)) {
            let mut m = KvManager::new(200);
            let mut open: Vec<(u64, u64)> = Vec::new(); // (reserved, live)
            for (reserve, live_steps) in ops {
                if m.admit(reserve) {
                    let live = live_steps.min(reserve);
                    m.materialize(live);
                    open.push((reserve, live));
                }
                prop_assert!(m.reserved() <= m.capacity());
                prop_assert!(m.live() <= m.reserved());
                // Occasionally retire the oldest request.
                if open.len() > 3 {
                    let (r, l) = open.remove(0);
                    m.release(r, l);
                }
            }
            for (r, l) in open {
                m.release(r, l);
            }
            prop_assert_eq!(m.reserved(), 0);
            prop_assert_eq!(m.live(), 0);
        }
    }
}
