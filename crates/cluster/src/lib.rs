//! # hs-cluster — the serving-cluster simulator
//!
//! A discrete-event simulation of a prefill/decode **disaggregated** LLM
//! serving cluster (the architecture of Fig. 4, shared by DistServe,
//! SplitWise and HeroServe):
//!
//! * requests arrive from an [`hs_workload`] trace into a global queue;
//! * **prefill instances** run continuous batching (Orca-style iteration
//!   scheduling): each iteration computes for the fitted Eq. 12 time and
//!   then all-reduces every tensor-parallel stage's activations over the
//!   simulated fabric with the scheme the pluggable [`CommStrategy`]
//!   selects (ring / INA / hierarchical — HeroServe's choice point);
//! * finished prompts are admitted to a **decode instance** (KV-block
//!   accounting per instance), their KV caches stream across the fabric
//!   as real flows (Eq. 14–15's transfer), and decoding proceeds one
//!   token per iteration (Eq. 13 compute + Eq. 7 communication);
//! * per-link monitors feed utilization back to the strategy, switch-slot
//!   admission limits concurrent INA jobs per switch (SwitchML waits,
//!   ATP falls back — §V's baseline semantics), and a metrics collector
//!   produces TTFT/TPOT distributions, SLA attainment and the Fig. 10
//!   memory-utilization time series.
//!
//! Everything the paper's evaluation measures comes out of
//! [`engine::ClusterSim::run`]'s [`metrics::SimReport`].

pub mod autoscale;
pub mod batching;
pub mod engine;
pub mod instance;
pub mod kvcache;
pub mod kvflow;
pub mod metrics;
pub mod request;
pub mod strategy;

pub use autoscale::{PoolSnapshot, PoolState, PoolTargets, ScaleController, StaticController};
pub use engine::{ClusterConfig, ClusterSim};
pub use instance::{InstanceKind, InstanceSpec};
pub use kvcache::KvManager;
pub use kvflow::{stripe_plan, KvStripe};
pub use metrics::{ReqMetrics, SimReport};
pub use request::{ReqPhase, ReqState};
pub use strategy::{
    BusyPolicy, CommCtx, CommStrategy, KvCandidate, KvChoice, KvCtx, StaticStrategy,
};
