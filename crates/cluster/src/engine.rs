//! The cluster simulation engine.
//!
//! Owns the fabric ([`SimNet`]), the instances, the request population and
//! the event loop; interleaves three event sources deterministically:
//! the discrete event queue (arrivals, compute completions, timers,
//! monitor ticks), network flow completions, and the per-iteration
//! communication state machines of [`hs_collective`].

use crate::autoscale::{PoolSnapshot, PoolState, PoolTargets, ScaleController};
use crate::batching::{form_prefill_batch, BatchPolicy};
use crate::instance::{InstPhase, Instance, InstanceKind, InstanceSpec};
use crate::kvcache::KvManager;
use crate::kvflow::{stripe_plan, KvStripe};
use crate::metrics::{MemSample, SimReport};
use crate::request::{ReqPhase, ReqState};
use crate::strategy::{BusyPolicy, CommCtx, CommStrategy, KvCandidate, KvCtx};
use hs_collective::latency::path_transfer_secs;
use hs_collective::{CollectiveExec, CollectivePlan, Phase, Progress, Scheme};
use hs_des::{EventQueue, SimSpan, SimTime};
use hs_model::{
    decode_latency_secs, prefill_latency_secs, BatchStats, CostCoefficients, MemoryModel,
    ModelConfig,
};
use hs_simnet::{Flow, FlowId, LinkMonitor, SimNet};
use hs_topology::{AllPairs, Graph, LinkId, LinkKind, NodeId};
use hs_workload::{ArrivalProcess, FaultKind, FaultPlan, Mmpp, RequestId, Trace};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rustc_hash::{FxHashMap, FxHashSet};
use std::collections::{BTreeMap, VecDeque};

/// Tag-space partition for flow demultiplexing.
const TAG_KIND_SHIFT: u64 = 60;
const TAG_COLL: u64 = 1 << TAG_KIND_SHIFT;
const TAG_KV: u64 = 2 << TAG_KIND_SHIFT;
const TAG_ID_MASK: u64 = (1 << TAG_KIND_SHIFT) - 1;

/// Static configuration of one cluster simulation.
pub struct ClusterConfig {
    /// The served model.
    pub model: ModelConfig,
    /// Fitted Eq. 12–13 coefficients.
    pub coef: CostCoefficients,
    /// TTFT SLA, seconds.
    pub ttft_sla_s: f64,
    /// TPOT SLA, seconds.
    pub tpot_sla_s: f64,
    /// Prefill instance placements.
    pub prefill: Vec<InstanceSpec>,
    /// Decode instance placements.
    pub decode: Vec<InstanceSpec>,
    /// Continuous-batching limits.
    pub batch: BatchPolicy,
    /// GPU memory per decode GPU, bytes (KV capacity derivation).
    pub gpu_memory_bytes: u64,
    /// Monitoring / control-plane polling period.
    pub monitor_period: SimSpan,
    /// Max concurrent INA jobs per switch (aggregator-slot budget divided
    /// by the per-job window; the contention knob of §II-C).
    pub ina_capacity_per_switch: usize,
    /// Optional bursty background traffic (the shared-cluster cross
    /// traffic of §I/§II-C): `(mean flows/s, bytes per flow)`, arrivals
    /// MMPP-modulated, endpoints random GPU pairs.
    pub background: Option<(f64, u64)>,
    /// Scheduled fabric faults replayed during the run (link/switch/GPU
    /// failures and recoveries). Empty for a healthy fabric.
    pub faults: FaultPlan,
}

impl ClusterConfig {
    /// Sum of GPUs across prefill and decode instances.
    pub fn total_gpus(&self) -> usize {
        self.prefill
            .iter()
            .chain(self.decode.iter())
            .map(|s| s.gpu_count())
            .sum()
    }
}

enum Ev {
    Arrival(u32),
    ComputeDone {
        inst: usize,
    },
    CollTimer {
        coll: u64,
    },
    MonitorTick,
    Background,
    /// Scheduled fault (index into `cfg.faults.events()`).
    Fault(u32),
    /// Backed-off relaunch of an aborted collective.
    RetryColl {
        key: u64,
    },
    /// Backed-off relaunch of an aborted KV transfer.
    RetryKv {
        req: u64,
    },
}

/// What a collective was compiled from — enough to recompile and relaunch
/// it if a fault aborts its flows mid-run.
#[derive(Clone)]
enum CollOrigin {
    /// A tensor-group all-reduce: the strategy re-chooses the scheme on
    /// retry (so it can route around a failed switch).
    Group {
        group_id: u64,
        group: Vec<NodeId>,
        bytes: u64,
    },
    /// Pipeline-stage boundary transfers: paths are re-chosen on retry.
    PipeHops { hops: Vec<(NodeId, NodeId, u64)> },
}

struct CollState {
    exec: CollectiveExec,
    inst: usize,
    /// The INA switch whose admission this collective holds, if any.
    ina_switch: Option<NodeId>,
    origin: CollOrigin,
    /// How many times this collective has been relaunched after aborts.
    attempt: u32,
}

struct WaitingColl {
    inst: usize,
    plan: CollectivePlan,
    switch: NodeId,
    origin: CollOrigin,
}

/// An aborted collective awaiting its backed-off relaunch.
struct PendingRetry {
    inst: usize,
    origin: CollOrigin,
    attempt: u32,
    aborted_at: SimTime,
}

/// One in-flight KV shipment: the Eq. 15 stripe plan (kept so a
/// fault-induced abort can relaunch from the *true* source GPUs), the
/// simnet flows currently carrying it, and retry bookkeeping. The whole
/// shipment is resent on abort — retransmission from zero is the
/// conservative model.
struct KvFlight {
    /// Eq. 15 stripe plan (src/dst GPU pairs and their byte shares),
    /// sourced from the *true* prefill instance's GPUs — the plan is
    /// immutable across retries, only the routes are re-chosen.
    stripes: Vec<KvStripe>,
    /// Flows currently in the air, one per launched stripe. The shipment
    /// completes when this empties.
    live: Vec<FlowId>,
    attempt: u32,
    /// When the selector launched the shipment (realized-time metric).
    started: SimTime,
    aborted_at: SimTime,
    /// A retry is scheduled: surviving stripes were cancelled and stale
    /// completions must be ignored until the relaunch.
    retry_pending: bool,
    /// Admission-time transfer estimate, seconds (estimator audit).
    est_s: f64,
}

/// Capped exponential backoff before relaunching aborted work.
fn retry_delay(attempt: u32) -> SimSpan {
    SimSpan::from_millis((10u64 << attempt.min(6)).min(500))
}

/// Trace-event name for a collective, derived from what it was compiled
/// from.
fn coll_kind(origin: &CollOrigin) -> &'static str {
    match origin {
        CollOrigin::Group { .. } => "allreduce",
        CollOrigin::PipeHops { .. } => "pipe_hops",
    }
}

/// Metric ids registered against the attached registry. The ids handed
/// out by a disabled registry are inert, so the default is free.
struct ObsIds {
    arrived: hs_obs::CounterId,
    completed: hs_obs::CounterId,
    colls: hs_obs::CounterId,
    coll_aborts: hs_obs::CounterId,
    faults: hs_obs::CounterId,
    kv_transfers: hs_obs::CounterId,
    kv_retries: hs_obs::CounterId,
    kv_deferrals: hs_obs::CounterId,
    scale_ups: hs_obs::CounterId,
    scale_downs: hs_obs::CounterId,
    prefill_active: hs_obs::GaugeId,
    decode_active: hs_obs::GaugeId,
    ttft: hs_obs::HistogramId,
    tpot: hs_obs::HistogramId,
    kv_transfer_s: hs_obs::HistogramId,
}

impl ObsIds {
    fn register(m: &hs_obs::MetricsRegistry) -> Self {
        ObsIds {
            arrived: m.counter("requests_arrived"),
            completed: m.counter("requests_completed"),
            colls: m.counter("collectives_launched"),
            coll_aborts: m.counter("collectives_aborted"),
            faults: m.counter("fault_events"),
            kv_transfers: m.counter("kv_transfers_launched"),
            kv_retries: m.counter("kv_transfer_retries"),
            kv_deferrals: m.counter("kv_admission_deferrals"),
            scale_ups: m.counter("autoscale_ups"),
            scale_downs: m.counter("autoscale_downs"),
            prefill_active: m.gauge("prefill_active_instances"),
            decode_active: m.gauge("decode_active_instances"),
            ttft: m.histogram("ttft_s", &[0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0]),
            tpot: m.histogram("tpot_s", &[0.01, 0.025, 0.05, 0.1, 0.15, 0.3, 1.0]),
            kv_transfer_s: m.histogram(
                "kv_transfer_s",
                &[0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 1.0],
            ),
        }
    }
}

/// The simulator.
pub struct ClusterSim {
    g: Graph,
    ap: AllPairs,
    net: SimNet,
    monitor: LinkMonitor,
    cfg: ClusterConfig,
    strategy: Box<dyn CommStrategy>,
    events: EventQueue<Ev>,
    now: SimTime,
    reqs: Vec<ReqState>,
    prefill_queue: VecDeque<RequestId>,
    pending_admission: VecDeque<RequestId>,
    instances: Vec<Instance>,
    decode_offset: usize,
    kv: Vec<KvManager>,
    mem_model: MemoryModel,
    colls: FxHashMap<u64, CollState>,
    next_coll: u64,
    ina_active: FxHashMap<NodeId, usize>,
    ina_waiting: FxHashMap<NodeId, VecDeque<WaitingColl>>,
    util_snapshot: Vec<f64>,
    mem_series: Vec<MemSample>,
    ina_ops: u64,
    ring_ops: u64,
    ina_fallbacks: u64,
    offered_rate: f64,
    bg: Option<(Mmpp, SmallRng)>,
    // --- fault state -------------------------------------------------
    failed_switches: FxHashSet<NodeId>,
    gpu_slowdown: FxHashMap<NodeId, f64>,
    pending_coll_retry: FxHashMap<u64, PendingRetry>,
    kv_inflight: FxHashMap<u64, KvFlight>,
    ina_failovers: u64,
    aborted_flows: u64,
    flow_retries: u64,
    /// INA slot releases with no matching acquisition (a lifecycle
    /// accounting bug upstream — e.g. a collective ended twice). The
    /// release is dropped rather than conjuring capacity.
    ina_release_underflows: u64,
    /// Seconds from each fault-induced abort to a relaunch whose plan
    /// avoids every dead link (time-to-reroute samples).
    reroute_secs: Vec<f64>,
    // --- KV-transfer accounting ---------------------------------------
    kv_transfers: u64,
    kv_stripes_launched: u64,
    kv_retries: u64,
    kv_deferrals: u64,
    kv_bytes_total: u64,
    /// Realized transfer time per completed shipment, seconds.
    kv_transfer_secs: Vec<f64>,
    /// |estimate − realized| per completed shipment, seconds.
    kv_est_err_secs: Vec<f64>,
    // --- autoscaling ---------------------------------------------------
    /// Pool controller, if any (taken/put back around on_tick so the
    /// controller may inspect the engine through its snapshot only).
    autoscaler: Option<Box<dyn ScaleController>>,
    /// Cumulative arrivals (PoolSnapshot counter).
    arrived_count: u64,
    /// Cumulative completions (PoolSnapshot counter).
    done_total: u64,
    /// Cumulative completions meeting both SLAs (PoolSnapshot counter).
    done_ok: u64,
    scale_ups: u64,
    scale_downs: u64,
    // --- observability ------------------------------------------------
    tracer: hs_obs::Tracer,
    metrics: hs_obs::MetricsRegistry,
    obs: ObsIds,
}

impl ClusterSim {
    /// Build a simulation over `graph` for `trace` with the given
    /// strategy.
    ///
    /// # Panics
    /// Panics on invalid instance specs.
    pub fn new(
        graph: &Graph,
        ap: AllPairs,
        cfg: ClusterConfig,
        trace: &Trace,
        strategy: Box<dyn CommStrategy>,
    ) -> Self {
        for s in cfg.prefill.iter().chain(cfg.decode.iter()) {
            s.validate().expect("invalid instance spec");
        }
        let mut instances: Vec<Instance> = cfg
            .prefill
            .iter()
            .map(|s| Instance::new(s.clone(), InstanceKind::Prefill))
            .collect();
        let decode_offset = instances.len();
        instances.extend(
            cfg.decode
                .iter()
                .map(|s| Instance::new(s.clone(), InstanceKind::Decode)),
        );
        // Decode KV capacity: per-instance, derived from its sharding and
        // per-GPU memory.
        let kv: Vec<KvManager> = cfg
            .decode
            .iter()
            .map(|s| {
                let mm = MemoryModel::new(&cfg.model, s.p_tens(), s.p_pipe());
                KvManager::new(mm.kv_token_capacity(cfg.gpu_memory_bytes))
            })
            .collect();
        // Memory model for the utilization metric (per-GPU view of the
        // first decode spec; instances are homogeneous per experiment).
        let mem_spec = cfg
            .decode
            .first()
            .cloned()
            .unwrap_or_else(|| cfg.prefill.first().cloned().expect("at least one instance"));
        let mem_model = MemoryModel::new(&cfg.model, mem_spec.p_tens(), mem_spec.p_pipe());

        let mut events = EventQueue::with_capacity(trace.len() * 4 + 16);
        // Request state is indexed by RequestId throughout the engine, so
        // ids must be positional (as `Trace::generate` produces them).
        assert!(
            trace
                .requests
                .iter()
                .enumerate()
                .all(|(i, r)| r.id.0 == i as u64),
            "trace RequestIds must be positional (0..n in order)"
        );
        let reqs: Vec<ReqState> = trace.requests.iter().map(|r| ReqState::new(*r)).collect();
        for (i, r) in trace.requests.iter().enumerate() {
            events.push(r.arrival, Ev::Arrival(i as u32));
        }
        events.push(SimTime::ZERO + cfg.monitor_period, Ev::MonitorTick);
        for (i, f) in cfg.faults.events().iter().enumerate() {
            events.push(f.at, Ev::Fault(i as u32));
        }
        let bg = cfg.background.map(|(rate, _)| {
            let mut rng = hs_des::SeedSplitter::new(0xB66).stream("background");
            let mut mmpp = Mmpp::bursty(rate, 5.0);
            let first = SimTime::ZERO + mmpp.next_gap(&mut rng);
            events.push(first, Ev::Background);
            (mmpp, rng)
        });

        let net = SimNet::new(graph);
        let monitor = LinkMonitor::new(graph.link_count(), 0.5);
        let util_snapshot = vec![0.0; graph.link_count()];
        let offered_rate = trace.empirical_rate();
        ClusterSim {
            g: graph.clone(),
            ap,
            net,
            monitor,
            cfg,
            strategy,
            events,
            now: SimTime::ZERO,
            reqs,
            prefill_queue: VecDeque::new(),
            pending_admission: VecDeque::new(),
            instances,
            decode_offset,
            kv,
            mem_model,
            colls: FxHashMap::default(),
            next_coll: 0,
            ina_active: FxHashMap::default(),
            ina_waiting: FxHashMap::default(),
            util_snapshot,
            mem_series: Vec::new(),
            ina_ops: 0,
            ring_ops: 0,
            ina_fallbacks: 0,
            offered_rate,
            bg,
            failed_switches: FxHashSet::default(),
            gpu_slowdown: FxHashMap::default(),
            pending_coll_retry: FxHashMap::default(),
            kv_inflight: FxHashMap::default(),
            ina_failovers: 0,
            aborted_flows: 0,
            flow_retries: 0,
            ina_release_underflows: 0,
            reroute_secs: Vec::new(),
            kv_transfers: 0,
            kv_stripes_launched: 0,
            kv_retries: 0,
            kv_deferrals: 0,
            kv_bytes_total: 0,
            kv_transfer_secs: Vec::new(),
            kv_est_err_secs: Vec::new(),
            autoscaler: None,
            arrived_count: 0,
            done_total: 0,
            done_ok: 0,
            scale_ups: 0,
            scale_downs: 0,
            tracer: hs_obs::Tracer::noop(),
            metrics: hs_obs::MetricsRegistry::disabled(),
            obs: ObsIds::register(&hs_obs::MetricsRegistry::disabled()),
        }
    }

    /// Attach observability handles (the defaults are a no-op tracer and
    /// a disabled registry). The same tracer is wired into the network
    /// simulator and the strategy so every layer records into one
    /// stream; tracing never changes simulation outcomes.
    pub fn set_obs(&mut self, tracer: &hs_obs::Tracer, metrics: &hs_obs::MetricsRegistry) {
        self.tracer = tracer.clone();
        self.metrics = metrics.clone();
        self.obs = ObsIds::register(metrics);
        self.net.set_tracer(tracer);
        self.strategy.attach_tracer(tracer);
    }

    /// Attach a pool controller (elastic autoscaling, DESIGN.md §13).
    /// The controller's initial targets apply immediately: instances
    /// beyond them park at `t = 0` and contribute zero GPU-seconds until
    /// unparked. Without a controller every instance stays Active for
    /// the whole run (the pre-elastic behavior, bit-for-bit).
    pub fn set_autoscaler(&mut self, mut ctl: Box<dyn ScaleController>) {
        let prefill_slots = self.decode_offset;
        let decode_slots = self.instances.len() - self.decode_offset;
        let targets = ctl.initial_targets(prefill_slots, decode_slots);
        self.autoscaler = Some(ctl);
        self.apply_targets(targets);
    }

    /// Override the network engine's bulk-advance shard threshold
    /// (DESIGN.md §12). The default is parallelism-aware; this knob lets
    /// scale harnesses force the sharded path (or pin the sequential
    /// one) — output is bit-identical either way, so it is purely a
    /// performance control.
    pub fn set_shard_threshold(&mut self, threshold: usize) {
        self.net.set_shard_threshold(threshold);
    }

    /// Run until `horizon` and produce the report.
    ///
    /// The interleave contract with `SimNet`'s incremental engine
    /// (DESIGN.md §9): `next_event_time` is `>= now` (clamped), may be
    /// `SimTime::MAX` while every flow is starved by a dead link, and
    /// `advance_to(t)` delivers completions in `(finish, id)` order. A
    /// cancelled-but-drained flow is *not* returned by `cancel_flow`;
    /// its completion still arrives here and is demuxed to an already
    /// dissolved collective, which `on_flow_done` ignores by design.
    pub fn run(&mut self, horizon: SimTime) -> SimReport {
        loop {
            let tq = self.events.peek_time();
            let tn = self.net.next_event_time();
            let t = match (tq, tn) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => break,
            };
            if t > horizon {
                break;
            }
            self.now = t;
            // Network completions first (deterministic: completion order,
            // then queue FIFO at equal times).
            let done = self.net.advance_to(t);
            for (id, flow) in done {
                self.on_flow_done(id, flow.tag);
            }
            if self.events.peek_time() == Some(t) {
                let (_, ev) = self.events.pop().expect("peeked event");
                self.handle(ev);
            }
        }
        self.now = horizon;
        self.net.advance_to(horizon);
        self.build_report(horizon)
    }

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::Arrival(idx) => {
                let req = self.reqs[idx as usize].req;
                self.tracer.request_arrived(
                    self.now,
                    req.id.0,
                    req.input_tokens,
                    req.output_tokens,
                );
                self.tracer
                    .request_phase_begin(self.now, req.id.0, "queued");
                self.metrics.inc(self.obs.arrived, 1);
                self.arrived_count += 1;
                self.prefill_queue.push_back(req.id);
                self.kick_prefill();
            }
            Ev::ComputeDone { inst } => self.start_comm(inst),
            Ev::CollTimer { coll } => {
                let Some(state) = self.colls.get_mut(&coll) else {
                    return;
                };
                let progress = state.exec.on_timer(&mut self.net, self.now);
                self.advance_coll(coll, progress);
            }
            Ev::Background => {
                let Some((bytes, links)) = self.next_background_flow() else {
                    return;
                };
                if !links.is_empty() {
                    self.net.start_flow(self.now, &links, bytes, 0);
                }
            }
            Ev::MonitorTick => {
                self.monitor.poll(&self.net, self.now);
                self.util_snapshot.copy_from_slice(self.monitor.snapshot());
                self.strategy.on_monitor(&self.util_snapshot, self.now);
                self.sample_memory();
                self.metrics.record_link_util(self.now, &self.util_snapshot);
                self.metrics.snapshot(self.now);
                if self.tracer.is_enabled() {
                    // Counter tracks only for links carrying traffic —
                    // idle links would bloat the trace with flat zeros.
                    for (l, &u) in self.util_snapshot.iter().enumerate() {
                        if u > 0.0 {
                            self.tracer.link_util(self.now, l as u64, u);
                        }
                    }
                }
                // Elastic control loop: the controller sees this tick's
                // snapshot and may move the pool targets. Take/put-back
                // keeps the borrow checker out of the snapshot build.
                if let Some(mut ctl) = self.autoscaler.take() {
                    let snap = self.pool_snapshot();
                    let decision = ctl.on_tick(&snap);
                    self.autoscaler = Some(ctl);
                    if let Some(targets) = decision {
                        self.apply_targets(targets);
                    }
                    let (pa, _, _) = self.pool_counts(InstanceKind::Prefill);
                    let (da, _, _) = self.pool_counts(InstanceKind::Decode);
                    self.metrics.set_gauge(self.obs.prefill_active, pa as f64);
                    self.metrics.set_gauge(self.obs.decode_active, da as f64);
                    self.tracer.autoscale_pools(self.now, pa, da);
                }
                self.events
                    .push(self.now + self.cfg.monitor_period, Ev::MonitorTick);
            }
            Ev::Fault(idx) => {
                let kind = self.cfg.faults.events()[idx as usize].kind;
                self.apply_fault(kind);
            }
            Ev::RetryColl { key } => {
                let Some(p) = self.pending_coll_retry.remove(&key) else {
                    return;
                };
                self.flow_retries += 1;
                self.relaunch_collective(p);
            }
            Ev::RetryKv { req } => self.retry_kv(req),
        }
    }

    // ------------------------------------------------------------------
    // Fault handling
    // ------------------------------------------------------------------

    fn apply_fault(&mut self, kind: FaultKind) {
        if self.tracer.is_enabled() {
            let recovered = matches!(
                kind,
                FaultKind::LinkUp { .. }
                    | FaultKind::SwitchRecover { .. }
                    | FaultKind::GpuRecover { .. }
            );
            self.tracer.fault(self.now, format!("{kind:?}"), recovered);
        }
        self.metrics.inc(self.obs.faults, 1);
        match kind {
            FaultKind::LinkDown { link } => self.set_link(link, 0.0),
            FaultKind::LinkUp { link } => self.set_link(link, 1.0),
            FaultKind::LinkDegrade { link, factor } => self.set_link(link, factor),
            FaultKind::SwitchFail { switch } => {
                self.failed_switches.insert(switch);
                let adjacent: Vec<LinkId> =
                    self.g.neighbors(switch).iter().map(|&(_, l)| l).collect();
                for l in adjacent {
                    self.set_link(l, 0.0);
                }
                // Collectives queued on the dead switch would never be
                // admitted; relaunch them so the failover branch can
                // degrade them to a surviving scheme.
                if let Some(q) = self.ina_waiting.remove(&switch) {
                    for w in q {
                        self.schedule_coll_retry(w.inst, w.origin, 0);
                    }
                }
            }
            FaultKind::SwitchRecover { switch } => {
                self.failed_switches.remove(&switch);
                let adjacent: Vec<LinkId> =
                    self.g.neighbors(switch).iter().map(|&(_, l)| l).collect();
                for l in adjacent {
                    self.set_link(l, 1.0);
                }
            }
            FaultKind::GpuStall { gpu, slowdown } => {
                self.gpu_slowdown.insert(gpu, slowdown);
            }
            FaultKind::GpuRecover { gpu } => {
                self.gpu_slowdown.remove(&gpu);
            }
        }
        self.strategy.on_fault(&kind, self.now);
    }

    fn set_link(&mut self, l: LinkId, factor: f64) {
        let aborted = self.net.set_link_scale(self.now, l, factor);
        self.handle_aborted_flows(aborted);
    }

    /// Demux flows a dead link tore out of the network: collectives are
    /// aborted wholesale (their surviving flows cancelled) and relaunched
    /// after a backoff; KV transfers are resent; background flows drop.
    fn handle_aborted_flows(&mut self, aborted: Vec<(FlowId, Flow)>) {
        if aborted.is_empty() {
            return;
        }
        // Keyed in collective-/request-id order: the loops below push retry
        // events, so visit order feeds straight into the event queue.
        let mut dead_colls: BTreeMap<u64, Vec<FlowId>> = BTreeMap::new();
        let mut dead_kv: BTreeMap<u64, Vec<FlowId>> = BTreeMap::new();
        for (id, flow) in &aborted {
            self.aborted_flows += 1;
            match flow.tag >> TAG_KIND_SHIFT {
                1 => dead_colls
                    .entry(flow.tag & TAG_ID_MASK)
                    .or_default()
                    .push(*id),
                2 => dead_kv.entry(flow.tag & TAG_ID_MASK).or_default().push(*id),
                _ => {} // background cross traffic: no retry semantics
            }
        }
        for (rid, gone) in dead_kv {
            let Some(f) = self.kv_inflight.get_mut(&rid) else {
                continue;
            };
            f.live.retain(|fid| !gone.contains(fid));
            if f.retry_pending {
                // Another stripe of the same shipment already scheduled the
                // relaunch this instant; one backoff covers them all.
                continue;
            }
            f.retry_pending = true;
            f.aborted_at = self.now;
            let attempt = f.attempt;
            // Cancel the surviving stripes: a partial shipment is useless,
            // the relaunch resends everything from the true source.
            let survivors = std::mem::take(&mut f.live);
            for fid in survivors {
                // A drained-but-undelivered flow returns None here; its
                // completion still arrives and is ignored (retry_pending).
                self.net.cancel_flow(self.now, fid);
            }
            self.tracer.kv_retry(self.now, rid, attempt + 1, gone.len());
            self.events
                .push(self.now + retry_delay(attempt), Ev::RetryKv { req: rid });
        }
        for (coll, gone) in dead_colls {
            let Some(mut state) = self.colls.remove(&coll) else {
                continue;
            };
            self.tracer.collective_abort(self.now, coll, gone.len());
            self.tracer
                .collective_end(self.now, coll, coll_kind(&state.origin));
            self.metrics.inc(self.obs.coll_aborts, 1);
            state.exec.abort(&mut self.net, self.now, &gone);
            self.release_ina(state.ina_switch, coll);
            self.schedule_coll_retry(state.inst, state.origin, state.attempt);
        }
    }

    fn schedule_coll_retry(&mut self, inst: usize, origin: CollOrigin, attempt: u32) {
        let key = self.next_coll;
        self.next_coll += 1;
        self.pending_coll_retry.insert(
            key,
            PendingRetry {
                inst,
                origin,
                attempt,
                aborted_at: self.now,
            },
        );
        self.events
            .push(self.now + retry_delay(attempt), Ev::RetryColl { key });
    }

    fn relaunch_collective(&mut self, p: PendingRetry) {
        let retry = Some((p.attempt + 1, p.aborted_at));
        let counted = match &p.origin {
            CollOrigin::Group {
                group_id,
                group,
                bytes,
            } => {
                let (group_id, group, bytes) = (*group_id, group.clone(), *bytes);
                let ctx = CommCtx {
                    group_id,
                    group: &group,
                    bytes,
                    now: self.now,
                    link_util: &self.util_snapshot,
                };
                let scheme = self.strategy.choose(&ctx);
                self.launch_collective_inner(p.inst, group_id, &group, scheme, bytes, retry)
            }
            CollOrigin::PipeHops { hops } => {
                let hops = hops.clone();
                let plan = self.compile_pipe_plan(&hops);
                match plan {
                    Some(plan) => self.launch_plan(
                        p.inst,
                        plan,
                        None,
                        CollOrigin::PipeHops { hops },
                        retry,
                        None,
                    ),
                    None => false,
                }
            }
        };
        if !counted {
            // The relaunch completed instantly (degenerate plan): close
            // out the instance's outstanding slot the abort left open.
            self.coll_finished_for_instance(p.inst);
        }
    }

    /// Relaunch an aborted KV shipment: every stripe restarts from the
    /// request's *original* prefill GPUs (the stripe plan is immutable),
    /// with per-stripe routes re-chosen so the strategy can steer around
    /// the fault.
    fn retry_kv(&mut self, req: u64) {
        let Some(f) = self.kv_inflight.get_mut(&req) else {
            return;
        };
        if !f.retry_pending {
            // Stale retry event (e.g. the shipment already completed via a
            // later relaunch at the same timestamp).
            return;
        }
        f.attempt += 1;
        f.retry_pending = false;
        let (stripes, aborted_at) = (f.stripes.clone(), f.aborted_at);
        self.flow_retries += 1;
        self.kv_retries += 1;
        self.metrics.inc(self.obs.kv_retries, 1);
        let mut live = Vec::with_capacity(stripes.len());
        let mut all_alive = true;
        for st in &stripes {
            let links = self
                .strategy
                .choose_path(st.src, st.dst, st.bytes, &self.util_snapshot)
                .unwrap_or_else(|| self.ap.path(st.src, st.dst).directed_links(&self.g));
            if links.is_empty() {
                continue;
            }
            if links.iter().any(|&(l, _)| self.net.link_scale(l) <= 0.0) {
                all_alive = false;
            }
            live.push(
                self.net
                    .start_flow(self.now, &links, st.bytes, TAG_KV | req),
            );
        }
        self.kv_stripes_launched += live.len() as u64;
        if live.is_empty() {
            // Every stripe degenerated (e.g. all routes collapsed to
            // same-node): the shipment is over.
            self.kv_done(RequestId(req));
            return;
        }
        if all_alive {
            let delay = self.now.saturating_since(aborted_at).as_secs_f64();
            self.reroute_secs.push(delay);
            self.tracer.reroute(self.now, req, delay);
        }
        self.kv_inflight
            .get_mut(&req)
            .expect("flight still inflight after relaunch")
            .live = live;
    }

    /// Worst GPU-stall slowdown across an instance's GPUs (1.0 healthy).
    fn compute_slowdown(&self, inst: usize) -> f64 {
        if self.gpu_slowdown.is_empty() {
            return 1.0;
        }
        self.instances[inst]
            .spec
            .all_gpus()
            .iter()
            .map(|g| self.gpu_slowdown.get(g).copied().unwrap_or(1.0))
            .fold(1.0, f64::max)
    }

    /// Draw the next background flow and schedule the one after.
    fn next_background_flow(&mut self) -> Option<(u64, Vec<hs_simnet::DirLink>)> {
        let (_, bytes) = self.cfg.background?;
        let (mmpp, rng) = self.bg.as_mut()?;
        let next = self.now + mmpp.next_gap(rng);
        self.events.push(next, Ev::Background);
        let gpus = self.g.gpus();
        let a = *gpus.choose(rng)?;
        let mut b = *gpus.choose(rng)?;
        let mut guard = 0;
        while b == a && guard < 8 {
            b = *gpus.choose(rng)?;
            guard += 1;
        }
        if a == b || !self.ap.covers(a) || !self.ap.covers(b) {
            return None;
        }
        Some((bytes, self.ap.path(a, b).directed_links(&self.g)))
    }

    // ------------------------------------------------------------------
    // Elastic pools (autoscaling)
    // ------------------------------------------------------------------

    fn pool_range(&self, kind: InstanceKind) -> std::ops::Range<usize> {
        match kind {
            InstanceKind::Prefill => 0..self.decode_offset,
            InstanceKind::Decode => self.decode_offset..self.instances.len(),
        }
    }

    /// `(active, draining, parked)` counts for one pool.
    fn pool_counts(&self, kind: InstanceKind) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for i in self.pool_range(kind) {
            match self.instances[i].state {
                PoolState::Active => counts.0 += 1,
                PoolState::Draining => counts.1 += 1,
                PoolState::Parked => counts.2 += 1,
            }
        }
        counts
    }

    fn pool_snapshot(&self) -> PoolSnapshot {
        let (pa, pd, pp) = self.pool_counts(InstanceKind::Prefill);
        let (da, dd, dp) = self.pool_counts(InstanceKind::Decode);
        // Admission pressure over the instances that can take new work;
        // an empty Active set reads as full pressure.
        let mut pressure = 0.0;
        let mut n = 0usize;
        for d in 0..self.kv.len() {
            if self.instances[self.decode_offset + d].state == PoolState::Active {
                pressure += self.kv[d].reserved_utilization();
                n += 1;
            }
        }
        PoolSnapshot {
            now: self.now,
            arrived: self.arrived_count,
            done: self.done_total,
            done_sla_ok: self.done_ok,
            prefill_queue: self.prefill_queue.len(),
            pending_admission: self.pending_admission.len(),
            prefill_active: pa,
            prefill_draining: pd,
            prefill_parked: pp,
            decode_active: da,
            decode_draining: dd,
            decode_parked: dp,
            kv_pressure: if n == 0 { 1.0 } else { pressure / n as f64 },
        }
    }

    /// Move both pools toward `targets`. Targets are clamped to
    /// `[1, pool size]`; growth re-activates Draining instances first
    /// (they are warm), then unparks in ascending index order; shrink
    /// drains the highest-index Active instances (they park on their own
    /// once empty — see [`ClusterSim::maybe_park`]).
    fn apply_targets(&mut self, targets: PoolTargets) {
        let prefill_slots = self.decode_offset;
        let decode_slots = self.instances.len() - self.decode_offset;
        if prefill_slots > 0 {
            self.retarget_pool(
                InstanceKind::Prefill,
                targets.prefill.clamp(1, prefill_slots),
            );
        }
        if decode_slots > 0 {
            self.retarget_pool(InstanceKind::Decode, targets.decode.clamp(1, decode_slots));
        }
        // Newly activated capacity picks up queued work immediately.
        self.kick_prefill();
        self.retry_admissions();
    }

    fn retarget_pool(&mut self, kind: InstanceKind, want: usize) {
        let range = self.pool_range(kind);
        let (active, ..) = self.pool_counts(kind);
        let pool_name = match kind {
            InstanceKind::Prefill => "prefill",
            InstanceKind::Decode => "decode",
        };
        if want > active {
            let mut need = want - active;
            // Cancel drains first: their state is intact and the GPU-hours
            // clock never stopped, so reactivation is free.
            for i in range.clone() {
                if need == 0 {
                    break;
                }
                if self.instances[i].state == PoolState::Draining {
                    self.instances[i].state = PoolState::Active;
                    need -= 1;
                    self.scale_ups += 1;
                    self.metrics.inc(self.obs.scale_ups, 1);
                }
            }
            for i in range {
                if need == 0 {
                    break;
                }
                if self.instances[i].state == PoolState::Parked {
                    self.instances[i].state = PoolState::Active;
                    self.instances[i].occupied_since = Some(self.now);
                    need -= 1;
                    self.scale_ups += 1;
                    self.metrics.inc(self.obs.scale_ups, 1);
                }
            }
            self.tracer
                .autoscale_decision(self.now, pool_name, active, want, "grow");
        } else if want < active {
            let mut excess = active - want;
            for i in range.rev() {
                if excess == 0 {
                    break;
                }
                if self.instances[i].state == PoolState::Active {
                    self.instances[i].state = PoolState::Draining;
                    excess -= 1;
                    self.scale_downs += 1;
                    self.metrics.inc(self.obs.scale_downs, 1);
                    self.maybe_park(i);
                }
            }
            self.tracer
                .autoscale_decision(self.now, pool_name, active, want, "shrink");
        }
    }

    /// Park a Draining instance once it holds no work: a prefill instance
    /// must be idle with no batch; a decode instance must hold no live or
    /// joining requests *and* no KV reservation (a reservation covers
    /// admissions whose KV transfer is still in the air, so an instance
    /// can never park out from under an inbound shipment).
    fn maybe_park(&mut self, inst: usize) {
        if self.instances[inst].state != PoolState::Draining {
            return;
        }
        let empty = match self.instances[inst].kind {
            InstanceKind::Prefill => {
                self.instances[inst].phase == InstPhase::Idle
                    && self.instances[inst].batch.is_empty()
            }
            InstanceKind::Decode => {
                let kv_idx = inst - self.decode_offset;
                self.instances[inst].active.is_empty()
                    && self.instances[inst].joining.is_empty()
                    && self.kv[kv_idx].reserved() == 0
            }
        };
        if empty {
            self.instances[inst].flush_gpu_seconds(self.now);
            self.instances[inst].state = PoolState::Parked;
            let pool = match self.instances[inst].kind {
                InstanceKind::Prefill => "prefill",
                InstanceKind::Decode => "decode",
            };
            self.tracer.autoscale_parked(self.now, inst as u64, pool);
        }
    }

    // ------------------------------------------------------------------
    // Prefill path
    // ------------------------------------------------------------------

    /// Start iterations on every Active, idle prefill instance with
    /// queued work. Draining/Parked instances take no new batches.
    fn kick_prefill(&mut self) {
        for i in 0..self.decode_offset {
            if self.instances[i].state == PoolState::Active
                && self.instances[i].phase == InstPhase::Idle
                && !self.prefill_queue.is_empty()
            {
                self.start_prefill_iteration(i);
            }
        }
    }

    fn start_prefill_iteration(&mut self, inst: usize) {
        let reqs = &self.reqs;
        let batch = form_prefill_batch(&mut self.prefill_queue, &self.cfg.batch, |id| {
            reqs[id.0 as usize].req.input_tokens as u64
        });
        if batch.is_empty() {
            return;
        }
        let mut stats = BatchStats::default();
        for &id in &batch {
            let r = &mut self.reqs[id.0 as usize];
            r.phase = ReqPhase::Prefilling;
            stats.push(r.req.input_tokens as u64, r.req.output_tokens as u64);
            self.tracer.request_phase_end(self.now, id.0, "queued");
            self.tracer.request_phase_begin(self.now, id.0, "prefill");
        }
        let spec = &self.instances[inst].spec;
        let t_c = prefill_latency_secs(&self.cfg.coef, &self.cfg.model, &stats, spec.p_tens())
            * self.compute_slowdown(inst);
        self.instances[inst].batch = batch;
        self.instances[inst].phase = InstPhase::Computing;
        self.events.push(
            self.now + SimSpan::from_secs_f64(t_c),
            Ev::ComputeDone { inst },
        );
    }

    // ------------------------------------------------------------------
    // Communication phase (both kinds)
    // ------------------------------------------------------------------

    /// Tokens flowing through the instance this iteration (drives sync
    /// volume): prompt tokens for prefill, one per live request for
    /// decode.
    fn iteration_tokens(&self, inst: usize) -> u64 {
        let instance = &self.instances[inst];
        match instance.kind {
            InstanceKind::Prefill => instance
                .batch
                .iter()
                .map(|id| self.reqs[id.0 as usize].req.input_tokens as u64)
                .sum(),
            InstanceKind::Decode => instance.active.len() as u64,
        }
    }

    fn start_comm(&mut self, inst: usize) {
        let tokens = self.iteration_tokens(inst);
        let spec = self.instances[inst].spec.clone();
        let pp = spec.p_pipe().max(1) as u64;
        // Per-stage tensor-parallel sync volume: both all-reduce points of
        // each of the stage's L/pp layers.
        let stage_bytes = self.cfg.model.sync_bytes_total(tokens) / pp;
        let mut outstanding = 0usize;

        for (sidx, group) in spec.stages.iter().enumerate() {
            if group.len() < 2 || stage_bytes == 0 {
                continue;
            }
            let group_id = (inst as u64) << 8 | sidx as u64;
            let ctx = CommCtx {
                group_id,
                group,
                bytes: stage_bytes,
                now: self.now,
                link_util: &self.util_snapshot,
            };
            let scheme = self.strategy.choose(&ctx);
            if self.launch_collective_inner(inst, group_id, group, scheme, stage_bytes, None) {
                outstanding += 1;
            }
        }

        // Pipeline-stage boundary transfers (Eq. 6): activations of
        // `tokens` tokens hop from each stage's leader to the next.
        if spec.p_pipe() > 1 && tokens > 0 {
            let hop_bytes =
                tokens * self.cfg.model.hidden as u64 * self.cfg.model.precision.bytes();
            let hops: Vec<(NodeId, NodeId, u64)> = spec
                .stages
                .windows(2)
                .map(|w| (w[0][0], w[1][0], hop_bytes))
                .collect();
            if let Some(plan) = self.compile_pipe_plan(&hops) {
                if self.launch_plan(inst, plan, None, CollOrigin::PipeHops { hops }, None, None) {
                    outstanding += 1;
                }
            }
        }

        if outstanding == 0 {
            self.iteration_done(inst);
        } else {
            self.instances[inst].phase = InstPhase::Communicating { outstanding };
        }
    }

    /// Build the pipeline-hop plan, re-choosing each hop's route (the
    /// strategy may steer around faults/hotspots; the static fallback is
    /// the precomputed shortest path).
    fn compile_pipe_plan(&mut self, hops: &[(NodeId, NodeId, u64)]) -> Option<CollectivePlan> {
        let mut phases = Vec::new();
        for &(from, to, hop_bytes) in hops {
            let links = self
                .strategy
                .choose_path(from, to, hop_bytes, &self.util_snapshot)
                .unwrap_or_else(|| self.ap.path(from, to).directed_links(&self.g));
            if !links.is_empty() {
                phases.push(Phase {
                    transfers: vec![(links, hop_bytes)],
                    post_delay: SimSpan::ZERO,
                });
            }
        }
        if phases.is_empty() {
            None
        } else {
            Some(CollectivePlan { phases })
        }
    }

    /// Launch one tensor-group collective. Returns whether it counts as
    /// outstanding (false when it completed instantly). `retry` carries
    /// `(attempt, aborted_at)` when this is a post-fault relaunch.
    fn launch_collective_inner(
        &mut self,
        inst: usize,
        group_id: u64,
        group: &[NodeId],
        scheme: Scheme,
        bytes: u64,
        retry: Option<(u32, SimTime)>,
    ) -> bool {
        let origin = CollOrigin::Group {
            group_id,
            group: group.to_vec(),
            bytes,
        };
        // A hierarchical-INA scheme whose group fits in one server never
        // reaches the switch — it degenerates to NVLink reduce/broadcast
        // and must not consume switch aggregation capacity.
        let aggregates_in_network = match scheme {
            Scheme::Ina { .. } => group.len() >= 2,
            Scheme::HierIna { .. } => hs_collective::latency::leaders(&self.g, group).len() >= 2,
            _ => false,
        };
        let (scheme, ina_switch) = match scheme {
            // A *failed* switch cannot aggregate at all: degrade to a
            // host-side scheme and count the failover (graceful
            // degradation, distinct from busy-switch fallback).
            Scheme::Ina { switch } | Scheme::HierIna { switch }
                if aggregates_in_network && self.failed_switches.contains(&switch) =>
            {
                self.ina_failovers += 1;
                self.ring_ops += 1;
                self.tracer
                    .ina_fallback(self.now, switch.0 as u64, group_id);
                match self.strategy.busy_policy() {
                    BusyPolicy::FallbackHierRing => (Scheme::HierRing, None),
                    // Waiting on a dead switch would hang; degrade.
                    BusyPolicy::FallbackRing | BusyPolicy::Wait => (Scheme::Ring, None),
                }
            }
            Scheme::Ina { switch } | Scheme::HierIna { switch } if aggregates_in_network => {
                let active = self.ina_active.get(&switch).copied().unwrap_or(0);
                if active >= self.cfg.ina_capacity_per_switch {
                    match self.strategy.busy_policy() {
                        BusyPolicy::FallbackRing => {
                            self.ina_fallbacks += 1;
                            self.ring_ops += 1;
                            self.tracer
                                .ina_fallback(self.now, switch.0 as u64, group_id);
                            (Scheme::Ring, None)
                        }
                        BusyPolicy::FallbackHierRing => {
                            self.ina_fallbacks += 1;
                            self.ring_ops += 1;
                            self.tracer
                                .ina_fallback(self.now, switch.0 as u64, group_id);
                            (Scheme::HierRing, None)
                        }
                        BusyPolicy::Wait => {
                            // Queue the compiled plan until the switch
                            // frees capacity.
                            let plan =
                                CollectivePlan::compile(&self.g, &self.ap, group, scheme, bytes);
                            self.ina_ops += 1;
                            self.ina_waiting
                                .entry(switch)
                                .or_default()
                                .push_back(WaitingColl {
                                    inst,
                                    plan,
                                    switch,
                                    origin,
                                });
                            return true;
                        }
                    }
                } else {
                    *self.ina_active.entry(switch).or_insert(0) += 1;
                    self.ina_ops += 1;
                    (scheme, Some(switch))
                }
            }
            other => {
                self.ring_ops += 1;
                (other, None)
            }
        };
        let plan = CollectivePlan::compile(&self.g, &self.ap, group, scheme, bytes);
        self.launch_plan(inst, plan, ina_switch, origin, retry, Some(scheme.label()))
    }

    /// Launch an arbitrary compiled plan. Returns whether it is
    /// outstanding. When `retry` is set, this is a post-abort relaunch:
    /// a plan that avoids every dead link counts as a completed reroute.
    /// `scheme` is the chosen scheme's label, when known, for the trace.
    fn launch_plan(
        &mut self,
        inst: usize,
        plan: CollectivePlan,
        ina_switch: Option<NodeId>,
        origin: CollOrigin,
        retry: Option<(u32, SimTime)>,
        scheme: Option<&'static str>,
    ) -> bool {
        let attempt = retry.map(|(a, _)| a).unwrap_or(0);
        let coll = self.next_coll;
        self.next_coll += 1;
        if let Some((_, aborted_at)) = retry {
            let avoids_dead = plan.phases.iter().all(|ph| {
                ph.transfers
                    .iter()
                    .all(|(path, _)| path.iter().all(|&(l, _)| self.net.link_scale(l) > 0.0))
            });
            if avoids_dead {
                let delay = self.now.saturating_since(aborted_at).as_secs_f64();
                self.reroute_secs.push(delay);
                self.tracer.reroute(self.now, coll, delay);
            }
        }
        if self.tracer.is_enabled() {
            let (group, bytes) = match &origin {
                CollOrigin::Group {
                    group_id, bytes, ..
                } => (*group_id, *bytes),
                CollOrigin::PipeHops { hops } => {
                    (inst as u64, hops.iter().map(|&(_, _, b)| b).sum())
                }
            };
            self.tracer
                .collective_begin(self.now, coll, group, coll_kind(&origin), scheme, bytes);
            if let Some(sw) = ina_switch {
                let active = self.ina_active.get(&sw).copied().unwrap_or(0);
                self.tracer
                    .ina_session_begin(self.now, sw.0 as u64, coll, active as u32);
            }
        }
        self.metrics.inc(self.obs.colls, 1);
        let mut exec = CollectiveExec::new(plan, TAG_COLL | coll);
        let progress = exec.start(&mut self.net, self.now);
        match progress {
            Progress::Done => {
                self.tracer
                    .collective_end(self.now, coll, coll_kind(&origin));
                self.release_ina(ina_switch, coll);
                false
            }
            Progress::InFlight => {
                self.colls.insert(
                    coll,
                    CollState {
                        exec,
                        inst,
                        ina_switch,
                        origin,
                        attempt,
                    },
                );
                true
            }
            Progress::StartTimer(d) => {
                self.colls.insert(
                    coll,
                    CollState {
                        exec,
                        inst,
                        ina_switch,
                        origin,
                        attempt,
                    },
                );
                self.events.push(self.now + d, Ev::CollTimer { coll });
                true
            }
        }
    }

    fn advance_coll(&mut self, coll: u64, progress: Progress) {
        match progress {
            Progress::InFlight => {}
            Progress::StartTimer(d) => {
                self.events.push(self.now + d, Ev::CollTimer { coll });
            }
            Progress::Done => {
                // A fault between the completing network event and this
                // notification may already have torn the collective down
                // (abort path); finishing twice would double-release.
                let Some(state) = self.colls.remove(&coll) else {
                    return;
                };
                self.tracer
                    .collective_end(self.now, coll, coll_kind(&state.origin));
                self.release_ina(state.ina_switch, coll);
                self.coll_finished_for_instance(state.inst);
            }
        }
    }

    /// Release `job`'s aggregation slot on `sw` (if any) and admit one
    /// waiting collective.
    fn release_ina(&mut self, sw: Option<NodeId>, job: u64) {
        let Some(sw) = sw else { return };
        self.tracer.ina_session_end(self.now, sw.0 as u64, job);
        // Every release must pair with an acquisition. The old
        // `or_insert(1)` + `saturating_sub` would conjure a slot for an
        // unpaired release (e.g. a collective ended twice) and silently
        // widen the switch's session capacity; instead the release is
        // dropped, counted, and flagged in debug builds.
        match self.ina_active.get_mut(&sw) {
            Some(c) if *c > 0 => *c -= 1,
            _ => {
                debug_assert!(
                    false,
                    "INA release without matching acquire (switch {}, job {job})",
                    sw.0
                );
                self.ina_release_underflows += 1;
                // No slot actually freed, so nothing to hand to a waiter.
                return;
            }
        }
        // Admit one waiting collective, if any.
        if let Some(q) = self.ina_waiting.get_mut(&sw) {
            if let Some(w) = q.pop_front() {
                *self.ina_active.entry(sw).or_insert(0) += 1;
                let counted =
                    self.launch_plan(w.inst, w.plan, Some(w.switch), w.origin, None, None);
                if !counted {
                    // Instantly done (degenerate plan): close it out.
                    self.coll_finished_for_instance(w.inst);
                }
            }
        }
    }

    fn coll_finished_for_instance(&mut self, inst: usize) {
        let done = {
            let instance = &mut self.instances[inst];
            match &mut instance.phase {
                InstPhase::Communicating { outstanding } => {
                    *outstanding -= 1;
                    *outstanding == 0
                }
                _ => unreachable!("collective finished while instance not communicating"),
            }
        };
        if done {
            self.iteration_done(inst);
        }
    }

    // ------------------------------------------------------------------
    // Iteration boundaries
    // ------------------------------------------------------------------

    fn iteration_done(&mut self, inst: usize) {
        self.instances[inst].iterations += 1;
        self.instances[inst].phase = InstPhase::Idle;
        match self.instances[inst].kind {
            InstanceKind::Prefill => {
                let batch = std::mem::take(&mut self.instances[inst].batch);
                for id in batch {
                    let r = &mut self.reqs[id.0 as usize];
                    r.prefill_done = Some(self.now);
                    r.phase = ReqPhase::AwaitingAdmission;
                    // The KV cache lives on this instance's GPUs from now
                    // on — every (re)transfer must ship from here.
                    r.prefill_instance = Some(inst);
                    self.tracer.request_phase_end(self.now, id.0, "prefill");
                    self.try_admit(id);
                }
                self.kick_prefill();
                self.maybe_park(inst);
            }
            InstanceKind::Decode => {
                let kv_idx = inst - self.decode_offset;
                let active = self.instances[inst].active.clone();
                let mut finished_reqs = Vec::new();
                let mut live_growth = 0u64;
                let (ttft_sla, tpot_sla) = (self.cfg.ttft_sla_s, self.cfg.tpot_sla_s);
                for id in &active {
                    let r = &mut self.reqs[id.0 as usize];
                    r.tokens_generated += 1;
                    live_growth += 1;
                    if r.tokens_generated >= r.req.output_tokens {
                        r.phase = ReqPhase::Done;
                        r.finished = Some(self.now);
                        finished_reqs.push(*id);
                        let ttft = r.ttft_secs().unwrap_or(0.0);
                        let latency = self.now.saturating_since(r.req.arrival).as_secs_f64();
                        let tpot = r.tpot_secs();
                        self.done_total += 1;
                        if ttft <= ttft_sla && tpot.map(|t| t <= tpot_sla).unwrap_or(false) {
                            self.done_ok += 1;
                        }
                        self.tracer.request_phase_end(self.now, id.0, "decode");
                        self.tracer.request_done(self.now, id.0, ttft, latency);
                        self.metrics.inc(self.obs.completed, 1);
                        self.metrics.observe(self.obs.ttft, ttft);
                        if let Some(tp) = tpot {
                            self.metrics.observe(self.obs.tpot, tp);
                        }
                    }
                }
                self.kv[kv_idx].materialize(live_growth);
                if !finished_reqs.is_empty() {
                    for id in &finished_reqs {
                        let r = &self.reqs[id.0 as usize];
                        self.kv[kv_idx].release(
                            r.reserved_kv_tokens(),
                            r.req.input_tokens as u64 + r.tokens_generated as u64,
                        );
                    }
                    self.instances[inst]
                        .active
                        .retain(|id| !finished_reqs.contains(id));
                    self.retry_admissions();
                }
                self.start_decode_iteration(inst);
                self.maybe_park(inst);
            }
        }
    }

    // ------------------------------------------------------------------
    // Admission + KV transfer
    // ------------------------------------------------------------------

    /// Try to admit `id` to a decode instance; a refused request joins the
    /// pending-admission queue (and counts one deferral — retry passes
    /// re-use [`admit_request`] directly and don't re-count).
    fn try_admit(&mut self, id: RequestId) {
        if !self.admit_request(id) {
            self.kv_deferrals += 1;
            self.metrics.inc(self.obs.kv_deferrals, 1);
            self.pending_admission.push_back(id);
        }
    }

    /// Pick a decode instance and launch the striped KV transfer. Returns
    /// `false` when no instance can take the request right now.
    fn admit_request(&mut self, id: RequestId) -> bool {
        let need = self.reqs[id.0 as usize].reserved_kv_tokens();
        // Candidates in ascending decode-pool order (deterministic).
        // Draining/Parked instances are not admission targets.
        let eligible: Vec<usize> = (0..self.kv.len())
            .filter(|&d| {
                self.instances[self.decode_offset + d].state == PoolState::Active
                    && self.kv[d].can_admit(need)
            })
            .collect();
        if eligible.is_empty() {
            return false;
        }
        let prefill_inst = self.reqs[id.0 as usize]
            .prefill_instance
            .expect("admission before prefill completion");
        let input_tokens = self.reqs[id.0 as usize].req.input_tokens as u64;
        let bytes = input_tokens * self.cfg.model.kv_bytes_per_token();
        let src_gpus = self.instances[prefill_inst].spec.all_gpus();
        let least_loaded = |sim: &Self| -> usize {
            eligible
                .iter()
                .copied()
                .min_by_key(|&d| sim.instances[sim.decode_offset + d].decode_load())
                .expect("eligible is non-empty")
        };
        // Decode-instance selection: network-aware strategies score the
        // candidates (NetKV-style); everyone else takes least-loaded.
        let (d, est_s) = if self.strategy.network_aware_admission() {
            let candidates: Vec<KvCandidate> = eligible
                .iter()
                .map(|&d| KvCandidate {
                    instance: d,
                    load: self.instances[self.decode_offset + d].decode_load(),
                    headroom_tokens: self.kv[d].headroom(),
                    capacity_tokens: self.kv[d].capacity(),
                    dst_gpus: self.instances[self.decode_offset + d].spec.all_gpus(),
                })
                .collect();
            let ctx = KvCtx {
                req: id.0,
                bytes,
                src_gpus: &src_gpus,
                link_util: &self.util_snapshot,
                now: self.now,
            };
            match self.strategy.choose_decode(&ctx, &candidates) {
                // A choice outside the candidate set falls through to
                // least-loaded — the strategy can never over-admit.
                Some(c) if eligible.contains(&c.instance) => (c.instance, c.est_transfer_s),
                _ => {
                    let d = least_loaded(self);
                    let est = self.idle_kv_estimate(&src_gpus, d, bytes);
                    (d, est)
                }
            }
        } else {
            let d = least_loaded(self);
            let est = self.idle_kv_estimate(&src_gpus, d, bytes);
            (d, est)
        };
        // Selection and reservation are decoupled, so re-validate instead
        // of asserting: a refused reservation defers the request rather
        // than killing the run.
        if !self.kv[d].admit(need) {
            self.tracer.warning(
                self.now,
                format!("kv admit race: instance {d} refused request {}", id.0),
            );
            return false;
        }
        let r = &mut self.reqs[id.0 as usize];
        r.decode_instance = Some(self.decode_offset + d);
        r.phase = ReqPhase::TransferringKv;
        self.tracer
            .request_phase_begin(self.now, id.0, "kv_transfer");
        self.kv[d].materialize(input_tokens);
        // Stripe the shipment across the Eq. 15 parallel TP pairs: one
        // flow per src/dst GPU pair, done when the slowest stripe drains.
        let dst_gpus = self.instances[self.decode_offset + d].spec.all_gpus();
        let stripes = stripe_plan(&src_gpus, &dst_gpus, bytes);
        let mut live = Vec::with_capacity(stripes.len());
        for st in &stripes {
            // The strategy may route each stripe (HeroServe's path
            // policy); otherwise take the static shortest path.
            let links = self
                .strategy
                .choose_path(st.src, st.dst, st.bytes, &self.util_snapshot)
                .unwrap_or_else(|| self.ap.path(st.src, st.dst).directed_links(&self.g));
            if links.is_empty() {
                continue;
            }
            live.push(
                self.net
                    .start_flow(self.now, &links, st.bytes, TAG_KV | id.0),
            );
        }
        self.kv_transfers += 1;
        self.kv_stripes_launched += live.len() as u64;
        self.kv_bytes_total += bytes;
        self.metrics.inc(self.obs.kv_transfers, 1);
        self.tracer.kv_transfer_begin(
            self.now,
            id.0,
            prefill_inst as u64,
            (self.decode_offset + d) as u64,
            bytes,
            live.len(),
            est_s,
        );
        let instantly_done = live.is_empty();
        self.kv_inflight.insert(
            id.0,
            KvFlight {
                stripes,
                live,
                attempt: 0,
                started: self.now,
                aborted_at: SimTime::ZERO,
                retry_pending: false,
                est_s,
            },
        );
        if instantly_done {
            // Zero-byte shipment or co-located prefill/decode: nothing to
            // move over the fabric.
            self.kv_done(id);
        }
        true
    }

    /// Idle-fabric transfer-time estimate for the engine's own least-
    /// loaded pick: the slowest Eq. 15 stripe over uncontended links.
    /// Network-aware strategies supply their own utilization-adjusted
    /// estimate through [`KvChoice`](crate::strategy::KvChoice).
    fn idle_kv_estimate(&self, src_gpus: &[NodeId], d: usize, bytes: u64) -> f64 {
        let dst_gpus = self.instances[self.decode_offset + d].spec.all_gpus();
        stripe_plan(src_gpus, &dst_gpus, bytes)
            .iter()
            .filter(|st| self.ap.covers(st.src) && self.ap.covers(st.dst))
            .map(|st| path_transfer_secs(&self.g, self.ap.path(st.src, st.dst), st.bytes, None))
            .fold(0.0, f64::max)
    }

    /// Offer freed decode capacity back to the deferred-admission queue
    /// with head-of-line semantics and a bounded reorder window: the head
    /// keeps first claim on released memory, but up to
    /// [`ADMIT_REORDER_WINDOW`] blocked requests may be stepped over so a
    /// single huge request cannot idle capacity that smaller ones behind
    /// it could use. Blocked heads return to the front in their original
    /// order, so a large request's queue position — and its claim on the
    /// next release — is preserved (no starvation).
    fn retry_admissions(&mut self) {
        /// Max blocked requests a retry pass may step over.
        const ADMIT_REORDER_WINDOW: usize = 4;
        let mut blocked: Vec<RequestId> = Vec::new();
        while let Some(id) = self.pending_admission.pop_front() {
            if blocked.len() >= ADMIT_REORDER_WINDOW {
                self.pending_admission.push_front(id);
                break;
            }
            if !self.admit_request(id) {
                blocked.push(id);
            }
        }
        for id in blocked.into_iter().rev() {
            self.pending_admission.push_front(id);
        }
    }

    fn kv_done(&mut self, id: RequestId) {
        if let Some(f) = self.kv_inflight.remove(&id.0) {
            let actual = self.now.saturating_since(f.started).as_secs_f64();
            self.kv_transfer_secs.push(actual);
            self.kv_est_err_secs.push((f.est_s - actual).abs());
            self.metrics.observe(self.obs.kv_transfer_s, actual);
            self.tracer
                .kv_transfer_end(self.now, id.0, actual, f.est_s, f.attempt);
        }
        let r = &mut self.reqs[id.0 as usize];
        r.phase = ReqPhase::Decoding;
        r.decode_start = Some(self.now);
        self.tracer.request_phase_end(self.now, id.0, "kv_transfer");
        self.tracer.request_phase_begin(self.now, id.0, "decode");
        let inst = r.decode_instance.expect("admitted request has instance");
        self.instances[inst].joining.push(id);
        if self.instances[inst].phase == InstPhase::Idle {
            self.start_decode_iteration(inst);
        }
    }

    fn start_decode_iteration(&mut self, inst: usize) {
        let joining = std::mem::take(&mut self.instances[inst].joining);
        self.instances[inst].active.extend(joining);
        if self.instances[inst].active.is_empty() {
            self.instances[inst].phase = InstPhase::Idle;
            return;
        }
        let mut stats = BatchStats::default();
        for id in &self.instances[inst].active {
            let r = &self.reqs[id.0 as usize];
            stats.push(
                r.req.input_tokens as u64 + r.tokens_generated as u64,
                r.req.output_tokens as u64,
            );
        }
        let spec = &self.instances[inst].spec;
        let t_c = decode_latency_secs(
            &self.cfg.coef,
            &self.cfg.model,
            &stats,
            spec.p_tens(),
            spec.p_pipe(),
        ) * self.compute_slowdown(inst);
        self.instances[inst].phase = InstPhase::Computing;
        self.events.push(
            self.now + SimSpan::from_secs_f64(t_c),
            Ev::ComputeDone { inst },
        );
    }

    // ------------------------------------------------------------------
    // Flow demux
    // ------------------------------------------------------------------

    fn on_flow_done(&mut self, id: FlowId, tag: u64) {
        match tag >> TAG_KIND_SHIFT {
            1 => {
                let coll = tag & TAG_ID_MASK;
                let Some(state) = self.colls.get_mut(&coll) else {
                    return;
                };
                let progress = state.exec.on_flow_complete(&mut self.net, self.now, id);
                self.advance_coll(coll, progress);
            }
            2 => {
                let rid = tag & TAG_ID_MASK;
                let Some(f) = self.kv_inflight.get_mut(&rid) else {
                    // Already completed (e.g. a duplicate completion after
                    // a same-instant relaunch): nothing to do.
                    return;
                };
                if f.retry_pending {
                    // A cancelled-but-drained stripe's completion arriving
                    // after the abort; the pending relaunch supersedes it.
                    return;
                }
                let Some(pos) = f.live.iter().position(|&fid| fid == id) else {
                    // A stripe from a superseded launch generation.
                    return;
                };
                f.live.swap_remove(pos);
                if f.live.is_empty() {
                    self.kv_done(RequestId(rid));
                }
            }
            _ => {} // background / foreign flows
        }
    }

    // ------------------------------------------------------------------
    // Reporting
    // ------------------------------------------------------------------

    fn sample_memory(&mut self) {
        if self.kv.is_empty() {
            return;
        }
        let utils: Vec<f64> = self
            .kv
            .iter()
            .map(|m| {
                // Convert live tokens into whole-GPU memory utilization.
                self.mem_model
                    .utilization(self.cfg.gpu_memory_bytes, m.live())
            })
            .collect();
        let mean = utils.iter().sum::<f64>() / utils.len() as f64;
        let max = utils.iter().fold(0.0f64, |a, &b| a.max(b));
        self.mem_series.push(MemSample {
            t: self.now,
            mean_util: mean,
            max_util: max,
        });
    }

    fn build_report(&mut self, horizon: SimTime) -> SimReport {
        // Close every open occupancy interval at the horizon: a run with
        // no autoscaler reports exactly `total_gpus × horizon` GPU-seconds.
        let mut gpu_seconds = 0.0;
        for inst in &mut self.instances {
            inst.flush_gpu_seconds(horizon);
            gpu_seconds += inst.gpu_seconds;
        }
        let (final_prefill_active, ..) = self.pool_counts(InstanceKind::Prefill);
        let (final_decode_active, ..) = self.pool_counts(InstanceKind::Decode);
        let horizon_s = horizon.as_secs_f64();
        let mut report = SimReport {
            scale_ups: self.scale_ups,
            scale_downs: self.scale_downs,
            gpu_seconds,
            mean_active_gpus: if horizon_s > 0.0 {
                gpu_seconds / horizon_s
            } else {
                0.0
            },
            final_prefill_active,
            final_decode_active,
            strategy: self.strategy.name().to_string(),
            offered_rate: self.offered_rate,
            mem_series: std::mem::take(&mut self.mem_series),
            ina_ops: self.ina_ops,
            ring_ops: self.ring_ops,
            ina_fallbacks: self.ina_fallbacks,
            ina_failovers: self.ina_failovers,
            ina_release_underflows: self.ina_release_underflows,
            aborted_flows: self.aborted_flows,
            flow_retries: self.flow_retries,
            mean_reroute_s: hs_workload::mean(&self.reroute_secs),
            kv_transfers: self.kv_transfers,
            kv_stripes: self.kv_stripes_launched,
            kv_retries: self.kv_retries,
            kv_deferrals: self.kv_deferrals,
            kv_bytes: self.kv_bytes_total as f64,
            mean_kv_transfer_s: hs_workload::mean(&self.kv_transfer_secs),
            p90_kv_transfer_s: hs_workload::stats::percentile(&self.kv_transfer_secs, 90.0),
            mean_kv_est_err_s: hs_workload::mean(&self.kv_est_err_secs),
            ..SimReport::default()
        };
        for (lid, link) in self.g.links() {
            let bytes = self.net.cumulative_bytes(lid);
            match link.kind {
                LinkKind::Ethernet => report.eth_bytes += bytes,
                LinkKind::NvLink | LinkKind::Pcie => report.nvlink_bytes += bytes,
            }
        }
        report.summarize(
            &self.reqs,
            self.cfg.ttft_sla_s,
            self.cfg.tpot_sla_s,
            horizon,
        );
        report.fault_window_attainment = self.cfg.faults.window().and_then(|w| {
            SimReport::attainment_in_window(
                &self.reqs,
                self.cfg.ttft_sla_s,
                self.cfg.tpot_sla_s,
                horizon,
                w,
            )
        });
        report
    }

    /// Read-only view of the request states (tests).
    pub fn requests(&self) -> &[ReqState] {
        &self.reqs
    }

    /// Read-only view of the instances (tests).
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// The current KV managers (tests / Fig. 10 probes).
    pub fn kv_managers(&self) -> &[KvManager] {
        &self.kv
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autoscale::StaticController;
    use crate::strategy::StaticStrategy;
    use hs_des::SeedSplitter;
    use hs_model::profile::{fit, ProfileGrid};
    use hs_model::GpuModel;
    use hs_topology::builders::testbed;
    use hs_topology::LinkWeight;
    use hs_workload::spec::fixed;
    use hs_workload::{Poisson, Trace};

    fn small_setup(rate: f64, horizon_s: u64, scheme: Scheme) -> (SimReport, usize) {
        small_setup_with_faults(rate, horizon_s, scheme, FaultPlan::none())
    }

    fn small_setup_with_faults(
        rate: f64,
        horizon_s: u64,
        scheme: Scheme,
        faults: FaultPlan,
    ) -> (SimReport, usize) {
        let (mut sim, n) = build_sim(rate, horizon_s, scheme, faults);
        // Give the tail room to drain.
        let report = sim.run(SimTime::from_secs(horizon_s + 30));
        (report, n)
    }

    pub(super) fn build_sim(
        rate: f64,
        horizon_s: u64,
        scheme: Scheme,
        faults: FaultPlan,
    ) -> (ClusterSim, usize) {
        let strategy = StaticStrategy::uniform("test", scheme, BusyPolicy::FallbackRing);
        build_sim_with_strategy(rate, horizon_s, faults, Box::new(strategy))
    }

    fn build_sim_with_strategy(
        rate: f64,
        horizon_s: u64,
        faults: FaultPlan,
        strategy: Box<dyn CommStrategy>,
    ) -> (ClusterSim, usize) {
        let t = testbed();
        let model = ModelConfig::opt_13b();
        let fitted = fit(&GpuModel::a100(), &model, &ProfileGrid::default());
        let mut nodes = t.all_gpus();
        nodes.extend(&t.access_switches);
        let ap = AllPairs::compute(&t.graph, &nodes, LinkWeight::Latency, None);

        // Prefill: server 0's 4 GPUs (TP=4); decode: server 1's 4 GPUs.
        let cfg = ClusterConfig {
            model,
            coef: fitted.coefficients,
            ttft_sla_s: 2.5,
            tpot_sla_s: 0.15,
            prefill: vec![InstanceSpec::tensor_parallel(t.gpus_by_server[0].clone())],
            decode: vec![InstanceSpec::tensor_parallel(t.gpus_by_server[1].clone())],
            batch: BatchPolicy::default(),
            gpu_memory_bytes: 40 * (1 << 30),
            monitor_period: SimSpan::from_millis(100),
            ina_capacity_per_switch: 4,
            background: None,
            faults,
        };
        let mut rng = SeedSplitter::new(11).stream("trace");
        let mut arr = Poisson::new(rate);
        let trace = Trace::generate(
            &fixed(256, 16),
            &mut arr,
            &mut rng,
            SimTime::from_secs(horizon_s),
        );
        let n = trace.len();
        let sim = ClusterSim::new(&t.graph, ap, cfg, &trace, strategy);
        (sim, n)
    }

    #[test]
    fn low_load_completes_everything_with_ring() {
        let (report, n) = small_setup(1.0, 20, Scheme::Ring);
        assert!(n > 5);
        assert_eq!(report.completed, report.arrived, "all requests complete");
        assert!(
            report.sla_attainment > 0.9,
            "attainment {}",
            report.sla_attainment
        );
        assert!(report.mean_ttft_s > 0.0 && report.mean_ttft_s < 2.5);
        assert!(report.mean_tpot_s > 0.0 && report.mean_tpot_s < 0.15);
        assert_eq!(report.ina_ops, 0);
        assert!(report.ring_ops > 0);
        assert!(report.eth_bytes > 0.0);
        // KV accounting: one shipment per request, striped across the 4
        // TP4→TP4 pairs (Eq. 15), no retries on a healthy fabric.
        assert_eq!(report.kv_transfers as usize, report.completed);
        assert_eq!(report.kv_stripes, 4 * report.kv_transfers);
        assert_eq!(report.kv_retries, 0);
        assert!(report.kv_bytes > 0.0);
        assert!(report.mean_kv_transfer_s > 0.0);
        assert!(report.p90_kv_transfer_s >= report.mean_kv_transfer_s * 0.5);
        // e2e TTFT = prefill TTFT + admission wait + KV transfer.
        assert!(report.mean_ttft_e2e_s >= report.mean_ttft_s);
        assert!(report.mean_ttft_e2e_s <= report.mean_ttft_s + 1.0);
    }

    #[test]
    fn ina_scheme_uses_switch_and_hier_moves_traffic_to_nvlink() {
        let t = testbed();
        let sw = t.access_switches[0];
        let (flat, _) = small_setup(1.0, 15, Scheme::Ina { switch: sw });
        let (hier, _) = small_setup(1.0, 15, Scheme::HierIna { switch: sw });
        assert!(flat.ina_ops > 0);
        // The test instances are single-server groups: hierarchical INA
        // degenerates to NVLink-local reduce/broadcast and correctly
        // consumes no switch aggregation capacity.
        assert_eq!(hier.ina_ops, 0);
        // Hierarchical pushes most of its bytes over NVLink.
        assert!(
            hier.nvlink_bytes > 0.5 * hier.eth_bytes,
            "nvlink {} vs eth {}",
            hier.nvlink_bytes,
            hier.eth_bytes
        );
        assert!(
            hier.eth_bytes < flat.eth_bytes,
            "hier {} vs flat {}",
            hier.eth_bytes,
            flat.eth_bytes
        );
    }

    /// Ending a collective's INA session twice must not conjure switch
    /// capacity: the unpaired release is dropped, counted, and surfaced
    /// in the report (release builds; debug builds assert instead).
    #[test]
    #[cfg(not(debug_assertions))]
    fn unpaired_ina_release_is_counted_and_conjures_nothing() {
        let (mut sim, _) = build_sim(1.0, 5, Scheme::Ring, FaultPlan::none());
        let sw = testbed().access_switches[0];
        sim.ina_active.insert(sw, 1);
        sim.release_ina(Some(sw), 7);
        assert_eq!(sim.ina_active[&sw], 0);
        assert_eq!(sim.ina_release_underflows, 0);
        // Second end of the same job: the slot is already free.
        sim.release_ina(Some(sw), 7);
        assert_eq!(sim.ina_active[&sw], 0, "no slot conjured");
        assert_eq!(sim.ina_release_underflows, 1);
        let report = sim.build_report(SimTime::from_secs(5));
        assert_eq!(report.ina_release_underflows, 1);
    }

    /// In debug builds the unpaired release trips an assertion at the
    /// faulty call site instead of limping on.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "INA release without matching acquire")]
    fn unpaired_ina_release_asserts_in_debug() {
        let (mut sim, _) = build_sim(1.0, 5, Scheme::Ring, FaultPlan::none());
        let sw = testbed().access_switches[0];
        sim.ina_active.insert(sw, 1);
        sim.release_ina(Some(sw), 7);
        sim.release_ina(Some(sw), 7);
    }

    #[test]
    fn overload_degrades_attainment() {
        let (low, _) = small_setup(0.5, 15, Scheme::Ring);
        let (high, _) = small_setup(400.0, 15, Scheme::Ring);
        assert!(
            low.sla_attainment > high.sla_attainment,
            "low {} vs high {}",
            low.sla_attainment,
            high.sla_attainment
        );
        assert!(
            high.sla_attainment < 0.9,
            "overload attainment {}",
            high.sla_attainment
        );
    }

    #[test]
    fn memory_series_tracks_load() {
        let (report, _) = small_setup(4.0, 15, Scheme::Ring);
        assert!(!report.mem_series.is_empty());
        let peak = report
            .mem_series
            .iter()
            .fold(0.0f64, |a, s| a.max(s.max_util));
        // Weights occupy a floor; KV adds on top.
        assert!(peak > 0.0, "peak mem util {peak}");
        assert!(peak <= 1.0);
    }

    #[test]
    fn switch_outage_fails_over_and_recovers() {
        let t = testbed();
        let sw = t.access_switches[0];
        // The switch dies mid-run and reboots 4 s later. INA collectives
        // must fail over to host-side schemes; KV transfers crossing the
        // dead links abort and retry.
        let faults = FaultPlan::switch_outage(sw, SimTime::from_secs(5), SimTime::from_secs(9));
        let (rep, _) = small_setup_with_faults(2.0, 20, Scheme::Ina { switch: sw }, faults);
        assert!(rep.ina_failovers > 0, "no INA failovers recorded");
        assert!(rep.ina_ops > 0, "INA should still run outside the outage");
        assert_eq!(
            rep.completed, rep.arrived,
            "all requests must complete despite the outage"
        );
        assert!(rep.fault_window_attainment.is_some());
        // The healthy-fabric run records no fault activity.
        let (healthy, _) = small_setup(2.0, 20, Scheme::Ina { switch: sw });
        assert_eq!(healthy.ina_failovers, 0);
        assert_eq!(healthy.aborted_flows, 0);
        assert_eq!(healthy.flow_retries, 0);
        assert_eq!(healthy.fault_window_attainment, None);
    }

    #[test]
    fn link_outage_aborts_and_retries_kv_transfers() {
        let t = testbed();
        // Pulse the prefill server's uplinks down for 50 ms once a second
        // between t=1 s and t=10 s. Each KV shipment below (32k tokens,
        // ~1 s even striped across both uplinks) is longer than the pulse
        // period, so any in-flight shipment provably spans a pulse instant
        // and its stripes abort; once the pulses stop, retries drain.
        let mut faults = FaultPlan::none();
        for &gpu in &t.gpus_by_server[0] {
            for &(nb, l) in t.graph.neighbors(gpu) {
                if t.access_switches.contains(&nb) {
                    for k in 1..=10u64 {
                        faults.push(SimTime::from_secs(k), FaultKind::LinkDown { link: l });
                        faults.push(
                            SimTime::from_millis(k * 1000 + 50),
                            FaultKind::LinkUp { link: l },
                        );
                    }
                }
            }
        }
        let model = ModelConfig::opt_13b();
        let fitted = fit(&GpuModel::a100(), &model, &ProfileGrid::default());
        let mut nodes = t.all_gpus();
        nodes.extend(&t.access_switches);
        let ap = AllPairs::compute(&t.graph, &nodes, LinkWeight::Latency, None);
        let cfg = ClusterConfig {
            model,
            coef: fitted.coefficients,
            ttft_sla_s: 30.0,
            tpot_sla_s: 0.15,
            prefill: vec![InstanceSpec::tensor_parallel(t.gpus_by_server[0].clone())],
            decode: vec![InstanceSpec::tensor_parallel(t.gpus_by_server[1].clone())],
            batch: BatchPolicy::default(),
            gpu_memory_bytes: 40 * (1 << 30),
            monitor_period: SimSpan::from_millis(100),
            ina_capacity_per_switch: 4,
            background: None,
            faults,
        };
        let trace = Trace {
            requests: (0..3)
                .map(|i| hs_workload::Request {
                    id: RequestId(i),
                    arrival: SimTime::from_millis(i * 500),
                    input_tokens: 32_768,
                    output_tokens: 4,
                })
                .collect(),
        };
        let strategy = StaticStrategy::uniform("test", Scheme::Ring, BusyPolicy::FallbackRing);
        let mut sim = ClusterSim::new(&t.graph, ap, cfg, &trace, Box::new(strategy));
        let rep = sim.run(SimTime::from_secs(60));
        assert!(rep.aborted_flows > 0, "no flows aborted");
        assert!(rep.flow_retries > 0, "aborted work was not retried");
        assert!(rep.kv_retries > 0, "no KV shipment was relaunched");
        assert_eq!(rep.completed, rep.arrived, "requests stuck after recovery");
    }

    #[test]
    fn gpu_stall_inflates_latency() {
        let t = testbed();
        let mut faults = FaultPlan::none();
        for &gpu in &t.gpus_by_server[1] {
            faults.push(
                SimTime::from_secs(2),
                FaultKind::GpuStall {
                    gpu,
                    slowdown: 50.0,
                },
            );
        }
        let (stalled, _) = small_setup_with_faults(2.0, 15, Scheme::Ring, faults);
        let (healthy, _) = small_setup(2.0, 15, Scheme::Ring);
        assert!(
            stalled.mean_tpot_s > 2.0 * healthy.mean_tpot_s,
            "stall {} vs healthy {}",
            stalled.mean_tpot_s,
            healthy.mean_tpot_s
        );
    }

    /// The tracer and registry are observation-only: attaching them must
    /// not change any report number, and the recorded stream must carry
    /// the full request lifecycle plus fault activity.
    #[test]
    fn tracing_does_not_perturb_the_simulation() {
        let t = testbed();
        let sw = t.access_switches[0];
        let faults = || FaultPlan::switch_outage(sw, SimTime::from_secs(5), SimTime::from_secs(9));
        let horizon = SimTime::from_secs(50);

        let (mut plain, _) = build_sim(2.0, 20, Scheme::Ina { switch: sw }, faults());
        let rep_plain = plain.run(horizon);

        let (mut traced, _) = build_sim(2.0, 20, Scheme::Ina { switch: sw }, faults());
        let tracer = hs_obs::Tracer::recording();
        let metrics = hs_obs::MetricsRegistry::recording();
        traced.set_obs(&tracer, &metrics);
        let rep_traced = traced.run(horizon);

        assert_eq!(rep_plain.completed, rep_traced.completed);
        assert_eq!(rep_plain.arrived, rep_traced.arrived);
        assert_eq!(rep_plain.mean_ttft_s, rep_traced.mean_ttft_s);
        assert_eq!(rep_plain.mean_tpot_s, rep_traced.mean_tpot_s);
        assert_eq!(rep_plain.eth_bytes, rep_traced.eth_bytes);
        assert_eq!(rep_plain.nvlink_bytes, rep_traced.nvlink_bytes);
        assert_eq!(rep_plain.aborted_flows, rep_traced.aborted_flows);
        assert_eq!(rep_plain.flow_retries, rep_traced.flow_retries);
        assert_eq!(rep_plain.ina_failovers, rep_traced.ina_failovers);

        let recs = tracer.records();
        let has = |n: &str| recs.iter().any(|r| r.name == n);
        for name in [
            "arrival",
            "queued",
            "prefill",
            "kv_transfer",
            "kv_flow",
            "decode",
            "done",
            "allreduce",
            "flow_start",
            "inject",
            "recover",
            "link_scale",
        ] {
            assert!(has(name), "trace is missing {name:?} events");
        }
        assert_eq!(
            metrics.counter_value("requests_arrived"),
            Some(rep_traced.arrived as u64)
        );
        assert_eq!(
            metrics.counter_value("requests_completed"),
            Some(rep_traced.completed as u64)
        );
        assert!(metrics.counter_value("fault_events").unwrap() > 0);
        assert!(!metrics.link_util_series().is_empty());
        let ttft = metrics.histogram_view("ttft_s").unwrap();
        assert_eq!(ttft.total, rep_traced.completed as u64);
    }

    /// A run with zero arrivals must report zeros, not NaNs — the bench
    /// harness serializes every summary float straight into JSON.
    #[test]
    fn zero_arrival_run_reports_finite_zeros() {
        let t = testbed();
        let model = ModelConfig::opt_13b();
        let fitted = fit(&GpuModel::a100(), &model, &ProfileGrid::default());
        let mut nodes = t.all_gpus();
        nodes.extend(&t.access_switches);
        let ap = AllPairs::compute(&t.graph, &nodes, LinkWeight::Latency, None);
        let cfg = ClusterConfig {
            model,
            coef: fitted.coefficients,
            ttft_sla_s: 2.5,
            tpot_sla_s: 0.15,
            prefill: vec![InstanceSpec::tensor_parallel(t.gpus_by_server[0].clone())],
            decode: vec![InstanceSpec::tensor_parallel(t.gpus_by_server[1].clone())],
            batch: BatchPolicy::default(),
            gpu_memory_bytes: 40 * (1 << 30),
            monitor_period: SimSpan::from_millis(100),
            ina_capacity_per_switch: 4,
            background: None,
            faults: FaultPlan::none(),
        };
        let empty = Trace { requests: vec![] };
        let strategy = StaticStrategy::uniform("idle", Scheme::Ring, BusyPolicy::FallbackRing);
        let mut sim = ClusterSim::new(&t.graph, ap, cfg, &empty, Box::new(strategy));
        let rep = sim.run(SimTime::from_secs(10));
        assert_eq!(rep.arrived, 0);
        assert_eq!(rep.completed, 0);
        assert!(rep.per_request.is_empty());
        assert_eq!(rep.fault_window_attainment, None);
        for (name, v) in [
            ("offered_rate", rep.offered_rate),
            ("sla_attainment", rep.sla_attainment),
            ("mean_ttft_s", rep.mean_ttft_s),
            ("p90_ttft_s", rep.p90_ttft_s),
            ("mean_tpot_s", rep.mean_tpot_s),
            ("p90_tpot_s", rep.p90_tpot_s),
            ("goodput_rps", rep.goodput_rps),
            ("mean_reroute_s", rep.mean_reroute_s),
            ("eth_bytes", rep.eth_bytes),
            ("nvlink_bytes", rep.nvlink_bytes),
            ("kv_bytes", rep.kv_bytes),
            ("mean_kv_transfer_s", rep.mean_kv_transfer_s),
            ("p90_kv_transfer_s", rep.p90_kv_transfer_s),
            ("mean_kv_est_err_s", rep.mean_kv_est_err_s),
            ("mean_ttft_e2e_s", rep.mean_ttft_e2e_s),
            ("p90_ttft_e2e_s", rep.p90_ttft_e2e_s),
        ] {
            assert!(v.is_finite(), "{name} is not finite: {v}");
            assert_eq!(v, 0.0, "{name} should be zero on an empty run");
        }
        assert_eq!(rep.kv_transfers, 0);
        assert_eq!(rep.kv_stripes, 0);
        assert_eq!(rep.kv_retries, 0);
        assert_eq!(rep.kv_deferrals, 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let (a, _) = small_setup(2.0, 10, Scheme::Ring);
        let (b, _) = small_setup(2.0, 10, Scheme::Ring);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.mean_ttft_s, b.mean_ttft_s);
        assert_eq!(a.eth_bytes, b.eth_bytes);
    }

    /// Regression for the wrong-source retransfer bug: a request whose
    /// admission was deferred (decode memory full) must, once retried,
    /// ship its KV cache from the prefill instance that actually ran it —
    /// not "instance 0", which is what `retry_admissions` used to pass.
    ///
    /// Setup: two prefill instances on different servers (0 and 2), one
    /// decode instance on server 1 whose KV capacity fits exactly one
    /// request. Request 1 prefills on instance 1 (server 2) and is
    /// deferred until request 0 finishes decoding. On the old code path
    /// its retried KV transfer left server 0; server 2's Ethernet uplinks
    /// carried zero KV bytes and this test fails.
    #[test]
    fn deferred_admission_resends_kv_from_true_prefill_instance() {
        let t = testbed();
        let model = ModelConfig::opt_13b();
        let kv_bytes = 256 * model.kv_bytes_per_token();
        let fitted = fit(&GpuModel::a100(), &model, &ProfileGrid::default());
        let mut nodes = t.all_gpus();
        nodes.extend(&t.access_switches);
        let ap = AllPairs::compute(&t.graph, &nodes, LinkWeight::Latency, None);
        let cfg = ClusterConfig {
            model,
            coef: fitted.coefficients,
            ttft_sla_s: 2.5,
            tpot_sla_s: 0.15,
            prefill: vec![
                InstanceSpec::tensor_parallel(t.gpus_by_server[0].clone()),
                InstanceSpec::tensor_parallel(t.gpus_by_server[2].clone()),
            ],
            decode: vec![InstanceSpec::tensor_parallel(t.gpus_by_server[1].clone())],
            batch: BatchPolicy::default(),
            gpu_memory_bytes: 40 * (1 << 30),
            monitor_period: SimSpan::from_millis(100),
            ina_capacity_per_switch: 4,
            background: None,
            faults: FaultPlan::none(),
        };
        // Two staggered arrivals: req 0 grabs prefill instance 0, req 1
        // lands on instance 1 while 0 is still computing.
        let trace = Trace {
            requests: vec![
                hs_workload::Request {
                    id: RequestId(0),
                    arrival: SimTime::ZERO,
                    input_tokens: 256,
                    output_tokens: 16,
                },
                hs_workload::Request {
                    id: RequestId(1),
                    arrival: SimTime::from_millis(5),
                    input_tokens: 256,
                    output_tokens: 16,
                },
            ],
        };
        let strategy = StaticStrategy::uniform("test", Scheme::Ring, BusyPolicy::FallbackRing);
        let mut sim = ClusterSim::new(&t.graph, ap, cfg, &trace, Box::new(strategy));
        // Shrink the decode instance to one request's footprint (272
        // reserved tokens) so request 1's admission must defer.
        sim.kv[0] = KvManager::new(300);
        let tracer = hs_obs::Tracer::recording();
        let metrics = hs_obs::MetricsRegistry::disabled();
        sim.set_obs(&tracer, &metrics);
        let rep = sim.run(SimTime::from_secs(60));
        assert_eq!(rep.completed, 2, "both requests must finish");
        assert!(rep.kv_deferrals >= 1, "request 1 was never deferred");
        assert_eq!(sim.requests()[0].prefill_instance, Some(0));
        assert_eq!(sim.requests()[1].prefill_instance, Some(1));
        // The trace records the shipment source per request.
        let recs = tracer.records();
        let src_of = |req: u64| -> u64 {
            recs.iter()
                .find(|r| r.name == "kv_flow" && r.ph == hs_obs::Ph::Begin && r.tid == req)
                .and_then(|r| r.arg("src_instance"))
                .and_then(hs_obs::Val::as_f64)
                .expect("kv_flow begin recorded") as u64
        };
        assert_eq!(src_of(0), 0);
        assert_eq!(
            src_of(1),
            1,
            "deferred request retransferred from the wrong prefill instance"
        );
        // And the fabric agrees: server 2's Ethernet uplinks carried
        // request 1's full KV shipment (collectives of a single-server TP
        // group stay on NVLink, so KV is the only Ethernet user there).
        let mut server2_uplink_bytes = 0.0;
        for (lid, link) in sim.g.links() {
            if link.kind != LinkKind::Ethernet {
                continue;
            }
            let touches_server2 =
                t.gpus_by_server[2].contains(&link.a) || t.gpus_by_server[2].contains(&link.b);
            if touches_server2 {
                server2_uplink_bytes += sim.net.cumulative_bytes(lid);
            }
        }
        assert!(
            (server2_uplink_bytes - kv_bytes as f64).abs() < 1.0,
            "server 2 uplinks carried {server2_uplink_bytes} bytes, want {kv_bytes}"
        );
    }

    /// `retry_admissions` head-of-line semantics with a bounded reorder
    /// window: blocked heads are stepped over (so small requests behind a
    /// huge one aren't starved of released memory), but at most
    /// ADMIT_REORDER_WINDOW of them — and they keep their queue order.
    #[test]
    fn admission_retry_is_head_of_line_with_bounded_reorder() {
        let mk = |shape: &[(u32, u32)]| -> ClusterSim {
            let t = testbed();
            let model = ModelConfig::opt_13b();
            let fitted = fit(&GpuModel::a100(), &model, &ProfileGrid::default());
            let mut nodes = t.all_gpus();
            nodes.extend(&t.access_switches);
            let ap = AllPairs::compute(&t.graph, &nodes, LinkWeight::Latency, None);
            let cfg = ClusterConfig {
                model,
                coef: fitted.coefficients,
                ttft_sla_s: 2.5,
                tpot_sla_s: 0.15,
                prefill: vec![InstanceSpec::tensor_parallel(t.gpus_by_server[0].clone())],
                decode: vec![InstanceSpec::tensor_parallel(t.gpus_by_server[1].clone())],
                batch: BatchPolicy::default(),
                gpu_memory_bytes: 40 * (1 << 30),
                monitor_period: SimSpan::from_millis(100),
                ina_capacity_per_switch: 4,
                background: None,
                faults: FaultPlan::none(),
            };
            // Arrivals far beyond anything we step; the test drives
            // `retry_admissions` directly.
            let trace = Trace {
                requests: shape
                    .iter()
                    .enumerate()
                    .map(|(i, &(inp, out))| hs_workload::Request {
                        id: RequestId(i as u64),
                        arrival: SimTime::from_secs(1_000),
                        input_tokens: inp,
                        output_tokens: out,
                    })
                    .collect(),
            };
            let strategy = StaticStrategy::uniform("test", Scheme::Ring, BusyPolicy::FallbackRing);
            let mut sim = ClusterSim::new(&t.graph, ap, cfg, &trace, Box::new(strategy));
            sim.kv[0] = KvManager::new(140);
            for i in 0..shape.len() {
                sim.reqs[i].phase = ReqPhase::AwaitingAdmission;
                sim.reqs[i].prefill_done = Some(SimTime::ZERO);
                sim.reqs[i].prefill_instance = Some(0);
                sim.pending_admission.push_back(RequestId(i as u64));
            }
            sim
        };

        // A huge head (200 tokens reserved > 140 capacity) must not block
        // the small requests behind it; blocked requests return to the
        // front in order.
        let big = (150, 50); // 200 reserved — never fits
        let small = (30, 10); // 40 reserved
        let mut sim = mk(&[big, small, small, small, small, small]);
        sim.retry_admissions();
        // Smalls 1..=3 fill the 140-token instance; 4 and 5 block.
        for i in 1..=3 {
            assert_eq!(sim.reqs[i].phase, ReqPhase::TransferringKv, "req {i}");
        }
        assert_eq!(sim.reqs[0].phase, ReqPhase::AwaitingAdmission);
        let order: Vec<u64> = sim.pending_admission.iter().map(|id| id.0).collect();
        assert_eq!(order, vec![0, 4, 5], "blocked heads keep queue order");

        // Window bound: after 4 blocked requests the pass stops — a
        // fitting request beyond the window stays queued until the next
        // release instead of jumping arbitrarily far forward.
        let mut sim = mk(&[big, big, big, big, big, small]);
        sim.retry_admissions();
        let order: Vec<u64> = sim.pending_admission.iter().map(|id| id.0).collect();
        assert_eq!(
            order,
            vec![0, 1, 2, 3, 4, 5],
            "pass must stop at the window"
        );
        assert_eq!(sim.reqs[5].phase, ReqPhase::AwaitingAdmission);
    }

    /// A network-aware strategy returning a bogus candidate (out of range,
    /// or an instance that cannot admit) must not panic or over-admit: the
    /// engine falls back to its least-loaded pick.
    #[test]
    fn bogus_decode_choice_falls_back_to_least_loaded() {
        struct Bogus;
        impl CommStrategy for Bogus {
            fn choose(&mut self, _ctx: &CommCtx<'_>) -> Scheme {
                Scheme::Ring
            }
            fn network_aware_admission(&self) -> bool {
                true
            }
            fn choose_decode(
                &mut self,
                _ctx: &KvCtx<'_>,
                _candidates: &[KvCandidate],
            ) -> Option<crate::strategy::KvChoice> {
                Some(crate::strategy::KvChoice {
                    instance: usize::MAX,
                    est_transfer_s: -1.0,
                })
            }
            fn name(&self) -> &str {
                "bogus"
            }
        }
        let (mut sim, n) = build_sim_with_strategy(1.0, 10, FaultPlan::none(), Box::new(Bogus));
        let rep = sim.run(SimTime::from_secs(40));
        assert!(n > 3);
        assert_eq!(
            rep.completed, rep.arrived,
            "bogus choice must not strand work"
        );
        assert_eq!(rep.kv_transfers as usize, rep.completed);
    }

    // ---- Elastic pools -------------------------------------------------

    /// Testbed sim with the pools split into 2 prefill + 2 decode TP=2
    /// slots so the autoscaler has something to park.
    fn build_elastic_sim(rate: f64, horizon_s: u64) -> (ClusterSim, usize) {
        let t = testbed();
        let model = ModelConfig::opt_13b();
        let fitted = fit(&GpuModel::a100(), &model, &ProfileGrid::default());
        let mut nodes = t.all_gpus();
        nodes.extend(&t.access_switches);
        let ap = AllPairs::compute(&t.graph, &nodes, LinkWeight::Latency, None);
        let split = |gpus: &[NodeId]| {
            vec![
                InstanceSpec::tensor_parallel(gpus[..2].to_vec()),
                InstanceSpec::tensor_parallel(gpus[2..].to_vec()),
            ]
        };
        let cfg = ClusterConfig {
            model,
            coef: fitted.coefficients,
            ttft_sla_s: 2.5,
            tpot_sla_s: 0.15,
            prefill: split(&t.gpus_by_server[0]),
            decode: split(&t.gpus_by_server[1]),
            batch: BatchPolicy::default(),
            gpu_memory_bytes: 40 * (1 << 30),
            monitor_period: SimSpan::from_millis(100),
            ina_capacity_per_switch: 4,
            background: None,
            faults: FaultPlan::none(),
        };
        let mut rng = SeedSplitter::new(11).stream("trace");
        let mut arr = Poisson::new(rate);
        let trace = Trace::generate(
            &fixed(256, 16),
            &mut arr,
            &mut rng,
            SimTime::from_secs(horizon_s),
        );
        let n = trace.len();
        let strategy = StaticStrategy::uniform("test", Scheme::Ring, BusyPolicy::FallbackRing);
        let sim = ClusterSim::new(&t.graph, ap, cfg, &trace, Box::new(strategy));
        (sim, n)
    }

    /// Without an autoscaler every GPU is billed for the whole run: the
    /// equal-GPU-hours baseline the elastic comparison relies on.
    #[test]
    fn no_autoscaler_bills_every_gpu_for_the_whole_run() {
        let (report, _) = small_setup(1.0, 10, Scheme::Ring);
        let h = 40.0; // run horizon = horizon_s + 30
        assert!(
            (report.gpu_seconds - 8.0 * h).abs() < 1e-6,
            "{}",
            report.gpu_seconds
        );
        assert!((report.mean_active_gpus - 8.0).abs() < 1e-9);
        assert_eq!(report.scale_ups, 0);
        assert_eq!(report.scale_downs, 0);
        assert_eq!(report.final_prefill_active, 1);
        assert_eq!(report.final_decode_active, 1);
    }

    /// A static controller pinning 1/1 parks the spare slots at t=0; the
    /// parked GPUs bill nothing and the run still completes everything.
    #[test]
    fn static_controller_parks_spare_slots_from_t0() {
        let (mut sim, n) = build_elastic_sim(1.0, 10);
        sim.set_autoscaler(Box::new(StaticController {
            prefill: 1,
            decode: 1,
        }));
        let report = sim.run(SimTime::from_secs(40));
        assert!(n > 3);
        assert_eq!(report.completed, report.arrived);
        assert_eq!(report.final_prefill_active, 1);
        assert_eq!(report.final_decode_active, 1);
        // 1 prefill slot (2 GPUs) + 1 decode slot (2 GPUs) for 40 s.
        assert!(
            (report.gpu_seconds - 4.0 * 40.0).abs() < 1e-6,
            "{}",
            report.gpu_seconds
        );
    }

    /// Growing mid-run unparks slots warm, counts scale-ups, and bills
    /// the new slots only from the moment they rejoin.
    #[test]
    fn grow_mid_run_unparks_and_bills_partial_time() {
        struct GrowAt {
            at: SimTime,
            fired: bool,
        }
        impl ScaleController for GrowAt {
            fn initial_targets(&mut self, _p: usize, _d: usize) -> PoolTargets {
                PoolTargets {
                    prefill: 1,
                    decode: 1,
                }
            }
            fn on_tick(&mut self, snap: &PoolSnapshot) -> Option<PoolTargets> {
                if !self.fired && snap.now >= self.at {
                    self.fired = true;
                    return Some(PoolTargets {
                        prefill: 2,
                        decode: 2,
                    });
                }
                None
            }
            fn name(&self) -> &str {
                "grow-at"
            }
        }
        let (mut sim, _) = build_elastic_sim(2.0, 10);
        sim.set_autoscaler(Box::new(GrowAt {
            at: SimTime::from_secs(5),
            fired: false,
        }));
        let report = sim.run(SimTime::from_secs(40));
        assert_eq!(report.completed, report.arrived);
        assert_eq!(report.scale_ups, 2);
        assert_eq!(report.final_prefill_active, 2);
        assert_eq!(report.final_decode_active, 2);
        // 4 GPUs for 40 s plus 4 more from ~5 s on: strictly between the
        // pinned-small and always-on envelopes.
        assert!(report.gpu_seconds > 4.0 * 40.0 + 4.0 * 30.0);
        assert!(report.gpu_seconds < 8.0 * 40.0);
    }

    /// Shrinking drains: the victim finishes its in-flight work before
    /// parking, so nothing is stranded and KV accounting still balances.
    #[test]
    fn shrink_drains_in_flight_work_before_parking() {
        struct ShrinkAt {
            at: SimTime,
            fired: bool,
        }
        impl ScaleController for ShrinkAt {
            fn initial_targets(
                &mut self,
                prefill_slots: usize,
                decode_slots: usize,
            ) -> PoolTargets {
                PoolTargets {
                    prefill: prefill_slots,
                    decode: decode_slots,
                }
            }
            fn on_tick(&mut self, snap: &PoolSnapshot) -> Option<PoolTargets> {
                if !self.fired && snap.now >= self.at {
                    self.fired = true;
                    return Some(PoolTargets {
                        prefill: 1,
                        decode: 1,
                    });
                }
                None
            }
            fn name(&self) -> &str {
                "shrink-at"
            }
        }
        let (mut sim, n) = build_elastic_sim(6.0, 10);
        sim.set_autoscaler(Box::new(ShrinkAt {
            at: SimTime::from_secs(3),
            fired: false,
        }));
        let report = sim.run(SimTime::from_secs(60));
        assert!(n > 20);
        assert_eq!(report.completed, report.arrived, "drain stranded work");
        assert_eq!(report.scale_downs, 2);
        assert_eq!(report.final_prefill_active, 1);
        assert_eq!(report.final_decode_active, 1);
        for (i, m) in sim.kv_managers().iter().enumerate() {
            assert_eq!(m.reserved(), 0, "instance {i} leaked reservations");
            assert_eq!(m.live(), 0, "instance {i} leaked live tokens");
        }
    }

    /// Elastic runs are bit-identical across repeats, including the new
    /// accounting fields.
    #[test]
    fn elastic_run_is_deterministic() {
        let run = || {
            let (mut sim, _) = build_elastic_sim(4.0, 10);
            sim.set_autoscaler(Box::new(StaticController {
                prefill: 1,
                decode: 2,
            }));
            sim.run(SimTime::from_secs(45))
        };
        let (a, b) = (run(), run());
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.mean_ttft_s, b.mean_ttft_s);
        assert_eq!(a.gpu_seconds, b.gpu_seconds);
        assert_eq!(a.scale_ups, b.scale_ups);
        assert_eq!(a.scale_downs, b.scale_downs);
    }
}

#[cfg(test)]
mod admission_proptests {
    use super::tests::build_sim;
    use super::*;
    use hs_obs::Ph;
    use proptest::prelude::*;

    proptest! {
        /// After any admit/defer/retry/fault-abort interleaving the run
        /// drains to zero reserved and live KV tokens on every decode
        /// instance, and the tracer's kv_transfer begin/end spans (and
        /// kv_flow begin/end records) always pair.
        #[test]
        fn kv_accounting_balances_and_trace_spans_pair(
            rate_x10 in 5u32..25,
            horizon_s in 4u64..7,
            fault_sel in 0u32..2,
        ) {
            let with_fault = fault_sel == 1;
            let t = hs_topology::builders::testbed();
            let mut faults = FaultPlan::none();
            if with_fault {
                // Kill the prefill server's uplinks mid-run, then recover:
                // in-flight KV stripes abort and relaunch.
                for &gpu in &t.gpus_by_server[0] {
                    for &(nb, l) in t.graph.neighbors(gpu) {
                        if t.access_switches.contains(&nb) {
                            faults.push(SimTime::from_secs(2), FaultKind::LinkDown { link: l });
                            faults.push(SimTime::from_secs(4), FaultKind::LinkUp { link: l });
                        }
                    }
                }
            }
            let (mut sim, _) =
                build_sim(rate_x10 as f64 / 10.0, horizon_s, Scheme::Ring, faults);
            let tracer = hs_obs::Tracer::recording();
            let metrics = hs_obs::MetricsRegistry::disabled();
            sim.set_obs(&tracer, &metrics);
            let rep = sim.run(SimTime::from_secs(horizon_s + 60));
            prop_assert_eq!(rep.completed, rep.arrived, "run failed to drain");
            for (i, m) in sim.kv_managers().iter().enumerate() {
                prop_assert_eq!(m.reserved(), 0, "instance {} leaked reservations", i);
                prop_assert_eq!(m.live(), 0, "instance {} leaked live tokens", i);
            }
            let recs = tracer.records();
            for r in sim.requests() {
                let count = |name: &str, ph: Ph| {
                    recs.iter()
                        .filter(|rec| rec.name == name && rec.ph == ph && rec.tid == r.req.id.0)
                        .count()
                };
                let pb = count("kv_transfer", Ph::Begin);
                let pe = count("kv_transfer", Ph::End);
                prop_assert_eq!(pb, pe, "kv_transfer span unbalanced for {}", r.req.id.0);
                prop_assert!(pb <= 1, "kv_transfer began twice for {}", r.req.id.0);
                let fb = count("kv_flow", Ph::Begin);
                let fe = count("kv_flow", Ph::End);
                prop_assert_eq!(fb, fe, "kv_flow record unbalanced for {}", r.req.id.0);
            }
        }
    }
}
