//! KV-cache transfer geometry: Eq. 15 striping across parallel TP pairs.
//!
//! A prefill instance holds the KV cache sharded across its tensor-parallel
//! ranks; the decode instance wants it sharded across *its* ranks. Eq. 15
//! models the shipment as parallel point-to-point streams between rank
//! pairs, so the effective bandwidth is the sum over pairs rather than one
//! NIC's worth. This module computes the stripe plan — which GPU pair
//! carries which share of the bytes — and the engine launches one simnet
//! flow per stripe; the transfer completes when the *slowest* stripe
//! drains.

use hs_topology::NodeId;

/// One rank-pair's share of a KV-cache shipment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KvStripe {
    /// Source GPU (a prefill-instance rank).
    pub src: NodeId,
    /// Destination GPU (a decode-instance rank).
    pub dst: NodeId,
    /// Bytes carried by this stripe.
    pub bytes: u64,
}

/// Split `bytes` across the Eq. 15 parallel TP pairs.
///
/// With `s` source ranks and `d` destination ranks, `max(s, d)` pairs are
/// formed, pairing rank `i % s` with rank `i % d` — every GPU on the wider
/// side participates, and the narrower side fans in/out round-robin.
/// `src == dst` self-pairs (an interleaved deployment can place prefill
/// and decode shards on the same GPU) are local copies that never touch
/// the fabric, so they are removed *before* the byte split: the shipped
/// payload divides over the stripes that actually carry traffic, with the
/// integer-division remainder landing in the last stripe. The surviving
/// stripes therefore conserve the payload exactly —
/// `Σ stripe.bytes == bytes` whenever the plan is non-empty; the plan is
/// empty only for degenerate inputs (no ranks, zero bytes, or a fully
/// co-located placement where nothing crosses the fabric). Stripes that
/// would carry zero bytes (payload smaller than the stripe count) are
/// dropped from the front, never from the byte total.
pub fn stripe_plan(src_gpus: &[NodeId], dst_gpus: &[NodeId], bytes: u64) -> Vec<KvStripe> {
    if src_gpus.is_empty() || dst_gpus.is_empty() || bytes == 0 {
        return Vec::new();
    }
    let n = src_gpus.len().max(dst_gpus.len());
    let pairs: Vec<(NodeId, NodeId)> = (0..n)
        .map(|i| (src_gpus[i % src_gpus.len()], dst_gpus[i % dst_gpus.len()]))
        .filter(|(src, dst)| src != dst)
        .collect();
    let Some(k) = u64::try_from(pairs.len()).ok().filter(|&k| k > 0) else {
        return Vec::new();
    };
    let base = bytes / k;
    let rem = bytes % k;
    pairs
        .into_iter()
        .enumerate()
        .map(|(i, (src, dst))| KvStripe {
            src,
            dst,
            bytes: base + if i as u64 == k - 1 { rem } else { 0 },
        })
        .filter(|s| s.bytes > 0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(ids: &[u32]) -> Vec<NodeId> {
        ids.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn bytes_are_conserved_across_stripes() {
        let src = nodes(&[0, 1, 2, 3]);
        let dst = nodes(&[10, 11, 12, 13]);
        let plan = stripe_plan(&src, &dst, 1_000_003);
        assert_eq!(plan.len(), 4);
        assert_eq!(plan.iter().map(|s| s.bytes).sum::<u64>(), 1_000_003);
        // The integer-division remainder lands in the last stripe.
        assert_eq!(plan[0].bytes, 250_000);
        assert_eq!(plan[1].bytes, 250_000);
        assert_eq!(plan[2].bytes, 250_000);
        assert_eq!(plan[3].bytes, 250_003);
    }

    #[test]
    fn unequal_tp_widths_rotate_the_narrow_side() {
        let src = nodes(&[0, 1]);
        let dst = nodes(&[10, 11, 12, 13]);
        let plan = stripe_plan(&src, &dst, 400);
        assert_eq!(plan.len(), 4, "wider side sets the stripe count");
        let pairs: Vec<(NodeId, NodeId)> = plan.iter().map(|s| (s.src, s.dst)).collect();
        assert_eq!(
            pairs,
            vec![
                (NodeId(0), NodeId(10)),
                (NodeId(1), NodeId(11)),
                (NodeId(0), NodeId(12)),
                (NodeId(1), NodeId(13)),
            ]
        );
    }

    #[test]
    fn tiny_transfers_drop_zero_byte_stripes() {
        let src = nodes(&[0, 1, 2, 3]);
        let dst = nodes(&[10, 11, 12, 13]);
        let plan = stripe_plan(&src, &dst, 3);
        // base = 0, so only the remainder-carrying last stripe survives.
        assert_eq!(plan.len(), 1, "only stripes with bytes survive");
        assert_eq!(
            plan[0],
            KvStripe {
                src: NodeId(3),
                dst: NodeId(13),
                bytes: 3
            }
        );
    }

    #[test]
    fn degenerate_inputs_yield_empty_plans() {
        assert!(stripe_plan(&[], &nodes(&[1]), 100).is_empty());
        assert!(stripe_plan(&nodes(&[1]), &[], 100).is_empty());
        assert!(stripe_plan(&nodes(&[1]), &nodes(&[2]), 0).is_empty());
        // Self-pairs (co-located prefill/decode shards) carry no traffic.
        assert!(stripe_plan(&nodes(&[5]), &nodes(&[5]), 100).is_empty());
    }

    #[test]
    fn co_located_ranks_do_not_leak_bytes() {
        // Rank pair 1 is a self-pair (GPU 1 hosts both a prefill and a
        // decode shard); the payload must still arrive in full over the
        // stripes that cross the fabric.
        let src = nodes(&[0, 1, 2, 3]);
        let dst = nodes(&[10, 1, 12, 13]);
        let plan = stripe_plan(&src, &dst, 1_000);
        assert_eq!(plan.len(), 3);
        assert_eq!(plan.iter().map(|s| s.bytes).sum::<u64>(), 1_000);
        assert_eq!(plan[2].bytes, 333 + 1, "remainder rides the last stripe");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Σ stripe.bytes == payload for arbitrary rank counts, overlap,
        /// and payload sizes — unless *every* pair is co-located, in which
        /// case nothing crosses the fabric and the plan is empty.
        #[test]
        fn stripes_conserve_payload(
            src in proptest::collection::vec(0u32..24, 1..16),
            dst in proptest::collection::vec(0u32..24, 1..16),
            bytes in 1u64..1 << 33,
        ) {
            let src: Vec<NodeId> = src.into_iter().map(NodeId).collect();
            let dst: Vec<NodeId> = dst.into_iter().map(NodeId).collect();
            let n = src.len().max(dst.len());
            let all_self = (0..n).all(|i| src[i % src.len()] == dst[i % dst.len()]);
            let plan = stripe_plan(&src, &dst, bytes);
            if all_self {
                prop_assert!(plan.is_empty());
            } else {
                prop_assert_eq!(plan.iter().map(|s| s.bytes).sum::<u64>(), bytes);
                prop_assert!(plan.iter().all(|s| s.bytes > 0 && s.src != s.dst));
            }
        }
    }
}
