//! KV-cache transfer geometry: Eq. 15 striping across parallel TP pairs.
//!
//! A prefill instance holds the KV cache sharded across its tensor-parallel
//! ranks; the decode instance wants it sharded across *its* ranks. Eq. 15
//! models the shipment as parallel point-to-point streams between rank
//! pairs, so the effective bandwidth is the sum over pairs rather than one
//! NIC's worth. This module computes the stripe plan — which GPU pair
//! carries which share of the bytes — and the engine launches one simnet
//! flow per stripe; the transfer completes when the *slowest* stripe
//! drains.

use hs_topology::NodeId;

/// One rank-pair's share of a KV-cache shipment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KvStripe {
    /// Source GPU (a prefill-instance rank).
    pub src: NodeId,
    /// Destination GPU (a decode-instance rank).
    pub dst: NodeId,
    /// Bytes carried by this stripe.
    pub bytes: u64,
}

/// Split `bytes` across the Eq. 15 parallel TP pairs.
///
/// With `s` source ranks and `d` destination ranks, `max(s, d)` stripes are
/// formed, pairing rank `i % s` with rank `i % d` — every GPU on the wider
/// side participates, and the narrower side fans in/out round-robin. Bytes
/// split evenly with the remainder spread over the leading stripes.
/// Stripes that would carry zero bytes, and `src == dst` self-pairs (an
/// interleaved deployment can place prefill and decode shards on the same
/// GPU), are dropped: neither puts traffic on the fabric.
pub fn stripe_plan(src_gpus: &[NodeId], dst_gpus: &[NodeId], bytes: u64) -> Vec<KvStripe> {
    if src_gpus.is_empty() || dst_gpus.is_empty() || bytes == 0 {
        return Vec::new();
    }
    let n = src_gpus.len().max(dst_gpus.len()) as u64;
    let base = bytes / n;
    let rem = bytes % n;
    (0..n)
        .map(|i| KvStripe {
            src: src_gpus[i as usize % src_gpus.len()],
            dst: dst_gpus[i as usize % dst_gpus.len()],
            bytes: base + u64::from(i < rem),
        })
        .filter(|s| s.bytes > 0 && s.src != s.dst)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(ids: &[u32]) -> Vec<NodeId> {
        ids.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn bytes_are_conserved_across_stripes() {
        let src = nodes(&[0, 1, 2, 3]);
        let dst = nodes(&[10, 11, 12, 13]);
        let plan = stripe_plan(&src, &dst, 1_000_003);
        assert_eq!(plan.len(), 4);
        assert_eq!(plan.iter().map(|s| s.bytes).sum::<u64>(), 1_000_003);
        // Remainder lands on the leading stripes: shares differ by ≤ 1.
        let min = plan.iter().map(|s| s.bytes).min().unwrap();
        let max = plan.iter().map(|s| s.bytes).max().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn unequal_tp_widths_rotate_the_narrow_side() {
        let src = nodes(&[0, 1]);
        let dst = nodes(&[10, 11, 12, 13]);
        let plan = stripe_plan(&src, &dst, 400);
        assert_eq!(plan.len(), 4, "wider side sets the stripe count");
        let pairs: Vec<(NodeId, NodeId)> = plan.iter().map(|s| (s.src, s.dst)).collect();
        assert_eq!(
            pairs,
            vec![
                (NodeId(0), NodeId(10)),
                (NodeId(1), NodeId(11)),
                (NodeId(0), NodeId(12)),
                (NodeId(1), NodeId(13)),
            ]
        );
    }

    #[test]
    fn tiny_transfers_drop_zero_byte_stripes() {
        let src = nodes(&[0, 1, 2, 3]);
        let dst = nodes(&[10, 11, 12, 13]);
        let plan = stripe_plan(&src, &dst, 3);
        assert_eq!(plan.len(), 3, "only stripes with bytes survive");
        assert_eq!(plan.iter().map(|s| s.bytes).sum::<u64>(), 3);
    }

    #[test]
    fn degenerate_inputs_yield_empty_plans() {
        assert!(stripe_plan(&[], &nodes(&[1]), 100).is_empty());
        assert!(stripe_plan(&nodes(&[1]), &[], 100).is_empty());
        assert!(stripe_plan(&nodes(&[1]), &nodes(&[2]), 0).is_empty());
        // Self-pairs (co-located prefill/decode shards) carry no traffic.
        assert!(stripe_plan(&nodes(&[5]), &nodes(&[5]), 100).is_empty());
    }
}
