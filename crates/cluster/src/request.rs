//! Request lifecycle state.

use hs_des::SimTime;
use hs_workload::Request;

/// Where a request is in the prefill→transfer→decode pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReqPhase {
    /// Waiting in the global prefill queue.
    Queued,
    /// Inside a prefill batch.
    Prefilling,
    /// Prefill finished; waiting for decode memory.
    AwaitingAdmission,
    /// KV cache streaming to the decode instance.
    TransferringKv,
    /// Generating tokens on a decode instance.
    Decoding,
    /// All output tokens produced.
    Done,
}

/// Mutable per-request simulation state.
#[derive(Clone, Debug)]
pub struct ReqState {
    /// The immutable request record.
    pub req: Request,
    /// Current phase.
    pub phase: ReqPhase,
    /// When prefill completed (TTFT reference point).
    pub prefill_done: Option<SimTime>,
    /// When decoding began (after KV transfer).
    pub decode_start: Option<SimTime>,
    /// When the last output token was produced.
    pub finished: Option<SimTime>,
    /// Output tokens produced so far.
    pub tokens_generated: u32,
    /// Decode instance index, once admitted.
    pub decode_instance: Option<usize>,
    /// Instance that ran (or is running) this request's prefill. Recorded
    /// when the prefill batch forms so a deferred admission retried later
    /// still ships its KV cache from the GPUs that actually hold it.
    pub prefill_instance: Option<usize>,
}

impl ReqState {
    /// Fresh state for an arriving request.
    pub fn new(req: Request) -> Self {
        ReqState {
            req,
            phase: ReqPhase::Queued,
            prefill_done: None,
            decode_start: None,
            finished: None,
            tokens_generated: 0,
            decode_instance: None,
            prefill_instance: None,
        }
    }

    /// End-to-end time-to-first-token: arrival → decode start. Unlike
    /// [`ttft_secs`](Self::ttft_secs) this *includes* the admission wait
    /// and the KV-cache transfer, so it is the metric that moves when KV
    /// traffic congests the prefill→decode fabric.
    pub fn ttft_e2e_secs(&self) -> Option<f64> {
        self.decode_start
            .map(|t| t.saturating_since(self.req.arrival).as_secs_f64())
    }

    /// Time-to-first-token: arrival → prefill completion (the
    /// disaggregated-architecture convention the paper uses).
    pub fn ttft_secs(&self) -> Option<f64> {
        self.prefill_done
            .map(|t| t.saturating_since(self.req.arrival).as_secs_f64())
    }

    /// Time-per-output-token: the span from prefill completion (first
    /// token) to the last token, over produced tokens. This *includes*
    /// the amortized KV-cache transfer delay, matching Eq. 4's
    /// `T_dec = T_n + T_c + T_f` accounting (T_f amortized per token).
    pub fn tpot_secs(&self) -> Option<f64> {
        let start = self.prefill_done.or(self.decode_start)?;
        match self.finished {
            Some(f) if self.tokens_generated > 0 => {
                Some(f.saturating_since(start).as_secs_f64() / self.tokens_generated as f64)
            }
            _ => None,
        }
    }

    /// Live KV tokens this request currently pins in decode memory.
    pub fn live_kv_tokens(&self) -> u64 {
        match self.phase {
            ReqPhase::TransferringKv | ReqPhase::Decoding => {
                self.req.input_tokens as u64 + self.tokens_generated as u64
            }
            _ => 0,
        }
    }

    /// Tokens the request reserves at admission (worst case footprint).
    pub fn reserved_kv_tokens(&self) -> u64 {
        self.req.input_tokens as u64 + self.req.output_tokens as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs_workload::RequestId;

    fn req() -> Request {
        Request {
            id: RequestId(0),
            arrival: SimTime::from_secs(10),
            input_tokens: 100,
            output_tokens: 20,
        }
    }

    #[test]
    fn lifecycle_metrics() {
        let mut s = ReqState::new(req());
        assert_eq!(s.phase, ReqPhase::Queued);
        assert_eq!(s.ttft_secs(), None);
        s.prefill_done = Some(SimTime::from_secs(12));
        assert_eq!(s.ttft_secs(), Some(2.0));
        assert_eq!(s.ttft_e2e_secs(), None);
        s.decode_start = Some(SimTime::from_secs(13));
        // e2e TTFT folds in the admission wait + KV transfer second.
        assert_eq!(s.ttft_e2e_secs(), Some(3.0));
        s.finished = Some(SimTime::from_secs(15));
        s.tokens_generated = 20;
        // TPOT counts from prefill completion (12 s): 3 s / 20 tokens,
        // folding the 1 s of KV transfer into the per-token figure.
        assert!((s.tpot_secs().unwrap() - 0.15).abs() < 1e-12);
    }

    #[test]
    fn kv_accounting_follows_phase() {
        let mut s = ReqState::new(req());
        assert_eq!(s.live_kv_tokens(), 0);
        s.phase = ReqPhase::Decoding;
        s.tokens_generated = 5;
        assert_eq!(s.live_kv_tokens(), 105);
        assert_eq!(s.reserved_kv_tokens(), 120);
        s.phase = ReqPhase::Done;
        assert_eq!(s.live_kv_tokens(), 0);
    }

    #[test]
    fn tpot_requires_tokens() {
        let mut s = ReqState::new(req());
        s.decode_start = Some(SimTime::from_secs(1));
        s.finished = Some(SimTime::from_secs(2));
        s.tokens_generated = 0;
        assert_eq!(s.tpot_secs(), None);
    }
}
