//! Prefill/decode instance specifications and runtime state.

use crate::autoscale::PoolState;
use hs_des::SimTime;
use hs_topology::NodeId;
use hs_workload::RequestId;

/// Whether an instance serves the prefill or the decode phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InstanceKind {
    /// Compute-bound prompt processing.
    Prefill,
    /// Memory-bound token generation.
    Decode,
}

/// Static placement of one model replica: `stages[s]` is the
/// tensor-parallel GPU group of pipeline stage `s`. `P_pipe =
/// stages.len()`, `P_tens = stages[0].len()`.
#[derive(Clone, Debug, PartialEq)]
pub struct InstanceSpec {
    /// Pipeline stages, each a tensor-parallel group.
    pub stages: Vec<Vec<NodeId>>,
}

impl InstanceSpec {
    /// A single-stage (pure tensor parallel) spec.
    pub fn tensor_parallel(gpus: Vec<NodeId>) -> Self {
        InstanceSpec { stages: vec![gpus] }
    }

    /// Tensor-parallel degree.
    pub fn p_tens(&self) -> u32 {
        self.stages.first().map(|s| s.len()).unwrap_or(0) as u32
    }

    /// Pipeline-parallel degree.
    pub fn p_pipe(&self) -> u32 {
        self.stages.len() as u32
    }

    /// Total GPUs.
    pub fn gpu_count(&self) -> usize {
        self.stages.iter().map(|s| s.len()).sum()
    }

    /// All GPUs, stage-major.
    pub fn all_gpus(&self) -> Vec<NodeId> {
        self.stages.iter().flatten().copied().collect()
    }

    /// Validate: non-empty, rectangular stages.
    pub fn validate(&self) -> Result<(), String> {
        if self.stages.is_empty() || self.stages[0].is_empty() {
            return Err("instance needs at least one GPU".into());
        }
        let tp = self.stages[0].len();
        if self.stages.iter().any(|s| s.len() != tp) {
            return Err("ragged pipeline stages".into());
        }
        let all = self.all_gpus();
        let mut dedup = all.clone();
        dedup.sort_unstable();
        dedup.dedup();
        if dedup.len() != all.len() {
            return Err("GPU assigned twice within an instance".into());
        }
        Ok(())
    }
}

/// What an instance is doing right now.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InstPhase {
    /// Nothing in flight.
    Idle,
    /// Compute timer pending for the current iteration.
    Computing,
    /// Waiting on `outstanding` collective executions.
    Communicating {
        /// Collectives still running for this iteration.
        outstanding: usize,
    },
}

/// Runtime state of one instance.
#[derive(Clone, Debug)]
pub struct Instance {
    /// Placement.
    pub spec: InstanceSpec,
    /// Role.
    pub kind: InstanceKind,
    /// Current phase.
    pub phase: InstPhase,
    /// Prefill: requests in the in-flight batch.
    pub batch: Vec<RequestId>,
    /// Decode: live requests (continuous batching set).
    pub active: Vec<RequestId>,
    /// Decode: requests admitted whose KV landed mid-iteration; joined at
    /// the next iteration boundary.
    pub joining: Vec<RequestId>,
    /// Iterations completed (diagnostics).
    pub iterations: u64,
    /// Elasticity state (autoscaling; see [`crate::autoscale`]).
    pub state: PoolState,
    /// When this instance last became occupied (GPU-hours clock).
    /// `Some` while Active or Draining, `None` while Parked.
    pub occupied_since: Option<SimTime>,
    /// Accumulated occupied GPU-seconds (`gpu_count × occupied wall
    /// time`) over completed occupancy intervals; the open interval is
    /// flushed at park time and at the report horizon.
    pub gpu_seconds: f64,
}

impl Instance {
    /// Fresh idle instance, Active from `t = 0`.
    pub fn new(spec: InstanceSpec, kind: InstanceKind) -> Self {
        debug_assert!(spec.validate().is_ok());
        Instance {
            spec,
            kind,
            phase: InstPhase::Idle,
            batch: Vec::new(),
            active: Vec::new(),
            joining: Vec::new(),
            iterations: 0,
            state: PoolState::Active,
            occupied_since: Some(SimTime::ZERO),
            gpu_seconds: 0.0,
        }
    }

    /// Decode load in live requests (for least-loaded dispatch).
    pub fn decode_load(&self) -> usize {
        self.active.len() + self.joining.len()
    }

    /// Close the open occupancy interval at `now`, adding it to
    /// [`Instance::gpu_seconds`]. Idempotent once parked.
    pub fn flush_gpu_seconds(&mut self, now: SimTime) {
        if let Some(since) = self.occupied_since.take() {
            self.gpu_seconds +=
                self.spec.gpu_count() as f64 * now.saturating_since(since).as_secs_f64();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn spec_degrees() {
        let s = InstanceSpec {
            stages: vec![vec![n(0), n(1)], vec![n(2), n(3)]],
        };
        assert_eq!(s.p_tens(), 2);
        assert_eq!(s.p_pipe(), 2);
        assert_eq!(s.gpu_count(), 4);
        assert_eq!(s.all_gpus(), vec![n(0), n(1), n(2), n(3)]);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_specs() {
        assert!(InstanceSpec { stages: vec![] }.validate().is_err());
        assert!(InstanceSpec {
            stages: vec![vec![n(0)], vec![n(1), n(2)]]
        }
        .validate()
        .is_err());
        assert!(InstanceSpec {
            stages: vec![vec![n(0), n(0)]]
        }
        .validate()
        .is_err());
    }

    #[test]
    fn tensor_parallel_helper() {
        let s = InstanceSpec::tensor_parallel(vec![n(5), n(6), n(7)]);
        assert_eq!(s.p_tens(), 3);
        assert_eq!(s.p_pipe(), 1);
    }
}
