//! Continuous-batching policy (Orca-style iteration scheduling, §II-B).
//!
//! "We adopt a continuous batching approach. The batch size adapts to the
//! volume of arriving requests" (§III-C1). Prefill batches are formed from
//! the head of the queue up to a token budget and a request cap; decode
//! batches are simply the live set (new requests join at iteration
//! boundaries).

use hs_workload::RequestId;
use std::collections::VecDeque;

/// Limits on one prefill batch.
#[derive(Clone, Copy, Debug)]
pub struct BatchPolicy {
    /// Max total prompt tokens per prefill iteration.
    pub max_batch_tokens: u64,
    /// Max requests per prefill iteration.
    pub max_batch_size: usize,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch_tokens: 8192,
            max_batch_size: 64,
        }
    }
}

/// Pop a prefill batch from the queue head.
///
/// Always admits at least one request (an oversized prompt runs alone);
/// otherwise stops before exceeding either limit. `lens(id)` returns the
/// request's prompt length.
pub fn form_prefill_batch(
    queue: &mut VecDeque<RequestId>,
    policy: &BatchPolicy,
    lens: impl Fn(RequestId) -> u64,
) -> Vec<RequestId> {
    let mut batch = Vec::new();
    let mut tokens = 0u64;
    while let Some(&id) = queue.front() {
        let l = lens(id);
        if !batch.is_empty()
            && (tokens + l > policy.max_batch_tokens || batch.len() >= policy.max_batch_size)
        {
            break;
        }
        queue.pop_front();
        tokens += l;
        batch.push(id);
        if tokens >= policy.max_batch_tokens || batch.len() >= policy.max_batch_size {
            break;
        }
    }
    batch
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u64]) -> VecDeque<RequestId> {
        v.iter().map(|&i| RequestId(i)).collect()
    }

    #[test]
    fn respects_token_budget() {
        let mut q = ids(&[0, 1, 2, 3]);
        let lens = |id: RequestId| (id.0 + 1) * 100; // 100, 200, 300, 400
        let p = BatchPolicy {
            max_batch_tokens: 350,
            max_batch_size: 10,
        };
        let b = form_prefill_batch(&mut q, &p, lens);
        assert_eq!(b, vec![RequestId(0), RequestId(1)]); // 100+200 <= 350, +300 would exceed
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn oversized_request_runs_alone() {
        let mut q = ids(&[0, 1]);
        let p = BatchPolicy {
            max_batch_tokens: 100,
            max_batch_size: 10,
        };
        let b = form_prefill_batch(&mut q, &p, |_| 5000);
        assert_eq!(b.len(), 1);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn respects_request_cap() {
        let mut q = ids(&[0, 1, 2, 3, 4]);
        let p = BatchPolicy {
            max_batch_tokens: u64::MAX,
            max_batch_size: 3,
        };
        let b = form_prefill_batch(&mut q, &p, |_| 1);
        assert_eq!(b.len(), 3);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn empty_queue_empty_batch() {
        let mut q = ids(&[]);
        let b = form_prefill_batch(&mut q, &BatchPolicy::default(), |_| 1);
        assert!(b.is_empty());
    }

    #[test]
    fn exact_budget_stops_cleanly() {
        let mut q = ids(&[0, 1, 2]);
        let p = BatchPolicy {
            max_batch_tokens: 200,
            max_batch_size: 10,
        };
        let b = form_prefill_batch(&mut q, &p, |_| 100);
        assert_eq!(b.len(), 2);
    }
}
