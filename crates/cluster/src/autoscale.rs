//! Elastic pool control: the engine-side half of autoscaling.
//!
//! The engine owns a fixed fleet of instances (the GPU *budget*); an
//! attached [`ScaleController`] decides, at every monitor tick, how many
//! of each pool should be **Active**. The engine applies targets by
//! flipping per-instance [`PoolState`] flags rather than mutating the
//! instance/KV vectors — index invariants (prefill `0..decode_offset`,
//! `kv[i]` ↔ decode instance `decode_offset + i`) never change, so every
//! other subsystem is oblivious to elasticity.
//!
//! Shrinking is graceful (DESIGN.md §13): a *Draining* instance accepts
//! no new work but finishes what it holds — a prefill instance completes
//! its in-flight batch, a decode instance keeps generating for its live
//! requests (and for admissions whose KV is still in the air) until its
//! KV reservation drops to zero. Only then does it *Park*, stopping its
//! GPU-seconds clock. Growing re-activates instances in the reverse
//! order (cancel drains first — they are instantly useful — then unpark).
//!
//! The controller itself (signal windows, hysteresis, planner re-solves)
//! lives in `heroserve`; this module defines only the engine contract.

use hs_des::SimTime;

/// Elasticity state of one instance. Orthogonal to
/// [`InstPhase`](crate::instance::InstPhase), which tracks the compute /
/// communicate cycle within an iteration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PoolState {
    /// In the pool: receives new batches / admissions.
    Active,
    /// Winding down: no new work, finishes in-flight work, then parks.
    Draining,
    /// Out of the pool: holds no state, burns no GPU-hours.
    Parked,
}

/// Desired Active-instance counts per pool. The engine clamps each to
/// `[1, pool size]` — a pool can never scale to zero (a serving system
/// with no prefill or no decode capacity deadlocks every request).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolTargets {
    /// Desired Active prefill instances.
    pub prefill: usize,
    /// Desired Active decode instances.
    pub decode: usize,
}

/// What the engine shows the controller at each monitor tick.
///
/// Counters are cumulative since `t = 0` — the controller differences
/// consecutive snapshots to get windowed rates, so the engine never has
/// to guess the controller's window length.
#[derive(Clone, Debug)]
pub struct PoolSnapshot {
    /// Snapshot time.
    pub now: SimTime,
    /// Requests arrived so far (cumulative).
    pub arrived: u64,
    /// Requests fully completed so far (cumulative).
    pub done: u64,
    /// Completed requests that met both SLAs (cumulative).
    pub done_sla_ok: u64,
    /// Requests waiting for a prefill slot right now.
    pub prefill_queue: usize,
    /// Requests waiting for decode KV capacity right now.
    pub pending_admission: usize,
    /// Active prefill instances.
    pub prefill_active: usize,
    /// Draining prefill instances.
    pub prefill_draining: usize,
    /// Parked prefill instances.
    pub prefill_parked: usize,
    /// Active decode instances.
    pub decode_active: usize,
    /// Draining decode instances.
    pub decode_draining: usize,
    /// Parked decode instances.
    pub decode_parked: usize,
    /// Mean KV *reservation* utilization over Active decode instances,
    /// `[0, 1]` — admission pressure, the signal that leads memory
    /// exhaustion rather than lagging it.
    pub kv_pressure: f64,
}

impl PoolSnapshot {
    /// Total prefill instances in the budget.
    pub fn prefill_total(&self) -> usize {
        self.prefill_active + self.prefill_draining + self.prefill_parked
    }

    /// Total decode instances in the budget.
    pub fn decode_total(&self) -> usize {
        self.decode_active + self.decode_draining + self.decode_parked
    }
}

/// A pool-sizing policy driven by the engine's monitor ticks.
///
/// Implementations must be deterministic functions of the snapshot
/// sequence (no wall clock, no unseeded randomness) — the determinism
/// harness runs elastic simulations bit-for-bit across repeats.
pub trait ScaleController {
    /// Called once before the run starts, with the full per-pool budget.
    /// The returned targets set the initial Active counts (instances
    /// beyond them start Parked and contribute zero GPU-seconds).
    fn initial_targets(&mut self, prefill_slots: usize, decode_slots: usize) -> PoolTargets;

    /// Called at every monitor tick. Return `Some` to request new
    /// targets, `None` to leave the pools alone.
    fn on_tick(&mut self, snapshot: &PoolSnapshot) -> Option<PoolTargets>;

    /// Controller name for reports and traces.
    fn name(&self) -> &str;
}

/// A controller that pins both pools at fixed sizes — the *static
/// capacity* baseline every elastic sweep compares against.
#[derive(Clone, Copy, Debug)]
pub struct StaticController {
    /// Active prefill instances for the whole run.
    pub prefill: usize,
    /// Active decode instances for the whole run.
    pub decode: usize,
}

impl ScaleController for StaticController {
    fn initial_targets(&mut self, _prefill_slots: usize, _decode_slots: usize) -> PoolTargets {
        PoolTargets {
            prefill: self.prefill,
            decode: self.decode,
        }
    }

    fn on_tick(&mut self, _snapshot: &PoolSnapshot) -> Option<PoolTargets> {
        None
    }

    fn name(&self) -> &str {
        "static"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_controller_never_moves() {
        let mut c = StaticController {
            prefill: 2,
            decode: 3,
        };
        assert_eq!(
            c.initial_targets(4, 4),
            PoolTargets {
                prefill: 2,
                decode: 3
            }
        );
        let snap = PoolSnapshot {
            now: SimTime::from_secs(1),
            arrived: 100,
            done: 50,
            done_sla_ok: 40,
            prefill_queue: 30,
            pending_admission: 5,
            prefill_active: 2,
            prefill_draining: 0,
            prefill_parked: 2,
            decode_active: 3,
            decode_draining: 0,
            decode_parked: 1,
            kv_pressure: 0.9,
        };
        assert_eq!(c.on_tick(&snap), None);
        assert_eq!(snap.prefill_total(), 4);
        assert_eq!(snap.decode_total(), 4);
    }
}
