//! The switch control plane, as seen by the central scheduler.
//!
//! "The central scheduler uniformly allocates and recycles aggregator
//! slots. The switch control plane provides APIs that allow for high-speed
//! updates of the aggregation table entries ... It periodically polls
//! hardware counters from the data plane to obtain link utilization
//! metrics" (§IV). [`SwitchControl`] is that API surface over one or more
//! [`InaDataplane`]s (one per INA-capable switch in the fabric).

use crate::dataplane::{
    AdmitError, DataplaneAction, DataplaneCounters, InaDataplane, InaPacket, JobConfig, JobId,
};
use hs_des::SimTime;
use rustc_hash::FxHashMap;
use std::collections::BTreeMap;

/// Identifier of an INA-capable switch (the topology `NodeId`'s raw index).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct SwitchId(pub u32);

/// Counter snapshot for one switch.
#[derive(Clone, Copy, Debug, Default)]
pub struct SwitchCounters {
    /// Dataplane counters at poll time.
    pub dataplane: DataplaneCounters,
    /// Free aggregator slots at poll time.
    pub free_slots: usize,
    /// Slots in use at poll time.
    pub used_slots: usize,
}

/// Control plane over a fleet of INA dataplanes.
pub struct SwitchControl {
    /// Keyed in switch-id order: fleet-wide walks (polling, fallback
    /// accounting) must visit switches deterministically.
    switches: BTreeMap<SwitchId, InaDataplane>,
    /// Where each admitted job lives (lookups only, never iterated).
    placements: FxHashMap<JobId, SwitchId>,
    next_job: u32,
    /// Aggregation-session audit stream (no-op unless attached).
    tracer: hs_obs::Tracer,
    /// Control-plane clock, advanced by the embedding simulation; the
    /// switch model itself is untimed.
    now: SimTime,
}

impl SwitchControl {
    /// Empty fleet.
    pub fn new() -> Self {
        SwitchControl {
            switches: BTreeMap::new(),
            placements: FxHashMap::default(),
            next_job: 0,
            tracer: hs_obs::Tracer::noop(),
            now: SimTime::ZERO,
        }
    }

    /// Attach a tracer for aggregation-session events.
    pub fn set_tracer(&mut self, tracer: &hs_obs::Tracer) {
        self.tracer = tracer.clone();
    }

    /// Advance the control-plane clock (timestamps for traced events).
    pub fn set_clock(&mut self, now: SimTime) {
        self.now = now;
    }

    /// Register an INA-capable switch with a slot pool of `n_slots` slots
    /// of `lanes` lanes.
    pub fn register_switch(&mut self, id: SwitchId, n_slots: usize, lanes: usize) {
        self.switches.insert(id, InaDataplane::new(n_slots, lanes));
    }

    /// Whether `id` is registered.
    pub fn has_switch(&self, id: SwitchId) -> bool {
        self.switches.contains_key(&id)
    }

    /// Allocate a fresh job id (the scheduler's "uniform allocation").
    pub fn new_job_id(&mut self) -> JobId {
        let j = JobId(self.next_job);
        self.next_job += 1;
        j
    }

    /// Admit `job` on switch `sw`. Errors surface admission failures
    /// (pool exhaustion for synchronous jobs, or an unregistered switch).
    pub fn admit(&mut self, sw: SwitchId, job: JobId, cfg: JobConfig) -> Result<(), AdmitError> {
        let dp = self
            .switches
            .get_mut(&sw)
            .ok_or(AdmitError::UnknownSwitch)?;
        let window = cfg.window;
        dp.admit_job(job, cfg)?;
        self.placements.insert(job, sw);
        self.tracer
            .ina_session_begin(self.now, sw.0 as u64, job.0 as u64, window);
        Ok(())
    }

    /// Release `job` wherever it is placed (idempotent).
    pub fn release(&mut self, job: JobId) {
        if let Some(sw) = self.placements.remove(&job) {
            if let Some(dp) = self.switches.get_mut(&sw) {
                dp.release_job(job);
            }
            self.tracer
                .ina_session_end(self.now, sw.0 as u64, job.0 as u64);
        }
    }

    /// Process one packet on `sw`, recording host-fallback punts in the
    /// trace. `None` when the switch is unknown.
    pub fn process(&mut self, sw: SwitchId, pkt: &InaPacket) -> Option<DataplaneAction> {
        let dp = self.switches.get_mut(&sw)?;
        let action = dp.process(pkt);
        if action == DataplaneAction::Fallback {
            self.tracer
                .ina_fallback(self.now, sw.0 as u64, pkt.job.0 as u64);
        }
        Some(action)
    }

    /// The switch hosting `job`, if admitted.
    pub fn placement(&self, job: JobId) -> Option<SwitchId> {
        self.placements.get(&job).copied()
    }

    /// Mutable dataplane access (the packet path).
    pub fn dataplane_mut(&mut self, sw: SwitchId) -> Option<&mut InaDataplane> {
        self.switches.get_mut(&sw)
    }

    /// Dataplane access.
    pub fn dataplane(&self, sw: SwitchId) -> Option<&InaDataplane> {
        self.switches.get(&sw)
    }

    /// Poll one switch's hardware counters.
    pub fn poll(&self, sw: SwitchId) -> Option<SwitchCounters> {
        self.switches.get(&sw).map(|dp| SwitchCounters {
            dataplane: dp.counters(),
            free_slots: dp.pool().available(),
            used_slots: dp.pool().in_use(),
        })
    }

    /// Poll every switch, sorted by id (deterministic report order — the
    /// fleet map is keyed in id order).
    pub fn poll_all(&self) -> Vec<(SwitchId, SwitchCounters)> {
        self.switches
            .iter()
            .map(|(&id, dp)| {
                (
                    id,
                    SwitchCounters {
                        dataplane: dp.counters(),
                        free_slots: dp.pool().available(),
                        used_slots: dp.pool().in_use(),
                    },
                )
            })
            .collect()
    }

    /// Fraction of packets that bypassed in-network aggregation fleet-wide
    /// (an aggregate congestion indicator the online scheduler can use).
    pub fn fleet_fallback_fraction(&self) -> f64 {
        let (mut fb, mut total) = (0u64, 0u64);
        for dp in self.switches.values() {
            let c = dp.counters();
            fb += c.fallbacks;
            total += c.packets_in;
        }
        if total == 0 {
            0.0
        } else {
            fb as f64 / total as f64
        }
    }
}

impl Default for SwitchControl {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataplane::{AggMode, InaPacket, WorkerId};
    use crate::fixpoint::FixPoint;

    fn cfg(fanin: u32, window: u32, mode: AggMode) -> JobConfig {
        JobConfig {
            fanin,
            window,
            fixpoint: FixPoint::default(),
            mode,
        }
    }

    #[test]
    fn admit_place_release() {
        let mut ctl = SwitchControl::new();
        ctl.register_switch(SwitchId(0), 8, 4);
        ctl.register_switch(SwitchId(1), 8, 4);
        let j = ctl.new_job_id();
        ctl.admit(SwitchId(1), j, cfg(2, 2, AggMode::SwitchMlSync))
            .unwrap();
        assert_eq!(ctl.placement(j), Some(SwitchId(1)));
        let counters = ctl.poll(SwitchId(1)).unwrap();
        assert_eq!(counters.used_slots, 2);
        ctl.release(j);
        assert_eq!(ctl.poll(SwitchId(1)).unwrap().used_slots, 0);
        assert_eq!(ctl.placement(j), None);
        ctl.release(j); // idempotent
    }

    #[test]
    fn poll_all_is_sorted() {
        let mut ctl = SwitchControl::new();
        ctl.register_switch(SwitchId(3), 4, 1);
        ctl.register_switch(SwitchId(1), 4, 1);
        ctl.register_switch(SwitchId(2), 4, 1);
        let polled = ctl.poll_all();
        let ids: Vec<u32> = polled.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn fleet_fallback_fraction_tracks_congestion() {
        let mut ctl = SwitchControl::new();
        ctl.register_switch(SwitchId(0), 1, 1);
        let j = ctl.new_job_id();
        ctl.admit(SwitchId(0), j, cfg(2, 4, AggMode::AtpAsync))
            .unwrap();
        let dp = ctl.dataplane_mut(SwitchId(0)).unwrap();
        // First chunk takes the only slot; second falls back.
        dp.process(&InaPacket {
            job: j,
            worker: WorkerId(0),
            seq: 0,
            values: vec![1.0],
        });
        dp.process(&InaPacket {
            job: j,
            worker: WorkerId(0),
            seq: 1,
            values: vec![1.0],
        });
        assert!((ctl.fleet_fallback_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn tracer_records_session_lifecycle_and_fallbacks() {
        let mut ctl = SwitchControl::new();
        ctl.register_switch(SwitchId(0), 1, 1);
        let tr = hs_obs::Tracer::recording();
        ctl.set_tracer(&tr);
        ctl.set_clock(hs_des::SimTime::from_secs(1));
        let j = ctl.new_job_id();
        ctl.admit(SwitchId(0), j, cfg(2, 4, AggMode::AtpAsync))
            .unwrap();
        // First chunk takes the only slot; the second punts to the host.
        for seq in 0..2 {
            ctl.process(
                SwitchId(0),
                &InaPacket {
                    job: j,
                    worker: WorkerId(0),
                    seq,
                    values: vec![1.0],
                },
            );
        }
        ctl.set_clock(hs_des::SimTime::from_secs(2));
        ctl.release(j);
        let recs = tr.records();
        let names: Vec<&str> = recs.iter().map(|r| r.name).collect();
        assert_eq!(names, vec!["ina_session", "ina_fallback", "ina_session"]);
        assert_eq!(recs[0].ph, hs_obs::Ph::Begin);
        assert_eq!(recs[2].ph, hs_obs::Ph::End);
        assert!(recs[2].t > recs[0].t, "clock advances between events");
        // Unknown switch: no crash, no event.
        assert!(ctl
            .process(
                SwitchId(9),
                &InaPacket {
                    job: j,
                    worker: WorkerId(0),
                    seq: 0,
                    values: vec![1.0],
                },
            )
            .is_none());
    }

    #[test]
    fn admit_on_unknown_switch_errors() {
        let mut ctl = SwitchControl::new();
        let j = ctl.new_job_id();
        assert_eq!(
            ctl.admit(SwitchId(9), j, cfg(2, 1, AggMode::AtpAsync)),
            Err(AdmitError::UnknownSwitch)
        );
        assert_eq!(ctl.placement(j), None, "failed admit leaves no placement");
    }
}
