//! The INA dataplane: packet-level aggregation in two disciplines.
//!
//! The paper's evaluation compares two in-network aggregation designs
//! integrated into DistServe (§V): **DS-SwitchML** — synchronous,
//! lock-step streaming over a statically reserved slot window per job —
//! and **DS-ATP** — asynchronous best-effort aggregation with dynamic slot
//! allocation and graceful *fallback to end-host aggregation* when switch
//! memory is exhausted. HeroServe's own INA mode uses the synchronous
//! discipline but reserves slots through its planner.
//!
//! This module processes individual update packets against the slot pool
//! and aggregation table so that the aggregation arithmetic (fixed point,
//! saturation, duplicate suppression) is genuinely exercised; the cluster
//! simulator uses the same state at job granularity.

use crate::aggregator::{Contribution, SlotPool};
use crate::fixpoint::FixPoint;
use crate::table::{AggregationTable, TableKey};
use rustc_hash::FxHashMap;

/// Collective-group identifier (one tensor-parallel group's all-reduce
/// stream).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct JobId(pub u32);

/// Worker identifier within a job (a GPU's rank).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct WorkerId(pub u32);

/// Aggregation discipline.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AggMode {
    /// SwitchML-style: a fixed window of slots per job, strict round
    /// streaming, admission fails when the window cannot be reserved.
    SwitchMlSync,
    /// ATP-style: slots allocated per in-flight chunk on demand; on pool
    /// exhaustion the packet is forwarded to an end-host fallback
    /// aggregator instead of being aggregated in-network.
    AtpAsync,
}

/// Per-job configuration installed by the control plane.
#[derive(Clone, Copy, Debug)]
pub struct JobConfig {
    /// Number of workers contributing to each aggregation.
    pub fanin: u32,
    /// Slot window size (SwitchML) / max outstanding chunks hint (ATP).
    pub window: u32,
    /// Fixed-point codec for this job.
    pub fixpoint: FixPoint,
    /// Discipline.
    pub mode: AggMode,
}

/// An INA update packet from a worker.
#[derive(Clone, Debug)]
pub struct InaPacket {
    /// Destination job.
    pub job: JobId,
    /// Sending worker.
    pub worker: WorkerId,
    /// Chunk sequence number (monotone per worker).
    pub seq: u32,
    /// Float payload (encoded to fixed point at "the NIC").
    pub values: Vec<f32>,
}

/// Result of processing one packet.
#[derive(Clone, Debug, PartialEq)]
pub enum DataplaneAction {
    /// Contribution stored; aggregation still waiting for other workers.
    Accepted,
    /// Aggregation complete: multicast the result for `seq` to all
    /// workers.
    Complete {
        /// Completed chunk sequence.
        seq: u32,
        /// Decoded aggregated values.
        values: Vec<f32>,
    },
    /// Duplicate contribution (retransmission) dropped idempotently.
    DroppedDuplicate,
    /// No aggregation resources: forward to the end-host fallback path.
    Fallback,
}

struct JobState {
    cfg: JobConfig,
    /// SwitchML: the round (seq) each window is currently serving.
    round_of_window: Vec<u32>,
    /// SwitchML: reserved slot per window.
    window_slots: Vec<u32>,
    /// ATP: live chunk → slot.
    dynamic: FxHashMap<u32, u32>,
}

/// Hardware counters (per dataplane; the control plane polls these).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DataplaneCounters {
    /// Update packets received.
    pub packets_in: u64,
    /// Completed aggregations (multicasts emitted).
    pub aggregations: u64,
    /// Packets forwarded to the end-host fallback.
    pub fallbacks: u64,
    /// Duplicate packets dropped.
    pub duplicates: u64,
    /// Payload bytes aggregated in-network.
    pub bytes_aggregated: u64,
}

/// The switch's INA dataplane: slot pool + aggregation table + job state.
pub struct InaDataplane {
    pool: SlotPool,
    table: AggregationTable,
    jobs: FxHashMap<JobId, JobState>,
    counters: DataplaneCounters,
    lanes: usize,
}

impl InaDataplane {
    /// A dataplane with `n_slots` aggregator slots of `lanes` lanes.
    pub fn new(n_slots: usize, lanes: usize) -> Self {
        InaDataplane {
            pool: SlotPool::new(n_slots, lanes),
            table: AggregationTable::new(),
            jobs: FxHashMap::default(),
            counters: DataplaneCounters::default(),
            lanes,
        }
    }

    /// Lanes per slot (packet payload element count).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Admit a job. SwitchML jobs reserve their whole window up front and
    /// fail when the pool cannot supply it; ATP jobs always admit.
    pub fn admit_job(&mut self, job: JobId, cfg: JobConfig) -> Result<(), AdmitError> {
        if self.jobs.contains_key(&job) {
            return Err(AdmitError::AlreadyAdmitted);
        }
        if cfg.fanin == 0 || cfg.fanin > 64 {
            return Err(AdmitError::BadFanin);
        }
        let mut state = JobState {
            cfg,
            round_of_window: Vec::new(),
            window_slots: Vec::new(),
            dynamic: FxHashMap::default(),
        };
        if cfg.mode == AggMode::SwitchMlSync {
            if (self.pool.available() as u32) < cfg.window {
                return Err(AdmitError::PoolExhausted);
            }
            for w in 0..cfg.window {
                let slot = self.pool.alloc(cfg.fanin).expect("checked availability");
                self.table.insert(
                    TableKey {
                        job: job.0,
                        window: w,
                    },
                    slot,
                );
                state.window_slots.push(slot);
                state.round_of_window.push(w);
            }
        }
        self.jobs.insert(job, state);
        Ok(())
    }

    /// Release a job's resources (slots + table entries). ATP's dynamic
    /// slots are keyed by `(job, seq)` in the same table, so removing the
    /// job's table entries frees them too.
    pub fn release_job(&mut self, job: JobId) {
        if self.jobs.remove(&job).is_none() {
            return;
        }
        for slot in self.table.remove_job(job.0) {
            self.pool.free(slot);
        }
    }

    /// Process one update packet.
    pub fn process(&mut self, pkt: &InaPacket) -> DataplaneAction {
        self.counters.packets_in += 1;
        let Some(state) = self.jobs.get_mut(&pkt.job) else {
            self.counters.fallbacks += 1;
            return DataplaneAction::Fallback;
        };
        debug_assert_eq!(pkt.values.len(), self.lanes, "payload lane mismatch");
        let fp = state.cfg.fixpoint;
        let encoded = fp.encode_vec(&pkt.values);
        match state.cfg.mode {
            AggMode::SwitchMlSync => {
                let w = (pkt.seq % state.cfg.window) as usize;
                if state.round_of_window[w] != pkt.seq {
                    // The window is still serving an older round; the
                    // sender must stall — model as fallback/stall.
                    self.counters.fallbacks += 1;
                    return DataplaneAction::Fallback;
                }
                let slot_idx = state.window_slots[w];
                let slot = self.pool.slot_mut(slot_idx);
                match slot.contribute(pkt.worker.0, &encoded) {
                    Contribution::Duplicate => {
                        self.counters.duplicates += 1;
                        DataplaneAction::DroppedDuplicate
                    }
                    Contribution::Pending => DataplaneAction::Accepted,
                    Contribution::Complete => {
                        let values = fp.decode_vec(&slot.values);
                        self.counters.aggregations += 1;
                        self.counters.bytes_aggregated +=
                            (self.lanes * 4) as u64 * state.cfg.fanin as u64;
                        // Advance this window to its next round.
                        slot.reset(state.cfg.fanin);
                        state.round_of_window[w] = pkt.seq + state.cfg.window;
                        DataplaneAction::Complete {
                            seq: pkt.seq,
                            values,
                        }
                    }
                }
            }
            AggMode::AtpAsync => {
                let key = TableKey {
                    job: pkt.job.0,
                    window: pkt.seq,
                };
                let slot_idx = match self.table.lookup(key) {
                    Some(s) => s,
                    None => match self.pool.alloc(state.cfg.fanin) {
                        Some(s) => {
                            self.table.insert(key, s);
                            state.dynamic.insert(pkt.seq, s);
                            s
                        }
                        None => {
                            // Best-effort: no switch memory — end hosts
                            // aggregate this chunk themselves.
                            self.counters.fallbacks += 1;
                            return DataplaneAction::Fallback;
                        }
                    },
                };
                let slot = self.pool.slot_mut(slot_idx);
                match slot.contribute(pkt.worker.0, &encoded) {
                    Contribution::Duplicate => {
                        self.counters.duplicates += 1;
                        DataplaneAction::DroppedDuplicate
                    }
                    Contribution::Pending => DataplaneAction::Accepted,
                    Contribution::Complete => {
                        let values = fp.decode_vec(&slot.values);
                        self.counters.aggregations += 1;
                        self.counters.bytes_aggregated +=
                            (self.lanes * 4) as u64 * state.cfg.fanin as u64;
                        self.table.remove(key);
                        state.dynamic.remove(&pkt.seq);
                        self.pool.free(slot_idx);
                        DataplaneAction::Complete {
                            seq: pkt.seq,
                            values,
                        }
                    }
                }
            }
        }
    }

    /// Poll the hardware counters (control-plane API).
    pub fn counters(&self) -> DataplaneCounters {
        self.counters
    }

    /// Slot pool occupancy view.
    pub fn pool(&self) -> &SlotPool {
        &self.pool
    }

    /// Free slots right now.
    pub fn available_slots(&self) -> usize {
        self.pool.available()
    }

    /// Whether a job is currently admitted.
    pub fn has_job(&self, job: JobId) -> bool {
        self.jobs.contains_key(&job)
    }
}

/// Why a job could not be admitted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmitError {
    /// The job id is already in use.
    AlreadyAdmitted,
    /// Fan-in must be 1..=64 (slot bitmap width).
    BadFanin,
    /// Not enough free aggregator slots for the requested window.
    PoolExhausted,
    /// The target switch is not registered with the control plane.
    UnknownSwitch,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(fanin: u32, window: u32, mode: AggMode) -> JobConfig {
        JobConfig {
            fanin,
            window,
            fixpoint: FixPoint::default(),
            mode,
        }
    }

    fn pkt(job: u32, worker: u32, seq: u32, values: Vec<f32>) -> InaPacket {
        InaPacket {
            job: JobId(job),
            worker: WorkerId(worker),
            seq,
            values,
        }
    }

    #[test]
    fn switchml_aggregates_three_workers() {
        let mut dp = InaDataplane::new(8, 2);
        dp.admit_job(JobId(1), cfg(3, 2, AggMode::SwitchMlSync))
            .unwrap();
        assert_eq!(
            dp.process(&pkt(1, 0, 0, vec![1.0, 2.0])),
            DataplaneAction::Accepted
        );
        assert_eq!(
            dp.process(&pkt(1, 1, 0, vec![10.0, 20.0])),
            DataplaneAction::Accepted
        );
        match dp.process(&pkt(1, 2, 0, vec![100.0, 200.0])) {
            DataplaneAction::Complete { seq, values } => {
                assert_eq!(seq, 0);
                assert!((values[0] - 111.0).abs() < 1e-3);
                assert!((values[1] - 222.0).abs() < 1e-3);
            }
            other => panic!("expected Complete, got {other:?}"),
        }
        assert_eq!(dp.counters().aggregations, 1);
    }

    #[test]
    fn switchml_window_streams_rounds() {
        let mut dp = InaDataplane::new(8, 1);
        dp.admit_job(JobId(1), cfg(2, 2, AggMode::SwitchMlSync))
            .unwrap();
        // Rounds 0 and 1 in flight simultaneously (window = 2).
        dp.process(&pkt(1, 0, 0, vec![1.0]));
        dp.process(&pkt(1, 0, 1, vec![2.0]));
        // Round 2 reuses window 0, which is still serving round 0: stall.
        assert_eq!(
            dp.process(&pkt(1, 0, 2, vec![3.0])),
            DataplaneAction::Fallback
        );
        // Complete round 0; window 0 advances to round 2.
        assert!(matches!(
            dp.process(&pkt(1, 1, 0, vec![1.0])),
            DataplaneAction::Complete { seq: 0, .. }
        ));
        assert_eq!(
            dp.process(&pkt(1, 0, 2, vec![3.0])),
            DataplaneAction::Accepted
        );
    }

    #[test]
    fn switchml_admission_fails_when_pool_small() {
        let mut dp = InaDataplane::new(3, 1);
        assert!(dp
            .admit_job(JobId(1), cfg(2, 2, AggMode::SwitchMlSync))
            .is_ok());
        assert_eq!(
            dp.admit_job(JobId(2), cfg(2, 2, AggMode::SwitchMlSync)),
            Err(AdmitError::PoolExhausted)
        );
        dp.release_job(JobId(1));
        assert!(dp
            .admit_job(JobId(2), cfg(2, 2, AggMode::SwitchMlSync))
            .is_ok());
    }

    #[test]
    fn atp_allocates_dynamically_and_falls_back() {
        let mut dp = InaDataplane::new(2, 1);
        dp.admit_job(JobId(1), cfg(2, 8, AggMode::AtpAsync))
            .unwrap();
        // Two chunks in flight occupy the whole pool.
        dp.process(&pkt(1, 0, 0, vec![1.0]));
        dp.process(&pkt(1, 0, 1, vec![1.0]));
        assert_eq!(dp.available_slots(), 0);
        // Third chunk: best-effort fallback, not an error.
        assert_eq!(
            dp.process(&pkt(1, 0, 2, vec![1.0])),
            DataplaneAction::Fallback
        );
        assert_eq!(dp.counters().fallbacks, 1);
        // Completing chunk 0 frees its slot for chunk 2.
        assert!(matches!(
            dp.process(&pkt(1, 1, 0, vec![2.0])),
            DataplaneAction::Complete { seq: 0, .. }
        ));
        assert_eq!(dp.available_slots(), 1);
        assert_eq!(
            dp.process(&pkt(1, 0, 2, vec![1.0])),
            DataplaneAction::Accepted
        );
    }

    #[test]
    fn duplicates_are_idempotent() {
        let mut dp = InaDataplane::new(4, 1);
        dp.admit_job(JobId(1), cfg(3, 1, AggMode::SwitchMlSync))
            .unwrap();
        dp.process(&pkt(1, 0, 0, vec![5.0]));
        assert_eq!(
            dp.process(&pkt(1, 0, 0, vec![5.0])),
            DataplaneAction::DroppedDuplicate
        );
        dp.process(&pkt(1, 1, 0, vec![5.0]));
        match dp.process(&pkt(1, 2, 0, vec![5.0])) {
            DataplaneAction::Complete { values, .. } => {
                assert!(
                    (values[0] - 15.0).abs() < 1e-3,
                    "duplicate was double counted"
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_job_falls_back() {
        let mut dp = InaDataplane::new(4, 1);
        assert_eq!(
            dp.process(&pkt(9, 0, 0, vec![1.0])),
            DataplaneAction::Fallback
        );
    }

    #[test]
    fn release_is_idempotent_and_frees_slots() {
        let mut dp = InaDataplane::new(4, 1);
        dp.admit_job(JobId(1), cfg(2, 4, AggMode::SwitchMlSync))
            .unwrap();
        assert_eq!(dp.available_slots(), 0);
        dp.release_job(JobId(1));
        assert_eq!(dp.available_slots(), 4);
        dp.release_job(JobId(1)); // no-op
        assert!(!dp.has_job(JobId(1)));
    }

    #[test]
    fn full_allreduce_round_trip_many_chunks() {
        // 4 workers x 16 chunks of 4 lanes: every chunk's multicast equals
        // the float sum of the contributions.
        let fanin = 4u32;
        let chunks = 16u32;
        let mut dp = InaDataplane::new(8, 4);
        dp.admit_job(JobId(1), cfg(fanin, 4, AggMode::SwitchMlSync))
            .unwrap();
        let mut completed = 0;
        for seq in 0..chunks {
            for w in 0..fanin {
                let payload = vec![(w as f32 + 1.0) * 0.5; 4];
                match dp.process(&pkt(1, w, seq, payload)) {
                    DataplaneAction::Complete { values, .. } => {
                        completed += 1;
                        // sum of (w+1)*0.5 for w in 0..4 = 5.0
                        assert!((values[0] - 5.0).abs() < 1e-3);
                    }
                    DataplaneAction::Accepted => {}
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
        assert_eq!(completed, chunks);
        assert_eq!(dp.counters().aggregations, chunks as u64);
    }
}
