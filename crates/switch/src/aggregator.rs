//! The aggregation memory: a pool of fixed-size aggregator slots.
//!
//! "The aggregation memory space is organized as a pool of fixed-size
//! aggregator slots across multiple switch pipelines" (§IV). Each slot
//! holds a partially aggregated fixed-point vector, a contribution bitmap
//! and counter. Switch SRAM is scarce — pool exhaustion is exactly the
//! contention effect that makes homogeneous INA collapse under bursty
//! multi-tenant traffic, so the pool size is a first-class parameter.

use crate::fixpoint::saturating_add_assign;

/// One aggregator slot.
#[derive(Clone, Debug)]
pub struct Slot {
    /// Partially aggregated fixed-point lanes.
    pub values: Vec<i32>,
    /// Bitmap of workers whose contribution has been folded in.
    pub seen: u64,
    /// Number of contributions received.
    pub count: u32,
    /// Number of contributions expected before the slot completes.
    pub fanin: u32,
    /// Whether the slot is currently allocated.
    pub in_use: bool,
}

impl Slot {
    fn new(lanes: usize) -> Self {
        Slot {
            values: vec![0; lanes],
            seen: 0,
            count: 0,
            fanin: 0,
            in_use: false,
        }
    }

    /// Clear accumulated state and arm the slot for a new aggregation of
    /// `fanin` contributors (used on allocation and on window advance).
    pub fn reset(&mut self, fanin: u32) {
        self.values.iter_mut().for_each(|v| *v = 0);
        self.seen = 0;
        self.count = 0;
        self.fanin = fanin;
    }

    /// Fold a worker's contribution in.
    pub fn contribute(&mut self, worker_bit: u32, lanes: &[i32]) -> Contribution {
        debug_assert!(self.in_use);
        let bit = 1u64 << (worker_bit % 64);
        if self.seen & bit != 0 {
            return Contribution::Duplicate; // retransmission, dropped
        }
        self.seen |= bit;
        self.count += 1;
        saturating_add_assign(&mut self.values, lanes);
        if self.count >= self.fanin {
            Contribution::Complete
        } else {
            Contribution::Pending
        }
    }
}

/// Outcome of folding one worker's contribution into a slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Contribution {
    /// Stored; more contributions expected.
    Pending,
    /// All expected contributions received — the slot holds the sum.
    Complete,
    /// Duplicate contribution (retransmission); dropped idempotently.
    Duplicate,
}

/// Occupancy and contention statistics for the pool.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SlotPoolStats {
    /// Successful slot allocations.
    pub allocs: u64,
    /// Allocation attempts that failed because the pool was exhausted.
    pub alloc_failures: u64,
    /// Slots released back to the pool.
    pub frees: u64,
    /// High-water mark of simultaneously allocated slots.
    pub peak_in_use: usize,
}

/// A pool of aggregator slots with O(1) alloc/free.
pub struct SlotPool {
    slots: Vec<Slot>,
    free: Vec<u32>,
    in_use: usize,
    lanes: usize,
    stats: SlotPoolStats,
}

impl SlotPool {
    /// Create a pool of `n_slots` slots of `lanes` 32-bit lanes each.
    ///
    /// SwitchML on Tofino-1 uses on the order of tens of thousands of
    /// 64-lane (256 B) slots; the per-experiment configs pick sizes that
    /// preserve the contention *ratio* at simulation scale.
    pub fn new(n_slots: usize, lanes: usize) -> Self {
        assert!(n_slots > 0 && lanes > 0);
        SlotPool {
            slots: (0..n_slots).map(|_| Slot::new(lanes)).collect(),
            free: (0..n_slots as u32).rev().collect(),
            in_use: 0,
            lanes,
            stats: SlotPoolStats::default(),
        }
    }

    /// Total slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Lanes per slot.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Slots currently allocated.
    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// Slots currently free.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// Allocate a slot for an aggregation of `fanin` contributors.
    /// Returns `None` when the pool is exhausted (recorded in stats).
    pub fn alloc(&mut self, fanin: u32) -> Option<u32> {
        match self.free.pop() {
            Some(idx) => {
                let s = &mut self.slots[idx as usize];
                s.reset(fanin);
                s.in_use = true;
                self.in_use += 1;
                self.stats.allocs += 1;
                self.stats.peak_in_use = self.stats.peak_in_use.max(self.in_use);
                Some(idx)
            }
            None => {
                self.stats.alloc_failures += 1;
                None
            }
        }
    }

    /// Release a slot back to the pool.
    ///
    /// # Panics
    /// Panics if the slot is not allocated (double free — a control-plane
    /// bug we want loud).
    pub fn free(&mut self, idx: u32) {
        let s = &mut self.slots[idx as usize];
        assert!(s.in_use, "double free of aggregator slot {idx}");
        s.in_use = false;
        self.in_use -= 1;
        self.free.push(idx);
        self.stats.frees += 1;
    }

    /// Access an allocated slot.
    pub fn slot(&self, idx: u32) -> &Slot {
        &self.slots[idx as usize]
    }

    /// Mutable access to an allocated slot.
    pub fn slot_mut(&mut self, idx: u32) -> &mut Slot {
        &mut self.slots[idx as usize]
    }

    /// Pool statistics.
    pub fn stats(&self) -> SlotPoolStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle() {
        let mut p = SlotPool::new(2, 4);
        let a = p.alloc(3).unwrap();
        let b = p.alloc(3).unwrap();
        assert_ne!(a, b);
        assert_eq!(p.available(), 0);
        assert_eq!(p.alloc(3), None);
        assert_eq!(p.stats().alloc_failures, 1);
        p.free(a);
        assert_eq!(p.available(), 1);
        let c = p.alloc(2).unwrap();
        assert_eq!(c, a); // LIFO reuse
        assert_eq!(p.stats().peak_in_use, 2);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut p = SlotPool::new(1, 4);
        let a = p.alloc(1).unwrap();
        p.free(a);
        p.free(a);
    }

    #[test]
    fn contribute_counts_and_completes() {
        let mut p = SlotPool::new(1, 2);
        let idx = p.alloc(3).unwrap();
        let s = p.slot_mut(idx);
        assert_eq!(s.contribute(0, &[1, 10]), Contribution::Pending);
        assert_eq!(s.contribute(1, &[2, 20]), Contribution::Pending);
        // Duplicate from worker 1 is rejected and does not advance count.
        assert_eq!(s.contribute(1, &[2, 20]), Contribution::Duplicate);
        assert_eq!(s.contribute(2, &[3, 30]), Contribution::Complete);
        assert_eq!(s.values, vec![6, 60]);
        assert_eq!(s.count, 3);
    }

    #[test]
    fn slot_reuse_resets_state() {
        let mut p = SlotPool::new(1, 2);
        let idx = p.alloc(1).unwrap();
        p.slot_mut(idx).contribute(0, &[7, 7]);
        p.free(idx);
        let idx2 = p.alloc(2).unwrap();
        assert_eq!(idx, idx2);
        let s = p.slot(idx2);
        assert_eq!(s.values, vec![0, 0]);
        assert_eq!(s.count, 0);
        assert_eq!(s.fanin, 2);
    }
}
