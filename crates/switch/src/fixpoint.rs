//! Fixed-point conversion for switch arithmetic.
//!
//! Tofino-class switches aggregate integers only. Like SwitchML, end hosts
//! scale floats by a power-of-two factor into `i32`, the switch adds them
//! with saturation, and receivers divide the factor back out. The scale is
//! a per-job constant negotiated by the control plane.

/// A fixed-point codec with a power-of-two scale factor.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FixPoint {
    /// log2 of the scaling factor (bits of fraction).
    pub frac_bits: u8,
}

impl Default for FixPoint {
    /// 16 fractional bits — SwitchML's default trade-off between range
    /// and precision for gradient/activation magnitudes.
    fn default() -> Self {
        FixPoint { frac_bits: 16 }
    }
}

impl FixPoint {
    /// Codec with `frac_bits` bits of fraction (≤ 30).
    pub fn new(frac_bits: u8) -> Self {
        assert!(frac_bits <= 30, "frac_bits out of range");
        FixPoint { frac_bits }
    }

    /// The scale factor `2^frac_bits`.
    #[inline]
    pub fn scale(&self) -> f64 {
        (1u64 << self.frac_bits) as f64
    }

    /// Encode one float, saturating at the i32 range.
    #[inline]
    pub fn encode(&self, v: f32) -> i32 {
        let x = (v as f64 * self.scale()).round();
        if x >= i32::MAX as f64 {
            i32::MAX
        } else if x <= i32::MIN as f64 {
            i32::MIN
        } else {
            x as i32
        }
    }

    /// Decode one fixed-point value.
    #[inline]
    pub fn decode(&self, v: i32) -> f32 {
        (v as f64 / self.scale()) as f32
    }

    /// Encode a vector.
    pub fn encode_vec(&self, vs: &[f32]) -> Vec<i32> {
        vs.iter().map(|&v| self.encode(v)).collect()
    }

    /// Decode a vector.
    pub fn decode_vec(&self, vs: &[i32]) -> Vec<f32> {
        vs.iter().map(|&v| self.decode(v)).collect()
    }

    /// The worst-case absolute quantization error of one encode/decode
    /// round trip (half a least-significant step).
    pub fn quantum(&self) -> f32 {
        (0.5 / self.scale()) as f32
    }
}

/// Saturating lane-wise accumulate: `acc[i] += add[i]` with i32 saturation
/// — the switch ALU operation.
pub fn saturating_add_assign(acc: &mut [i32], add: &[i32]) {
    debug_assert_eq!(acc.len(), add.len(), "lane count mismatch");
    for (a, &b) in acc.iter_mut().zip(add) {
        *a = a.saturating_add(b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_within_quantum() {
        let fp = FixPoint::default();
        for &v in &[0.0f32, 1.0, -1.0, std::f32::consts::PI, -123.456, 1e-4] {
            let got = fp.decode(fp.encode(v));
            assert!(
                (got - v).abs() <= fp.quantum() * 1.01,
                "{v} -> {got}, quantum {}",
                fp.quantum()
            );
        }
    }

    #[test]
    fn saturates_at_extremes() {
        let fp = FixPoint::new(16);
        assert_eq!(fp.encode(1e9), i32::MAX);
        assert_eq!(fp.encode(-1e9), i32::MIN);
    }

    #[test]
    fn vector_codec() {
        let fp = FixPoint::new(8);
        let v = vec![1.5f32, -2.25, 0.0];
        let enc = fp.encode_vec(&v);
        assert_eq!(enc, vec![384, -576, 0]);
        let dec = fp.decode_vec(&enc);
        assert_eq!(dec, v); // exactly representable at 8 frac bits
    }

    #[test]
    fn lane_accumulate_saturates() {
        let mut acc = vec![i32::MAX - 1, 5];
        saturating_add_assign(&mut acc, &[10, 7]);
        assert_eq!(acc, vec![i32::MAX, 12]);
    }

    #[test]
    fn aggregation_sum_matches_float_sum() {
        let fp = FixPoint::default();
        let a = vec![0.5f32, 1.25, -3.0];
        let b = vec![2.5f32, -0.25, 1.0];
        let mut acc = fp.encode_vec(&a);
        saturating_add_assign(&mut acc, &fp.encode_vec(&b));
        let sum = fp.decode_vec(&acc);
        for (s, (x, y)) in sum.iter().zip(a.iter().zip(&b)) {
            assert!((s - (x + y)).abs() <= 2.0 * fp.quantum());
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Decoding the switch-aggregated fixed-point sum of N worker
        /// vectors matches the float sum within N quanta (the INA
        /// correctness invariant).
        #[test]
        fn ina_sum_error_bound(
            vectors in proptest::collection::vec(
                proptest::collection::vec(-100.0f32..100.0, 8),
                1..8,
            )
        ) {
            let fp = FixPoint::default();
            let mut acc = vec![0i32; 8];
            for v in &vectors {
                saturating_add_assign(&mut acc, &fp.encode_vec(v));
            }
            let got = fp.decode_vec(&acc);
            for lane in 0..8 {
                let expect: f32 = vectors.iter().map(|v| v[lane]).sum();
                let bound = vectors.len() as f32 * fp.quantum() + 1e-3;
                prop_assert!(
                    (got[lane] - expect).abs() <= bound,
                    "lane {lane}: {} vs {expect}",
                    got[lane]
                );
            }
        }
    }
}
