//! # hs-switch — programmable-switch in-network aggregation model
//!
//! A software model of the Tofino INA dataplane the paper implements in
//! ~400 lines of P4 (§IV "Agent on Programmable Switches"), plus its
//! control plane:
//!
//! * [`fixpoint`] — switch ALUs have no floating point; gradients and
//!   activations are scaled into fixed-point `i32` before aggregation and
//!   rescaled on egress, with saturation (exactly what SwitchML does).
//! * [`aggregator`] — the aggregation memory: a pool of fixed-size
//!   aggregator slots spread across pipelines, each holding a partially
//!   aggregated vector and a contribution counter/bitmap.
//! * [`table`] — the exact-match `aggregation_table` mapping incoming INA
//!   packets (job, sequence window) to slots.
//! * [`dataplane`] — packet processing for the two INA disciplines the
//!   paper compares: **SwitchML-style synchronous** streaming (static slot
//!   window per job, lock-step rounds) and **ATP-style asynchronous**
//!   best-effort (dynamic slot allocation, fallback to end-host
//!   aggregation when the pool is exhausted).
//! * [`control`] — the central scheduler's view: admit/release jobs,
//!   poll hardware counters.
//!
//! The aggregation arithmetic is executed for real — integration tests
//! all-reduce actual vectors through the model and check the sums — while
//! the flow-level cluster simulation consumes only the *capacity* side
//! (slot admission, fallback, counters).

pub mod aggregator;
pub mod control;
pub mod dataplane;
pub mod fixpoint;
pub mod table;

pub use aggregator::{SlotPool, SlotPoolStats};
pub use control::{SwitchControl, SwitchCounters};
pub use dataplane::{
    AggMode, DataplaneAction, InaDataplane, InaPacket, JobConfig, JobId, WorkerId,
};
pub use fixpoint::FixPoint;
pub use table::AggregationTable;
