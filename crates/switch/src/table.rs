//! The exact-match `aggregation_table`.
//!
//! "`aggregation_table` is an exact-match table with keys based on the
//! port and an aggregator ID (or index) used to map incoming INA update
//! packets to corresponding aggregator slots" (§IV). In this model the
//! key is `(job, window index)` — the job id plays the role of the ingress
//! port group, and the window index is the aggregator ID carried in the
//! packet header.

use std::collections::BTreeMap;

/// A table key: which job, which in-flight aggregation window.
///
/// Ordered (`(job, window)` lexicographic) so table scans such as
/// [`AggregationTable::remove_job`] visit entries deterministically.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TableKey {
    /// The INA job (collective group) id.
    pub job: u32,
    /// Window index: `seq % window_size` for streaming aggregation.
    pub window: u32,
}

/// Exact-match mapping from packet keys to slot indices, with update
/// counters the control plane exposes ("high-speed updates of the
/// aggregation table entries via vendor-provided runtime libraries").
#[derive(Default, Debug)]
pub struct AggregationTable {
    entries: BTreeMap<TableKey, u32>,
    inserts: u64,
    removes: u64,
}

impl AggregationTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a mapping; returns the displaced slot if the key existed.
    pub fn insert(&mut self, key: TableKey, slot: u32) -> Option<u32> {
        self.inserts += 1;
        self.entries.insert(key, slot)
    }

    /// Look up the slot for a packet key.
    pub fn lookup(&self, key: TableKey) -> Option<u32> {
        self.entries.get(&key).copied()
    }

    /// Remove a mapping, returning the slot it pointed to.
    pub fn remove(&mut self, key: TableKey) -> Option<u32> {
        let r = self.entries.remove(&key);
        if r.is_some() {
            self.removes += 1;
        }
        r
    }

    /// Remove every entry belonging to `job`; returns the freed slots.
    pub fn remove_job(&mut self, job: u32) -> Vec<u32> {
        let keys: Vec<TableKey> = self
            .entries
            .keys()
            .filter(|k| k.job == job)
            .copied()
            .collect();
        let mut slots: Vec<u32> = keys.into_iter().filter_map(|k| self.remove(k)).collect();
        slots.sort_unstable();
        slots
    }

    /// Number of installed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are installed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime (inserts, removes) counters.
    pub fn update_counters(&self) -> (u64, u64) {
        (self.inserts, self.removes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_remove() {
        let mut t = AggregationTable::new();
        let k = TableKey { job: 1, window: 0 };
        assert_eq!(t.insert(k, 42), None);
        assert_eq!(t.lookup(k), Some(42));
        assert_eq!(t.insert(k, 43), Some(42));
        assert_eq!(t.remove(k), Some(43));
        assert_eq!(t.lookup(k), None);
        assert_eq!(t.update_counters(), (2, 1));
    }

    #[test]
    fn remove_job_clears_all_windows() {
        let mut t = AggregationTable::new();
        for w in 0..4 {
            t.insert(TableKey { job: 7, window: w }, 100 + w);
            t.insert(TableKey { job: 8, window: w }, 200 + w);
        }
        let freed = t.remove_job(7);
        assert_eq!(freed, vec![100, 101, 102, 103]);
        assert_eq!(t.len(), 4);
        assert!(t.lookup(TableKey { job: 8, window: 2 }).is_some());
    }

    #[test]
    fn missing_key_is_none() {
        let mut t = AggregationTable::new();
        assert!(t.is_empty());
        assert_eq!(t.lookup(TableKey { job: 0, window: 0 }), None);
        assert_eq!(t.remove(TableKey { job: 0, window: 0 }), None);
    }
}
