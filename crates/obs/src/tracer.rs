//! The `Tracer` handle threaded through every simulator layer.
//!
//! A tracer is either a no-op sink (the default: every emit is a single
//! branch on a `None` discriminant) or a shared in-memory buffer behind an
//! `Arc<Mutex<..>>` so that strategies boxed as `dyn CommStrategy + Send`
//! and the engine can record into the same stream. Simulations are
//! single-threaded per run, so the mutex is uncontended; it exists to make
//! the handle `Send + Sync` without unsafe code.

use std::sync::{Arc, Mutex};

use hs_des::SimTime;

use crate::event::{track, Ph, Record, Val};

/// Cloneable tracing handle. Clones share one buffer.
#[derive(Clone, Default)]
pub struct Tracer {
    sink: Option<Arc<Mutex<Vec<Record>>>>,
}

impl Tracer {
    /// A tracer that drops every event. This is the default everywhere a
    /// tracer is not explicitly attached.
    pub fn noop() -> Self {
        Tracer { sink: None }
    }

    /// A tracer that records events into a shared in-memory buffer.
    pub fn recording() -> Self {
        Tracer {
            sink: Some(Arc::new(Mutex::new(Vec::new()))),
        }
    }

    /// Whether events are being recorded. Call sites that need to build
    /// argument lists (allocation) should guard on this first.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Append a raw record. No-op when disabled.
    #[inline]
    pub fn emit(&self, rec: Record) {
        if let Some(sink) = &self.sink {
            crate::lock(sink).push(rec);
        }
    }

    /// Number of records collected so far.
    pub fn len(&self) -> usize {
        self.sink.as_ref().map_or(0, |s| crate::lock(s).len())
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all records collected so far.
    pub fn records(&self) -> Vec<Record> {
        self.sink
            .as_ref()
            .map_or_else(Vec::new, |s| crate::lock(s).clone())
    }

    /// Drain collected records, leaving the buffer empty.
    pub fn take(&self) -> Vec<Record> {
        self.sink
            .as_ref()
            .map_or_else(Vec::new, |s| std::mem::take(&mut *crate::lock(s)))
    }

    // ------------------------------------------------------------------
    // Generic span / instant / counter primitives.
    // ------------------------------------------------------------------

    pub fn begin(&self, t: SimTime, pid: u32, tid: u64, name: &'static str, cat: &'static str) {
        self.emit(Record {
            t,
            ph: Ph::Begin,
            name,
            cat,
            pid,
            tid,
            args: Vec::new(),
        });
    }

    pub fn end(&self, t: SimTime, pid: u32, tid: u64, name: &'static str, cat: &'static str) {
        self.emit(Record {
            t,
            ph: Ph::End,
            name,
            cat,
            pid,
            tid,
            args: Vec::new(),
        });
    }

    pub fn instant(
        &self,
        t: SimTime,
        pid: u32,
        tid: u64,
        name: &'static str,
        cat: &'static str,
        args: Vec<(&'static str, Val)>,
    ) {
        self.emit(Record {
            t,
            ph: Ph::Instant,
            name,
            cat,
            pid,
            tid,
            args,
        });
    }

    pub fn counter(&self, t: SimTime, pid: u32, tid: u64, name: &'static str, value: f64) {
        self.emit(Record {
            t,
            ph: Ph::Counter,
            name,
            cat: "counter",
            pid,
            tid,
            args: vec![("value", Val::F64(value))],
        });
    }

    // ------------------------------------------------------------------
    // Request lifecycle: arrival → queued → prefill → kv_transfer → decode.
    // ------------------------------------------------------------------

    pub fn request_arrived(&self, t: SimTime, req: u64, input_tokens: u32, output_tokens: u32) {
        if !self.is_enabled() {
            return;
        }
        self.instant(
            t,
            track::REQUESTS,
            req,
            "arrival",
            "req",
            vec![
                ("input_tokens", Val::U64(input_tokens as u64)),
                ("output_tokens", Val::U64(output_tokens as u64)),
            ],
        );
    }

    /// Begin a lifecycle phase span; `phase` is one of `"queued"`,
    /// `"prefill"`, `"kv_transfer"`, `"decode"`.
    pub fn request_phase_begin(&self, t: SimTime, req: u64, phase: &'static str) {
        self.begin(t, track::REQUESTS, req, phase, "req");
    }

    pub fn request_phase_end(&self, t: SimTime, req: u64, phase: &'static str) {
        self.end(t, track::REQUESTS, req, phase, "req");
    }

    pub fn request_done(&self, t: SimTime, req: u64, ttft_s: f64, latency_s: f64) {
        if !self.is_enabled() {
            return;
        }
        self.instant(
            t,
            track::REQUESTS,
            req,
            "done",
            "req",
            vec![
                ("ttft_s", Val::F64(ttft_s)),
                ("latency_s", Val::F64(latency_s)),
            ],
        );
    }

    // ------------------------------------------------------------------
    // Collectives.
    // ------------------------------------------------------------------

    pub fn collective_begin(
        &self,
        t: SimTime,
        coll: u64,
        group: u64,
        kind: &'static str,
        scheme: Option<&'static str>,
        bytes: u64,
    ) {
        if !self.is_enabled() {
            return;
        }
        let mut args = vec![("group", Val::U64(group)), ("bytes", Val::U64(bytes))];
        if let Some(s) = scheme {
            args.push(("scheme", Val::Str(s.to_owned())));
        }
        self.emit(Record {
            t,
            ph: Ph::Begin,
            name: kind,
            cat: "coll",
            pid: track::COLLECTIVES,
            tid: coll,
            args,
        });
    }

    pub fn collective_end(&self, t: SimTime, coll: u64, kind: &'static str) {
        self.end(t, track::COLLECTIVES, coll, kind, "coll");
    }

    /// A collective lost flows to a fault and will be relaunched.
    pub fn collective_abort(&self, t: SimTime, coll: u64, lost_flows: usize) {
        if !self.is_enabled() {
            return;
        }
        self.instant(
            t,
            track::COLLECTIVES,
            coll,
            "abort",
            "coll",
            vec![("lost_flows", Val::U64(lost_flows as u64))],
        );
    }

    // ------------------------------------------------------------------
    // Online-scheduler policy audit (Eqs. 16-18).
    // ------------------------------------------------------------------

    /// One `select()` decision: the chosen scheme, its Eq. 16 objective
    /// `J = b_c + δ`, how many candidates were scored, and how many were
    /// skipped because they crossed a dead link.
    #[allow(clippy::too_many_arguments)]
    pub fn policy_selected(
        &self,
        t: SimTime,
        group: u64,
        scheme: &'static str,
        j: f64,
        delta: f64,
        candidates: usize,
        dead_skipped: usize,
        bytes: u64,
    ) {
        if !self.is_enabled() {
            return;
        }
        self.instant(
            t,
            track::SCHEDULER,
            group,
            "policy_select",
            "policy",
            vec![
                ("scheme", Val::Str(scheme.to_owned())),
                ("j", Val::F64(j)),
                ("delta", Val::F64(delta)),
                ("candidates", Val::U64(candidates as u64)),
                ("dead_skipped", Val::U64(dead_skipped as u64)),
                ("bytes", Val::U64(bytes)),
            ],
        );
    }

    /// A `charge()` application (Eq. 17): virtual cost added to the chosen
    /// policy and the resulting maximum `b` in the table.
    pub fn policy_charged(&self, t: SimTime, group: u64, chosen: usize, delta: f64, max_b: f64) {
        if !self.is_enabled() {
            return;
        }
        self.instant(
            t,
            track::SCHEDULER,
            group,
            "policy_charge",
            "policy",
            vec![
                ("chosen", Val::U64(chosen as u64)),
                ("delta", Val::F64(delta)),
                ("max_b", Val::F64(max_b)),
            ],
        );
    }

    /// A control-plane `refresh()` poll (Eq. 18 smoothing) over one table.
    pub fn table_refreshed(&self, t: SimTime, group: u64, max_b: f64) {
        if !self.is_enabled() {
            return;
        }
        self.instant(
            t,
            track::SCHEDULER,
            group,
            "table_refresh",
            "policy",
            vec![("max_b", Val::F64(max_b))],
        );
    }

    // ------------------------------------------------------------------
    // Faults.
    // ------------------------------------------------------------------

    /// A fault-plan event fired; `recovered = false` for injection,
    /// `true` for recovery.
    pub fn fault(&self, t: SimTime, desc: String, recovered: bool) {
        if !self.is_enabled() {
            return;
        }
        self.instant(
            t,
            track::FAULTS,
            0,
            if recovered { "recover" } else { "inject" },
            "fault",
            vec![("what", Val::Str(desc))],
        );
    }

    /// A retried transfer or collective found a path avoiding dead links.
    pub fn reroute(&self, t: SimTime, tid: u64, delay_s: f64) {
        if !self.is_enabled() {
            return;
        }
        self.instant(
            t,
            track::FAULTS,
            tid,
            "reroute",
            "fault",
            vec![("delay_s", Val::F64(delay_s))],
        );
    }

    // ------------------------------------------------------------------
    // KV-cache transfers (prefill→decode shipment, Eq. 14-15).
    // ------------------------------------------------------------------

    /// A KV shipment launched: full byte volume, stripe count (Eq. 15
    /// parallel TP pairs), source/chosen instances, and the selector's
    /// transfer-time estimate (audited against the realized time at
    /// [`kv_transfer_end`](Self::kv_transfer_end)).
    #[allow(clippy::too_many_arguments)]
    pub fn kv_transfer_begin(
        &self,
        t: SimTime,
        req: u64,
        src_instance: u64,
        dst_instance: u64,
        bytes: u64,
        stripes: usize,
        est_s: f64,
    ) {
        if !self.is_enabled() {
            return;
        }
        self.emit(Record {
            t,
            ph: Ph::Begin,
            name: "kv_flow",
            cat: "kv",
            pid: track::KV,
            tid: req,
            args: vec![
                ("src_instance", Val::U64(src_instance)),
                ("dst_instance", Val::U64(dst_instance)),
                ("bytes", Val::U64(bytes)),
                ("stripes", Val::U64(stripes as u64)),
                ("est_s", Val::F64(est_s)),
            ],
        });
    }

    /// All stripes of a KV shipment drained: realized transfer time, the
    /// admission-time estimate, and how many fault-induced retries it took.
    pub fn kv_transfer_end(&self, t: SimTime, req: u64, actual_s: f64, est_s: f64, retries: u32) {
        if !self.is_enabled() {
            return;
        }
        self.emit(Record {
            t,
            ph: Ph::End,
            name: "kv_flow",
            cat: "kv",
            pid: track::KV,
            tid: req,
            args: vec![
                ("actual_s", Val::F64(actual_s)),
                ("est_s", Val::F64(est_s)),
                ("retries", Val::U64(retries as u64)),
            ],
        });
    }

    /// A fault aborted KV stripes; the whole shipment relaunches after the
    /// backoff from its true source.
    pub fn kv_retry(&self, t: SimTime, req: u64, attempt: u32, lost_stripes: usize) {
        if !self.is_enabled() {
            return;
        }
        self.instant(
            t,
            track::KV,
            req,
            "kv_retry",
            "kv",
            vec![
                ("attempt", Val::U64(attempt as u64)),
                ("lost_stripes", Val::U64(lost_stripes as u64)),
            ],
        );
    }

    // ------------------------------------------------------------------
    // Autoscaling (elastic P/D pools, DESIGN.md §13).
    // ------------------------------------------------------------------

    /// The controller changed a pool target: which pool, the old and new
    /// Active counts, and the signal that triggered it.
    pub fn autoscale_decision(
        &self,
        t: SimTime,
        pool: &'static str,
        from: usize,
        to: usize,
        reason: &'static str,
    ) {
        if !self.is_enabled() {
            return;
        }
        self.instant(
            t,
            track::AUTOSCALE,
            0,
            if to > from { "scale_up" } else { "scale_down" },
            "autoscale",
            vec![
                ("pool", Val::Str(pool.to_owned())),
                ("from", Val::U64(from as u64)),
                ("to", Val::U64(to as u64)),
                ("reason", Val::Str(reason.to_owned())),
            ],
        );
    }

    /// A draining instance finished its in-flight work and parked.
    pub fn autoscale_parked(&self, t: SimTime, instance: u64, pool: &'static str) {
        if !self.is_enabled() {
            return;
        }
        self.instant(
            t,
            track::AUTOSCALE,
            0,
            "parked",
            "autoscale",
            vec![
                ("instance", Val::U64(instance)),
                ("pool", Val::Str(pool.to_owned())),
            ],
        );
    }

    /// Sampled Active-instance counts (Chrome counter tracks: tid 1 =
    /// prefill, tid 2 = decode).
    pub fn autoscale_pools(&self, t: SimTime, prefill_active: usize, decode_active: usize) {
        if !self.is_enabled() {
            return;
        }
        self.counter(
            t,
            track::AUTOSCALE,
            1,
            "prefill_active",
            prefill_active as f64,
        );
        self.counter(
            t,
            track::AUTOSCALE,
            2,
            "decode_active",
            decode_active as f64,
        );
    }

    // ------------------------------------------------------------------
    // Network (hs-simnet).
    // ------------------------------------------------------------------

    pub fn flow_start(&self, t: SimTime, flow: u64, tag: u64, bytes: u64, hops: usize) {
        if !self.is_enabled() {
            return;
        }
        self.instant(
            t,
            track::NETWORK,
            flow,
            "flow_start",
            "net",
            vec![
                ("tag", Val::U64(tag)),
                ("bytes", Val::U64(bytes)),
                ("hops", Val::U64(hops as u64)),
            ],
        );
    }

    pub fn flow_abort(&self, t: SimTime, flow: u64, reason: &'static str) {
        if !self.is_enabled() {
            return;
        }
        self.instant(
            t,
            track::NETWORK,
            flow,
            "flow_abort",
            "net",
            vec![("reason", Val::Str(reason.to_owned()))],
        );
    }

    /// A link capacity rescale (fault inject/recover); flows crossing the
    /// link were re-rated, `aborted` of them fatally.
    pub fn link_scale(&self, t: SimTime, link: u64, factor: f64, rerated: usize, aborted: usize) {
        if !self.is_enabled() {
            return;
        }
        self.instant(
            t,
            track::NETWORK,
            link,
            "link_scale",
            "net",
            vec![
                ("factor", Val::F64(factor)),
                ("rerated", Val::U64(rerated as u64)),
                ("aborted", Val::U64(aborted as u64)),
            ],
        );
    }

    /// Sampled EWMA utilization for one link (Chrome counter track).
    pub fn link_util(&self, t: SimTime, link: u64, util: f64) {
        self.counter(t, track::NETWORK, link, "link_util", util);
    }

    // ------------------------------------------------------------------
    // INA switch sessions (hs-switch).
    // ------------------------------------------------------------------

    pub fn ina_session_begin(&self, t: SimTime, switch: u64, job: u64, slots: u32) {
        if !self.is_enabled() {
            return;
        }
        self.emit(Record {
            t,
            ph: Ph::Begin,
            name: "ina_session",
            cat: "ina",
            pid: track::SWITCH,
            tid: switch,
            args: vec![("job", Val::U64(job)), ("slots", Val::U64(slots as u64))],
        });
    }

    pub fn ina_session_end(&self, t: SimTime, switch: u64, job: u64) {
        if !self.is_enabled() {
            return;
        }
        self.emit(Record {
            t,
            ph: Ph::End,
            name: "ina_session",
            cat: "ina",
            pid: track::SWITCH,
            tid: switch,
            args: vec![("job", Val::U64(job))],
        });
    }

    /// The dataplane punted a packet to the host fallback path.
    pub fn ina_fallback(&self, t: SimTime, switch: u64, job: u64) {
        if !self.is_enabled() {
            return;
        }
        self.instant(
            t,
            track::SWITCH,
            switch,
            "ina_fallback",
            "ina",
            vec![("job", Val::U64(job))],
        );
    }

    /// Free-form warning (clock clamps, degraded modes, ...).
    pub fn warning(&self, t: SimTime, msg: String) {
        if !self.is_enabled() {
            return;
        }
        self.instant(
            t,
            track::FAULTS,
            0,
            "warning",
            "warn",
            vec![("msg", Val::Str(msg))],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_tracer_records_nothing() {
        let tr = Tracer::noop();
        tr.request_arrived(SimTime::from_secs(1), 7, 128, 64);
        tr.policy_selected(SimTime::from_secs(1), 0, "HierIna", 0.5, 0.1, 4, 1, 1 << 20);
        assert!(!tr.is_enabled());
        assert!(tr.records().is_empty());
        assert_eq!(tr.len(), 0);
    }

    #[test]
    fn clones_share_one_buffer() {
        let tr = Tracer::recording();
        let other = tr.clone();
        tr.request_arrived(SimTime::ZERO, 1, 10, 10);
        other.request_done(SimTime::from_secs(2), 1, 0.5, 2.0);
        assert_eq!(tr.len(), 2);
        let recs = tr.records();
        assert_eq!(recs[0].name, "arrival");
        assert_eq!(recs[1].name, "done");
        assert_eq!(recs[1].arg("ttft_s").and_then(Val::as_f64), Some(0.5));
    }

    #[test]
    fn spans_pair_begin_end_on_same_track() {
        let tr = Tracer::recording();
        tr.request_phase_begin(SimTime::from_millis(5), 3, "prefill");
        tr.request_phase_end(SimTime::from_millis(9), 3, "prefill");
        let recs = tr.records();
        assert_eq!(recs[0].ph, Ph::Begin);
        assert_eq!(recs[1].ph, Ph::End);
        assert_eq!((recs[0].pid, recs[0].tid), (recs[1].pid, recs[1].tid));
    }

    #[test]
    fn take_drains_buffer() {
        let tr = Tracer::recording();
        tr.warning(SimTime::ZERO, "x".into());
        assert_eq!(tr.take().len(), 1);
        assert!(tr.is_empty());
    }
}
