//! The generic trace record all typed tracer methods lower into.
//!
//! Records deliberately mirror the Chrome trace-event model (phase + name +
//! category + process/thread coordinates + args) so the exporter is a plain
//! mapping, while staying self-describing enough for the JSONL log.

use hs_des::SimTime;

/// Event phase, a subset of the Chrome trace-event phases the simulators
/// need: duration spans are `Begin`/`End` pairs on the same `(pid, tid)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Ph {
    /// Span start (`"B"`).
    Begin,
    /// Span end (`"E"`).
    End,
    /// Point event (`"i"`).
    Instant,
    /// Sampled counter value (`"C"`).
    Counter,
}

impl Ph {
    /// The Chrome trace-event `ph` string.
    pub fn chrome(self) -> &'static str {
        match self {
            Ph::Begin => "B",
            Ph::End => "E",
            Ph::Instant => "i",
            Ph::Counter => "C",
        }
    }
}

/// Typed argument value attached to a record.
#[derive(Clone, Debug, PartialEq)]
pub enum Val {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
}

impl Val {
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Val::U64(v) => Some(*v as f64),
            Val::I64(v) => Some(*v as f64),
            Val::F64(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Val::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Well-known process ids: each simulator layer gets its own top-level group
/// in the Chrome trace viewer, with per-entity tracks (`tid`) inside it.
pub mod track {
    /// Request lifecycle spans; `tid` = request id.
    pub const REQUESTS: u32 = 1;
    /// Collective operations; `tid` = collective id.
    pub const COLLECTIVES: u32 = 2;
    /// Network flow + link events; `tid` = flow or link id.
    pub const NETWORK: u32 = 3;
    /// Online-scheduler policy audit; `tid` = policy-group id.
    pub const SCHEDULER: u32 = 4;
    /// In-network aggregation sessions; `tid` = switch id.
    pub const SWITCH: u32 = 5;
    /// Fault injection / recovery / reroute; `tid` = 0.
    pub const FAULTS: u32 = 6;
    /// KV-cache transfer flows (prefill→decode shipment); `tid` = request id.
    pub const KV: u32 = 7;
    /// Autoscaler decisions and pool-size counters; `tid` = 0 for
    /// decisions, 1/2 for the prefill/decode pool-size tracks.
    pub const AUTOSCALE: u32 = 8;

    /// Human-readable name for a process id (used for trace metadata).
    pub fn name(pid: u32) -> &'static str {
        match pid {
            REQUESTS => "requests",
            COLLECTIVES => "collectives",
            NETWORK => "network",
            SCHEDULER => "scheduler",
            SWITCH => "switch",
            FAULTS => "faults",
            KV => "kv_transfer",
            AUTOSCALE => "autoscale",
            _ => "other",
        }
    }

    /// All process ids the exporter should label.
    pub const ALL: [u32; 8] = [
        REQUESTS,
        COLLECTIVES,
        NETWORK,
        SCHEDULER,
        SWITCH,
        FAULTS,
        KV,
        AUTOSCALE,
    ];
}

/// One structured trace event.
#[derive(Clone, Debug, PartialEq)]
pub struct Record {
    /// Simulation timestamp.
    pub t: SimTime,
    pub ph: Ph,
    /// Event name; static so hot paths never allocate for the common case.
    pub name: &'static str,
    /// Category tag (e.g. `"req"`, `"coll"`, `"net"`, `"policy"`).
    pub cat: &'static str,
    /// Process-level group, one of the [`track`] constants.
    pub pid: u32,
    /// Track within the group (request id, collective id, link id, ...).
    pub tid: u64,
    pub args: Vec<(&'static str, Val)>,
}

impl Record {
    /// Look up an argument by key.
    pub fn arg(&self, key: &str) -> Option<&Val> {
        self.args.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}
