//! Structured tracing and metrics for the DES clock domain.
//!
//! Every simulator layer (network flows, cluster engine, online scheduler,
//! INA switches) emits typed events through a shared [`Tracer`] handle. The
//! tracer is a thin enum over a no-op sink and a shared in-memory buffer, so
//! it is cheap enough to thread everywhere by default: a disabled tracer is
//! one `Option` discriminant check per call site and allocates nothing.
//!
//! Collected records export two ways:
//! - [`export::chrome_trace`]: Chrome-trace JSON loadable in
//!   `chrome://tracing` or <https://ui.perfetto.dev>.
//! - [`export::jsonl`]: one compact JSON object per line for ad-hoc grep /
//!   pandas analysis.
//!
//! [`MetricsRegistry`] complements the event stream with counters, gauges,
//! fixed-bucket histograms, periodic snapshots, and a per-link utilization
//! time series sampled from `hs-simnet`'s monitor.

pub mod event;
pub mod export;
pub mod metrics;
pub mod tracer;

/// Acquire `m`, recovering the data if a previous holder panicked.
///
/// Observability must never turn a simulation panic into a second,
/// unrelated poisoned-lock panic (e.g. a drop-time metrics flush while
/// the first panic unwinds). Every store operation completes atomically
/// under the lock — appends and in-place scalar updates — so the data is
/// structurally intact even when a holder unwound mid-turn.
pub(crate) fn lock<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

pub use event::{track, Ph, Record, Val};
pub use export::{chrome_trace, jsonl};
pub use metrics::{
    CounterId, GaugeId, HistogramId, HistogramView, LinkUtilSample, MetricsRegistry, Snapshot,
};
pub use tracer::Tracer;
