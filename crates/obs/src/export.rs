//! Trace exporters: Chrome trace-event JSON and compact JSONL.
//!
//! The Chrome format is the object form `{"traceEvents": [...]}` with
//! timestamps in microseconds, loadable in `chrome://tracing` and Perfetto.
//! Process-name metadata events label each simulator layer's group. The
//! writers build JSON by hand so this crate stays dependency-free; the CI
//! round-trip test parses the output back with the workspace `serde_json`.

use std::fmt::Write as _;

use crate::event::{track, Ph, Record, Val};

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        // JSON has no Inf/NaN.
        out.push_str("null");
    }
}

fn write_val(out: &mut String, v: &Val) {
    match v {
        Val::U64(x) => {
            let _ = write!(out, "{x}");
        }
        Val::I64(x) => {
            let _ = write!(out, "{x}");
        }
        Val::F64(x) => write_f64(out, *x),
        Val::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Val::Str(s) => escape_into(out, s),
    }
}

fn write_args(out: &mut String, args: &[(&'static str, Val)]) {
    out.push('{');
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        escape_into(out, k);
        out.push(':');
        write_val(out, v);
    }
    out.push('}');
}

/// Render records as a Chrome trace-event JSON document.
pub fn chrome_trace(records: &[Record]) -> String {
    let mut out = String::with_capacity(64 + records.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    // Label each layer's process so the viewer shows names, not bare pids.
    for pid in track::ALL {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            track::name(pid)
        );
    }
    for rec in records {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("{\"name\":");
        escape_into(&mut out, rec.name);
        out.push_str(",\"cat\":");
        escape_into(&mut out, rec.cat);
        let _ = write!(out, ",\"ph\":\"{}\",\"ts\":", rec.ph.chrome());
        write_f64(&mut out, rec.t.as_micros_f64());
        let _ = write!(out, ",\"pid\":{},\"tid\":{}", rec.pid, rec.tid);
        if rec.ph == Ph::Instant {
            // Thread-scoped instants render as arrows on their track.
            out.push_str(",\"s\":\"t\"");
        }
        out.push_str(",\"args\":");
        write_args(&mut out, &rec.args);
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Render records as JSONL: one compact object per line with nanosecond
/// timestamps (exact, unlike the microsecond floats in the Chrome export).
pub fn jsonl(records: &[Record]) -> String {
    let mut out = String::with_capacity(records.len() * 80);
    for rec in records {
        let _ = write!(
            out,
            "{{\"t_ns\":{},\"ph\":\"{}\",\"name\":",
            rec.t.as_nanos(),
            rec.ph.chrome()
        );
        escape_into(&mut out, rec.name);
        out.push_str(",\"cat\":");
        escape_into(&mut out, rec.cat);
        let _ = write!(out, ",\"pid\":{},\"tid\":{},\"args\":", rec.pid, rec.tid);
        write_args(&mut out, &rec.args);
        out.push_str("}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::Tracer;
    use hs_des::SimTime;

    fn sample_records() -> Vec<Record> {
        let tr = Tracer::recording();
        tr.request_arrived(SimTime::from_millis(1), 42, 128, 16);
        tr.request_phase_begin(SimTime::from_millis(1), 42, "queued");
        tr.request_phase_end(SimTime::from_millis(3), 42, "queued");
        tr.policy_selected(
            SimTime::from_millis(2),
            9,
            "HierIna",
            0.625,
            0.125,
            4,
            1,
            1 << 20,
        );
        tr.link_util(SimTime::from_millis(4), 3, 0.75);
        tr.warning(SimTime::from_millis(5), "clock \"clamp\"\n".into());
        tr.records()
    }

    #[test]
    fn chrome_trace_round_trips_through_serde_json() {
        let doc = chrome_trace(&sample_records());
        let v = serde_json::from_str(&doc).expect("exporter must emit valid JSON");
        let events = v.get("traceEvents").and_then(|e| e.as_array()).unwrap();
        // 8 process_name metadata records (one per named track) + 6
        // sample records.
        assert_eq!(events.len(), 14);
        let select = events
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("policy_select"))
            .expect("policy_select event present");
        assert_eq!(
            select
                .get("args")
                .and_then(|a| a.get("j"))
                .and_then(|j| j.as_f64()),
            Some(0.625)
        );
        assert_eq!(select.get("ph").and_then(|p| p.as_str()), Some("i"));
        // Timestamps are microseconds.
        assert_eq!(select.get("ts").and_then(|t| t.as_f64()), Some(2000.0));
    }

    #[test]
    fn jsonl_emits_one_valid_object_per_line() {
        let recs = sample_records();
        let doc = jsonl(&recs);
        let lines: Vec<&str> = doc.lines().collect();
        assert_eq!(lines.len(), recs.len());
        for line in lines {
            serde_json::from_str(line).expect("each JSONL line parses");
        }
    }

    #[test]
    fn empty_trace_is_still_valid_json() {
        let doc = chrome_trace(&[]);
        let v = serde_json::from_str(&doc).unwrap();
        // Only the metadata labels remain.
        assert_eq!(
            v.get("traceEvents")
                .and_then(|e| e.as_array())
                .unwrap()
                .len(),
            track::ALL.len()
        );
        assert!(jsonl(&[]).is_empty());
    }
}
