//! Metrics registry: counters, gauges, fixed-bucket histograms, periodic
//! snapshots, and the per-link utilization time series.
//!
//! Like [`crate::Tracer`], the registry is a cloneable handle over an
//! optional shared store: a disabled registry costs one branch per update
//! and records nothing. Metric ids are plain indices handed out at
//! registration; re-registering a name returns the existing id, so layers
//! can register independently without coordinating.

use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use hs_des::SimTime;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterId(usize);

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GaugeId(usize);

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramId(usize);

struct Histogram {
    name: String,
    /// Upper bounds of the first `bounds.len()` buckets; one overflow
    /// bucket follows.
    bounds: Vec<f64>,
    counts: Vec<u64>,
    total: u64,
    sum: f64,
}

/// Read-only view of one histogram's state.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramView {
    pub name: String,
    pub bounds: Vec<f64>,
    /// `bounds.len() + 1` entries; the last is the overflow bucket.
    pub counts: Vec<u64>,
    pub total: u64,
    pub sum: f64,
}

/// Point-in-time copy of every counter and gauge.
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    pub t: SimTime,
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
}

/// One sample of per-link EWMA utilization from the network monitor.
#[derive(Clone, Debug, PartialEq)]
pub struct LinkUtilSample {
    pub t: SimTime,
    pub util: Vec<f64>,
}

#[derive(Default)]
struct Store {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    histograms: Vec<Histogram>,
    snapshots: Vec<Snapshot>,
    link_util: Vec<LinkUtilSample>,
}

/// Cloneable metrics handle. Clones share one store.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    store: Option<Arc<Mutex<Store>>>,
}

impl MetricsRegistry {
    /// A registry that drops every update.
    pub fn disabled() -> Self {
        MetricsRegistry { store: None }
    }

    /// A registry that records into a shared store.
    pub fn recording() -> Self {
        MetricsRegistry {
            store: Some(Arc::new(Mutex::new(Store::default()))),
        }
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.store.is_some()
    }

    /// Register (or look up) a counter. Disabled registries hand out a
    /// dummy id whose updates are dropped.
    pub fn counter(&self, name: &str) -> CounterId {
        let Some(store) = &self.store else {
            return CounterId(usize::MAX);
        };
        let mut s = crate::lock(store);
        if let Some(i) = s.counters.iter().position(|(n, _)| n == name) {
            return CounterId(i);
        }
        s.counters.push((name.to_owned(), 0));
        CounterId(s.counters.len() - 1)
    }

    pub fn gauge(&self, name: &str) -> GaugeId {
        let Some(store) = &self.store else {
            return GaugeId(usize::MAX);
        };
        let mut s = crate::lock(store);
        if let Some(i) = s.gauges.iter().position(|(n, _)| n == name) {
            return GaugeId(i);
        }
        s.gauges.push((name.to_owned(), 0.0));
        GaugeId(s.gauges.len() - 1)
    }

    /// Register a histogram with the given finite bucket upper bounds
    /// (ascending); an overflow bucket is added implicitly.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> HistogramId {
        let Some(store) = &self.store else {
            return HistogramId(usize::MAX);
        };
        let mut s = crate::lock(store);
        if let Some(i) = s.histograms.iter().position(|h| h.name == name) {
            return HistogramId(i);
        }
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds ascending");
        s.histograms.push(Histogram {
            name: name.to_owned(),
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            total: 0,
            sum: 0.0,
        });
        HistogramId(s.histograms.len() - 1)
    }

    pub fn inc(&self, id: CounterId, by: u64) {
        if let Some(store) = &self.store {
            let mut s = crate::lock(store);
            if let Some((_, v)) = s.counters.get_mut(id.0) {
                *v = v.saturating_add(by);
            }
        }
    }

    pub fn set_gauge(&self, id: GaugeId, value: f64) {
        if let Some(store) = &self.store {
            let mut s = crate::lock(store);
            if let Some((_, v)) = s.gauges.get_mut(id.0) {
                *v = value;
            }
        }
    }

    pub fn observe(&self, id: HistogramId, value: f64) {
        if let Some(store) = &self.store {
            let mut s = crate::lock(store);
            if let Some(h) = s.histograms.get_mut(id.0) {
                let bucket = h
                    .bounds
                    .iter()
                    .position(|&b| value <= b)
                    .unwrap_or(h.bounds.len());
                h.counts[bucket] += 1;
                h.total += 1;
                if value.is_finite() {
                    h.sum += value;
                }
            }
        }
    }

    /// Record a point-in-time copy of all counters and gauges.
    pub fn snapshot(&self, t: SimTime) {
        if let Some(store) = &self.store {
            let mut s = crate::lock(store);
            let snap = Snapshot {
                t,
                counters: s.counters.clone(),
                gauges: s.gauges.clone(),
            };
            s.snapshots.push(snap);
        }
    }

    /// Append one per-link utilization sample (from `hs-simnet`'s monitor).
    pub fn record_link_util(&self, t: SimTime, util: &[f64]) {
        if let Some(store) = &self.store {
            crate::lock(store).link_util.push(LinkUtilSample {
                t,
                util: util.to_vec(),
            });
        }
    }

    pub fn counter_value(&self, name: &str) -> Option<u64> {
        let store = self.store.as_ref()?;
        let s = crate::lock(store);
        s.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        let store = self.store.as_ref()?;
        let s = crate::lock(store);
        s.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    pub fn histogram_view(&self, name: &str) -> Option<HistogramView> {
        let store = self.store.as_ref()?;
        let s = crate::lock(store);
        s.histograms
            .iter()
            .find(|h| h.name == name)
            .map(|h| HistogramView {
                name: h.name.clone(),
                bounds: h.bounds.clone(),
                counts: h.counts.clone(),
                total: h.total,
                sum: h.sum,
            })
    }

    pub fn snapshots(&self) -> Vec<Snapshot> {
        self.store
            .as_ref()
            .map_or_else(Vec::new, |s| crate::lock(s).snapshots.clone())
    }

    pub fn link_util_series(&self) -> Vec<LinkUtilSample> {
        self.store
            .as_ref()
            .map_or_else(Vec::new, |s| crate::lock(s).link_util.clone())
    }

    /// Dump the registry (current values, snapshots, link-util series) as a
    /// JSON document, for writing next to a trace file.
    pub fn to_json(&self) -> String {
        let Some(store) = &self.store else {
            return "{}".to_owned();
        };
        let s = crate::lock(store);
        let mut out = String::from("{\"counters\":{");
        for (i, (n, v)) in s.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{n}\":{v}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (n, v)) in s.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let v = if v.is_finite() { *v } else { 0.0 };
            let _ = write!(out, "\"{n}\":{v}");
        }
        out.push_str("},\"histograms\":[");
        for (i, h) in s.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"name\":\"{}\",\"bounds\":[", h.name);
            for (j, b) in h.bounds.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{b}");
            }
            out.push_str("],\"counts\":[");
            for (j, c) in h.counts.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{c}");
            }
            let _ = write!(out, "],\"total\":{},\"sum\":{}}}", h.total, h.sum);
        }
        out.push_str("],\"link_util\":[");
        for (i, sample) in s.link_util.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"t_s\":{},\"util\":[", sample.t.as_secs_f64());
            for (j, u) in sample.util.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let u = if u.is_finite() { *u } else { 0.0 };
                let _ = write!(out, "{u}");
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_drops_everything() {
        let m = MetricsRegistry::disabled();
        let c = m.counter("requests");
        m.inc(c, 5);
        m.snapshot(SimTime::ZERO);
        m.record_link_util(SimTime::ZERO, &[0.5]);
        assert!(!m.is_enabled());
        assert_eq!(m.counter_value("requests"), None);
        assert!(m.snapshots().is_empty());
        assert!(m.link_util_series().is_empty());
        assert_eq!(m.to_json(), "{}");
    }

    #[test]
    fn registry_survives_a_poisoned_lock() {
        // A panic while holding the store lock (e.g. a simulation panic
        // unwinding through an instrumented call) must not cascade into
        // poisoned-lock panics from every later metrics call — that
        // would mask the original failure.
        let m = MetricsRegistry::recording();
        let c = m.counter("events");
        m.inc(c, 2);
        let store = m.store.clone().expect("recording registry has a store");
        std::thread::spawn(move || {
            let _guard = store.lock().expect("first holder acquires cleanly");
            panic!("poison the store lock");
        })
        .join()
        .expect_err("the poisoning thread panics");
        // Reads and writes keep working on the intact data.
        assert_eq!(m.counter_value("events"), Some(2));
        m.inc(c, 3);
        assert_eq!(m.counter_value("events"), Some(5));
    }

    #[test]
    fn counters_and_gauges_register_once() {
        let m = MetricsRegistry::recording();
        let a = m.counter("arrivals");
        let a2 = m.counter("arrivals");
        assert_eq!(a, a2);
        m.inc(a, 2);
        m.inc(a2, 3);
        assert_eq!(m.counter_value("arrivals"), Some(5));

        let g = m.gauge("inflight");
        m.set_gauge(g, 7.5);
        assert_eq!(m.gauge_value("inflight"), Some(7.5));
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let m = MetricsRegistry::recording();
        let h = m.histogram("ttft_s", &[0.1, 0.5, 1.0]);
        for v in [0.05, 0.1, 0.3, 2.0, 9.0] {
            m.observe(h, v);
        }
        let view = m.histogram_view("ttft_s").unwrap();
        assert_eq!(view.counts, vec![2, 1, 0, 2]);
        assert_eq!(view.total, 5);
        assert!((view.sum - 11.45).abs() < 1e-9);
    }

    #[test]
    fn snapshots_capture_series() {
        let m = MetricsRegistry::recording();
        let c = m.counter("done");
        m.snapshot(SimTime::from_secs(1));
        m.inc(c, 4);
        m.snapshot(SimTime::from_secs(2));
        let snaps = m.snapshots();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].counters[0].1, 0);
        assert_eq!(snaps[1].counters[0].1, 4);
        assert!(snaps[0].t < snaps[1].t);
    }

    #[test]
    fn link_util_series_preserved_in_order() {
        let m = MetricsRegistry::recording();
        m.record_link_util(SimTime::from_secs(1), &[0.1, 0.2]);
        m.record_link_util(SimTime::from_secs(2), &[0.3, 0.4]);
        let series = m.link_util_series();
        assert_eq!(series.len(), 2);
        assert_eq!(series[1].util, vec![0.3, 0.4]);
    }

    #[test]
    fn json_dump_parses() {
        let m = MetricsRegistry::recording();
        let c = m.counter("x");
        m.inc(c, 1);
        let h = m.histogram("lat", &[1.0]);
        m.observe(h, 0.5);
        m.record_link_util(SimTime::from_secs(1), &[0.25, f64::NAN]);
        let doc = m.to_json();
        let v = serde_json::from_str(&doc).expect("metrics JSON parses");
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("x"))
                .and_then(|x| x.as_u64()),
            Some(1)
        );
    }
}
