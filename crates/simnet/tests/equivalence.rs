//! Incremental-engine equivalence suite.
//!
//! `SimNet` maintains fair-share rates incrementally: component-scoped
//! re-solves through a persistent workspace, a one-round aggregate tier
//! for single-bottleneck components, a lazily-invalidated completion
//! heap, and sharded bulk advances (DESIGN.md §9/§12). The claim that
//! buys is strong — **bit-identical** behaviour to a from-scratch global
//! solve at every externally observable point. This suite enforces the
//! claim four ways:
//!
//! 1. `RefNet`, an independent reference simulator (global
//!    [`compute_rates`] solve per change, linear scans for completions,
//!    no incidence/heap/workspace state), is driven through arbitrary
//!    event sequences next to `SimNet`, asserting identical clocks,
//!    rates (bitwise), remaining bytes (bitwise), completion estimates,
//!    completion order, and cumulative per-direction link bytes after
//!    every operation.
//! 2. The same harness drives a `SimNet` with
//!    [`SimNet::set_full_resolve`] enabled, pinning that the scoped and
//!    global solve paths of the production engine agree with each other.
//! 3. A third production engine runs with the shard threshold forced to
//!    zero, so *every* bulk advance goes through component extraction,
//!    rayon workers, and the `(SimTime, FlowId)` k-way merge.
//! 4. A long fixed-seed pseudo-random run (2000 ops) covers depths the
//!    proptest case budget does not reach, and a dedicated congestion
//!    -onset proptest pins the aggregate-tier → exact-solver handoff.
//!
//! All simulators share one canonical contract: the completion estimate
//! is fixed when a flow's rate changes (or it drains) and never
//! recomputed in between, and progress accrues **lazily** — a flow's
//! stored bytes are materialized only at rate-change / cancel / abort /
//! completion touch points, with queries adding the pending in-flight
//! window purely. Touch points land at identical instants in every mode
//! (rates are bitwise equal), so the float operation sequences are
//! identical — which is exactly what the bitwise assertions verify.

use hs_des::{SimSpan, SimTime};
use hs_simnet::fairshare::{compute_rates, FlowDemand};
use hs_simnet::{DirLink, SimNet};
use hs_topology::graph::{bandwidth, GpuSpec, GraphBuilder, LinkKind, ServerId};
use hs_topology::{Graph, LinkId};
use proptest::prelude::*;
use std::collections::BTreeMap;

const N_LINKS: usize = 8;

/// Star topology: 8 GPUs on one switch, alternating 100 G / 40 G links
/// with varied latencies. Paths used in the tests are arbitrary directed
/// link subsets — the rate solver doesn't require contiguity, and subsets
/// exercise shared/disjoint component structure thoroughly.
fn star() -> (Graph, Vec<LinkId>) {
    let mut b = GraphBuilder::new();
    let sw = b.add_access_switch(true, "s");
    let links = (0..N_LINKS)
        .map(|i| {
            let g = b.add_gpu(ServerId(i as u32), 0, GpuSpec::a100_40g());
            let cap = if i % 2 == 0 {
                bandwidth::ETH_100G
            } else {
                bandwidth::ETH_100G * 0.4
            };
            b.add_link(g, sw, LinkKind::Ethernet, cap, 500 + 250 * i as u64)
        })
        .collect();
    (b.build(), links)
}

// ---------------------------------------------------------------------
// RefNet: the from-scratch reference simulator
// ---------------------------------------------------------------------

struct RFlow {
    path: Vec<DirLink>,
    /// Bytes left as of `touched` (lazy accrual, same contract as the
    /// production engine — see module docs).
    remaining: f64,
    rate: f64,
    weight: f64,
    prop: SimSpan,
    earliest_finish: SimTime,
    finish_at: SimTime,
    touched: SimTime,
    tag: u64,
}

struct RefNet {
    base: Vec<f64>,
    caps: Vec<f64>,
    latency_ns: Vec<u64>,
    flows: BTreeMap<u64, RFlow>,
    next_id: u64,
    clock: SimTime,
    cum: Vec<f64>,
    dirty: bool,
}

fn rslot(d: DirLink) -> usize {
    d.0.idx() * 2 + d.1 as usize
}

/// Pending in-flight bytes of `f` over `(touched, clock]` — the pure
/// mirror of `materialize`'s consumption arithmetic.
fn pending(f: &RFlow, clock: SimTime) -> f64 {
    if clock > f.touched && f.rate > 0.0 && f.rate.is_finite() && f.remaining > 0.0 {
        let dt = (clock - f.touched).as_secs_f64();
        (f.rate / 8.0 * dt).min(f.remaining)
    } else {
        0.0
    }
}

/// Accrue `f`'s progress up to `clock` (rate-change / cancel / abort /
/// completion touch points only).
fn materialize(f: &mut RFlow, clock: SimTime, cum: &mut [f64]) {
    if clock <= f.touched {
        return;
    }
    let base = f.touched;
    f.touched = clock;
    if f.rate > 0.0 && f.rate.is_finite() && f.remaining > 0.0 {
        let dt = (clock - base).as_secs_f64();
        let bytes = f.rate / 8.0 * dt;
        let consumed = bytes.min(f.remaining);
        if consumed >= f.remaining {
            let drain_secs = f.remaining * 8.0 / f.rate;
            let drained_at = base + SimSpan::from_secs_f64(drain_secs);
            f.earliest_finish = f.earliest_finish.max(drained_at + f.prop);
        }
        f.remaining -= consumed;
        if f.remaining < 1e-6 {
            f.remaining = 0.0;
        }
        for &d in &f.path {
            cum[rslot(d)] += consumed;
        }
        if f.remaining <= 0.0 {
            f.finish_at = f.earliest_finish;
        }
    } else if f.rate.is_infinite() {
        f.remaining = 0.0;
    }
}

impl RefNet {
    fn new(g: &Graph) -> Self {
        let caps = g.capacities();
        let latency_ns = g.links().map(|(_, l)| l.latency_ns).collect();
        let n = caps.len();
        RefNet {
            base: caps.clone(),
            caps,
            latency_ns,
            flows: BTreeMap::new(),
            next_id: 0,
            clock: SimTime::ZERO,
            cum: vec![0.0; 2 * n],
            dirty: false,
        }
    }

    fn serial_estimate(clock: SimTime, f: &RFlow) -> SimTime {
        if f.rate.is_infinite() {
            return f.earliest_finish;
        }
        if f.rate == 0.0 {
            return SimTime::MAX;
        }
        let secs = f.remaining * 8.0 / f.rate;
        let ser = clock + SimSpan::from_secs_f64(secs).saturating_add(SimSpan::from_nanos(1));
        (ser + f.prop).max(f.earliest_finish)
    }

    /// Global from-scratch solve with the canonical estimate rule: a
    /// flow is materialized and its estimate refreshed only when its
    /// rate *value* changes.
    fn solve(&mut self) {
        if !self.dirty {
            return;
        }
        self.dirty = false;
        let mut dir_caps = Vec::with_capacity(2 * self.caps.len());
        for &c in &self.caps {
            dir_caps.push(c);
            dir_caps.push(c);
        }
        let paths: Vec<Vec<usize>> = self
            .flows
            .values()
            .map(|f| f.path.iter().map(|&d| rslot(d)).collect())
            .collect();
        let demands: Vec<FlowDemand> = paths
            .iter()
            .zip(self.flows.values())
            .map(|(p, f)| FlowDemand {
                links: p,
                weight: f.weight,
            })
            .collect();
        let rates = compute_rates(&dir_caps, &demands);
        let clock = self.clock;
        for (f, &rate) in self.flows.values_mut().zip(rates.iter()) {
            if rate.to_bits() == f.rate.to_bits() {
                continue;
            }
            materialize(f, clock, &mut self.cum);
            f.rate = rate;
            if f.remaining > 0.0 {
                f.finish_at = Self::serial_estimate(clock, f);
            }
        }
    }

    /// Move the clock: under lazy accrual there is no per-flow work, but
    /// rates for the elapsed window must be solved at its start.
    fn progress_to(&mut self, t: SimTime) {
        if t <= self.clock {
            return;
        }
        self.solve();
        self.clock = t;
    }

    fn start_weighted_flow(
        &mut self,
        now: SimTime,
        path: &[DirLink],
        bytes: u64,
        weight: f64,
        tag: u64,
    ) -> u64 {
        self.progress_to(now);
        let id = self.next_id;
        self.next_id += 1;
        let prop_ns: u64 = path.iter().map(|&(l, _)| self.latency_ns[l.idx()]).sum();
        let prop = SimSpan::from_nanos(prop_ns);
        let mut f = RFlow {
            path: path.to_vec(),
            remaining: bytes as f64,
            rate: 0.0,
            weight,
            prop,
            earliest_finish: now + prop,
            finish_at: SimTime::MAX,
            touched: self.clock,
            tag,
        };
        if path.is_empty() {
            f.rate = f64::INFINITY;
        }
        if path.is_empty() || f.remaining <= 0.0 {
            f.finish_at = f.earliest_finish;
        }
        if !path.is_empty() {
            self.dirty = true;
        }
        self.flows.insert(id, f);
        id
    }

    fn cancel_flow(&mut self, now: SimTime, id: u64) -> bool {
        self.progress_to(now);
        let clock = self.clock;
        let drained = match self.flows.get_mut(&id) {
            None => return false,
            Some(f) => {
                materialize(f, clock, &mut self.cum);
                f.remaining <= 0.0 && !f.path.is_empty()
            }
        };
        if drained {
            return false;
        }
        self.flows.remove(&id);
        self.dirty = true;
        true
    }

    fn set_link_scale(&mut self, now: SimTime, l: LinkId, factor: f64) -> Vec<u64> {
        self.progress_to(now);
        self.caps[l.idx()] = self.base[l.idx()] * factor;
        self.dirty = true;
        if factor > 0.0 {
            return Vec::new();
        }
        let doomed: Vec<u64> = self
            .flows
            .iter()
            .filter(|(_, f)| f.path.iter().any(|&(fl, _)| fl == l))
            .map(|(&id, _)| id)
            .collect();
        let clock = self.clock;
        for id in &doomed {
            let mut f = self.flows.remove(id).expect("doomed flow present");
            materialize(&mut f, clock, &mut self.cum);
        }
        doomed
    }

    fn next_event_time(&mut self) -> Option<SimTime> {
        self.solve();
        self.flows
            .values()
            .map(|f| f.finish_at)
            .min()
            .map(|t| t.max(self.clock))
    }

    fn advance_to(&mut self, now: SimTime) -> Vec<(u64, u64)> {
        assert!(now >= self.clock);
        let mut done = Vec::new();
        loop {
            self.solve();
            let front = self.flows.iter().map(|(&id, f)| (f.finish_at, id)).min();
            let Some((t, id)) = front else { break };
            if t > now {
                break;
            }
            // A cascade solve can finalize a drained flow retroactively;
            // the clock never moves backwards.
            self.clock = self.clock.max(t);
            let clock = self.clock;
            let mut f = self.flows.remove(&id).expect("front flow is live");
            materialize(&mut f, clock, &mut self.cum);
            done.push((id, f.tag));
            self.dirty = true;
        }
        self.progress_to(now);
        done
    }

    /// Pure remaining-bytes view at the current clock (mirror of
    /// [`SimNet::flow_remaining`]).
    fn flow_remaining(&self, id: u64) -> Option<f64> {
        let f = self.flows.get(&id)?;
        if f.rate.is_infinite() && self.clock > f.touched {
            return Some(0.0);
        }
        let mut rem = f.remaining - pending(f, self.clock);
        if rem < 1e-6 {
            rem = 0.0;
        }
        Some(rem)
    }

    /// Pure cumulative-bytes view: materialized counter plus every
    /// crossing flow's pending window in ascending flow-id order (the
    /// same summation order the production engine's incidence lists
    /// give).
    fn cumulative_bytes_dir(&self, l: LinkId, fwd: bool) -> f64 {
        let s = l.idx() * 2 + fwd as usize;
        let mut total = self.cum[s];
        for f in self.flows.values() {
            if f.path.iter().any(|&d| rslot(d) == s) {
                total += pending(f, self.clock);
            }
        }
        total
    }
}

// ---------------------------------------------------------------------
// Harness driving RefNet + SimNet (scoped) + SimNet (full) + SimNet
// (force-sharded) in lock-step
// ---------------------------------------------------------------------

/// One step of a scenario, decoded from an integer tuple (the vendored
/// proptest has no `prop_oneof`, so op choice is data).
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Start a flow over the directed-link subset given by the two masks.
    Start {
        link_mask: u8,
        dir_mask: u8,
        bytes: u64,
        weight_q: u8,
    },
    /// Advance all nets by `dt_us`.
    Advance { dt_us: u64 },
    /// Cancel the `k % issued`-th flow ever started.
    Cancel { k: usize },
    /// Scale link `l % N_LINKS` to `[0.0, 0.25, 0.5, 1.0][q % 4]`.
    Scale { l: usize, q: usize },
    /// Advance exactly to the next completion (if any, capped at 10 ms).
    AdvanceToNext,
}

fn decode(raw: (u8, u64, u64, u64)) -> Op {
    let (kind, a, b, c) = raw;
    match kind % 5 {
        0 => Op::Start {
            link_mask: (a & 0xff) as u8,
            dir_mask: (b & 0xff) as u8,
            bytes: c % 5_000_000,
            weight_q: (b >> 8) as u8,
        },
        1 => Op::Advance { dt_us: b % 300 },
        2 => Op::Cancel { k: a as usize },
        3 => Op::Scale {
            l: a as usize,
            q: b as usize,
        },
        _ => Op::AdvanceToNext,
    }
}

struct Harness {
    links: Vec<LinkId>,
    refnet: RefNet,
    inc: SimNet,
    full: SimNet,
    /// Production engine with shard threshold 0: every bulk advance goes
    /// through shard extraction + the deterministic k-way merge.
    sharded: SimNet,
    issued: Vec<u64>,
    now: SimTime,
    /// Completion log (id, tag) per net, appended in delivery order.
    done_ref: Vec<(u64, u64)>,
    done_inc: Vec<(u64, u64)>,
    done_full: Vec<(u64, u64)>,
    done_sharded: Vec<(u64, u64)>,
}

impl Harness {
    fn new() -> Self {
        let (g, links) = star();
        let refnet = RefNet::new(&g);
        let inc = SimNet::new(&g);
        let mut full = SimNet::new(&g);
        full.set_full_resolve(true);
        let mut sharded = SimNet::new(&g);
        sharded.set_shard_threshold(0);
        Harness {
            links,
            refnet,
            inc,
            full,
            sharded,
            issued: Vec::new(),
            now: SimTime::ZERO,
            done_ref: Vec::new(),
            done_inc: Vec::new(),
            done_full: Vec::new(),
            done_sharded: Vec::new(),
        }
    }

    fn path(&self, link_mask: u8, dir_mask: u8) -> Vec<DirLink> {
        (0..N_LINKS)
            .filter(|i| link_mask & (1 << i) != 0)
            .map(|i| (self.links[i], dir_mask & (1 << i) != 0))
            .collect()
    }

    fn apply(&mut self, op: Op) {
        match op {
            Op::Start {
                link_mask,
                dir_mask,
                bytes,
                weight_q,
            } => {
                let path = self.path(link_mask, dir_mask);
                let w = 1.0 + (weight_q % 4) as f64;
                let rid = self
                    .refnet
                    .start_weighted_flow(self.now, &path, bytes, w, bytes);
                for net in [&mut self.inc, &mut self.full, &mut self.sharded] {
                    let id = net.start_weighted_flow(self.now, &path, bytes, w, bytes);
                    assert_eq!(rid, id.0);
                }
                self.issued.push(rid);
            }
            Op::Advance { dt_us } => {
                self.now += SimSpan::from_micros(dt_us);
                self.advance_all(self.now);
            }
            Op::Cancel { k } => {
                if self.issued.is_empty() {
                    return;
                }
                let id = self.issued[k % self.issued.len()];
                let r = self.refnet.cancel_flow(self.now, id);
                for (label, net) in [
                    ("incremental", &mut self.inc),
                    ("full", &mut self.full),
                    ("sharded", &mut self.sharded),
                ] {
                    let got = net.cancel_flow(self.now, hs_simnet::FlowId(id)).is_some();
                    assert_eq!(r, got, "cancel({id}) outcome diverged ({label})");
                }
            }
            Op::Scale { l, q } => {
                let link = self.links[l % N_LINKS];
                let factor = [0.0, 0.25, 0.5, 1.0][q % 4];
                let mut r = self.refnet.set_link_scale(self.now, link, factor);
                r.sort_unstable();
                for (label, net) in [
                    ("incremental", &mut self.inc),
                    ("full", &mut self.full),
                    ("sharded", &mut self.sharded),
                ] {
                    let mut got: Vec<u64> = net
                        .set_link_scale(self.now, link, factor)
                        .into_iter()
                        .map(|(id, _)| id.0)
                        .collect();
                    got.sort_unstable();
                    assert_eq!(r, got, "aborted set diverged ({label})");
                }
            }
            Op::AdvanceToNext => {
                let next = self.refnet.next_event_time();
                let cap = self.now + SimSpan::from_millis(10);
                let target = match next {
                    Some(t) if t < SimTime::MAX => t.min(cap),
                    _ => return,
                };
                self.now = target.max(self.now);
                self.advance_all(self.now);
            }
        }
        self.check();
    }

    fn advance_all(&mut self, t: SimTime) {
        self.done_ref.extend(self.refnet.advance_to(t));
        self.done_inc.extend(
            self.inc
                .advance_to(t)
                .into_iter()
                .map(|(id, f)| (id.0, f.tag)),
        );
        self.done_full.extend(
            self.full
                .advance_to(t)
                .into_iter()
                .map(|(id, f)| (id.0, f.tag)),
        );
        self.done_sharded.extend(
            self.sharded
                .advance_to(t)
                .into_iter()
                .map(|(id, f)| (id.0, f.tag)),
        );
    }

    /// Full bitwise state comparison across the four simulators.
    fn check(&mut self) {
        assert_eq!(self.done_ref, self.done_inc, "completion log (incremental)");
        assert_eq!(self.done_ref, self.done_full, "completion log (full)");
        assert_eq!(self.done_ref, self.done_sharded, "completion log (sharded)");
        let nref = self.refnet.next_event_time();
        assert_eq!(nref, self.inc.next_event_time(), "next_event (incremental)");
        assert_eq!(nref, self.full.next_event_time(), "next_event (full)");
        assert_eq!(nref, self.sharded.next_event_time(), "next_event (sharded)");
        for (label, net) in [
            ("incremental", &self.inc),
            ("full", &self.full),
            ("sharded", &self.sharded),
        ] {
            assert_eq!(
                self.refnet.flows.len(),
                net.active_flow_count(),
                "flow count ({label})"
            );
            for &id in &self.issued {
                let r = self.refnet.flows.get(&id);
                let s = net.flow(hs_simnet::FlowId(id));
                assert_eq!(r.is_some(), s.is_some(), "liveness of flow {id} ({label})");
                let (Some(r), Some(s)) = (r, s) else { continue };
                assert_eq!(
                    r.rate.to_bits(),
                    s.rate_bps.to_bits(),
                    "rate of flow {id} ({label})"
                );
                let r_rem = self.refnet.flow_remaining(id).expect("live");
                let s_rem = net.flow_remaining(hs_simnet::FlowId(id)).expect("live");
                assert_eq!(
                    r_rem.to_bits(),
                    s_rem.to_bits(),
                    "remaining of flow {id} ({label})"
                );
                assert_eq!(r.finish_at, s.finish_at(), "finish of flow {id} ({label})");
            }
            for (li, &l) in self.links.iter().enumerate() {
                for fwd in [false, true] {
                    let r = self.refnet.cumulative_bytes_dir(l, fwd);
                    assert_eq!(
                        r.to_bits(),
                        net.cumulative_bytes_dir(l, fwd).to_bits(),
                        "cum bytes link {li} fwd={fwd} ({label})"
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------

/// Deterministic scenario hitting every op kind, including a fault and a
/// recovery, with completions interleaved.
#[test]
fn fixed_scenario_equivalence() {
    let mut h = Harness::new();
    let ops = [
        (0u8, 0b0000_0011u64, 0b0000_0001u64, 2_000_000u64),
        (0, 0b0000_0110, 0x0207, 1_000_000),
        (0, 0b1100_0000, 0, 500_000),
        (1, 0, 120, 0),
        (0, 0, 0, 64),               // empty path
        (0, 0b0000_0001, 0x0100, 0), // zero bytes
        (4, 0, 0, 0),
        (3, 1, 1, 0), // link 1 -> 25 %
        (1, 0, 200, 0),
        (2, 1, 0, 0),
        (3, 1, 0, 0), // link 1 dead
        (1, 0, 150, 0),
        (3, 1, 3, 0), // link 1 recovered
        (4, 0, 0, 0),
        (1, 0, 280, 0),
        (4, 0, 0, 0),
        (4, 0, 0, 0),
    ];
    for raw in ops {
        h.apply(decode(raw));
    }
    // Drain everything still running.
    h.apply(decode((1, 0, 299, 0)));
    h.apply(decode((1, 0, 299, 0)));
}

/// Fixed aggregate→exact handoff scenario: a single-bottleneck phase
/// (settled by the one-round aggregate tier), then a congestion onset
/// where a degraded second link saturates (exact-solver handoff), then
/// recovery back to the fast path — equal to the reference throughout.
#[test]
fn aggregate_handoff_fixed_scenario() {
    let mut h = Harness::new();
    // Phase 1: three flows share link 0 only — one bottleneck.
    for bytes in [2_000_000u64, 3_000_000, 4_000_000] {
        h.apply(Op::Start {
            link_mask: 0b0000_0001,
            dir_mask: 0xff,
            bytes,
            weight_q: 0,
        });
    }
    h.apply(Op::Advance { dt_us: 50 });
    let before = h.inc.solve_stats();
    assert!(before.aggregate_solves > 0, "fast path engaged: {before:?}");
    // Phase 2: degrade link 1 to 25% and route flows across links 0+1 —
    // both links saturate at different shares, forcing handoff.
    h.apply(Op::Scale { l: 1, q: 1 });
    h.apply(Op::Start {
        link_mask: 0b0000_0011,
        dir_mask: 0xff,
        bytes: 4_000_000,
        weight_q: 1,
    });
    h.apply(Op::Start {
        link_mask: 0b0000_0010,
        dir_mask: 0xff,
        bytes: 4_000_000,
        weight_q: 0,
    });
    h.apply(Op::Advance { dt_us: 80 });
    let mid = h.inc.solve_stats();
    assert!(
        mid.scoped_solves - mid.aggregate_solves > before.scoped_solves - before.aggregate_solves,
        "congestion onset must hand off to the exact solver: {mid:?}"
    );
    // Phase 3: recovery and drain — equivalence holds at every step (the
    // harness checks after each op).
    h.apply(Op::Scale { l: 1, q: 3 });
    for _ in 0..6 {
        h.apply(Op::AdvanceToNext);
    }
    h.apply(Op::Advance { dt_us: 299 });
}

/// Long fixed-seed pseudo-random run (xorshift, no OS entropy): depth the
/// proptest case budget cannot reach, still fully deterministic.
#[test]
fn long_random_run_equivalence() {
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut h = Harness::new();
    for _ in 0..2000 {
        let raw = (
            (next() & 0xff) as u8,
            next() & 0xffff,
            next() & 0xffff,
            next() % 5_000_000,
        );
        h.apply(decode(raw));
    }
}

proptest! {
    /// ISSUE 5 acceptance property: arbitrary add/cancel/advance/scale
    /// sequences produce identical rates, completion order, and
    /// cumulative link bytes through the incremental engine, the
    /// forced-full-resolve engine, the force-sharded engine, and the
    /// from-scratch reference.
    #[test]
    fn arbitrary_sequences_are_bit_identical(
        raw_ops in proptest::collection::vec(
            (0u8..16, 0u64..65_536, 0u64..65_536, 0u64..6_000_000),
            1..60,
        )
    ) {
        let mut h = Harness::new();
        for raw in raw_ops {
            h.apply(decode(raw));
        }
        // Settle: everything still live must complete identically too.
        for _ in 0..4 {
            h.apply(Op::AdvanceToNext);
            h.apply(Op::Advance { dt_us: 299 });
        }
    }

    /// ISSUE 7 acceptance property: the aggregate-tier → exact-solver
    /// handoff is bit-transparent at *random congestion onsets*. An
    /// uncongested single-bottleneck phase runs on the fast path, then a
    /// randomly timed and sized degradation of a second shared link
    /// forces (for low factors) the exact solver — state must match the
    /// reference before, across, and after the onset.
    #[test]
    fn aggregate_handoff_at_random_congestion_onset(
        onset_us in 1u64..200,
        factor_q in 0usize..3,
        n_flows in 2usize..6,
        bytes in 200_000u64..4_000_000,
        extra_us in 1u64..250,
    ) {
        let mut h = Harness::new();
        // Uncongested: n flows share link 0 only (single bottleneck,
        // aggregate tier) plus one crossing links 0+1 (link 1 at full
        // capacity stays unsaturated: 40G vs the 100G bottleneck share).
        for k in 0..n_flows {
            h.apply(Op::Start {
                link_mask: 0b0000_0001,
                dir_mask: 0xff,
                bytes: bytes + 10_000 * k as u64,
                weight_q: (k % 3) as u8,
            });
        }
        h.apply(Op::Start {
            link_mask: 0b0000_0011,
            dir_mask: 0xff,
            bytes,
            weight_q: 0,
        });
        h.apply(Op::Advance { dt_us: onset_us });
        prop_assert!(h.inc.solve_stats().aggregate_solves > 0);
        // Congestion onset: link 1 drops to 0/25/50 % — for any factor
        // low enough the two-link flow's share pins link 1 as a second
        // bottleneck and the scoped solve hands off to the exact path.
        h.apply(Op::Scale { l: 1, q: factor_q });
        h.apply(Op::Advance { dt_us: extra_us });
        // Recovery and drain.
        h.apply(Op::Scale { l: 1, q: 3 });
        for _ in 0..4 {
            h.apply(Op::AdvanceToNext);
            h.apply(Op::Advance { dt_us: 299 });
        }
    }
}
