//! Scaling stress test for the incremental fair-share engine.
//!
//! 10 000 flows over the paper's 2-track xtracks fabric (2 pods, 96 GPUs)
//! with staggered arrivals, driven through the full start → share →
//! complete lifecycle. Asserts the physics that must survive any amount
//! of engine optimisation:
//!
//! * **byte conservation** — every directed link's cumulative counter
//!   equals the sum of bytes of the completed flows that crossed it;
//! * **per-link feasibility** — at every completion batch the allocated
//!   rate on each directed link never exceeds its capacity;
//! * **liveness** — every flow completes;
//! * a generous wall bound in release mode, so a quadratic regression in
//!   the hot path fails loudly rather than silently eating CI time.
//!
//! Ignored under debug assertions (the point is release-mode throughput;
//! CI runs it via `cargo test --release -p hs-simnet`).

use hs_des::{SimSpan, SimTime};
use hs_simnet::SimNet;
use hs_topology::builders::{xtracks, XTracksConfig};
use hs_topology::graph::{bandwidth, GpuSpec, GraphBuilder, LinkKind, ServerId};
use hs_topology::routing::shortest_path;
use hs_topology::LinkWeight;

#[test]
#[cfg_attr(debug_assertions, ignore = "release-only throughput stress")]
fn ten_thousand_flows_on_xtracks() {
    let wall = std::time::Instant::now();
    let topo = xtracks(&XTracksConfig::two_tracks(2));
    let g = &topo.graph;
    let gpus = topo.all_gpus();
    let n_links = g.capacities().len();
    let mut net = SimNet::new(g);

    const N_FLOWS: u64 = 10_000;
    // Deterministic src/dst index arithmetic: co-prime strides walk every
    // GPU pair class, mixing intra-server, intra-pod, and cross-pod paths.
    let mut delivered_per_slot = vec![0.0f64; 2 * n_links];
    let mut launched = 0u64;
    let mut completed = 0u64;
    let mut paths: Vec<Vec<(hs_topology::LinkId, bool)>> = Vec::new();
    for i in 0..N_FLOWS {
        let src = gpus[(i as usize * 7) % gpus.len()];
        let dst = gpus[(i as usize * 13 + 1) % gpus.len()];
        if src == dst {
            paths.push(Vec::new());
            continue;
        }
        let p = shortest_path(g, src, dst, LinkWeight::Latency, None)
            .expect("xtracks is connected")
            .directed_links(g);
        paths.push(p);
    }

    // Staggered arrivals: one flow every 2 us, sizes cycling 64 kB–1 MB.
    let mut next_arrival = SimTime::ZERO;
    let mut arrival_iter = 0u64;
    let mut now = SimTime::ZERO;
    while completed < N_FLOWS {
        // Launch everything due before the next completion.
        let next_done = net.next_event_time();
        let horizon = match next_done {
            Some(t) if t < SimTime::MAX => t,
            _ => next_arrival,
        };
        while launched < N_FLOWS && next_arrival <= horizon {
            let bytes = 64_000 + (arrival_iter % 16) * 60_000;
            net.start_flow(next_arrival, &paths[launched as usize], bytes, launched);
            launched += 1;
            arrival_iter += 1;
            next_arrival += SimSpan::from_micros(2);
        }
        // Feasibility at this instant: allocated ≤ capacity on each link.
        let caps = g.capacities();
        for (i, u) in net.utilization_snapshot().iter().enumerate() {
            assert!(
                *u <= 1.0 + 1e-9,
                "link {i} oversubscribed: utilization {u}, cap {}",
                caps[i]
            );
        }
        let target = match net.next_event_time() {
            Some(t) if t < SimTime::MAX => t,
            _ if launched < N_FLOWS => next_arrival,
            _ => panic!("flows outstanding but no next event"),
        };
        now = now.max(target);
        for (id, f) in net.advance_to(now) {
            completed += 1;
            assert_eq!(f.remaining_bytes, 0.0, "flow {id:?} returned undrained");
            for &(l, fwd) in &f.path {
                delivered_per_slot[l.idx() * 2 + fwd as usize] += f.size_bytes as f64;
            }
        }
    }
    assert_eq!(completed, N_FLOWS, "every flow must complete");
    assert_eq!(net.active_flow_count(), 0);

    // Byte conservation per directed link: the simulator's cumulative
    // counters must match the ledger of completed flow sizes. Accrual is
    // piecewise float summation, so allow a ppm-scale relative slack.
    for li in 0..n_links {
        for fwd in [false, true] {
            let slot = li * 2 + fwd as usize;
            let counted = net.cumulative_bytes_dir(hs_topology::LinkId(li as u32), fwd);
            let ledger = delivered_per_slot[slot];
            let tol = 1e-6 * ledger.max(1.0);
            assert!(
                (counted - ledger).abs() <= tol,
                "link {li} fwd={fwd}: counter {counted} vs ledger {ledger}"
            );
        }
    }

    let elapsed = wall.elapsed();
    assert!(
        elapsed.as_secs_f64() < 60.0,
        "10k-flow run took {elapsed:?}; incremental engine has regressed"
    );
}

/// Sharded-scale stress (DESIGN.md §12): 32k flows over 1024 independent
/// two-GPU clusters, drained in bulk `advance_to` windows large enough to
/// take the sharded path, then compared bit-for-bit against the same run
/// on the never-sharded sequential engine. Pins, at a scale the
/// equivalence proptests cannot reach:
///
/// * the deterministic `(SimTime, FlowId)` k-way merge equals the
///   sequential global-heap pop order exactly (trace and byte bits);
/// * every component actually went through a shard worker
///   (`shards_run`/`sharded_batches` counters);
/// * liveness and a generous wall bound.
#[test]
#[cfg_attr(debug_assertions, ignore = "release-only throughput stress")]
fn sharded_bulk_advance_matches_sequential_at_scale() {
    const CLUSTERS: u32 = 1024;
    const FLOWS_PER_CLUSTER: u64 = 32;
    let wall = std::time::Instant::now();

    let run = |threshold: usize| {
        let mut b = GraphBuilder::new();
        let mut links = Vec::new();
        for i in 0..CLUSTERS {
            let g0 = b.add_gpu(ServerId(2 * i), 0, GpuSpec::a100_40g());
            let g1 = b.add_gpu(ServerId(2 * i + 1), 0, GpuSpec::a100_40g());
            let sw = b.add_access_switch(true, "s");
            let l0 = b.add_link(g0, sw, LinkKind::Ethernet, bandwidth::ETH_100G, 1_000);
            let l1 = b.add_link(g1, sw, LinkKind::Ethernet, bandwidth::ETH_100G, 1_000);
            links.push([l0, l1]);
        }
        let graph = b.build();
        let mut net = SimNet::new(&graph);
        net.set_shard_threshold(threshold);
        for (ci, pair) in links.iter().enumerate() {
            for k in 0..FLOWS_PER_CLUSTER {
                // Alternate two-hop and one-hop paths so components mix
                // aggregate-tier and exact-solver re-solves in-shard.
                let path: Vec<_> = if k % 2 == 0 {
                    pair.iter().map(|&l| (l, true)).collect()
                } else {
                    vec![(pair[0], true)]
                };
                net.start_flow(
                    SimTime::from_nanos(211 * k + 17 * ci as u64),
                    &path,
                    300_000 + 41_000 * k + 5_000 * ci as u64,
                    ((ci as u64) << 8) | k,
                );
            }
        }
        // Two bulk windows: a mid-run cut (shards hand back live flows)
        // and a drain-everything cut.
        let mut trace: Vec<(u64, u64)> = Vec::new();
        for cut in [SimTime::from_millis(1), SimTime::from_secs(10)] {
            trace.extend(net.advance_to(cut).iter().map(|(id, f)| (id.0, f.tag)));
        }
        let bytes: Vec<u64> = links
            .iter()
            .flat_map(|p| p.iter())
            .map(|&l| net.cumulative_bytes(l).to_bits())
            .collect();
        (trace, bytes, net.active_flow_count(), net.solve_stats())
    };

    let (seq_trace, seq_bytes, seq_live, seq_stats) = run(usize::MAX);
    let (sh_trace, sh_bytes, sh_live, sh_stats) = run(0);

    assert_eq!(
        seq_trace.len() as u64,
        u64::from(CLUSTERS) * FLOWS_PER_CLUSTER,
        "every flow must complete"
    );
    assert_eq!(seq_live, 0);
    assert_eq!(
        sh_trace, seq_trace,
        "sharded merge diverged from sequential"
    );
    assert_eq!(sh_bytes, seq_bytes, "per-link byte bits diverged");
    assert_eq!(sh_live, seq_live);
    assert_eq!(seq_stats.sharded_batches, 0, "threshold MAX must not shard");
    assert!(
        sh_stats.sharded_batches >= 2,
        "both bulk windows should shard: {sh_stats:?}"
    );
    assert!(
        sh_stats.shards_run >= u64::from(CLUSTERS),
        "every cluster is an independent component: {sh_stats:?}"
    );

    let elapsed = wall.elapsed();
    assert!(
        elapsed.as_secs_f64() < 120.0,
        "32k-flow sharded run took {elapsed:?}; bulk path has regressed"
    );
}
