//! Scratch profiling driver for the pull loop (not shipped as a bench).
use hs_des::SimTime;
use hs_simnet::SimNet;
use hs_topology::graph::{bandwidth, GpuSpec, GraphBuilder, LinkKind, ServerId};

fn main() {
    let n_flows: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    let threshold: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let iters: usize = std::env::args()
        .nth(3)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let n_clusters = n_flows / 4;
    let mut b = GraphBuilder::new();
    let mut paths = Vec::with_capacity(n_clusters);
    for k in 0..n_clusters {
        let g0 = b.add_gpu(ServerId((2 * k) as u32), 0, GpuSpec::a100_40g());
        let g1 = b.add_gpu(ServerId((2 * k + 1) as u32), 0, GpuSpec::a100_40g());
        let s = b.add_access_switch(false, "s");
        let l0 = b.add_link(g0, s, LinkKind::Ethernet, bandwidth::ETH_100G, 1_000);
        let l1 = b.add_link(s, g1, LinkKind::Ethernet, bandwidth::ETH_100G, 1_000);
        paths.push(vec![(l0, true), (l1, true)]);
    }
    let g = b.build();
    for _ in 0..iters {
        let t0 = std::time::Instant::now();
        let mut net = SimNet::new(&g);
        net.set_shard_threshold(threshold);
        let t_new = t0.elapsed();
        for (k, p) in paths.iter().enumerate() {
            for j in 0..4usize {
                let sz = 1_000_000 + (j as u64) * (1_000_000 / 7 + 1);
                net.start_flow(SimTime::ZERO, p, sz, (k * 4 + j) as u64);
            }
        }
        let t_fill = t0.elapsed();
        let mut t_next = std::time::Duration::ZERO;
        let mut t_adv = std::time::Duration::ZERO;
        let mut events = 0u64;
        let mut calls = 0u64;
        loop {
            let s = std::time::Instant::now();
            let Some(t) = net.next_event_time() else {
                break;
            };
            t_next += s.elapsed();
            if t == SimTime::MAX {
                break;
            }
            let s = std::time::Instant::now();
            events += net.advance_to(t).len() as u64;
            t_adv += s.elapsed();
            calls += 1;
        }
        eprintln!(
            "new={t_new:?} fill={t_fill:?} events={events} calls={calls} next={t_next:?} adv={t_adv:?} stats={:?} total={:?}",
            net.solve_stats(),
            t0.elapsed()
        );
    }
}
