//! Weighted max-min fair rate allocation (progressive filling).
//!
//! Given a set of flows, each crossing a set of links with fixed
//! capacities, the unique max-min fair allocation is computed by the
//! classic water-filling algorithm: repeatedly find the most-contended
//! link, give every unfrozen flow through it an equal (weight-proportional)
//! share of the link's remaining capacity, freeze those flows, and deduct
//! their rates from every link they cross.
//!
//! The allocation is *unique*, so the result is independent of iteration
//! order; ties in bottleneck selection are broken by link index purely for
//! determinism of intermediate state.

/// A flow description for rate computation: the links it crosses (as dense
/// indices) and its weight (relative share; 1.0 for ordinary flows).
#[derive(Clone, Debug)]
pub struct FlowDemand<'a> {
    /// Dense link indices this flow traverses (deduplicated by caller if
    /// the path revisits a link; paths from `hs-topology` are loopless).
    pub links: &'a [usize],
    /// Relative weight; must be > 0.
    pub weight: f64,
}

/// Compute weighted max-min fair rates (bits/s) for `flows` over links with
/// the given `capacities` (bits/s).
///
/// Returns one rate per flow, in input order. Flows with empty paths get
/// `f64::INFINITY` (they are not constrained by the network — the caller
/// treats them as instantaneous local copies).
pub fn compute_rates(capacities: &[f64], flows: &[FlowDemand<'_>]) -> Vec<f64> {
    let n_links = capacities.len();
    let n_flows = flows.len();
    let mut rates = vec![0.0f64; n_flows];
    if n_flows == 0 {
        return rates;
    }

    // Per-link: remaining capacity and total unfrozen weight.
    let mut rem_cap = capacities.to_vec();
    let mut link_weight = vec![0.0f64; n_links];
    // Which flows cross each link (indices into `flows`).
    let mut link_flows: Vec<Vec<u32>> = vec![Vec::new(); n_links];
    let mut frozen = vec![false; n_flows];
    let mut n_unfrozen = 0usize;

    for (fi, f) in flows.iter().enumerate() {
        debug_assert!(f.weight > 0.0, "flow weight must be positive");
        if f.links.is_empty() {
            rates[fi] = f64::INFINITY;
            frozen[fi] = true;
            continue;
        }
        n_unfrozen += 1;
        for &l in f.links {
            link_weight[l] += f.weight;
            link_flows[l].push(fi as u32);
        }
    }

    while n_unfrozen > 0 {
        // Find the bottleneck link: minimum per-weight fair share among
        // links that still carry unfrozen flows.
        let mut best_link = usize::MAX;
        let mut best_share = f64::INFINITY;
        for l in 0..n_links {
            if link_weight[l] > 0.0 {
                let share = (rem_cap[l].max(0.0)) / link_weight[l];
                if share < best_share {
                    best_share = share;
                    best_link = l;
                }
            }
        }
        if best_link == usize::MAX {
            // Shouldn't happen: unfrozen flows always have links with
            // positive weight. Guard against float pathology anyway.
            break;
        }
        // Freeze every unfrozen flow crossing the bottleneck at
        // weight * share, and deduct from all links it crosses.
        // Drain this link's flow list; frozen entries elsewhere are skipped
        // lazily via the `frozen` bitmap.
        let flows_here = std::mem::take(&mut link_flows[best_link]);
        for fi in flows_here {
            let fi = fi as usize;
            if frozen[fi] {
                continue;
            }
            let f = &flows[fi];
            let r = f.weight * best_share;
            rates[fi] = r;
            frozen[fi] = true;
            n_unfrozen -= 1;
            for &l in f.links {
                rem_cap[l] -= r;
                link_weight[l] -= f.weight;
                if link_weight[l] < 1e-12 {
                    link_weight[l] = 0.0;
                }
            }
        }
        link_weight[best_link] = 0.0;
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demands<'a>(paths: &'a [Vec<usize>]) -> Vec<FlowDemand<'a>> {
        paths
            .iter()
            .map(|p| FlowDemand {
                links: p,
                weight: 1.0,
            })
            .collect()
    }

    #[test]
    fn single_flow_gets_full_link() {
        let paths = vec![vec![0]];
        let r = compute_rates(&[100.0], &demands(&paths));
        assert_eq!(r, vec![100.0]);
    }

    #[test]
    fn equal_flows_split_evenly() {
        let paths = vec![vec![0], vec![0], vec![0], vec![0]];
        let r = compute_rates(&[100.0], &demands(&paths));
        for &x in &r {
            assert!((x - 25.0).abs() < 1e-9);
        }
    }

    #[test]
    fn classic_parking_lot() {
        // Links: 0 and 1, both capacity 1. Flow A crosses both, B crosses
        // 0 only, C crosses 1 only. Max-min fair: A=0.5, B=0.5, C=0.5.
        let paths = vec![vec![0, 1], vec![0], vec![1]];
        let r = compute_rates(&[1.0, 1.0], &demands(&paths));
        assert!((r[0] - 0.5).abs() < 1e-9);
        assert!((r[1] - 0.5).abs() < 1e-9);
        assert!((r[2] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn unequal_capacities_release_bandwidth() {
        // Link 0 cap 1 shared by A,B; link 1 cap 10 carries B,C. B is
        // bottlenecked at 0.5 on link 0, so C gets 9.5 on link 1.
        let paths = vec![vec![0], vec![0, 1], vec![1]];
        let r = compute_rates(&[1.0, 10.0], &demands(&paths));
        assert!((r[0] - 0.5).abs() < 1e-9);
        assert!((r[1] - 0.5).abs() < 1e-9);
        assert!((r[2] - 9.5).abs() < 1e-9);
    }

    #[test]
    fn weights_bias_shares() {
        let paths = [vec![0], vec![0]];
        let flows = vec![
            FlowDemand {
                links: &paths[0],
                weight: 3.0,
            },
            FlowDemand {
                links: &paths[1],
                weight: 1.0,
            },
        ];
        let r = compute_rates(&[100.0], &flows);
        assert!((r[0] - 75.0).abs() < 1e-9);
        assert!((r[1] - 25.0).abs() < 1e-9);
    }

    #[test]
    fn empty_path_is_unconstrained() {
        let paths = vec![vec![], vec![0]];
        let r = compute_rates(&[100.0], &demands(&paths));
        assert!(r[0].is_infinite());
        assert_eq!(r[1], 100.0);
    }

    #[test]
    fn no_flows() {
        let r = compute_rates(&[100.0], &[]);
        assert!(r.is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_instance() -> impl Strategy<Value = (Vec<f64>, Vec<Vec<usize>>)> {
        (2usize..8).prop_flat_map(|n_links| {
            let caps = proptest::collection::vec(1.0f64..1000.0, n_links..=n_links);
            let paths = proptest::collection::vec(
                proptest::collection::hash_set(0..n_links, 1..=n_links.min(4)).prop_map(|s| {
                    let mut v: Vec<usize> = s.into_iter().collect();
                    v.sort_unstable();
                    v
                }),
                1..12,
            );
            (caps, paths)
        })
    }

    proptest! {
        /// No link is oversubscribed and every flow is bottlenecked
        /// somewhere (the defining property of max-min fairness: a flow's
        /// rate can't be raised without lowering an equal-or-smaller one).
        #[test]
        fn feasible_and_maxmin((caps, paths) in arb_instance()) {
            let flows: Vec<FlowDemand<'_>> = paths
                .iter()
                .map(|p| FlowDemand { links: p, weight: 1.0 })
                .collect();
            let rates = compute_rates(&caps, &flows);
            // Feasibility.
            for (l, &cap) in caps.iter().enumerate() {
                let used: f64 = paths
                    .iter()
                    .zip(&rates)
                    .filter(|(p, _)| p.contains(&l))
                    .map(|(_, &r)| r)
                    .sum();
                prop_assert!(used <= cap * (1.0 + 1e-9), "link {l} oversubscribed: {used} > {cap}");
            }
            // Bottleneck property: each flow crosses a saturated link on
            // which it has a maximal rate among that link's flows.
            for (fi, p) in paths.iter().enumerate() {
                let mut bottlenecked = false;
                for &l in p {
                    let used: f64 = paths
                        .iter()
                        .zip(&rates)
                        .filter(|(q, _)| q.contains(&l))
                        .map(|(_, &r)| r)
                        .sum();
                    let max_on_link = paths
                        .iter()
                        .zip(&rates)
                        .filter(|(q, _)| q.contains(&l))
                        .map(|(_, &r)| r)
                        .fold(0.0f64, f64::max);
                    if used >= caps[l] * (1.0 - 1e-6) && rates[fi] >= max_on_link - 1e-6 {
                        bottlenecked = true;
                        break;
                    }
                }
                prop_assert!(bottlenecked, "flow {fi} has no bottleneck link");
            }
        }

        /// The allocation is invariant under flow permutation (uniqueness).
        #[test]
        fn order_independent((caps, paths) in arb_instance()) {
            let flows: Vec<FlowDemand<'_>> = paths
                .iter()
                .map(|p| FlowDemand { links: p, weight: 1.0 })
                .collect();
            let base = compute_rates(&caps, &flows);
            let mut rev = flows.clone();
            rev.reverse();
            let mut rates_rev = compute_rates(&caps, &rev);
            rates_rev.reverse();
            for (a, b) in base.iter().zip(&rates_rev) {
                prop_assert!((a - b).abs() < 1e-6, "order-dependent rates: {a} vs {b}");
            }
        }
    }
}
