//! Weighted max-min fair rate allocation (progressive filling).
//!
//! Given a set of flows, each crossing a set of links with fixed
//! capacities, the unique max-min fair allocation is computed by the
//! classic water-filling algorithm: repeatedly find the most-contended
//! link, give every unfrozen flow through it an equal (weight-proportional)
//! share of the link's remaining capacity, freeze those flows, and deduct
//! their rates from every link they cross.
//!
//! The allocation is *unique*, so the result is independent of iteration
//! order; ties in bottleneck selection are broken by link index purely for
//! determinism of intermediate state.
//!
//! Two entry points compute the same allocation:
//!
//! * [`compute_rates`] — the from-scratch reference: allocates its own
//!   working state per call and scans every link. Retained as the
//!   equivalence oracle for the incremental engine (`tests/equivalence.rs`).
//! * [`SolverWorkspace::solve`] — the hot-path kernel: borrows persistent
//!   buffers (zero allocation at steady state) and visits only the links
//!   the given flows actually cross, which makes it usable both for full
//!   solves and for *restricted subsets* (a connected component of the
//!   flow/link incidence graph). Bit-identical to [`compute_rates`]: same
//!   per-link accumulation order, same bottleneck tie-break, same clamps.

/// A flow description for rate computation: the links it crosses (as dense
/// indices) and its weight (relative share; 1.0 for ordinary flows).
#[derive(Clone, Debug)]
pub struct FlowDemand<'a> {
    /// Dense link indices this flow traverses (deduplicated by caller if
    /// the path revisits a link; paths from `hs-topology` are loopless).
    pub links: &'a [usize],
    /// Relative weight; must be > 0.
    pub weight: f64,
}

/// Compute weighted max-min fair rates (bits/s) for `flows` over links with
/// the given `capacities` (bits/s).
///
/// Returns one rate per flow, in input order. Flows with empty paths get
/// `f64::INFINITY` (they are not constrained by the network — the caller
/// treats them as instantaneous local copies).
pub fn compute_rates(capacities: &[f64], flows: &[FlowDemand<'_>]) -> Vec<f64> {
    let n_links = capacities.len();
    let n_flows = flows.len();
    let mut rates = vec![0.0f64; n_flows];
    if n_flows == 0 {
        return rates;
    }

    // Per-link: remaining capacity and total unfrozen weight.
    let mut rem_cap = capacities.to_vec();
    let mut link_weight = vec![0.0f64; n_links];
    // Which flows cross each link (indices into `flows`).
    let mut link_flows: Vec<Vec<u32>> = vec![Vec::new(); n_links];
    let mut frozen = vec![false; n_flows];
    let mut n_unfrozen = 0usize;

    for (fi, f) in flows.iter().enumerate() {
        debug_assert!(f.weight > 0.0, "flow weight must be positive");
        if f.links.is_empty() {
            rates[fi] = f64::INFINITY;
            frozen[fi] = true;
            continue;
        }
        n_unfrozen += 1;
        for &l in f.links {
            link_weight[l] += f.weight;
            link_flows[l].push(fi as u32);
        }
    }

    while n_unfrozen > 0 {
        // Find the bottleneck link: minimum per-weight fair share among
        // links that still carry unfrozen flows.
        let mut best_link = usize::MAX;
        let mut best_share = f64::INFINITY;
        for l in 0..n_links {
            if link_weight[l] > 0.0 {
                let share = (rem_cap[l].max(0.0)) / link_weight[l];
                if share < best_share {
                    best_share = share;
                    best_link = l;
                }
            }
        }
        if best_link == usize::MAX {
            // Shouldn't happen: unfrozen flows always have links with
            // positive weight. Guard against float pathology anyway.
            break;
        }
        // Freeze every unfrozen flow crossing the bottleneck at
        // weight * share, and deduct from all links it crosses.
        // Drain this link's flow list; frozen entries elsewhere are skipped
        // lazily via the `frozen` bitmap.
        let flows_here = std::mem::take(&mut link_flows[best_link]);
        for fi in flows_here {
            let fi = fi as usize;
            if frozen[fi] {
                continue;
            }
            let f = &flows[fi];
            let r = f.weight * best_share;
            rates[fi] = r;
            frozen[fi] = true;
            n_unfrozen -= 1;
            for &l in f.links {
                rem_cap[l] -= r;
                link_weight[l] -= f.weight;
                if link_weight[l] < 1e-12 {
                    link_weight[l] = 0.0;
                }
            }
        }
        link_weight[best_link] = 0.0;
    }
    rates
}

/// One flow's slice of the flat slot arena passed to
/// [`SolverWorkspace::solve`], plus its fair-share weight.
///
/// The arena layout decouples the solver from how the caller stores paths:
/// the caller appends each flow's (deduplicated) link indices to one flat
/// `Vec<usize>` and records the span here, so rebuilding the demand set for
/// a solve is a buffer refill, never a per-flow allocation.
#[derive(Clone, Copy, Debug)]
pub struct FlowSpan {
    /// Offset of the first link index in the flat arena.
    pub start: u32,
    /// Number of link indices (0 for an empty, unconstrained path).
    pub len: u32,
    /// Relative weight; must be > 0.
    pub weight: f64,
}

/// Persistent working state for the water-filling solver.
///
/// Per-link arrays are sized to the largest capacity vector seen and
/// re-initialized *lazily* (a generation stamp per link), so a solve touches
/// only the links its flows cross — `O(Σ path_len + rounds × active_links)`
/// regardless of topology size — and performs no allocation once warm.
#[derive(Default)]
pub struct SolverWorkspace {
    /// Remaining capacity per link (valid where `stamp == generation`).
    rem_cap: Vec<f64>,
    /// Total unfrozen weight per link (valid where `stamp == generation`).
    link_weight: Vec<f64>,
    /// Flow indices (into the span list) crossing each link.
    link_flows: Vec<Vec<u32>>,
    /// Lazy-init generation stamp per link.
    stamp: Vec<u64>,
    generation: u64,
    /// Links with at least one flow this solve, ascending (the bottleneck
    /// scan order — ascending matches `compute_rates`' tie-break).
    active: Vec<usize>,
    frozen: Vec<bool>,
    rates: Vec<f64>,
}

impl SolverWorkspace {
    /// Empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        SolverWorkspace::default()
    }

    /// Weighted max-min fair rates for the flows described by `spans` over
    /// `flat` (see [`FlowSpan`]), with link `capacities` in bits/s.
    ///
    /// Returns one rate per span, in span order; empty spans get
    /// `f64::INFINITY`. The result is bit-identical to [`compute_rates`]
    /// over the same flows — callers may pass *any subset* of the network's
    /// flows, and as long as that subset is closed under link sharing (a
    /// union of connected components of the flow/link graph), the rates
    /// equal those of a global solve restricted to the subset.
    pub fn solve(&mut self, capacities: &[f64], flat: &[usize], spans: &[FlowSpan]) -> &[f64] {
        let n_links = capacities.len();
        let n_flows = spans.len();
        if self.stamp.len() < n_links {
            self.rem_cap.resize(n_links, 0.0);
            self.link_weight.resize(n_links, 0.0);
            self.link_flows.resize_with(n_links, Vec::new);
            self.stamp.resize(n_links, 0);
        }
        self.frozen.clear();
        self.frozen.resize(n_flows, false);
        self.rates.clear();
        self.rates.resize(n_flows, 0.0);
        self.active.clear();
        self.generation += 1;
        let generation = self.generation;

        let mut n_unfrozen = 0usize;
        for (fi, s) in spans.iter().enumerate() {
            debug_assert!(s.weight > 0.0, "flow weight must be positive");
            let links = &flat[s.start as usize..(s.start + s.len) as usize];
            if links.is_empty() {
                self.rates[fi] = f64::INFINITY;
                self.frozen[fi] = true;
                continue;
            }
            n_unfrozen += 1;
            for &l in links {
                if self.stamp[l] != generation {
                    self.stamp[l] = generation;
                    self.rem_cap[l] = capacities[l];
                    self.link_weight[l] = 0.0;
                    self.link_flows[l].clear();
                    self.active.push(l);
                }
                self.link_weight[l] += s.weight;
                self.link_flows[l].push(fi as u32);
            }
        }
        // Bottleneck ties break by ascending link index, exactly as the
        // reference solver's 0..n_links scan does.
        self.active.sort_unstable();

        while n_unfrozen > 0 {
            let mut best_link = usize::MAX;
            let mut best_share = f64::INFINITY;
            for &l in &self.active {
                if self.link_weight[l] > 0.0 {
                    let share = (self.rem_cap[l].max(0.0)) / self.link_weight[l];
                    if share < best_share {
                        best_share = share;
                        best_link = l;
                    }
                }
            }
            if best_link == usize::MAX {
                // Shouldn't happen: unfrozen flows always have links with
                // positive weight. Guard against float pathology anyway.
                break;
            }
            // Freeze every unfrozen flow crossing the bottleneck. The flow
            // list is iterated in place (no `mem::take`: the buffer must
            // survive for reuse); stale frozen entries are skipped lazily.
            for i in 0..self.link_flows[best_link].len() {
                let fi = self.link_flows[best_link][i] as usize;
                if self.frozen[fi] {
                    continue;
                }
                let s = &spans[fi];
                let r = s.weight * best_share;
                self.rates[fi] = r;
                self.frozen[fi] = true;
                n_unfrozen -= 1;
                for &l in &flat[s.start as usize..(s.start + s.len) as usize] {
                    self.rem_cap[l] -= r;
                    self.link_weight[l] -= s.weight;
                    if self.link_weight[l] < 1e-12 {
                        self.link_weight[l] = 0.0;
                    }
                }
            }
            self.link_weight[best_link] = 0.0;
        }
        &self.rates[..n_flows]
    }
}

/// Aggregate-tier kernel: the single-bottleneck fast path (DESIGN.md §12).
///
/// A component is *uncongested beyond one bottleneck* when a single slot
/// constrains every flow: progressive filling then freezes the whole
/// component in its first round, and each flow's rate is simply
/// `weight × share` of that slot. [`OneRoundSolver::try_solve`] detects
/// the condition and produces those rates directly — no remaining-capacity
/// deductions, no frozen bitmap, no multi-round loop — or returns `None`
/// to hand off to the exact [`SolverWorkspace::solve`] when any second
/// link would saturate.
///
/// Bitwise contract: when `try_solve` returns `Some`, the rates are
/// bit-identical to [`SolverWorkspace::solve`] (and therefore to
/// [`compute_rates`]) on the same input. The kernel performs the same
/// per-slot weight accumulation in the same (span, path) order, scans
/// candidate bottlenecks in ascending slot order with the same strict
/// `<` tie-break, and computes each rate with the identical single
/// multiplication `weight * share`.
#[derive(Default)]
pub struct OneRoundSolver {
    /// Total weight per slot (valid where `stamp == generation`).
    weight: Vec<f64>,
    /// Flow count per slot (valid where `stamp == generation`).
    count: Vec<u32>,
    /// Lazy-init generation stamp per slot.
    stamp: Vec<u64>,
    generation: u64,
    /// Slots carrying at least one flow, ascending after the sort.
    active: Vec<usize>,
    rates: Vec<f64>,
}

impl OneRoundSolver {
    /// Empty solver; buffers grow on first use.
    pub fn new() -> Self {
        OneRoundSolver::default()
    }

    /// Single-bottleneck rates for the flows described by `spans` over
    /// `flat` (see [`FlowSpan`]), or `None` when more than one round of
    /// progressive filling would be needed (some second link saturates).
    pub fn try_solve(
        &mut self,
        capacities: &[f64],
        flat: &[usize],
        spans: &[FlowSpan],
    ) -> Option<&[f64]> {
        let n_links = capacities.len();
        let n_flows = spans.len();
        if self.stamp.len() < n_links {
            self.weight.resize(n_links, 0.0);
            self.count.resize(n_links, 0);
            self.stamp.resize(n_links, 0);
        }
        self.active.clear();
        self.generation += 1;
        let generation = self.generation;

        let mut n_constrained = 0usize;
        for s in spans {
            debug_assert!(s.weight > 0.0, "flow weight must be positive");
            let links = &flat[s.start as usize..(s.start + s.len) as usize];
            if links.is_empty() {
                continue;
            }
            n_constrained += 1;
            for &l in links {
                if self.stamp[l] != generation {
                    self.stamp[l] = generation;
                    self.weight[l] = 0.0;
                    self.count[l] = 0;
                    self.active.push(l);
                }
                self.weight[l] += s.weight;
                self.count[l] += 1;
            }
        }
        if n_constrained == 0 {
            // Only unconstrained flows: trivially one round.
            self.rates.clear();
            self.rates.resize(n_flows, f64::INFINITY);
            return Some(&self.rates[..n_flows]);
        }
        // Identical bottleneck selection to the exact solver's round one:
        // ascending slot order, strict `<` keeps the first minimal slot.
        self.active.sort_unstable();
        let mut best_link = usize::MAX;
        let mut best_share = f64::INFINITY;
        for &l in &self.active {
            if self.weight[l] > 0.0 {
                let share = (capacities[l].max(0.0)) / self.weight[l];
                if share < best_share {
                    best_share = share;
                    best_link = l;
                }
            }
        }
        if best_link == usize::MAX || (self.count[best_link] as usize) != n_constrained {
            // Some flow misses the bottleneck: a second link saturates in
            // a later round — hand off to the exact solver.
            return None;
        }
        self.rates.clear();
        for s in spans {
            if s.len == 0 {
                self.rates.push(f64::INFINITY);
            } else {
                self.rates.push(s.weight * best_share);
            }
        }
        Some(&self.rates[..n_flows])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demands<'a>(paths: &'a [Vec<usize>]) -> Vec<FlowDemand<'a>> {
        paths
            .iter()
            .map(|p| FlowDemand {
                links: p,
                weight: 1.0,
            })
            .collect()
    }

    #[test]
    fn single_flow_gets_full_link() {
        let paths = vec![vec![0]];
        let r = compute_rates(&[100.0], &demands(&paths));
        assert_eq!(r, vec![100.0]);
    }

    #[test]
    fn equal_flows_split_evenly() {
        let paths = vec![vec![0], vec![0], vec![0], vec![0]];
        let r = compute_rates(&[100.0], &demands(&paths));
        for &x in &r {
            assert!((x - 25.0).abs() < 1e-9);
        }
    }

    #[test]
    fn classic_parking_lot() {
        // Links: 0 and 1, both capacity 1. Flow A crosses both, B crosses
        // 0 only, C crosses 1 only. Max-min fair: A=0.5, B=0.5, C=0.5.
        let paths = vec![vec![0, 1], vec![0], vec![1]];
        let r = compute_rates(&[1.0, 1.0], &demands(&paths));
        assert!((r[0] - 0.5).abs() < 1e-9);
        assert!((r[1] - 0.5).abs() < 1e-9);
        assert!((r[2] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn unequal_capacities_release_bandwidth() {
        // Link 0 cap 1 shared by A,B; link 1 cap 10 carries B,C. B is
        // bottlenecked at 0.5 on link 0, so C gets 9.5 on link 1.
        let paths = vec![vec![0], vec![0, 1], vec![1]];
        let r = compute_rates(&[1.0, 10.0], &demands(&paths));
        assert!((r[0] - 0.5).abs() < 1e-9);
        assert!((r[1] - 0.5).abs() < 1e-9);
        assert!((r[2] - 9.5).abs() < 1e-9);
    }

    #[test]
    fn weights_bias_shares() {
        let paths = [vec![0], vec![0]];
        let flows = vec![
            FlowDemand {
                links: &paths[0],
                weight: 3.0,
            },
            FlowDemand {
                links: &paths[1],
                weight: 1.0,
            },
        ];
        let r = compute_rates(&[100.0], &flows);
        assert!((r[0] - 75.0).abs() < 1e-9);
        assert!((r[1] - 25.0).abs() < 1e-9);
    }

    #[test]
    fn empty_path_is_unconstrained() {
        let paths = vec![vec![], vec![0]];
        let r = compute_rates(&[100.0], &demands(&paths));
        assert!(r[0].is_infinite());
        assert_eq!(r[1], 100.0);
    }

    #[test]
    fn no_flows() {
        let r = compute_rates(&[100.0], &[]);
        assert!(r.is_empty());
    }

    /// Pack paths into the flat-arena shape the workspace consumes.
    fn pack(paths: &[Vec<usize>], weights: &[f64]) -> (Vec<usize>, Vec<FlowSpan>) {
        let mut flat = Vec::new();
        let mut spans = Vec::new();
        for (p, &w) in paths.iter().zip(weights) {
            spans.push(FlowSpan {
                start: flat.len() as u32,
                len: p.len() as u32,
                weight: w,
            });
            flat.extend_from_slice(p);
        }
        (flat, spans)
    }

    #[test]
    fn workspace_matches_reference_bitwise() {
        let caps = vec![1.0, 10.0, 3.0];
        let paths = vec![vec![0], vec![0, 1], vec![1], vec![], vec![1, 2]];
        let weights = vec![1.0, 2.0, 1.0, 1.0, 0.5];
        let flows: Vec<FlowDemand<'_>> = paths
            .iter()
            .zip(&weights)
            .map(|(p, &w)| FlowDemand {
                links: p,
                weight: w,
            })
            .collect();
        let expect = compute_rates(&caps, &flows);
        let (flat, spans) = pack(&paths, &weights);
        let mut ws = SolverWorkspace::new();
        // Twice through the same workspace: reuse must not leak state.
        for _ in 0..2 {
            let got = ws.solve(&caps, &flat, &spans);
            let a: Vec<u64> = expect.iter().map(|r| r.to_bits()).collect();
            let b: Vec<u64> = got.iter().map(|r| r.to_bits()).collect();
            assert_eq!(a, b, "workspace diverged from reference");
        }
    }

    #[test]
    fn workspace_subset_solve_matches_component_rates() {
        // Two disjoint components: {0,1} on links {0,1}, {2} on link {2}.
        // Solving only the second component must reproduce its global rate.
        let caps = vec![1.0, 1.0, 4.0];
        let paths = [vec![0, 1], vec![0], vec![2]];
        let weights = [1.0; 3];
        let flows: Vec<FlowDemand<'_>> = paths
            .iter()
            .map(|p| FlowDemand {
                links: p,
                weight: 1.0,
            })
            .collect();
        let global = compute_rates(&caps, &flows);
        let (flat, spans) = pack(&paths[2..], &weights[2..]);
        let mut ws = SolverWorkspace::new();
        let got = ws.solve(&caps, &flat, &spans);
        assert_eq!(got[0].to_bits(), global[2].to_bits());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_instance() -> impl Strategy<Value = (Vec<f64>, Vec<Vec<usize>>)> {
        (2usize..8).prop_flat_map(|n_links| {
            let caps = proptest::collection::vec(1.0f64..1000.0, n_links..=n_links);
            let paths = proptest::collection::vec(
                proptest::collection::hash_set(0..n_links, 1..=n_links.min(4)).prop_map(|s| {
                    let mut v: Vec<usize> = s.into_iter().collect();
                    v.sort_unstable();
                    v
                }),
                1..12,
            );
            (caps, paths)
        })
    }

    proptest! {
        /// No link is oversubscribed and every flow is bottlenecked
        /// somewhere (the defining property of max-min fairness: a flow's
        /// rate can't be raised without lowering an equal-or-smaller one).
        #[test]
        fn feasible_and_maxmin((caps, paths) in arb_instance()) {
            let flows: Vec<FlowDemand<'_>> = paths
                .iter()
                .map(|p| FlowDemand { links: p, weight: 1.0 })
                .collect();
            let rates = compute_rates(&caps, &flows);
            // Feasibility.
            for (l, &cap) in caps.iter().enumerate() {
                let used: f64 = paths
                    .iter()
                    .zip(&rates)
                    .filter(|(p, _)| p.contains(&l))
                    .map(|(_, &r)| r)
                    .sum();
                prop_assert!(used <= cap * (1.0 + 1e-9), "link {l} oversubscribed: {used} > {cap}");
            }
            // Bottleneck property: each flow crosses a saturated link on
            // which it has a maximal rate among that link's flows.
            for (fi, p) in paths.iter().enumerate() {
                let mut bottlenecked = false;
                for &l in p {
                    let used: f64 = paths
                        .iter()
                        .zip(&rates)
                        .filter(|(q, _)| q.contains(&l))
                        .map(|(_, &r)| r)
                        .sum();
                    let max_on_link = paths
                        .iter()
                        .zip(&rates)
                        .filter(|(q, _)| q.contains(&l))
                        .map(|(_, &r)| r)
                        .fold(0.0f64, f64::max);
                    if used >= caps[l] * (1.0 - 1e-6) && rates[fi] >= max_on_link - 1e-6 {
                        bottlenecked = true;
                        break;
                    }
                }
                prop_assert!(bottlenecked, "flow {fi} has no bottleneck link");
            }
        }

        /// The workspace kernel reproduces the reference solver bit for
        /// bit on arbitrary instances (the property the incremental
        /// engine's component-scoped solves lean on).
        #[test]
        fn workspace_bitwise_equals_reference((caps, paths) in arb_instance()) {
            let flows: Vec<FlowDemand<'_>> = paths
                .iter()
                .map(|p| FlowDemand { links: p, weight: 1.0 })
                .collect();
            let expect = compute_rates(&caps, &flows);
            let mut flat = Vec::new();
            let mut spans = Vec::new();
            for p in &paths {
                spans.push(FlowSpan {
                    start: flat.len() as u32,
                    len: p.len() as u32,
                    weight: 1.0,
                });
                flat.extend_from_slice(p);
            }
            let mut ws = SolverWorkspace::new();
            let got = ws.solve(&caps, &flat, &spans);
            for (fi, (a, b)) in expect.iter().zip(got).enumerate() {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "flow {} diverged", fi);
            }
        }

        /// The allocation is invariant under flow permutation (uniqueness).
        #[test]
        fn order_independent((caps, paths) in arb_instance()) {
            let flows: Vec<FlowDemand<'_>> = paths
                .iter()
                .map(|p| FlowDemand { links: p, weight: 1.0 })
                .collect();
            let base = compute_rates(&caps, &flows);
            let mut rev = flows.clone();
            rev.reverse();
            let mut rates_rev = compute_rates(&caps, &rev);
            rates_rev.reverse();
            for (a, b) in base.iter().zip(&rates_rev) {
                prop_assert!((a - b).abs() < 1e-6, "order-dependent rates: {a} vs {b}");
            }
        }
    }
}
