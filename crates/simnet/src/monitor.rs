//! Link utilization monitoring — the "hardware counters" of §IV.
//!
//! The paper's switch control plane "periodically polls hardware counters
//! from the data plane to obtain link utilization metrics", and GPU agents
//! read NVLink utilization via DCGM. [`LinkMonitor`] reproduces that
//! observation channel: it samples [`SimNet`]'s cumulative
//! byte counters on a polling cadence and maintains an exponentially
//! weighted moving average of per-link utilization over the polling window.
//!
//! The *online scheduler* consumes these estimates (not the simulator's
//! ground-truth instantaneous rates), so measurement lag and smoothing are
//! part of the reproduced system, exactly as on real hardware.

use crate::net::SimNet;
use hs_des::SimTime;
use hs_topology::LinkId;

/// Windowed, smoothed per-link utilization estimation.
#[derive(Clone, Debug)]
pub struct LinkMonitor {
    last_poll: SimTime,
    /// Per-direction byte counters (index = link*2 + direction).
    last_bytes: Vec<f64>,
    /// EWMA of utilization in `[0, 1]` per link (busier direction).
    ewma: Vec<f64>,
    /// Smoothing factor for new samples, `(0, 1]`; 1.0 = no smoothing.
    alpha: f64,
}

impl LinkMonitor {
    /// Create a monitor for `n_links` links with EWMA factor `alpha`.
    pub fn new(n_links: usize, alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        LinkMonitor {
            last_poll: SimTime::ZERO,
            last_bytes: vec![0.0; 2 * n_links],
            ewma: vec![0.0; n_links],
            alpha,
        }
    }

    /// Poll the network's counters at time `now` and fold the window's
    /// average utilization into the EWMA. Returns the raw window samples.
    ///
    /// Polling with a zero-length window leaves the estimate unchanged.
    pub fn poll(&mut self, net: &SimNet, now: SimTime) -> Vec<f64> {
        let dt = now.saturating_since(self.last_poll).as_secs_f64();
        let caps = net.capacities();
        let mut samples = vec![0.0; self.ewma.len()];
        if dt <= 0.0 {
            return samples;
        }
        for (i, sample) in samples.iter_mut().enumerate() {
            let mut util = 0.0f64;
            for dir in [false, true] {
                let bytes = net.cumulative_bytes_dir(LinkId(i as u32), dir);
                let idx = i * 2 + dir as usize;
                let delta = (bytes - self.last_bytes[idx]).max(0.0);
                util = util.max(((delta * 8.0 / dt) / caps[i]).clamp(0.0, 1.0));
                self.last_bytes[idx] = bytes;
            }
            *sample = util;
            self.ewma[i] = (1.0 - self.alpha) * self.ewma[i] + self.alpha * util;
        }
        self.last_poll = now;
        samples
    }

    /// Smoothed utilization estimate for one link.
    pub fn utilization(&self, l: LinkId) -> f64 {
        self.ewma[l.idx()]
    }

    /// All smoothed utilization estimates.
    pub fn snapshot(&self) -> &[f64] {
        &self.ewma
    }

    /// Estimated residual bandwidth per link given capacities, bits/s.
    pub fn residual(&self, capacities: &[f64]) -> Vec<f64> {
        self.ewma
            .iter()
            .zip(capacities)
            .map(|(u, c)| ((1.0 - u) * c).max(0.0))
            .collect()
    }

    /// Time of the last poll.
    pub fn last_poll(&self) -> SimTime {
        self.last_poll
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs_topology::graph::{bandwidth, GpuSpec, GraphBuilder, LinkKind, ServerId};

    fn one_link() -> (hs_topology::Graph, LinkId) {
        let mut b = GraphBuilder::new();
        let g0 = b.add_gpu(ServerId(0), 0, GpuSpec::a100_40g());
        let s = b.add_access_switch(true, "s");
        let l = b.add_link(g0, s, LinkKind::Ethernet, bandwidth::ETH_100G, 1_000);
        (b.build(), l)
    }

    #[test]
    fn measures_busy_link() {
        let (g, l) = one_link();
        let mut net = SimNet::new(&g);
        let mut mon = LinkMonitor::new(g.link_count(), 1.0);
        // Saturate the link for 1 ms: 100 Gbps = 12.5 MB per ms.
        net.start_flow(SimTime::ZERO, &[(l, true)], 12_500_000, 0);
        net.advance_to(SimTime::from_millis(1));
        let s = mon.poll(&net, SimTime::from_millis(1));
        assert!((s[l.idx()] - 1.0).abs() < 0.01, "sample {}", s[l.idx()]);
        assert!((mon.utilization(l) - 1.0).abs() < 0.01);
    }

    #[test]
    fn idle_link_reads_zero() {
        let (g, l) = one_link();
        let net = SimNet::new(&g);
        let mut mon = LinkMonitor::new(g.link_count(), 1.0);
        mon.poll(&net, SimTime::from_millis(1));
        assert_eq!(mon.utilization(l), 0.0);
    }

    #[test]
    fn ewma_smooths() {
        let (g, l) = one_link();
        let mut net = SimNet::new(&g);
        let mut mon = LinkMonitor::new(g.link_count(), 0.5);
        // Busy first window.
        net.start_flow(SimTime::ZERO, &[(l, true)], 12_500_000, 0);
        net.advance_to(SimTime::from_millis(1));
        mon.poll(&net, SimTime::from_millis(1));
        assert!((mon.utilization(l) - 0.5).abs() < 0.01);
        // Idle second window decays toward zero.
        net.advance_to(SimTime::from_millis(2));
        mon.poll(&net, SimTime::from_millis(2));
        assert!((mon.utilization(l) - 0.25).abs() < 0.01);
    }

    #[test]
    fn zero_window_is_noop() {
        let (g, l) = one_link();
        let net = SimNet::new(&g);
        let mut mon = LinkMonitor::new(g.link_count(), 1.0);
        mon.poll(&net, SimTime::ZERO);
        assert_eq!(mon.utilization(l), 0.0);
        assert_eq!(mon.last_poll(), SimTime::ZERO);
    }

    #[test]
    fn residual_inverts_utilization() {
        let (g, l) = one_link();
        let mut net = SimNet::new(&g);
        let mut mon = LinkMonitor::new(g.link_count(), 1.0);
        net.start_flow(SimTime::ZERO, &[(l, true)], 6_250_000, 0); // half a window
        net.advance_to(SimTime::from_millis(1));
        mon.poll(&net, SimTime::from_millis(1));
        let res = mon.residual(net.capacities());
        assert!((res[l.idx()] - 0.5 * bandwidth::ETH_100G).abs() < 1e9);
    }
}
