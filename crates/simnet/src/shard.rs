//! Sharded component simulation for bulk advances (DESIGN.md §12).
//!
//! When [`crate::net::SimNet::advance_to`] finds many due completions, it
//! splits the flow/link graph into connected components, moves each
//! component's flows and directed-slot state into an owned [`ShardTask`],
//! and runs the tasks on rayon workers. A shard replays exactly the
//! sequential engine's inner loop — pop the earliest valid completion,
//! materialize, remove, component-scoped re-solve (aggregate tier first)
//! — over data it exclusively owns, so no synchronization is needed and
//! the float operations are identical instruction for instruction.
//!
//! Determinism contract: a shard's `done` list is its completion trace in
//! pop order (keyed `(SimTime, FlowId)`; *not* globally sorted — a
//! cascade can finalize a drained flow retroactively, so traces are not
//! monotone in time). The caller k-way-merges the per-shard traces by
//! their head keys, which reproduces the sequential global heap's pop
//! order bit for bit: at any instant the sequential engine's next pop is
//! the minimum over the components' next pops.

use crate::fairshare::{FlowSpan, OneRoundSolver, SolverWorkspace};
use crate::net::{self, assign_rate, materialize, Flow, FlowId, HeapEntry};
use hs_des::SimTime;
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Per-worker solver scratch, reused across every shard a thread runs.
/// A typical shard is a handful of flows; allocating fresh solver
/// workspaces per shard would cost more than the solve itself. Contents
/// never survive into results (everything is cleared or generation-
/// stamped per use), so reuse cannot perturb determinism.
#[derive(Default)]
struct ShardScratch {
    ws: SolverWorkspace,
    agg: OneRoundSolver,
    heap: BinaryHeap<HeapEntry>,
    flat: Vec<usize>,
    spans: Vec<FlowSpan>,
    live: Vec<usize>,
}

thread_local! {
    static SHARD_SCRATCH: RefCell<ShardScratch> = RefCell::default();
}

/// One connected component, extracted with everything a worker needs.
/// Slot-indexed vectors (`caps`/`cum`/`rate`) are packed in ascending
/// global-slot order (`slots`), so local index order preserves the
/// solver's global link tie-breaks.
pub(crate) struct ShardTask {
    /// Engine clock at extraction.
    pub clock: SimTime,
    /// Component flow ids, ascending.
    pub ids: Vec<FlowId>,
    /// Flow state, parallel to `ids`; `None` once completed in-shard.
    pub flows: Vec<Option<Flow>>,
    /// Each flow's epoch at extraction — survivors whose epoch moved need
    /// a fresh global heap entry on merge-back.
    pub pre_epoch: Vec<u64>,
    /// Global directed-slot indices owned by this component, ascending.
    pub slots: Vec<usize>,
    /// Directed capacity per owned slot.
    pub caps: Vec<f64>,
    /// Cumulative bytes per owned slot (written back on merge).
    pub cum: Vec<f64>,
    /// Allocated rate per owned slot (written back on merge).
    pub rate: Vec<f64>,
}

/// A finished shard: its completion trace in pop order plus the mutated
/// task state to merge back.
pub(crate) struct ShardOutcome {
    pub done: Vec<(SimTime, FlowId, Flow)>,
    pub task: ShardTask,
    /// Component re-solves performed (for [`crate::net::SolveStats`]).
    pub solves: u64,
    /// How many of those settled in the aggregate tier.
    pub aggregate_solves: u64,
}

/// Local index of a global directed slot within the task's packed arrays.
#[inline]
fn local_slot(slots: &[usize], global: usize) -> usize {
    slots
        .binary_search(&global)
        .expect("flow path stays inside its component")
}

/// Run one component forward to `now`, mirroring the sequential engine's
/// advance loop over owned state.
pub(crate) fn run_shard(t: ShardTask, now: SimTime) -> ShardOutcome {
    SHARD_SCRATCH.with(|scratch| run_shard_with(&mut scratch.borrow_mut(), t, now))
}

fn run_shard_with(scratch: &mut ShardScratch, mut t: ShardTask, now: SimTime) -> ShardOutcome {
    let ShardScratch {
        ws,
        agg,
        heap,
        flat,
        spans,
        live,
    } = scratch;
    heap.clear();
    // Rebuild the completion heap from flow state: each live flow's
    // current (finish, id, epoch) key is exactly its one valid entry in
    // the global heap (stale entries there are discardable, so dropping
    // them at extraction was lossless).
    for (i, f) in t.flows.iter().enumerate() {
        let f = f.as_ref().expect("shard starts with all flows live");
        if f.finish_at < SimTime::MAX {
            heap.push(Reverse((f.finish_at, t.ids[i], f.epoch)));
        }
    }
    let mut done: Vec<(SimTime, FlowId, Flow)> = Vec::new();
    let mut clock = t.clock;
    let mut solves = 0u64;
    let mut aggregate_solves = 0u64;
    loop {
        // Pop the earliest valid entry (same lazy invalidation as the
        // global heap).
        let (ti, id) = loop {
            let Some(&Reverse((ti, id, ep))) = heap.peek() else {
                // All remaining flows starved or none left.
                let out = ShardOutcome {
                    done,
                    task: t,
                    solves,
                    aggregate_solves,
                };
                return finishup(out, now, clock);
            };
            let i = t.ids.binary_search(&id).expect("heap names a shard flow");
            match t.flows[i].as_ref() {
                Some(f) if f.epoch == ep => break (ti, id),
                _ => {
                    heap.pop();
                }
            }
        };
        if ti > now {
            let out = ShardOutcome {
                done,
                task: t,
                solves,
                aggregate_solves,
            };
            return finishup(out, now, clock);
        }
        heap.pop();
        clock = clock.max(ti);
        let i = t.ids.binary_search(&id).expect("heap names a shard flow");
        let mut f = t.flows[i].take().expect("front flow is live");
        let slots = &t.slots;
        materialize(&mut f, id, clock, &mut t.cum, heap, |d| {
            local_slot(slots, net::slot(d))
        });
        f.remaining_bytes = 0.0;
        done.push((ti, id, f));
        // Each completion dirties the component; re-solve at the pop
        // clock before looking for the next event (exactly when the
        // sequential engine's `solve_if_dirty` would run).
        solves += 1;
        solve_shard(
            &mut t,
            clock,
            ws,
            agg,
            heap,
            flat,
            spans,
            live,
            &mut aggregate_solves,
        );
    }
}

/// Terminal bookkeeping: the shard hands state back at `now` (the caller
/// sets the engine clock); nothing to do because accrual is lazy, but the
/// debug assertion pins that the trace never runs past the window.
fn finishup(out: ShardOutcome, now: SimTime, clock: SimTime) -> ShardOutcome {
    debug_assert!(clock <= now, "shard clock overran the advance window");
    out
}

/// Component-scoped re-solve over the shard's live flows — the same
/// build-solve-assign sequence as the engine's `solve_scoped`, with slot
/// indices remapped through the packed arrays. Live flows are visited in
/// ascending id order (`ids` is sorted), so per-link weight sums
/// accumulate in exactly the order the sequential engine uses.
#[allow(clippy::too_many_arguments)]
fn solve_shard(
    t: &mut ShardTask,
    clock: SimTime,
    ws: &mut SolverWorkspace,
    agg: &mut OneRoundSolver,
    heap: &mut BinaryHeap<HeapEntry>,
    flat: &mut Vec<usize>,
    spans: &mut Vec<FlowSpan>,
    live: &mut Vec<usize>,
    aggregate_solves: &mut u64,
) {
    flat.clear();
    spans.clear();
    live.clear();
    for (i, f) in t.flows.iter().enumerate() {
        let Some(f) = f.as_ref() else { continue };
        live.push(i);
        spans.push(FlowSpan {
            start: flat.len() as u32,
            len: f.path.len() as u32,
            weight: f.weight,
        });
        flat.extend(f.path.iter().map(|&d| local_slot(&t.slots, net::slot(d))));
    }
    let rates: &[f64] = match agg.try_solve(&t.caps, flat, spans) {
        Some(r) => {
            *aggregate_solves += 1;
            r
        }
        None => ws.solve(&t.caps, flat, spans),
    };
    for r in t.rate.iter_mut() {
        *r = 0.0;
    }
    for (k, &i) in live.iter().enumerate() {
        let id = t.ids[i];
        let f = t.flows[i].as_mut().expect("live flow");
        let rate = rates[k];
        if rate.is_finite() {
            for &d in &f.path {
                t.rate[local_slot(&t.slots, net::slot(d))] += rate;
            }
        }
        if rate.to_bits() != f.rate_bps.to_bits() {
            let slots = &t.slots;
            materialize(f, id, clock, &mut t.cum, heap, |d| {
                local_slot(slots, net::slot(d))
            });
            assign_rate(f, id, rate, clock, heap);
        }
    }
}
