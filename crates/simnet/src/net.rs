//! The flow-level network simulator.
//!
//! [`SimNet`] tracks a set of active [`Flow`]s, allocates link bandwidth
//! among them max-min fairly, and advances flow progress in lock-step with
//! an external clock. It is an *event source*: a parent simulation asks
//! [`SimNet::next_event_time`] when the earliest flow will finish, advances
//! its own clock, then calls [`SimNet::advance_to`] to collect completions.
//!
//! A flow's completion time is `max(serialization finish, start +
//! path propagation delay)`; serialization progress accrues at the flow's
//! current fair-share rate, which changes whenever flows start or finish.
//!
//! # Incremental two-tier fair-share engine
//!
//! Rate maintenance is *incremental* (see DESIGN.md §9 and §12). The
//! simulator owns a persistent [`SolverWorkspace`] plus a link→flow
//! incidence table, so a flow add/remove triggers a **component-scoped**
//! re-solve: only the flows transitively sharing a link with the changed
//! flow are re-rated (max-min allocations decompose across connected
//! components of the flow/link graph, so untouched components keep their
//! exact rates). [`SimNet::set_link_scale`] is scoped the same way — a
//! capacity change can only move bottlenecks within the scaled link's
//! component. Each scoped solve first tries the **aggregate tier**
//! ([`OneRoundSolver`]): a component constrained by a single bottleneck
//! link is settled in one round, bitwise-identical to the exact solver,
//! and only a component where a second link saturates hands off to the
//! full water-filling loop.
//!
//! Flow progress is accrued **lazily at touch points**: a flow's
//! `remaining_bytes` is materialized only when its rate *value* changes
//! (or it is cancelled/aborted/completed) — points that are identical in
//! scoped, full-resolve, and sharded modes, which is what keeps all modes
//! bit-identical. Byte-counter queries ([`SimNet::cumulative_bytes_dir`],
//! [`SimNet::flow_remaining`]) are pure: they add the pending in-flight
//! contribution without mutating state. Completion lookup uses a
//! lazily-invalidated min-heap of `(finish, flow, epoch)` entries — this
//! doubles as the position heap of the aggregate tier — making
//! [`SimNet::next_event_time`] and [`SimNet::advance_to`] `O(log n)` per
//! event with *no* per-event scan over unrelated flows.
//!
//! Bulk advances over many due completions are **sharded**: independent
//! connected components are extracted as owned tasks, simulated on rayon
//! workers, and their completion lists merged deterministically by
//! `(SimTime, FlowId)` (see `shard.rs` and DESIGN.md §12). Results are
//! bit-identical to the sequential loop: `tests/equivalence.rs` drives
//! arbitrary event sequences through every mode and a retained reference
//! implementation and asserts identical rates, completions, and
//! cumulative link bytes.

use crate::fairshare::{FlowSpan, OneRoundSolver, SolverWorkspace};
use crate::shard::{run_shard, ShardTask};
use hs_des::{SimSpan, SimTime};
use hs_topology::{Graph, LinkId};
use rayon::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One directed hop: the link and whether it is traversed `a -> b`
/// (links are full duplex; each direction is its own capacity pool).
pub type DirLink = (LinkId, bool);

/// Dense slot index of a directed link.
#[inline]
pub(crate) fn slot(d: DirLink) -> usize {
    d.0.idx() * 2 + d.1 as usize
}

/// Identifier of an active (or completed) flow.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FlowId(pub u64);

/// An active transfer.
#[derive(Clone, Debug)]
pub struct Flow {
    /// Directed hops the flow traverses (loopless).
    pub path: Vec<DirLink>,
    /// Bytes still to serialize *as of the last materialization point*
    /// (rate change, cancel, or completion). For the live value at the
    /// current clock use [`SimNet::flow_remaining`]; flows returned by
    /// cancel/abort/complete are materialized before they are handed out.
    pub remaining_bytes: f64,
    /// Total size at start (for reporting).
    pub size_bytes: u64,
    /// Current allocated rate, bits/s (∞ for empty paths).
    pub rate_bps: f64,
    /// Relative fair-share weight.
    pub weight: f64,
    /// Start time.
    pub started: SimTime,
    /// Total propagation delay along the path.
    pub prop: SimSpan,
    /// Completion cannot occur before this; once the flow drains, holds
    /// drain time + propagation (the last bit's arrival).
    pub earliest_finish: SimTime,
    /// Caller-supplied tag for demultiplexing completions.
    pub tag: u64,
    /// Canonical completion estimate: fixed at each rate assignment (or
    /// drain), never recomputed in between, so heap keys stay exact.
    /// `SimTime::MAX` while starved (rate 0).
    pub(crate) finish_at: SimTime,
    /// Progress is accrued up to this instant; the window
    /// `(touched, clock]` is pending at `rate_bps` (lazy accrual).
    pub(crate) touched: SimTime,
    /// Validity epoch of this flow's newest heap entry; entries carrying
    /// an older epoch are stale and discarded when they surface.
    /// Per-flow (not global) so shard execution order cannot influence it.
    pub(crate) epoch: u64,
    /// Visit stamp for the component BFS (scoped re-solves).
    pub(crate) seen: u64,
}

impl Flow {
    /// The flow's current completion estimate (`SimTime::MAX` while it is
    /// starved by a dead link).
    pub fn finish_at(&self) -> SimTime {
        self.finish_at
    }
}

/// Min-heap entry: `(finish estimate, flow, epoch)`. The epoch tiebreak
/// keeps pop order fully deterministic even among stale duplicates.
pub(crate) type HeapEntry = Reverse<(SimTime, FlowId, u64)>;

/// Accrue `f`'s progress over `(f.touched, clock]` at its current rate.
///
/// This is THE materialization point of the lazy-accrual contract: it runs
/// only when the flow's rate value is about to change, or the flow is
/// cancelled/aborted/completed — events that occur at identical instants
/// in scoped, full-resolve, and sharded modes (rates are bitwise equal
/// across modes), so every mode performs the identical float operations.
/// `to_slot` maps a directed hop to the index into `cum` (global slots
/// for [`SimNet`], component-local slots for a shard).
pub(crate) fn materialize<M: Fn(DirLink) -> usize>(
    f: &mut Flow,
    id: FlowId,
    clock: SimTime,
    cum: &mut [f64],
    heap: &mut BinaryHeap<HeapEntry>,
    to_slot: M,
) {
    if clock <= f.touched {
        return;
    }
    let base = f.touched;
    f.touched = clock;
    if f.rate_bps > 0.0 && f.rate_bps.is_finite() && f.remaining_bytes > 0.0 {
        let dt = (clock - base).as_secs_f64();
        let bytes = f.rate_bps / 8.0 * dt;
        let consumed = bytes.min(f.remaining_bytes);
        // If the flow drains inside this window, record the last bit's
        // arrival time (drain instant + propagation).
        if consumed >= f.remaining_bytes {
            let drain_secs = f.remaining_bytes * 8.0 / f.rate_bps;
            let drained_at = base + SimSpan::from_secs_f64(drain_secs);
            f.earliest_finish = f.earliest_finish.max(drained_at + f.prop);
        }
        f.remaining_bytes -= consumed;
        if f.remaining_bytes < 1e-6 {
            f.remaining_bytes = 0.0;
        }
        for &d in &f.path {
            cum[to_slot(d)] += consumed;
        }
        if f.remaining_bytes <= 0.0 && f.finish_at != f.earliest_finish {
            // Drain transition: the estimate is final now.
            f.finish_at = f.earliest_finish;
            f.epoch += 1;
            heap.push(Reverse((f.finish_at, id, f.epoch)));
        }
    } else if f.rate_bps.is_infinite() {
        // Empty-path flow: delivered instantly, no link bytes.
        f.remaining_bytes = 0.0;
    }
}

/// Bytes `f` would consume if materialized at `clock` — the pure
/// (non-mutating) mirror of [`materialize`]'s consumption arithmetic,
/// used by the query accessors.
pub(crate) fn pending_consumed(f: &Flow, clock: SimTime) -> f64 {
    if clock > f.touched && f.rate_bps > 0.0 && f.rate_bps.is_finite() && f.remaining_bytes > 0.0 {
        let dt = (clock - f.touched).as_secs_f64();
        (f.rate_bps / 8.0 * dt).min(f.remaining_bytes)
    } else {
        0.0
    }
}

/// Completion estimate for a *serializing* flow at `clock` (callers
/// handle the drained and starved cases).
pub(crate) fn serial_estimate(clock: SimTime, f: &Flow) -> SimTime {
    if f.rate_bps.is_infinite() {
        return f.earliest_finish;
    }
    // simlint::allow(float-eq, 0.0 is an exact assigned sentinel for starved flows, never computed)
    if f.rate_bps == 0.0 {
        return SimTime::MAX;
    }
    let secs = f.remaining_bytes * 8.0 / f.rate_bps;
    let ser = clock + SimSpan::from_secs_f64(secs).saturating_add(SimSpan::from_nanos(1));
    (ser + f.prop).max(f.earliest_finish)
}

/// Install a freshly solved rate on `f`. The completion estimate (and
/// its heap entry) is refreshed only when the rate *value* changed:
/// under an unchanged rate the estimate is invariant (progress accrues
/// at exactly that rate), so keeping the stored one avoids rounding
/// drift — the property that makes incremental and from-scratch
/// solving bit-identical. Callers must [`materialize`] first when the
/// rate bits differ.
pub(crate) fn assign_rate(
    f: &mut Flow,
    id: FlowId,
    rate: f64,
    clock: SimTime,
    heap: &mut BinaryHeap<HeapEntry>,
) {
    if rate.to_bits() == f.rate_bps.to_bits() {
        return;
    }
    f.rate_bps = rate;
    if f.remaining_bytes <= 0.0 {
        // Drained: completion waits only on propagation; the rate no
        // longer matters for the estimate.
        return;
    }
    let finish = serial_estimate(clock, f);
    if finish != f.finish_at {
        f.finish_at = finish;
        f.epoch += 1;
        if finish < SimTime::MAX {
            heap.push(Reverse((finish, id, f.epoch)));
        }
    }
}

/// Counters describing how much solving work the engine performed —
/// the observable for scoping/aggregate-tier regression tests and for
/// benchmark reporting. Monotone over the simulator's lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Component-scoped re-solves (each may settle via the aggregate
    /// tier or hand off to the exact solver).
    pub scoped_solves: u64,
    /// Scoped solves settled entirely by the one-round aggregate tier.
    pub aggregate_solves: u64,
    /// Global re-solves (only in [`SimNet::set_full_resolve`] mode).
    pub full_solves: u64,
    /// Total flows rated across all solves (the work metric: a scoped
    /// solve of a k-flow component adds k).
    pub flows_rated: u64,
    /// Re-solves performed inside shard workers during bulk advances.
    pub shard_solves: u64,
    /// Bulk advances that took the sharded path.
    pub sharded_batches: u64,
    /// Component shards executed across all sharded batches.
    pub shards_run: u64,
}

/// Reusable buffers for building solver inputs and running the component
/// BFS — allocation-free at steady state.
#[derive(Default)]
struct SolveScratch {
    /// Flat directed-slot arena (all component paths back to back).
    flat: Vec<usize>,
    /// One span per component flow, in ascending [`FlowId`] order.
    spans: Vec<FlowSpan>,
    /// Component flow ids, parallel to `spans`.
    ids: Vec<FlowId>,
    /// Directed slots belonging to the component (incl. seed slots whose
    /// last flow just left — their allocated rate must drop to zero).
    comp_links: Vec<usize>,
    /// BFS work stack of directed slots.
    queue: Vec<usize>,
    /// Visit stamp per directed slot (lazy reset via generation counter).
    link_stamp: Vec<u64>,
}

/// Flow-level network state over a fixed topology.
pub struct SimNet {
    /// Per-link capacity (each *direction* gets the full capacity:
    /// full-duplex links). Current, i.e. after fault scaling.
    capacities: Vec<f64>,
    /// Nominal per-link capacity; `capacities[i] = base_capacities[i] *
    /// scale` where scale is set by [`SimNet::set_link_scale`].
    base_capacities: Vec<f64>,
    /// Directed-slot capacity vector fed to the solver (2 slots per link),
    /// kept in sync with `capacities`.
    dir_caps: Vec<f64>,
    link_latency_ns: Vec<u64>,
    /// Active flows, stored as a slab indexed by `FlowId` — ids are
    /// issued monotonically and never reused, so a flow's id *is* its
    /// slot. Per-event validity checks dominate the hot path and a direct
    /// index beats any hash; slab order is ascending-id order, which is
    /// exactly what every order-sensitive traversal needs. A completed
    /// flow leaves a `None` slot behind: retained memory is proportional
    /// to flows ever started (~a pointer-sized header plus the `Flow`
    /// footprint per slot), the price of hash-free lookups.
    flows: Vec<Option<Flow>>,
    /// Number of `Some` entries in `flows`.
    n_live: usize,
    next_id: u64,
    clock: SimTime,
    /// Cumulative bytes delivered per directed link as of each flow's last
    /// materialization (index = link*2 + direction). Queries add the
    /// pending in-flight window on top — see
    /// [`SimNet::cumulative_bytes_dir`].
    cum_bytes: Vec<f64>,
    /// Allocated rate per directed link (sum of flow rates), bits/s.
    link_rate: Vec<f64>,
    /// Which flows cross each directed slot, ascending by id (ids are
    /// monotone, so insertion is an append and order is free).
    incidence: Vec<Vec<FlowId>>,
    dirty: bool,
    /// Directed slots touched by flow adds/removes (or a capacity change)
    /// since the last solve.
    seed_slots: Vec<usize>,
    /// Lazy-invalidation completion heap; doubles as the aggregate tier's
    /// position heap (a single-bottleneck component's next event is its
    /// earliest heap entry).
    heap: BinaryHeap<HeapEntry>,
    /// Generation counter for BFS visit stamps.
    visit_gen: u64,
    ws: SolverWorkspace,
    /// Aggregate tier: one-round single-bottleneck kernel.
    agg: OneRoundSolver,
    scratch: SolveScratch,
    /// Validation/benchmark knob: when set, every re-solve is global and
    /// bulk advances never shard (the pre-incremental reference
    /// behaviour). Results are bit-identical either way — asserted by
    /// `tests/equivalence.rs`.
    full_resolve: bool,
    /// A bulk advance with more than this many due completions takes the
    /// sharded path; `usize::MAX` disables sharding.
    shard_threshold: usize,
    stats: SolveStats,
    /// Flow/link event sink; no-op unless attached via
    /// [`SimNet::set_tracer`]. Never affects simulation state.
    tracer: hs_obs::Tracer,
}

impl SimNet {
    /// Create a simulator over the links of `graph`.
    pub fn new(graph: &Graph) -> Self {
        let capacities = graph.capacities();
        let link_latency_ns = graph.links().map(|(_, l)| l.latency_ns).collect();
        let n = capacities.len();
        let mut dir_caps = Vec::with_capacity(2 * n);
        for &c in &capacities {
            dir_caps.push(c);
            dir_caps.push(c);
        }
        SimNet {
            base_capacities: capacities.clone(),
            capacities,
            dir_caps,
            link_latency_ns,
            flows: Vec::new(),
            n_live: 0,
            next_id: 0,
            clock: SimTime::ZERO,
            cum_bytes: vec![0.0; 2 * n],
            link_rate: vec![0.0; 2 * n],
            incidence: vec![Vec::new(); 2 * n],
            dirty: false,
            seed_slots: Vec::new(),
            heap: BinaryHeap::new(),
            visit_gen: 0,
            ws: SolverWorkspace::new(),
            agg: OneRoundSolver::new(),
            scratch: SolveScratch {
                link_stamp: vec![0; 2 * n],
                ..SolveScratch::default()
            },
            full_resolve: false,
            // Sharding only pays for itself when there are workers to
            // hand shards to: extraction and merge-back are pure
            // overhead on a single-thread pool, where the sequential
            // loop over the same batch is strictly faster. Output is
            // bit-identical either way.
            shard_threshold: if rayon::current_num_threads() > 1 {
                64
            } else {
                usize::MAX
            },
            stats: SolveStats::default(),
            tracer: hs_obs::Tracer::noop(),
        }
    }

    /// Attach a tracer for flow start/abort and link-scale events.
    pub fn set_tracer(&mut self, tracer: &hs_obs::Tracer) {
        self.tracer = tracer.clone();
    }

    /// Force every re-solve to be global instead of component-scoped
    /// (also disables the aggregate tier and sharded advances).
    ///
    /// A validation/benchmark knob: rates, completions, and byte counters
    /// are bit-identical in both modes (the equivalence suite asserts so);
    /// only the work per event differs.
    pub fn set_full_resolve(&mut self, on: bool) {
        self.full_resolve = on;
    }

    /// Bulk advances with more than `threshold` due completions are
    /// sharded across components (`usize::MAX` disables sharding, `0`
    /// shards every non-empty bulk advance). Output is bit-identical at
    /// any threshold; this only tunes work distribution.
    pub fn set_shard_threshold(&mut self, threshold: usize) {
        self.shard_threshold = threshold;
    }

    /// Solver work counters (see [`SolveStats`]).
    pub fn solve_stats(&self) -> SolveStats {
        self.stats
    }

    /// Current internal clock (last `advance_to` or flow start).
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Number of in-flight flows.
    pub fn active_flow_count(&self) -> usize {
        self.n_live
    }

    /// Start a unit-weight flow of `bytes` over the directed `path` at
    /// time `now`.
    pub fn start_flow(&mut self, now: SimTime, path: &[DirLink], bytes: u64, tag: u64) -> FlowId {
        self.start_weighted_flow(now, path, bytes, 1.0, tag)
    }

    /// Start a flow with an explicit fair-share weight (used to model a
    /// collective step that opens several parallel streams).
    pub fn start_weighted_flow(
        &mut self,
        now: SimTime,
        path: &[DirLink],
        bytes: u64,
        weight: f64,
        tag: u64,
    ) -> FlowId {
        assert!(weight > 0.0, "flow weight must be positive");
        self.progress_to(now);
        let id = FlowId(self.next_id);
        self.next_id += 1;
        let prop_ns: u64 = path
            .iter()
            .map(|&(l, _)| self.link_latency_ns[l.idx()])
            .sum();
        let prop = SimSpan::from_nanos(prop_ns);
        let mut f = Flow {
            path: path.to_vec(),
            remaining_bytes: bytes as f64,
            size_bytes: bytes,
            rate_bps: 0.0,
            weight,
            started: now,
            prop,
            earliest_finish: now + prop,
            tag,
            finish_at: SimTime::MAX,
            touched: self.clock,
            epoch: 0,
            seen: 0,
        };
        if path.is_empty() {
            // Local copy: unconstrained, delivered after propagation only.
            f.rate_bps = f64::INFINITY;
        }
        if path.is_empty() || f.remaining_bytes <= 0.0 {
            // Nothing to serialize (or nothing constraining it): the
            // completion estimate is final right now.
            f.finish_at = f.earliest_finish;
            f.epoch += 1;
            self.heap.push(Reverse((f.finish_at, id, f.epoch)));
        }
        if !path.is_empty() {
            for &d in path {
                self.incidence[slot(d)].push(id);
            }
            self.mark_dirty_path(path);
        }
        self.put_flow(id, f);
        self.tracer.flow_start(now, id.0, tag, bytes, path.len());
        id
    }

    /// Remove a flow before completion (e.g. a cancelled transfer).
    ///
    /// Returns the flow if it was active and still serializing. A flow
    /// that has already drained — every byte delivered, completion only
    /// awaiting the last bit's propagation — is *not* cancellable: the
    /// call returns `None` and the completion is still delivered by
    /// [`SimNet::advance_to`], so callers can distinguish a true
    /// mid-flight abort (`Some`, `remaining_bytes > 0`) from a transfer
    /// that actually finished.
    pub fn cancel_flow(&mut self, now: SimTime, id: FlowId) -> Option<Flow> {
        self.progress_to(now);
        let clock = self.clock;
        let drained = match self.flows.get_mut(id.0 as usize).and_then(Option::as_mut) {
            None => return None,
            Some(f) => {
                // A cancel is a touch point: accrue before deciding.
                materialize(f, id, clock, &mut self.cum_bytes, &mut self.heap, slot);
                f.remaining_bytes <= 0.0 && !f.path.is_empty()
            }
        };
        if drained {
            return None;
        }
        let f = self.take_flow(id).expect("flow looked up just above");
        self.unlink(id, &f.path);
        self.mark_dirty_path(&f.path);
        self.tracer.flow_abort(now, id.0, "cancelled");
        Some(f)
    }

    /// Inspect an active flow. `remaining_bytes` on the result is as of
    /// the flow's last materialization — use [`SimNet::flow_remaining`]
    /// for the value at the current clock.
    pub fn flow(&self, id: FlowId) -> Option<&Flow> {
        self.flows.get(id.0 as usize).and_then(Option::as_ref)
    }

    /// Bytes a live flow still has to serialize at the current clock
    /// (pure: stored progress plus the pending in-flight window).
    pub fn flow_remaining(&self, id: FlowId) -> Option<f64> {
        let f = self.flow(id)?;
        if f.rate_bps.is_infinite() && self.clock > f.touched {
            return Some(0.0);
        }
        let mut rem = f.remaining_bytes - pending_consumed(f, self.clock);
        if rem < 1e-6 {
            rem = 0.0;
        }
        Some(rem)
    }

    /// The time of the earliest flow completion, or `None` when idle.
    ///
    /// `O(log n)` amortized: stale heap entries are popped as they
    /// surface; the first valid entry is the answer (every non-starved
    /// flow keeps exactly one valid entry).
    pub fn next_event_time(&mut self) -> Option<SimTime> {
        self.solve_if_dirty();
        while let Some(&Reverse((t, id, ep))) = self.heap.peek() {
            match self.flow(id) {
                Some(f) if f.epoch == ep => return Some(t.max(self.clock)),
                _ => {
                    self.heap.pop();
                }
            }
        }
        if self.n_live == 0 {
            None
        } else {
            // Every remaining flow is starved (rate 0 on a dead link).
            Some(SimTime::MAX)
        }
    }

    /// Advance the clock to `now` and return the flows that completed
    /// (in completion-then-id order).
    ///
    /// Small batches run the sequential loop: pop the earliest valid heap
    /// entry, materialize and remove the flow, re-solve its component
    /// (completions change rates, which changes later completions within
    /// the same window), repeat. Batches above the shard threshold are
    /// dispatched per connected component to rayon workers and merged
    /// deterministically — bit-identical to the sequential loop.
    pub fn advance_to(&mut self, now: SimTime) -> Vec<(FlowId, Flow)> {
        assert!(now >= self.clock, "SimNet clock must be monotone");
        if !self.full_resolve && self.shard_threshold != usize::MAX {
            if let Some(done) = self.advance_sharded(now) {
                return done;
            }
        }
        let mut done = Vec::new();
        loop {
            self.solve_if_dirty();
            let Some((t, id)) = self.peek_valid() else {
                break;
            };
            if t > now {
                break;
            }
            self.heap.pop();
            // A cascade re-solve can finalize a drained flow at an
            // arrival instant slightly before the previous completion's
            // clock; the engine clock never moves backwards.
            self.clock = self.clock.max(t);
            let clock = self.clock;
            let mut f = self.take_flow(id).expect("front flow is live");
            materialize(&mut f, id, clock, &mut self.cum_bytes, &mut self.heap, slot);
            self.unlink(id, &f.path);
            self.mark_dirty_path(&f.path);
            f.remaining_bytes = 0.0;
            done.push((id, f));
        }
        self.progress_to(now);
        done
    }

    /// Fair-share utilization of a link in `[0, 1]`: the busier
    /// direction's allocated rate over capacity. This is the
    /// instantaneous `B(e)`-complement the online scheduler's cost
    /// tables consume.
    pub fn link_utilization(&mut self, l: LinkId) -> f64 {
        self.solve_if_dirty();
        let fwd = self.link_rate[l.idx() * 2];
        let rev = self.link_rate[l.idx() * 2 + 1];
        Self::util(fwd.max(rev), self.capacities[l.idx()])
    }

    /// Snapshot of all link utilizations (busier direction per link).
    pub fn utilization_snapshot(&mut self) -> Vec<f64> {
        self.solve_if_dirty();
        (0..self.capacities.len())
            .map(|i| {
                Self::util(
                    self.link_rate[i * 2].max(self.link_rate[i * 2 + 1]),
                    self.capacities[i],
                )
            })
            .collect()
    }

    /// Rate-over-capacity in `[0, 1]`; a dead link reads as fully busy so
    /// utilization-driven schedulers steer away from it.
    #[inline]
    fn util(rate: f64, capacity: f64) -> f64 {
        if capacity <= 0.0 {
            1.0
        } else {
            (rate / capacity).clamp(0.0, 1.0)
        }
    }

    /// Residual bandwidth `B(e) = C(e) - allocated` per link, bits/s
    /// (busier direction) — the planner's Table I input.
    pub fn residual_bandwidth(&mut self) -> Vec<f64> {
        self.solve_if_dirty();
        (0..self.capacities.len())
            .map(|i| {
                (self.capacities[i] - self.link_rate[i * 2].max(self.link_rate[i * 2 + 1])).max(0.0)
            })
            .collect()
    }

    /// Cumulative bytes delivered over a link since simulation start,
    /// both directions (monotone; models a switch hardware counter).
    pub fn cumulative_bytes(&self, l: LinkId) -> f64 {
        self.cumulative_bytes_dir(l, false) + self.cumulative_bytes_dir(l, true)
    }

    /// Cumulative bytes for one direction of a link: the materialized
    /// counter plus each crossing flow's pending in-flight window,
    /// accumulated in ascending flow-id order (pure, deterministic).
    pub fn cumulative_bytes_dir(&self, l: LinkId, forward: bool) -> f64 {
        let s = l.idx() * 2 + forward as usize;
        let mut total = self.cum_bytes[s];
        for &fid in &self.incidence[s] {
            total += pending_consumed(self.flow_ref(fid), self.clock);
        }
        total
    }

    /// Link capacities (bits/s), after any fault scaling.
    pub fn capacities(&self) -> &[f64] {
        &self.capacities
    }

    /// Current capacity scale of a link: `1.0` healthy, `0.0` dead.
    pub fn link_scale(&self, l: LinkId) -> f64 {
        let base = self.base_capacities[l.idx()];
        if base <= 0.0 {
            return 1.0;
        }
        self.capacities[l.idx()] / base
    }

    /// Set a link's capacity to `factor` of nominal at time `now` (a
    /// fault when `factor < 1`, a recovery when it returns to `1.0`).
    ///
    /// Surviving flows are re-rated max-min fairly at the next query.
    /// The re-solve is **component-scoped**: a capacity change can only
    /// move bottlenecks among flows transitively sharing a link with the
    /// scaled one (the max-min allocation decomposes across connected
    /// components, DESIGN.md §9), so untouched components keep their
    /// rates, estimates, and epochs bit-for-bit.
    /// When `factor` is zero the link is dead: every flow crossing it
    /// (either direction) is aborted and returned, with its progress
    /// accrued up to `now`, so the caller can retry over another route.
    /// Flows *started* across a dead link later are not rejected — they
    /// simply stall at rate 0 until the link recovers, which is how a
    /// fault-oblivious baseline behaves.
    pub fn set_link_scale(&mut self, now: SimTime, l: LinkId, factor: f64) -> Vec<(FlowId, Flow)> {
        assert!(
            factor.is_finite() && (0.0..=1.0).contains(&factor),
            "link scale must be in [0, 1], got {factor}"
        );
        self.progress_to(now);
        let cap = self.base_capacities[l.idx()] * factor;
        self.capacities[l.idx()] = cap;
        self.dir_caps[l.idx() * 2] = cap;
        self.dir_caps[l.idx() * 2 + 1] = cap;
        // Seed both directions: the scoped BFS pulls in exactly the
        // component(s) whose allocation the new capacity can affect.
        self.dirty = true;
        self.seed_slots.push(l.idx() * 2);
        self.seed_slots.push(l.idx() * 2 + 1);
        let crossing = || {
            self.flows
                .iter()
                .flatten()
                .filter(|f| f.path.iter().any(|&(fl, _)| fl == l))
                .count()
        };
        if factor > 0.0 {
            if self.tracer.is_enabled() {
                self.tracer
                    .link_scale(now, l.idx() as u64, factor, crossing(), 0);
            }
            return Vec::new();
        }
        // Slab order is ascending-id order, which is what the abort list
        // and cum-byte accrual order (both observable) must follow.
        let doomed: Vec<FlowId> = self
            .flows
            .iter()
            .enumerate()
            .filter_map(|(i, f)| f.as_ref().map(|f| (i, f)))
            .filter(|(_, f)| f.path.iter().any(|&(fl, _)| fl == l))
            .map(|(i, _)| FlowId(i as u64))
            .collect();
        if self.tracer.is_enabled() {
            self.tracer
                .link_scale(now, l.idx() as u64, factor, 0, doomed.len());
            for id in &doomed {
                self.tracer.flow_abort(now, id.0, "link_dead");
            }
        }
        let clock = self.clock;
        doomed
            .into_iter()
            .map(|id| {
                let mut f = self.take_flow(id).expect("doomed flow present");
                // An abort is a touch point: hand back accrued progress.
                materialize(&mut f, id, clock, &mut self.cum_bytes, &mut self.heap, slot);
                self.unlink(id, &f.path);
                self.mark_dirty_path(&f.path);
                (id, f)
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Incremental engine internals
    // ------------------------------------------------------------------

    /// Live flow by id; panics if it is gone (use where an invariant —
    /// e.g. membership in an incidence list — guarantees liveness).
    #[inline]
    fn flow_ref(&self, id: FlowId) -> &Flow {
        self.flows[id.0 as usize]
            .as_ref()
            .expect("id names a live flow")
    }

    /// Remove and return a live flow, freeing its slot.
    #[inline]
    fn take_flow(&mut self, id: FlowId) -> Option<Flow> {
        let f = self.flows.get_mut(id.0 as usize).and_then(Option::take);
        if f.is_some() {
            self.n_live -= 1;
        }
        f
    }

    /// (Re-)install a flow in its id slot.
    #[inline]
    fn put_flow(&mut self, id: FlowId, f: Flow) {
        let s = id.0 as usize;
        if s >= self.flows.len() {
            self.flows.resize_with(s + 1, || None);
        }
        debug_assert!(self.flows[s].is_none(), "flow slot double-filled");
        self.flows[s] = Some(f);
        self.n_live += 1;
    }

    /// Record that a flow over `path` was added or removed: its directed
    /// slots seed the next component-scoped re-solve.
    fn mark_dirty_path(&mut self, path: &[DirLink]) {
        if path.is_empty() {
            // Empty paths never contend for bandwidth.
            return;
        }
        self.dirty = true;
        for &d in path {
            self.seed_slots.push(slot(d));
        }
    }

    /// Remove `id` from the incidence lists of every hop of `path`.
    fn unlink(&mut self, id: FlowId, path: &[DirLink]) {
        for &d in path {
            let v = &mut self.incidence[slot(d)];
            if let Ok(i) = v.binary_search(&id) {
                v.remove(i);
            } else {
                debug_assert!(false, "flow missing from incidence list");
            }
        }
    }

    /// Earliest valid heap entry, discarding stale ones on the way.
    fn peek_valid(&mut self) -> Option<(SimTime, FlowId)> {
        while let Some(&Reverse((t, id, ep))) = self.heap.peek() {
            match self.flow(id) {
                Some(f) if f.epoch == ep => return Some((t, id)),
                _ => {
                    self.heap.pop();
                }
            }
        }
        None
    }

    /// Re-solve whatever subset of the rate state is out of date.
    fn solve_if_dirty(&mut self) {
        if !self.dirty {
            return;
        }
        if self.full_resolve {
            self.solve_full();
        } else {
            self.solve_scoped();
        }
        self.dirty = false;
        self.seed_slots.clear();
    }

    /// Global re-solve: every flow, every carried link (reference mode).
    fn solve_full(&mut self) {
        self.stats.full_solves += 1;
        let scratch = &mut self.scratch;
        scratch.flat.clear();
        scratch.spans.clear();
        scratch.ids.clear();
        // Slab iteration is ascending-id order, so per-link weight sums
        // accumulate exactly as the scoped path (and the reference
        // solver) would.
        for (i, f) in self.flows.iter().enumerate() {
            let Some(f) = f.as_ref() else { continue };
            scratch.ids.push(FlowId(i as u64));
            scratch.spans.push(FlowSpan {
                start: scratch.flat.len() as u32,
                len: f.path.len() as u32,
                weight: f.weight,
            });
            scratch.flat.extend(f.path.iter().map(|&d| slot(d)));
        }
        self.stats.flows_rated += scratch.ids.len() as u64;
        let rates = self.ws.solve(&self.dir_caps, &scratch.flat, &scratch.spans);
        for r in self.link_rate.iter_mut() {
            *r = 0.0;
        }
        let clock = self.clock;
        for (i, &id) in scratch.ids.iter().enumerate() {
            let f = self.flows[id.0 as usize]
                .as_mut()
                .expect("solved flow is still present");
            let rate = rates[i];
            if rate.is_finite() {
                for &d in &f.path {
                    self.link_rate[slot(d)] += rate;
                }
            }
            if rate.to_bits() != f.rate_bps.to_bits() {
                materialize(f, id, clock, &mut self.cum_bytes, &mut self.heap, slot);
                assign_rate(f, id, rate, clock, &mut self.heap);
            }
        }
    }

    /// Component-scoped re-solve: BFS over the flow/link incidence graph
    /// from the seed slots, then solve only the reached flows. Flows on
    /// disjoint links keep their rates — sound because the weighted
    /// max-min allocation is unique and decomposes across connected
    /// components (DESIGN.md §9). The aggregate tier settles
    /// single-bottleneck components in one round; only congested
    /// components hand off to the exact water-filling solver.
    fn solve_scoped(&mut self) {
        self.visit_gen += 1;
        let gen = self.visit_gen;
        // Solve each connected component of the dirty region on its own.
        // DESIGN.md §9's union-decomposition makes this bitwise identical
        // to solving the union in one system — and it keeps the exact
        // solver's cost proportional to the largest touched component:
        // water-filling freezes one bottleneck link per round, so a union
        // of k disjoint components costs ~k× the rounds of its parts.
        // Per-component systems are also exactly what the one-round
        // aggregate tier can settle.
        for si in 0..self.seed_slots.len() {
            let seed = self.seed_slots[si];
            if self.scratch.link_stamp[seed] == gen {
                // Already covered by an earlier seed's component.
                continue;
            }
            self.stats.scoped_solves += 1;
            let scratch = &mut self.scratch;
            scratch.queue.clear();
            scratch.comp_links.clear();
            scratch.ids.clear();
            scratch.link_stamp[seed] = gen;
            scratch.queue.push(seed);
            while let Some(s) = scratch.queue.pop() {
                scratch.comp_links.push(s);
                for &fid in &self.incidence[s] {
                    let f = self.flows[fid.0 as usize]
                        .as_mut()
                        .expect("incidence names a live flow");
                    if f.seen == gen {
                        continue;
                    }
                    f.seen = gen;
                    scratch.ids.push(fid);
                    for &d in &f.path {
                        let sl = slot(d);
                        if scratch.link_stamp[sl] != gen {
                            scratch.link_stamp[sl] = gen;
                            scratch.queue.push(sl);
                        }
                    }
                }
            }
            // Ascending-id order so per-link weight sums accumulate in
            // exactly the order a full solve would use (float addition
            // order matters for bit-identity).
            scratch.ids.sort_unstable();
            scratch.flat.clear();
            scratch.spans.clear();
            for &id in &scratch.ids {
                let f = self.flows[id.0 as usize]
                    .as_ref()
                    .expect("scoped flow is live");
                scratch.spans.push(FlowSpan {
                    start: scratch.flat.len() as u32,
                    len: f.path.len() as u32,
                    weight: f.weight,
                });
                scratch.flat.extend(f.path.iter().map(|&d| slot(d)));
            }
            self.stats.flows_rated += scratch.ids.len() as u64;
            let rates: &[f64] =
                match self
                    .agg
                    .try_solve(&self.dir_caps, &scratch.flat, &scratch.spans)
                {
                    Some(r) => {
                        self.stats.aggregate_solves += 1;
                        r
                    }
                    None => self.ws.solve(&self.dir_caps, &scratch.flat, &scratch.spans),
                };
            for &s in &scratch.comp_links {
                self.link_rate[s] = 0.0;
            }
            let clock = self.clock;
            for (i, &id) in scratch.ids.iter().enumerate() {
                let f = self.flows[id.0 as usize]
                    .as_mut()
                    .expect("solved flow is still present");
                let rate = rates[i];
                if rate.is_finite() {
                    for &d in &f.path {
                        self.link_rate[slot(d)] += rate;
                    }
                }
                if rate.to_bits() != f.rate_bps.to_bits() {
                    materialize(f, id, clock, &mut self.cum_bytes, &mut self.heap, slot);
                    assign_rate(f, id, rate, clock, &mut self.heap);
                }
            }
        }
    }

    /// Advance the clock to `t`. Under lazy accrual no per-flow work is
    /// needed: pending windows are carried by each flow's `touched` stamp.
    fn progress_to(&mut self, t: SimTime) {
        if t <= self.clock {
            return;
        }
        // Rates for the window starting at the old clock must be solved
        // *at* the old clock before it moves.
        self.solve_if_dirty();
        self.clock = t;
    }

    // ------------------------------------------------------------------
    // Sharded bulk advance (DESIGN.md §12)
    // ------------------------------------------------------------------

    /// Sharded bulk advance: returns `None` when the number of due
    /// completions is at or below the shard threshold (caller falls back
    /// to the sequential loop).
    fn advance_sharded(&mut self, now: SimTime) -> Option<Vec<(FlowId, Flow)>> {
        self.solve_if_dirty();
        // Collect every valid completion entry due in (clock, now]. Each
        // live flow has at most one valid entry, so `pending` has unique
        // flow ids. The entries themselves are discarded after counting —
        // flow state carries the truth, and shard-local heaps are rebuilt
        // from it — but below the threshold they are simply re-pushed.
        let mut pending: Vec<(SimTime, FlowId, u64)> = Vec::new();
        while let Some(&Reverse((t, id, ep))) = self.heap.peek() {
            match self.flow(id) {
                Some(f) if f.epoch == ep => {
                    if t > now {
                        break;
                    }
                    self.heap.pop();
                    pending.push((t, id, ep));
                }
                _ => {
                    self.heap.pop();
                }
            }
        }
        if pending.len() <= self.shard_threshold {
            for &(t, id, ep) in &pending {
                self.heap.push(Reverse((t, id, ep)));
            }
            return None;
        }
        self.stats.sharded_batches += 1;

        // Group due flows by connected component. Components only split
        // (never merge) during an advance — no flow starts — so a shard
        // extracted here stays closed under link sharing for the whole
        // window.
        self.visit_gen += 1;
        let gen = self.visit_gen;
        let mut locals: Vec<(SimTime, FlowId, Flow)> = Vec::new();
        let mut tasks: Vec<ShardTask> = Vec::new();
        let mut comp_flows: Vec<FlowId> = Vec::new();
        let mut comp_slots: Vec<usize> = Vec::new();
        for &(t, id, _ep) in &pending {
            // Already swept into an earlier component's shard (extraction
            // removes component flows from the map).
            let Some(f) = self.flow(id) else { continue };
            if f.path.is_empty() {
                // Local copy: no links, no interactions — completes as a
                // singleton merge participant.
                let mut f = self.take_flow(id).expect("pending flow is live");
                f.remaining_bytes = 0.0;
                locals.push((t, id, f));
                continue;
            }
            self.collect_component(id, gen, &mut comp_flows, &mut comp_slots);
            tasks.push(self.extract_shard(&comp_flows, &comp_slots));
        }
        self.stats.shards_run += tasks.len() as u64;

        let outcomes: Vec<_> = tasks.into_par_iter().map(|t| run_shard(t, now)).collect();

        // Merge back: write slot state, re-insert survivors (re-keying
        // only flows whose epoch moved in-shard), then emit completions
        // via a deterministic k-way merge on each list's head
        // `(SimTime, FlowId)` — exactly the order the sequential loop's
        // global heap would pop, since a component's next pop key is
        // always the head of its own trace.
        let mut lists: Vec<Vec<(SimTime, FlowId, Flow)>> = Vec::with_capacity(outcomes.len() + 1);
        for o in outcomes {
            self.stats.shard_solves += o.solves;
            self.stats.aggregate_solves += o.aggregate_solves;
            let t = o.task;
            for (k, &s) in t.slots.iter().enumerate() {
                self.cum_bytes[s] = t.cum[k];
                self.link_rate[s] = t.rate[k];
            }
            for (i, f) in t.flows.into_iter().enumerate() {
                let id = t.ids[i];
                if let Some(f) = f {
                    if f.epoch != t.pre_epoch[i] && f.finish_at < SimTime::MAX {
                        self.heap.push(Reverse((f.finish_at, id, f.epoch)));
                    }
                    self.put_flow(id, f);
                }
            }
            lists.push(o.done);
        }
        locals.sort_unstable_by_key(|a| (a.0, a.1));
        lists.push(locals);

        let total: usize = lists.iter().map(Vec::len).sum();
        let mut iters: Vec<std::vec::IntoIter<(SimTime, FlowId, Flow)>> =
            lists.into_iter().map(Vec::into_iter).collect();
        let mut heads: Vec<Option<(SimTime, FlowId, Flow)>> =
            iters.iter_mut().map(Iterator::next).collect();
        let mut merge: BinaryHeap<Reverse<(SimTime, FlowId, usize)>> = heads
            .iter()
            .enumerate()
            .filter_map(|(li, h)| h.as_ref().map(|&(t, id, _)| Reverse((t, id, li))))
            .collect();
        let mut done = Vec::with_capacity(total);
        while let Some(Reverse((_, _, li))) = merge.pop() {
            let (_, id, f) = heads[li].take().expect("merge head present");
            heads[li] = iters[li].next();
            if let Some(&(t2, id2, _)) = heads[li].as_ref() {
                merge.push(Reverse((t2, id2, li)));
            }
            self.unlink(id, &f.path);
            done.push((id, f));
        }
        self.clock = now;
        debug_assert!(!self.dirty, "shards leave rates clean");
        Some(done)
    }

    /// BFS the connected component containing `root` into `comp_flows` /
    /// `comp_slots` (both sorted ascending on return).
    fn collect_component(
        &mut self,
        root: FlowId,
        gen: u64,
        comp_flows: &mut Vec<FlowId>,
        comp_slots: &mut Vec<usize>,
    ) {
        comp_flows.clear();
        comp_slots.clear();
        let scratch = &mut self.scratch;
        scratch.queue.clear();
        {
            let f = self.flows[root.0 as usize]
                .as_mut()
                .expect("pending flow is live");
            f.seen = gen;
            comp_flows.push(root);
            for &d in &f.path {
                let sl = slot(d);
                if scratch.link_stamp[sl] != gen {
                    scratch.link_stamp[sl] = gen;
                    scratch.queue.push(sl);
                }
            }
        }
        while let Some(s) = scratch.queue.pop() {
            comp_slots.push(s);
            for &fid in &self.incidence[s] {
                let f = self.flows[fid.0 as usize]
                    .as_mut()
                    .expect("incidence names a live flow");
                if f.seen == gen {
                    continue;
                }
                f.seen = gen;
                comp_flows.push(fid);
                for &d in &f.path {
                    let sl = slot(d);
                    if scratch.link_stamp[sl] != gen {
                        scratch.link_stamp[sl] = gen;
                        scratch.queue.push(sl);
                    }
                }
            }
        }
        comp_flows.sort_unstable();
        comp_slots.sort_unstable();
    }

    /// Move a component's flows and slot state out into an owned shard
    /// task. Slot arrays are packed in ascending global-slot order so the
    /// local index order preserves the solver's global tie-breaks.
    fn extract_shard(&mut self, comp_flows: &[FlowId], comp_slots: &[usize]) -> ShardTask {
        let mut flows = Vec::with_capacity(comp_flows.len());
        let mut pre_epoch = Vec::with_capacity(comp_flows.len());
        for &fid in comp_flows {
            let f = self.take_flow(fid).expect("component flow is live");
            pre_epoch.push(f.epoch);
            flows.push(Some(f));
        }
        ShardTask {
            clock: self.clock,
            ids: comp_flows.to_vec(),
            flows,
            pre_epoch,
            slots: comp_slots.to_vec(),
            caps: comp_slots.iter().map(|&s| self.dir_caps[s]).collect(),
            cum: comp_slots.iter().map(|&s| self.cum_bytes[s]).collect(),
            rate: comp_slots.iter().map(|&s| self.link_rate[s]).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs_topology::{
        graph::{bandwidth, GpuSpec, GraphBuilder, LinkKind, ServerId},
        NodeId,
    };

    /// Direct all hops "forward" (capacity is symmetric in these tests).
    fn fwd(links: &[LinkId]) -> Vec<DirLink> {
        links.iter().map(|&l| (l, true)).collect()
    }

    /// Two GPUs joined by one 100 G Ethernet link via a switch.
    fn line() -> (Graph, Vec<NodeId>, Vec<LinkId>) {
        let mut b = GraphBuilder::new();
        let g0 = b.add_gpu(ServerId(0), 0, GpuSpec::a100_40g());
        let g1 = b.add_gpu(ServerId(1), 0, GpuSpec::a100_40g());
        let s = b.add_access_switch(true, "s");
        let l0 = b.add_link(g0, s, LinkKind::Ethernet, bandwidth::ETH_100G, 1_000);
        let l1 = b.add_link(g1, s, LinkKind::Ethernet, bandwidth::ETH_100G, 1_000);
        (b.build(), vec![g0, g1, s], vec![l0, l1])
    }

    /// `n` isolated two-link clusters (GPU→switch→GPU), one link pair per
    /// cluster — disjoint components by construction.
    fn clusters(n: usize) -> (Graph, Vec<[LinkId; 2]>) {
        let mut b = GraphBuilder::new();
        let mut links = Vec::with_capacity(n);
        for i in 0..n {
            let g0 = b.add_gpu(ServerId((2 * i) as u32), 0, GpuSpec::a100_40g());
            let g1 = b.add_gpu(ServerId((2 * i + 1) as u32), 0, GpuSpec::a100_40g());
            let s = b.add_access_switch(true, "s");
            let l0 = b.add_link(g0, s, LinkKind::Ethernet, bandwidth::ETH_100G, 1_000);
            let l1 = b.add_link(g1, s, LinkKind::Ethernet, bandwidth::ETH_100G, 1_000);
            links.push([l0, l1]);
        }
        (b.build(), links)
    }

    #[test]
    fn lone_flow_runs_at_line_rate() {
        let (g, _, links) = line();
        let mut net = SimNet::new(&g);
        // 1 MB over 100 Gbps, 2 hops of 1 us propagation: 80 us + 2 us.
        let id = net.start_flow(SimTime::ZERO, &fwd(&links), 1_000_000, 7);
        let t = net.next_event_time().unwrap();
        let us = t.as_micros_f64();
        assert!((us - 82.0).abs() < 0.5, "finish at {us} us");
        let done = net.advance_to(t);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, id);
        assert_eq!(done[0].1.tag, 7);
        assert_eq!(net.active_flow_count(), 0);
    }

    #[test]
    fn two_flows_share_then_speed_up() {
        let (g, _, links) = line();
        let mut net = SimNet::new(&g);
        // Both flows cross link l0 only (g0->switch), 1 MB each.
        let a = net.start_flow(SimTime::ZERO, &fwd(&links[..1]), 1_000_000, 0);
        let _b = net.start_flow(SimTime::ZERO, &fwd(&links[..1]), 2_000_000, 1);
        // Shared at 50 Gbps each. Flow a: 8e6 bits / 50e9 = 160 us.
        let t1 = net.next_event_time().unwrap();
        assert!((t1.as_micros_f64() - 161.0).abs() < 1.0, "{t1}");
        let done = net.advance_to(t1);
        assert_eq!(done[0].0, a);
        // Flow b then has 1 MB left at full 100 Gbps: 80 us more.
        let t2 = net.next_event_time().unwrap();
        assert!(
            (t2.as_micros_f64() - t1.as_micros_f64() - 80.0).abs() < 1.0,
            "t2={t2} t1={t1}"
        );
    }

    #[test]
    fn advance_past_multiple_completions() {
        let (g, _, links) = line();
        let mut net = SimNet::new(&g);
        net.start_flow(SimTime::ZERO, &fwd(&links[..1]), 1_000_000, 0);
        net.start_flow(SimTime::ZERO, &fwd(&links[..1]), 2_000_000, 1);
        net.start_flow(SimTime::ZERO, &fwd(&links[..1]), 3_000_000, 2);
        let done = net.advance_to(SimTime::from_millis(10));
        assert_eq!(done.len(), 3);
        // Completion order follows size here.
        assert_eq!(
            done.iter().map(|(_, f)| f.tag).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        // Conservation: 6 MB crossed link 0.
        assert!((net.cumulative_bytes(links[0]) - 6_000_000.0).abs() < 1.0);
        assert_eq!(net.cumulative_bytes(links[1]), 0.0);
    }

    #[test]
    fn utilization_and_residual() {
        let (g, _, links) = line();
        let mut net = SimNet::new(&g);
        net.start_flow(SimTime::ZERO, &fwd(&links[..1]), 100_000_000, 0);
        assert!((net.link_utilization(links[0]) - 1.0).abs() < 1e-9);
        assert_eq!(net.link_utilization(links[1]), 0.0);
        let res = net.residual_bandwidth();
        assert!(res[links[0].idx()] < 1.0);
        assert!((res[links[1].idx()] - bandwidth::ETH_100G).abs() < 1.0);
    }

    #[test]
    fn cancel_restores_bandwidth() {
        let (g, _, links) = line();
        let mut net = SimNet::new(&g);
        let a = net.start_flow(SimTime::ZERO, &fwd(&links[..1]), 1_000_000, 0);
        let _b = net.start_flow(SimTime::ZERO, &fwd(&links[..1]), 1_000_000, 1);
        let cancelled = net.cancel_flow(SimTime::from_micros(10), a).unwrap();
        // 10 us at 50 Gbps = 62.5 kB transferred before cancellation.
        assert!((cancelled.remaining_bytes - (1_000_000.0 - 62_500.0)).abs() < 100.0);
        // Remaining flow now gets full rate.
        assert!((net.link_utilization(links[0]) - 1.0).abs() < 1e-9);
        let t = net.next_event_time().unwrap();
        // b transferred 62.5 kB too; 937.5 kB left at 100 Gbps = 75 us.
        assert!((t.as_micros_f64() - 10.0 - 76.0).abs() < 1.0, "{t}");
    }

    /// Regression: a flow that has drained but whose last bit is still
    /// propagating is *finished* from the sender's perspective — cancel
    /// must refuse (`None`) and the completion must still be delivered,
    /// so callers never mistake delivered bytes for an aborted transfer.
    #[test]
    fn cancel_of_drained_flow_is_a_noop_and_still_completes() {
        let (g, _, links) = line();
        let mut net = SimNet::new(&g);
        // 1 MB at 100 Gbps drains at 80 us; last bit arrives at 82 us.
        let id = net.start_flow(SimTime::ZERO, &fwd(&links), 1_000_000, 42);
        let finish = net.next_event_time().unwrap();
        // Move to a point strictly between drain and arrival.
        let between = SimTime::from_micros(81);
        assert!(net.advance_to(between).is_empty());
        assert_eq!(net.flow_remaining(id), Some(0.0));
        // The cancel is refused: all bytes were delivered.
        assert!(net.cancel_flow(between, id).is_none());
        // ... and the completion still arrives on time.
        let done = net.advance_to(finish);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, id);
        assert_eq!(done[0].1.tag, 42);
        assert_eq!(done[0].1.remaining_bytes, 0.0);
        // A second cancel of the now-gone flow is also None.
        assert!(net.cancel_flow(finish, id).is_none());
    }

    #[test]
    fn empty_path_completes_immediately() {
        let (g, _, _) = line();
        let mut net = SimNet::new(&g);
        net.start_flow(SimTime::from_secs(1), &[], 1 << 30, 5);
        let t = net.next_event_time().unwrap();
        assert_eq!(t, SimTime::from_secs(1));
        let done = net.advance_to(t);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].1.tag, 5);
    }

    #[test]
    fn zero_byte_flow_costs_only_propagation() {
        let (g, _, links) = line();
        let mut net = SimNet::new(&g);
        net.start_flow(SimTime::ZERO, &fwd(&links), 0, 0);
        let t = net.next_event_time().unwrap();
        assert_eq!(t, SimTime::from_micros(2));
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn clock_must_be_monotone() {
        let (g, _, links) = line();
        let mut net = SimNet::new(&g);
        net.start_flow(SimTime::from_secs(2), &fwd(&links), 10, 0);
        net.advance_to(SimTime::from_secs(1));
    }

    #[test]
    fn weighted_flow_gets_larger_share() {
        let (g, _, links) = line();
        let mut net = SimNet::new(&g);
        let heavy = net.start_weighted_flow(SimTime::ZERO, &fwd(&links[..1]), 1_000_000, 3.0, 0);
        let light = net.start_flow(SimTime::ZERO, &fwd(&links[..1]), 1_000_000, 1);
        net.next_event_time();
        let rh = net.flow(heavy).unwrap().rate_bps;
        let rl = net.flow(light).unwrap().rate_bps;
        assert!((rh / rl - 3.0).abs() < 1e-6);
    }

    #[test]
    fn degraded_link_rerates_inflight_flow() {
        let (g, _, links) = line();
        let mut net = SimNet::new(&g);
        // 1 MB at 100 Gbps would finish at ~82 us.
        net.start_flow(SimTime::ZERO, &fwd(&links), 1_000_000, 0);
        // At 40 us (≈ 0.5 MB in), the first link browns out to 25%.
        let aborted = net.set_link_scale(SimTime::from_micros(40), links[0], 0.25);
        assert!(aborted.is_empty(), "degrade must not abort flows");
        assert!((net.link_utilization(links[0]) - 1.0).abs() < 1e-9);
        // Remaining ~0.5 MB at 25 Gbps = ~160 us more.
        let t = net.next_event_time().unwrap().as_micros_f64();
        assert!((t - 202.0).abs() < 2.0, "finish at {t} us");
        // Recovery at 100 us: 2.5e6 bits remain (60 us at 25 Gbps drained
        // 1.5e6), so line rate finishes them 25 us later.
        net.set_link_scale(SimTime::from_micros(100), links[0], 1.0);
        let t = net.next_event_time().unwrap().as_micros_f64();
        assert!((t - 127.0).abs() < 2.0, "finish at {t} us after recovery");
    }

    #[test]
    fn dead_link_aborts_crossing_flows_only() {
        let (g, _, links) = line();
        let mut net = SimNet::new(&g);
        let doomed = net.start_flow(SimTime::ZERO, &fwd(&links), 1_000_000, 7);
        let survivor = net.start_flow(SimTime::ZERO, &fwd(&links[1..]), 1_000_000, 8);
        let aborted = net.set_link_scale(SimTime::from_micros(10), links[0], 0.0);
        assert_eq!(aborted.len(), 1);
        assert_eq!(aborted[0].0, doomed);
        assert_eq!(aborted[0].1.tag, 7);
        // Progress was accrued up to the fault before the abort.
        assert!(aborted[0].1.remaining_bytes < 1_000_000.0);
        assert!(net.flow(survivor).is_some());
        // Dead link reads as fully busy with zero residual.
        assert!((net.link_utilization(links[0]) - 1.0).abs() < 1e-9);
        assert_eq!(net.residual_bandwidth()[links[0].idx()], 0.0);
        assert!((net.link_scale(links[0]) - 0.0).abs() < 1e-12);
        // A flow started across the dead link stalls rather than finishing.
        net.start_flow(SimTime::from_micros(20), &fwd(&links[..1]), 1_000, 9);
        let next = net.next_event_time().unwrap();
        assert!(next < SimTime::MAX, "survivor still finishes");
        let done = net.advance_to(SimTime::from_millis(1));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].1.tag, 8);
        // Recovery lets the stalled flow drain.
        net.set_link_scale(SimTime::from_millis(2), links[0], 1.0);
        let done = net.advance_to(SimTime::from_millis(3));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].1.tag, 9);
    }

    #[test]
    fn byte_conservation_across_rate_changes() {
        let (g, _, links) = line();
        let mut net = SimNet::new(&g);
        net.start_flow(SimTime::ZERO, &fwd(&links[..1]), 4_000_000, 0);
        // A second flow arrives mid-transfer and leaves via completion.
        net.start_flow(SimTime::from_micros(100), &fwd(&links[..1]), 1_000_000, 1);
        net.advance_to(SimTime::from_millis(5));
        assert_eq!(net.active_flow_count(), 0);
        assert!(
            (net.cumulative_bytes(links[0]) - 5_000_000.0).abs() < 10.0,
            "delivered {}",
            net.cumulative_bytes(links[0])
        );
    }

    /// The incremental engine and a forced full re-solve must agree bit
    /// for bit on a scenario that exercises scoped solves, the aggregate
    /// tier, completions, cancels, and a fault (`tests/equivalence.rs`
    /// covers arbitrary sequences; this is the in-crate smoke version).
    #[test]
    fn incremental_matches_full_resolve_bitwise() {
        let run = |full: bool| {
            let (g, _, links) = line();
            let mut net = SimNet::new(&g);
            net.set_full_resolve(full);
            let mut log: Vec<(u64, u64)> = Vec::new();
            net.start_flow(SimTime::ZERO, &fwd(&links), 2_000_000, 1);
            let b = net.start_flow(SimTime::from_micros(30), &fwd(&links[..1]), 1_000_000, 2);
            net.start_flow(SimTime::from_micros(40), &fwd(&links[1..]), 500_000, 3);
            net.set_link_scale(SimTime::from_micros(60), links[0], 0.5);
            for (id, f) in net.advance_to(SimTime::from_micros(120)) {
                log.push((id.0, f.tag));
            }
            net.cancel_flow(SimTime::from_micros(130), b);
            for (id, f) in net.advance_to(SimTime::from_millis(4)) {
                log.push((id.0, f.tag));
            }
            let bytes: Vec<u64> = (0..2)
                .map(|i| net.cumulative_bytes(links[i]).to_bits())
                .collect();
            (log, bytes, net.active_flow_count())
        };
        assert_eq!(run(false), run(true));
    }

    /// Satellite regression: `set_link_scale` must re-solve only the
    /// scaled link's component. The survivor cluster keeps its rate and
    /// epoch untouched, and the work counter proves no other flows were
    /// rated.
    #[test]
    fn link_scale_resolve_is_component_scoped() {
        let (g, links) = clusters(3);
        let mut net = SimNet::new(&g);
        // Two flows contending in cluster 0, one lone flow per other
        // cluster.
        net.start_flow(SimTime::ZERO, &fwd(&[links[0][0]]), 10_000_000, 0);
        net.start_flow(SimTime::ZERO, &fwd(&[links[0][0]]), 10_000_000, 1);
        let b = net.start_flow(SimTime::ZERO, &fwd(&[links[1][0]]), 10_000_000, 2);
        let c = net.start_flow(SimTime::ZERO, &fwd(&[links[2][1]]), 10_000_000, 3);
        net.next_event_time();
        let before_b = {
            let f = net.flow(b).unwrap();
            (f.rate_bps.to_bits(), f.epoch, f.finish_at)
        };
        let before_c = {
            let f = net.flow(c).unwrap();
            (f.rate_bps.to_bits(), f.epoch, f.finish_at)
        };
        let rated_before = net.solve_stats().flows_rated;
        // Degrade cluster 0's shared link; clusters 1 and 2 must not even
        // be visited by the re-solve.
        net.set_link_scale(SimTime::from_micros(10), links[0][0], 0.5);
        net.next_event_time();
        let after_b = {
            let f = net.flow(b).unwrap();
            (f.rate_bps.to_bits(), f.epoch, f.finish_at)
        };
        let after_c = {
            let f = net.flow(c).unwrap();
            (f.rate_bps.to_bits(), f.epoch, f.finish_at)
        };
        assert_eq!(before_b, after_b);
        assert_eq!(before_c, after_c);
        assert_eq!(
            net.solve_stats().flows_rated - rated_before,
            2,
            "only cluster 0's two flows may be re-rated"
        );
    }

    /// Single-bottleneck components settle in the aggregate tier; a
    /// component where a second link saturates hands off to the exact
    /// solver. Both paths agree with full-resolve bitwise (asserted by
    /// `incremental_matches_full_resolve_bitwise` and the equivalence
    /// suite); this pins that the fast path actually engages.
    #[test]
    fn aggregate_tier_engages_and_hands_off() {
        let (g, _, links) = line();
        let mut net = SimNet::new(&g);
        // Two flows on one link: single bottleneck -> aggregate tier.
        net.start_flow(SimTime::ZERO, &fwd(&links[..1]), 1_000_000, 0);
        net.start_flow(SimTime::ZERO, &fwd(&links[..1]), 2_000_000, 1);
        net.next_event_time();
        let s = net.solve_stats();
        assert_eq!(
            s.scoped_solves, s.aggregate_solves,
            "uncongested: one round"
        );
        assert!(s.aggregate_solves > 0);
        // Degrade l1 and pile flows on it so the two-link path saturates
        // both links at different shares -> exact-solver handoff.
        net.set_link_scale(SimTime::from_micros(1), links[1], 0.3);
        net.start_flow(SimTime::from_micros(1), &fwd(&links), 4_000_000, 2);
        net.start_flow(SimTime::from_micros(1), &fwd(&links[1..]), 4_000_000, 3);
        net.next_event_time();
        let s = net.solve_stats();
        assert!(
            s.scoped_solves > s.aggregate_solves,
            "congested component must hand off to the exact solver: {s:?}"
        );
    }

    /// The sharded bulk advance must produce exactly the sequential
    /// loop's completions, byte counters, and survivor state.
    #[test]
    fn sharded_advance_matches_sequential_bitwise() {
        let run = |threshold: usize| {
            let (g, links) = clusters(8);
            let mut net = SimNet::new(&g);
            net.set_shard_threshold(threshold);
            // Staggered contending flows per cluster plus a local copy.
            for (ci, pair) in links.iter().enumerate() {
                for k in 0..4u64 {
                    let path = if k % 2 == 0 {
                        fwd(&pair[..])
                    } else {
                        fwd(&pair[..1])
                    };
                    net.start_flow(
                        SimTime::from_nanos(100 * k),
                        &path,
                        500_000 + 37_000 * k + 11_000 * ci as u64,
                        (ci as u64) << 8 | k,
                    );
                }
            }
            net.start_flow(SimTime::from_nanos(50), &[], 1_000, 9999);
            let done = net.advance_to(SimTime::from_millis(10));
            let order: Vec<(u64, u64)> = done.iter().map(|(id, f)| (id.0, f.tag)).collect();
            let bytes: Vec<u64> = links
                .iter()
                .flat_map(|p| p.iter())
                .map(|&l| net.cumulative_bytes(l).to_bits())
                .collect();
            (order, bytes, net.active_flow_count())
        };
        let sharded = run(0); // shard every bulk advance
        let sequential = run(usize::MAX); // never shard
        assert_eq!(sharded, sequential);
        assert_eq!(sharded.0.len(), 33);
    }

    #[test]
    fn tracer_sees_flow_and_link_events() {
        let (g, _, links) = line();
        let mut net = SimNet::new(&g);
        let tracer = hs_obs::Tracer::recording();
        net.set_tracer(&tracer);
        net.start_flow(SimTime::ZERO, &fwd(&links), 1_000_000, 7);
        // Degrade, then kill the first link: one re-rate, one abort.
        net.set_link_scale(SimTime::from_micros(10), links[0], 0.5);
        let dead = net.set_link_scale(SimTime::from_micros(20), links[0], 0.0);
        assert_eq!(dead.len(), 1);

        let recs = tracer.records();
        let start = recs.iter().find(|r| r.name == "flow_start").unwrap();
        assert_eq!(start.arg("bytes").and_then(hs_obs::Val::as_f64), Some(1e6));
        let scales: Vec<_> = recs.iter().filter(|r| r.name == "link_scale").collect();
        assert_eq!(scales.len(), 2);
        assert_eq!(
            scales[0].arg("rerated").and_then(hs_obs::Val::as_f64),
            Some(1.0)
        );
        assert_eq!(
            scales[1].arg("aborted").and_then(hs_obs::Val::as_f64),
            Some(1.0)
        );
        assert!(recs.iter().any(|r| r.name == "flow_abort"));
    }

    #[test]
    fn tracer_never_perturbs_flow_outcomes() {
        let run = |traced: bool| {
            let (g, _, links) = line();
            let mut net = SimNet::new(&g);
            if traced {
                net.set_tracer(&hs_obs::Tracer::recording());
            }
            net.start_flow(SimTime::ZERO, &fwd(&links), 2_000_000, 1);
            net.start_flow(SimTime::from_micros(50), &fwd(&links[..1]), 500_000, 2);
            net.set_link_scale(SimTime::from_micros(80), links[0], 0.5);
            let done = net.advance_to(SimTime::from_millis(5));
            (
                done.iter().map(|(id, f)| (id.0, f.tag)).collect::<Vec<_>>(),
                net.cumulative_bytes(links[0]),
            )
        };
        assert_eq!(run(false), run(true));
    }
}
