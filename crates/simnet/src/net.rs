//! The flow-level network simulator.
//!
//! [`SimNet`] tracks a set of active [`Flow`]s, allocates link bandwidth
//! among them max-min fairly, and advances flow progress in lock-step with
//! an external clock. It is an *event source*: a parent simulation asks
//! [`SimNet::next_event_time`] when the earliest flow will finish, advances
//! its own clock, then calls [`SimNet::advance_to`] to collect completions.
//!
//! A flow's completion time is `max(serialization finish, start +
//! path propagation delay)`; serialization progress accrues at the flow's
//! current fair-share rate, which changes whenever flows start or finish.
//!
//! # Incremental fair-share engine
//!
//! Rate maintenance is *incremental* (see DESIGN.md §9). The simulator
//! owns a persistent [`SolverWorkspace`] plus a link→flow incidence table,
//! so a flow add/remove triggers a **component-scoped** re-solve: only the
//! flows transitively sharing a link with the changed flow are re-rated
//! (max-min allocations decompose across connected components of the
//! flow/link graph, so untouched components keep their exact rates).
//! [`SimNet::set_link_scale`] falls back to a full solve. Completion
//! lookup uses a lazily-invalidated min-heap of `(finish, flow, epoch)`
//! entries — a stale entry (its flow re-rated or gone) is discarded when
//! it surfaces — making [`SimNet::next_event_time`] and the completion
//! loop in [`SimNet::advance_to`] `O(log n)` per event instead of a scan
//! over every active flow. Results are bit-identical to a from-scratch
//! solve per event: `tests/equivalence.rs` drives arbitrary event
//! sequences through this engine and a retained reference implementation
//! and asserts identical rates, completions, and cumulative link bytes.

use crate::fairshare::{FlowSpan, SolverWorkspace};
use hs_des::{SimSpan, SimTime};
use hs_topology::{Graph, LinkId};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// One directed hop: the link and whether it is traversed `a -> b`
/// (links are full duplex; each direction is its own capacity pool).
pub type DirLink = (LinkId, bool);

/// Dense slot index of a directed link.
#[inline]
fn slot(d: DirLink) -> usize {
    d.0.idx() * 2 + d.1 as usize
}

/// Identifier of an active (or completed) flow.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FlowId(pub u64);

/// An active transfer.
#[derive(Clone, Debug)]
pub struct Flow {
    /// Directed hops the flow traverses (loopless).
    pub path: Vec<DirLink>,
    /// Bytes still to serialize.
    pub remaining_bytes: f64,
    /// Total size at start (for reporting).
    pub size_bytes: u64,
    /// Current allocated rate, bits/s (∞ for empty paths).
    pub rate_bps: f64,
    /// Relative fair-share weight.
    pub weight: f64,
    /// Start time.
    pub started: SimTime,
    /// Total propagation delay along the path.
    pub prop: SimSpan,
    /// Completion cannot occur before this; once the flow drains, holds
    /// drain time + propagation (the last bit's arrival).
    pub earliest_finish: SimTime,
    /// Caller-supplied tag for demultiplexing completions.
    pub tag: u64,
    /// Canonical completion estimate: fixed at each rate assignment (or
    /// drain), never recomputed in between, so heap keys stay exact.
    /// `SimTime::MAX` while starved (rate 0).
    pub(crate) finish_at: SimTime,
    /// Validity epoch of this flow's newest heap entry; entries carrying
    /// an older epoch are stale and discarded when they surface.
    pub(crate) epoch: u64,
    /// Visit stamp for the component BFS (scoped re-solves).
    pub(crate) seen: u64,
}

impl Flow {
    /// The flow's current completion estimate (`SimTime::MAX` while it is
    /// starved by a dead link).
    pub fn finish_at(&self) -> SimTime {
        self.finish_at
    }
}

/// Which part of the rate state is out of date.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Dirty {
    /// Rates match the current flow set.
    Clean,
    /// Only components reachable from `seed_slots` need re-solving.
    Scoped,
    /// Everything needs re-solving (capacity change).
    Full,
}

/// Min-heap entry: `(finish estimate, flow, epoch)`. The epoch tiebreak
/// keeps pop order fully deterministic even among stale duplicates.
type HeapEntry = Reverse<(SimTime, FlowId, u64)>;

/// Reusable buffers for building solver inputs and running the component
/// BFS — allocation-free at steady state.
#[derive(Default)]
struct SolveScratch {
    /// Flat directed-slot arena (all component paths back to back).
    flat: Vec<usize>,
    /// One span per component flow, in ascending [`FlowId`] order.
    spans: Vec<FlowSpan>,
    /// Component flow ids, parallel to `spans`.
    ids: Vec<FlowId>,
    /// Directed slots belonging to the component (incl. seed slots whose
    /// last flow just left — their allocated rate must drop to zero).
    comp_links: Vec<usize>,
    /// BFS work stack of directed slots.
    queue: Vec<usize>,
    /// Visit stamp per directed slot (lazy reset via generation counter).
    link_stamp: Vec<u64>,
}

/// Flow-level network state over a fixed topology.
pub struct SimNet {
    /// Per-link capacity (each *direction* gets the full capacity:
    /// full-duplex links). Current, i.e. after fault scaling.
    capacities: Vec<f64>,
    /// Nominal per-link capacity; `capacities[i] = base_capacities[i] *
    /// scale` where scale is set by [`SimNet::set_link_scale`].
    base_capacities: Vec<f64>,
    /// Directed-slot capacity vector fed to the solver (2 slots per link),
    /// kept in sync with `capacities`.
    dir_caps: Vec<f64>,
    link_latency_ns: Vec<u64>,
    flows: BTreeMap<FlowId, Flow>,
    next_id: u64,
    clock: SimTime,
    /// Cumulative bytes delivered per directed link (the "hardware
    /// counters"; index = link*2 + direction).
    cum_bytes: Vec<f64>,
    /// Allocated rate per directed link (sum of flow rates), bits/s.
    link_rate: Vec<f64>,
    /// Which flows cross each directed slot, ascending by id (ids are
    /// monotone, so insertion is an append and order is free).
    incidence: Vec<Vec<FlowId>>,
    dirty: Dirty,
    /// Directed slots touched by flow adds/removes since the last solve.
    seed_slots: Vec<usize>,
    /// Lazy-invalidation completion heap.
    heap: BinaryHeap<HeapEntry>,
    /// Monotone epoch source for heap entries.
    epochs: u64,
    /// Generation counter for BFS visit stamps.
    visit_gen: u64,
    ws: SolverWorkspace,
    scratch: SolveScratch,
    /// Validation/benchmark knob: when set, every re-solve is global (the
    /// pre-incremental behaviour). Results are bit-identical either way —
    /// asserted by `tests/equivalence.rs`.
    full_resolve: bool,
    /// Flow/link event sink; no-op unless attached via
    /// [`SimNet::set_tracer`]. Never affects simulation state.
    tracer: hs_obs::Tracer,
}

impl SimNet {
    /// Create a simulator over the links of `graph`.
    pub fn new(graph: &Graph) -> Self {
        let capacities = graph.capacities();
        let link_latency_ns = graph.links().map(|(_, l)| l.latency_ns).collect();
        let n = capacities.len();
        let mut dir_caps = Vec::with_capacity(2 * n);
        for &c in &capacities {
            dir_caps.push(c);
            dir_caps.push(c);
        }
        SimNet {
            base_capacities: capacities.clone(),
            capacities,
            dir_caps,
            link_latency_ns,
            flows: BTreeMap::new(),
            next_id: 0,
            clock: SimTime::ZERO,
            cum_bytes: vec![0.0; 2 * n],
            link_rate: vec![0.0; 2 * n],
            incidence: vec![Vec::new(); 2 * n],
            dirty: Dirty::Clean,
            seed_slots: Vec::new(),
            heap: BinaryHeap::new(),
            epochs: 0,
            visit_gen: 0,
            ws: SolverWorkspace::new(),
            scratch: SolveScratch {
                link_stamp: vec![0; 2 * n],
                ..SolveScratch::default()
            },
            full_resolve: false,
            tracer: hs_obs::Tracer::noop(),
        }
    }

    /// Attach a tracer for flow start/abort and link-scale events.
    pub fn set_tracer(&mut self, tracer: &hs_obs::Tracer) {
        self.tracer = tracer.clone();
    }

    /// Force every re-solve to be global instead of component-scoped.
    ///
    /// A validation/benchmark knob: rates, completions, and byte counters
    /// are bit-identical in both modes (the equivalence suite asserts so);
    /// only the work per event differs.
    pub fn set_full_resolve(&mut self, on: bool) {
        self.full_resolve = on;
    }

    /// Current internal clock (last `advance_to` or flow start).
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Number of in-flight flows.
    pub fn active_flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Start a unit-weight flow of `bytes` over the directed `path` at
    /// time `now`.
    pub fn start_flow(&mut self, now: SimTime, path: &[DirLink], bytes: u64, tag: u64) -> FlowId {
        self.start_weighted_flow(now, path, bytes, 1.0, tag)
    }

    /// Start a flow with an explicit fair-share weight (used to model a
    /// collective step that opens several parallel streams).
    pub fn start_weighted_flow(
        &mut self,
        now: SimTime,
        path: &[DirLink],
        bytes: u64,
        weight: f64,
        tag: u64,
    ) -> FlowId {
        assert!(weight > 0.0, "flow weight must be positive");
        self.progress_to(now);
        let id = FlowId(self.next_id);
        self.next_id += 1;
        let prop_ns: u64 = path
            .iter()
            .map(|&(l, _)| self.link_latency_ns[l.idx()])
            .sum();
        let prop = SimSpan::from_nanos(prop_ns);
        let mut f = Flow {
            path: path.to_vec(),
            remaining_bytes: bytes as f64,
            size_bytes: bytes,
            rate_bps: 0.0,
            weight,
            started: now,
            prop,
            earliest_finish: now + prop,
            tag,
            finish_at: SimTime::MAX,
            epoch: 0,
            seen: 0,
        };
        if path.is_empty() {
            // Local copy: unconstrained, delivered after propagation only.
            f.rate_bps = f64::INFINITY;
        }
        if path.is_empty() || f.remaining_bytes <= 0.0 {
            // Nothing to serialize (or nothing constraining it): the
            // completion estimate is final right now.
            f.finish_at = f.earliest_finish;
            self.epochs += 1;
            f.epoch = self.epochs;
            self.heap.push(Reverse((f.finish_at, id, f.epoch)));
        }
        if !path.is_empty() {
            for &d in path {
                self.incidence[slot(d)].push(id);
            }
            self.mark_dirty_path(path);
        }
        self.flows.insert(id, f);
        self.tracer.flow_start(now, id.0, tag, bytes, path.len());
        id
    }

    /// Remove a flow before completion (e.g. a cancelled transfer).
    ///
    /// Returns the flow if it was active and still serializing. A flow
    /// that has already drained — every byte delivered, completion only
    /// awaiting the last bit's propagation — is *not* cancellable: the
    /// call returns `None` and the completion is still delivered by
    /// [`SimNet::advance_to`], so callers can distinguish a true
    /// mid-flight abort (`Some`, `remaining_bytes > 0`) from a transfer
    /// that actually finished.
    pub fn cancel_flow(&mut self, now: SimTime, id: FlowId) -> Option<Flow> {
        self.progress_to(now);
        let drained = match self.flows.get(&id) {
            None => return None,
            Some(f) => f.remaining_bytes <= 0.0 && !f.path.is_empty(),
        };
        if drained {
            return None;
        }
        let f = self.flows.remove(&id).expect("flow looked up just above");
        self.unlink(id, &f.path);
        self.mark_dirty_path(&f.path);
        self.tracer.flow_abort(now, id.0, "cancelled");
        Some(f)
    }

    /// Inspect an active flow.
    pub fn flow(&self, id: FlowId) -> Option<&Flow> {
        self.flows.get(&id)
    }

    /// The time of the earliest flow completion, or `None` when idle.
    ///
    /// `O(log n)` amortized: stale heap entries are popped as they
    /// surface; the first valid entry is the answer (every non-starved
    /// flow keeps exactly one valid entry).
    pub fn next_event_time(&mut self) -> Option<SimTime> {
        self.solve_if_dirty();
        while let Some(&Reverse((t, id, ep))) = self.heap.peek() {
            match self.flows.get(&id) {
                Some(f) if f.epoch == ep => return Some(t.max(self.clock)),
                _ => {
                    self.heap.pop();
                }
            }
        }
        if self.flows.is_empty() {
            None
        } else {
            // Every remaining flow is starved (rate 0 on a dead link).
            Some(SimTime::MAX)
        }
    }

    /// Advance the clock to `now`, accruing flow progress, and return the
    /// flows that completed (in completion-then-id order).
    pub fn advance_to(&mut self, now: SimTime) -> Vec<(FlowId, Flow)> {
        assert!(now >= self.clock, "SimNet clock must be monotone");
        let mut done = Vec::new();
        // Completions change rates, which changes later completions within
        // the same window — each pop triggers a (component-scoped)
        // re-solve before the next is accepted.
        loop {
            self.solve_if_dirty();
            let Some((t, id)) = self.peek_valid() else {
                self.progress_to(now);
                break;
            };
            if t > now {
                self.progress_to(now);
                break;
            }
            // Accrue up to the candidate first: the accrual may drain
            // another flow whose last bit lands even earlier, so re-check
            // the front before committing.
            self.progress_to(t);
            match self.peek_valid() {
                Some((t2, id2)) if (t2, id2) == (t, id) => {
                    self.heap.pop();
                    let mut f = self.flows.remove(&id).expect("front flow is live");
                    self.unlink(id, &f.path);
                    self.mark_dirty_path(&f.path);
                    f.remaining_bytes = 0.0;
                    done.push((id, f));
                }
                _ => continue,
            }
        }
        done
    }

    /// Fair-share utilization of a link in `[0, 1]`: the busier
    /// direction's allocated rate over capacity. This is the
    /// instantaneous `B(e)`-complement the online scheduler's cost
    /// tables consume.
    pub fn link_utilization(&mut self, l: LinkId) -> f64 {
        self.solve_if_dirty();
        let fwd = self.link_rate[l.idx() * 2];
        let rev = self.link_rate[l.idx() * 2 + 1];
        Self::util(fwd.max(rev), self.capacities[l.idx()])
    }

    /// Snapshot of all link utilizations (busier direction per link).
    pub fn utilization_snapshot(&mut self) -> Vec<f64> {
        self.solve_if_dirty();
        (0..self.capacities.len())
            .map(|i| {
                Self::util(
                    self.link_rate[i * 2].max(self.link_rate[i * 2 + 1]),
                    self.capacities[i],
                )
            })
            .collect()
    }

    /// Rate-over-capacity in `[0, 1]`; a dead link reads as fully busy so
    /// utilization-driven schedulers steer away from it.
    #[inline]
    fn util(rate: f64, capacity: f64) -> f64 {
        if capacity <= 0.0 {
            1.0
        } else {
            (rate / capacity).clamp(0.0, 1.0)
        }
    }

    /// Residual bandwidth `B(e) = C(e) - allocated` per link, bits/s
    /// (busier direction) — the planner's Table I input.
    pub fn residual_bandwidth(&mut self) -> Vec<f64> {
        self.solve_if_dirty();
        (0..self.capacities.len())
            .map(|i| {
                (self.capacities[i] - self.link_rate[i * 2].max(self.link_rate[i * 2 + 1])).max(0.0)
            })
            .collect()
    }

    /// Cumulative bytes delivered over a link since simulation start,
    /// both directions (monotone; models a switch hardware counter).
    pub fn cumulative_bytes(&self, l: LinkId) -> f64 {
        self.cum_bytes[l.idx() * 2] + self.cum_bytes[l.idx() * 2 + 1]
    }

    /// Cumulative bytes for one direction of a link.
    pub fn cumulative_bytes_dir(&self, l: LinkId, forward: bool) -> f64 {
        self.cum_bytes[l.idx() * 2 + forward as usize]
    }

    /// Link capacities (bits/s), after any fault scaling.
    pub fn capacities(&self) -> &[f64] {
        &self.capacities
    }

    /// Current capacity scale of a link: `1.0` healthy, `0.0` dead.
    pub fn link_scale(&self, l: LinkId) -> f64 {
        let base = self.base_capacities[l.idx()];
        if base <= 0.0 {
            return 1.0;
        }
        self.capacities[l.idx()] / base
    }

    /// Set a link's capacity to `factor` of nominal at time `now` (a
    /// fault when `factor < 1`, a recovery when it returns to `1.0`).
    ///
    /// Surviving flows are re-rated max-min fairly at the next query —
    /// this is the one event that forces a *full* re-solve (a capacity
    /// change shifts bottlenecks globally, not just in one component).
    /// When `factor` is zero the link is dead: every flow crossing it
    /// (either direction) is aborted and returned, with its progress
    /// accrued up to `now`, so the caller can retry over another route.
    /// Flows *started* across a dead link later are not rejected — they
    /// simply stall at rate 0 until the link recovers, which is how a
    /// fault-oblivious baseline behaves.
    pub fn set_link_scale(&mut self, now: SimTime, l: LinkId, factor: f64) -> Vec<(FlowId, Flow)> {
        assert!(
            factor.is_finite() && (0.0..=1.0).contains(&factor),
            "link scale must be in [0, 1], got {factor}"
        );
        self.progress_to(now);
        let cap = self.base_capacities[l.idx()] * factor;
        self.capacities[l.idx()] = cap;
        self.dir_caps[l.idx() * 2] = cap;
        self.dir_caps[l.idx() * 2 + 1] = cap;
        self.dirty = Dirty::Full;
        let crossing = || {
            self.flows
                .values()
                .filter(|f| f.path.iter().any(|&(fl, _)| fl == l))
                .count()
        };
        if factor > 0.0 {
            if self.tracer.is_enabled() {
                self.tracer
                    .link_scale(now, l.idx() as u64, factor, crossing(), 0);
            }
            return Vec::new();
        }
        let doomed: Vec<FlowId> = self
            .flows
            .iter()
            .filter(|(_, f)| f.path.iter().any(|&(fl, _)| fl == l))
            .map(|(&id, _)| id)
            .collect();
        if self.tracer.is_enabled() {
            self.tracer
                .link_scale(now, l.idx() as u64, factor, 0, doomed.len());
            for id in &doomed {
                self.tracer.flow_abort(now, id.0, "link_dead");
            }
        }
        doomed
            .into_iter()
            .map(|id| {
                let f = self.flows.remove(&id).expect("doomed flow present");
                self.unlink(id, &f.path);
                (id, f)
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Incremental engine internals
    // ------------------------------------------------------------------

    /// Record that a flow over `path` was added or removed: its directed
    /// slots seed the next component-scoped re-solve.
    fn mark_dirty_path(&mut self, path: &[DirLink]) {
        if path.is_empty() || self.dirty == Dirty::Full {
            // Empty paths never contend for bandwidth; a full re-solve
            // already covers everything.
            return;
        }
        self.dirty = Dirty::Scoped;
        for &d in path {
            self.seed_slots.push(slot(d));
        }
    }

    /// Remove `id` from the incidence lists of every hop of `path`.
    fn unlink(&mut self, id: FlowId, path: &[DirLink]) {
        for &d in path {
            let v = &mut self.incidence[slot(d)];
            if let Ok(i) = v.binary_search(&id) {
                v.remove(i);
            } else {
                debug_assert!(false, "flow missing from incidence list");
            }
        }
    }

    /// Earliest valid heap entry, discarding stale ones on the way.
    fn peek_valid(&mut self) -> Option<(SimTime, FlowId)> {
        while let Some(&Reverse((t, id, ep))) = self.heap.peek() {
            match self.flows.get(&id) {
                Some(f) if f.epoch == ep => return Some((t, id)),
                _ => {
                    self.heap.pop();
                }
            }
        }
        None
    }

    /// Completion estimate for a *serializing* flow at `clock` (callers
    /// handle the drained and starved cases).
    fn serial_estimate(clock: SimTime, f: &Flow) -> SimTime {
        if f.rate_bps.is_infinite() {
            return f.earliest_finish;
        }
        // simlint::allow(float-eq, 0.0 is an exact assigned sentinel for starved flows, never computed)
        if f.rate_bps == 0.0 {
            return SimTime::MAX;
        }
        let secs = f.remaining_bytes * 8.0 / f.rate_bps;
        let ser = clock + SimSpan::from_secs_f64(secs).saturating_add(SimSpan::from_nanos(1));
        (ser + f.prop).max(f.earliest_finish)
    }

    /// Install a freshly solved rate on `f`. The completion estimate (and
    /// its heap entry) is refreshed only when the rate *value* changed:
    /// under an unchanged rate the estimate is invariant (progress accrues
    /// at exactly that rate), so keeping the stored one avoids rounding
    /// drift — the property that makes incremental and from-scratch
    /// solving bit-identical.
    fn assign_rate(
        f: &mut Flow,
        id: FlowId,
        rate: f64,
        clock: SimTime,
        heap: &mut BinaryHeap<HeapEntry>,
        epochs: &mut u64,
    ) {
        if rate.to_bits() == f.rate_bps.to_bits() {
            return;
        }
        f.rate_bps = rate;
        if f.remaining_bytes <= 0.0 {
            // Drained: completion waits only on propagation; the rate no
            // longer matters for the estimate.
            return;
        }
        let finish = Self::serial_estimate(clock, f);
        if finish != f.finish_at {
            f.finish_at = finish;
            *epochs += 1;
            f.epoch = *epochs;
            if finish < SimTime::MAX {
                heap.push(Reverse((finish, id, f.epoch)));
            }
        }
    }

    /// Re-solve whatever subset of the rate state is out of date.
    fn solve_if_dirty(&mut self) {
        match self.dirty {
            Dirty::Clean => return,
            Dirty::Full => self.solve_full(),
            Dirty::Scoped => {
                if self.full_resolve {
                    self.solve_full();
                } else {
                    self.solve_scoped();
                }
            }
        }
        self.dirty = Dirty::Clean;
        self.seed_slots.clear();
    }

    /// Global re-solve: every flow, every carried link.
    fn solve_full(&mut self) {
        let scratch = &mut self.scratch;
        scratch.flat.clear();
        scratch.spans.clear();
        scratch.ids.clear();
        for (&id, f) in &self.flows {
            scratch.ids.push(id);
            scratch.spans.push(FlowSpan {
                start: scratch.flat.len() as u32,
                len: f.path.len() as u32,
                weight: f.weight,
            });
            scratch.flat.extend(f.path.iter().map(|&d| slot(d)));
        }
        let rates = self.ws.solve(&self.dir_caps, &scratch.flat, &scratch.spans);
        for r in self.link_rate.iter_mut() {
            *r = 0.0;
        }
        let clock = self.clock;
        for (i, &id) in scratch.ids.iter().enumerate() {
            let f = self
                .flows
                .get_mut(&id)
                .expect("solved flow is still present");
            let rate = rates[i];
            if rate.is_finite() {
                for &d in &f.path {
                    self.link_rate[slot(d)] += rate;
                }
            }
            Self::assign_rate(f, id, rate, clock, &mut self.heap, &mut self.epochs);
        }
    }

    /// Component-scoped re-solve: BFS over the flow/link incidence graph
    /// from the seed slots, then solve only the reached flows. Flows on
    /// disjoint links keep their rates — sound because the weighted
    /// max-min allocation is unique and decomposes across connected
    /// components (DESIGN.md §9).
    fn solve_scoped(&mut self) {
        self.visit_gen += 1;
        let gen = self.visit_gen;
        let scratch = &mut self.scratch;
        scratch.queue.clear();
        scratch.comp_links.clear();
        scratch.ids.clear();
        for &s in &self.seed_slots {
            if scratch.link_stamp[s] != gen {
                scratch.link_stamp[s] = gen;
                scratch.queue.push(s);
            }
        }
        while let Some(s) = scratch.queue.pop() {
            scratch.comp_links.push(s);
            for &fid in &self.incidence[s] {
                let f = self
                    .flows
                    .get_mut(&fid)
                    .expect("incidence names a live flow");
                if f.seen == gen {
                    continue;
                }
                f.seen = gen;
                scratch.ids.push(fid);
                for &d in &f.path {
                    let sl = slot(d);
                    if scratch.link_stamp[sl] != gen {
                        scratch.link_stamp[sl] = gen;
                        scratch.queue.push(sl);
                    }
                }
            }
        }
        // Ascending-id order so per-link weight sums accumulate in exactly
        // the order a full solve would use (float addition order matters
        // for bit-identity).
        scratch.ids.sort_unstable();
        scratch.flat.clear();
        scratch.spans.clear();
        for &id in &scratch.ids {
            let f = &self.flows[&id];
            scratch.spans.push(FlowSpan {
                start: scratch.flat.len() as u32,
                len: f.path.len() as u32,
                weight: f.weight,
            });
            scratch.flat.extend(f.path.iter().map(|&d| slot(d)));
        }
        let rates = self.ws.solve(&self.dir_caps, &scratch.flat, &scratch.spans);
        for &s in &scratch.comp_links {
            self.link_rate[s] = 0.0;
        }
        let clock = self.clock;
        for (i, &id) in scratch.ids.iter().enumerate() {
            let f = self
                .flows
                .get_mut(&id)
                .expect("solved flow is still present");
            let rate = rates[i];
            if rate.is_finite() {
                for &d in &f.path {
                    self.link_rate[slot(d)] += rate;
                }
            }
            Self::assign_rate(f, id, rate, clock, &mut self.heap, &mut self.epochs);
        }
    }

    /// Accrue progress for all flows up to `t` (no completions handled).
    fn progress_to(&mut self, t: SimTime) {
        if t <= self.clock {
            return;
        }
        self.solve_if_dirty();
        let dt = (t - self.clock).as_secs_f64();
        let clock = self.clock;
        let heap = &mut self.heap;
        let epochs = &mut self.epochs;
        for (&id, f) in self.flows.iter_mut() {
            if f.rate_bps > 0.0 && f.rate_bps.is_finite() && f.remaining_bytes > 0.0 {
                let bytes = f.rate_bps / 8.0 * dt;
                let consumed = bytes.min(f.remaining_bytes);
                // If the flow drains inside this window, record the last
                // bit's arrival time (drain instant + propagation).
                if consumed >= f.remaining_bytes {
                    let drain_secs = f.remaining_bytes * 8.0 / f.rate_bps;
                    let drained_at = clock + SimSpan::from_secs_f64(drain_secs);
                    f.earliest_finish = f.earliest_finish.max(drained_at + f.prop);
                }
                f.remaining_bytes -= consumed;
                if f.remaining_bytes < 1e-6 {
                    f.remaining_bytes = 0.0;
                }
                for &d in &f.path {
                    self.cum_bytes[slot(d)] += consumed;
                }
                if f.remaining_bytes <= 0.0 && f.finish_at != f.earliest_finish {
                    // Drain transition: the estimate is final now.
                    f.finish_at = f.earliest_finish;
                    *epochs += 1;
                    f.epoch = *epochs;
                    heap.push(Reverse((f.finish_at, id, f.epoch)));
                }
            } else if f.rate_bps.is_infinite() {
                // Empty-path flow: delivered instantly, no link bytes.
                f.remaining_bytes = 0.0;
            }
        }
        self.clock = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs_topology::{
        graph::{bandwidth, GpuSpec, GraphBuilder, LinkKind, ServerId},
        NodeId,
    };

    /// Direct all hops "forward" (capacity is symmetric in these tests).
    fn fwd(links: &[LinkId]) -> Vec<DirLink> {
        links.iter().map(|&l| (l, true)).collect()
    }

    /// Two GPUs joined by one 100 G Ethernet link via a switch.
    fn line() -> (Graph, Vec<NodeId>, Vec<LinkId>) {
        let mut b = GraphBuilder::new();
        let g0 = b.add_gpu(ServerId(0), 0, GpuSpec::a100_40g());
        let g1 = b.add_gpu(ServerId(1), 0, GpuSpec::a100_40g());
        let s = b.add_access_switch(true, "s");
        let l0 = b.add_link(g0, s, LinkKind::Ethernet, bandwidth::ETH_100G, 1_000);
        let l1 = b.add_link(g1, s, LinkKind::Ethernet, bandwidth::ETH_100G, 1_000);
        (b.build(), vec![g0, g1, s], vec![l0, l1])
    }

    #[test]
    fn lone_flow_runs_at_line_rate() {
        let (g, _, links) = line();
        let mut net = SimNet::new(&g);
        // 1 MB over 100 Gbps, 2 hops of 1 us propagation: 80 us + 2 us.
        let id = net.start_flow(SimTime::ZERO, &fwd(&links), 1_000_000, 7);
        let t = net.next_event_time().unwrap();
        let us = t.as_micros_f64();
        assert!((us - 82.0).abs() < 0.5, "finish at {us} us");
        let done = net.advance_to(t);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, id);
        assert_eq!(done[0].1.tag, 7);
        assert_eq!(net.active_flow_count(), 0);
    }

    #[test]
    fn two_flows_share_then_speed_up() {
        let (g, _, links) = line();
        let mut net = SimNet::new(&g);
        // Both flows cross link l0 only (g0->switch), 1 MB each.
        let a = net.start_flow(SimTime::ZERO, &fwd(&links[..1]), 1_000_000, 0);
        let _b = net.start_flow(SimTime::ZERO, &fwd(&links[..1]), 2_000_000, 1);
        // Shared at 50 Gbps each. Flow a: 8e6 bits / 50e9 = 160 us.
        let t1 = net.next_event_time().unwrap();
        assert!((t1.as_micros_f64() - 161.0).abs() < 1.0, "{t1}");
        let done = net.advance_to(t1);
        assert_eq!(done[0].0, a);
        // Flow b then has 1 MB left at full 100 Gbps: 80 us more.
        let t2 = net.next_event_time().unwrap();
        assert!(
            (t2.as_micros_f64() - t1.as_micros_f64() - 80.0).abs() < 1.0,
            "t2={t2} t1={t1}"
        );
    }

    #[test]
    fn advance_past_multiple_completions() {
        let (g, _, links) = line();
        let mut net = SimNet::new(&g);
        net.start_flow(SimTime::ZERO, &fwd(&links[..1]), 1_000_000, 0);
        net.start_flow(SimTime::ZERO, &fwd(&links[..1]), 2_000_000, 1);
        net.start_flow(SimTime::ZERO, &fwd(&links[..1]), 3_000_000, 2);
        let done = net.advance_to(SimTime::from_millis(10));
        assert_eq!(done.len(), 3);
        // Completion order follows size here.
        assert_eq!(
            done.iter().map(|(_, f)| f.tag).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        // Conservation: 6 MB crossed link 0.
        assert!((net.cumulative_bytes(links[0]) - 6_000_000.0).abs() < 1.0);
        assert_eq!(net.cumulative_bytes(links[1]), 0.0);
    }

    #[test]
    fn utilization_and_residual() {
        let (g, _, links) = line();
        let mut net = SimNet::new(&g);
        net.start_flow(SimTime::ZERO, &fwd(&links[..1]), 100_000_000, 0);
        assert!((net.link_utilization(links[0]) - 1.0).abs() < 1e-9);
        assert_eq!(net.link_utilization(links[1]), 0.0);
        let res = net.residual_bandwidth();
        assert!(res[links[0].idx()] < 1.0);
        assert!((res[links[1].idx()] - bandwidth::ETH_100G).abs() < 1.0);
    }

    #[test]
    fn cancel_restores_bandwidth() {
        let (g, _, links) = line();
        let mut net = SimNet::new(&g);
        let a = net.start_flow(SimTime::ZERO, &fwd(&links[..1]), 1_000_000, 0);
        let _b = net.start_flow(SimTime::ZERO, &fwd(&links[..1]), 1_000_000, 1);
        let cancelled = net.cancel_flow(SimTime::from_micros(10), a).unwrap();
        // 10 us at 50 Gbps = 62.5 kB transferred before cancellation.
        assert!((cancelled.remaining_bytes - (1_000_000.0 - 62_500.0)).abs() < 100.0);
        // Remaining flow now gets full rate.
        assert!((net.link_utilization(links[0]) - 1.0).abs() < 1e-9);
        let t = net.next_event_time().unwrap();
        // b transferred 62.5 kB too; 937.5 kB left at 100 Gbps = 75 us.
        assert!((t.as_micros_f64() - 10.0 - 76.0).abs() < 1.0, "{t}");
    }

    /// Regression: a flow that has drained but whose last bit is still
    /// propagating is *finished* from the sender's perspective — cancel
    /// must refuse (`None`) and the completion must still be delivered,
    /// so callers never mistake delivered bytes for an aborted transfer.
    #[test]
    fn cancel_of_drained_flow_is_a_noop_and_still_completes() {
        let (g, _, links) = line();
        let mut net = SimNet::new(&g);
        // 1 MB at 100 Gbps drains at 80 us; last bit arrives at 82 us.
        let id = net.start_flow(SimTime::ZERO, &fwd(&links), 1_000_000, 42);
        let finish = net.next_event_time().unwrap();
        // Move to a point strictly between drain and arrival.
        let between = SimTime::from_micros(81);
        assert!(net.advance_to(between).is_empty());
        assert_eq!(net.flow(id).unwrap().remaining_bytes, 0.0);
        // The cancel is refused: all bytes were delivered.
        assert!(net.cancel_flow(between, id).is_none());
        // ... and the completion still arrives on time.
        let done = net.advance_to(finish);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, id);
        assert_eq!(done[0].1.tag, 42);
        assert_eq!(done[0].1.remaining_bytes, 0.0);
        // A second cancel of the now-gone flow is also None.
        assert!(net.cancel_flow(finish, id).is_none());
    }

    #[test]
    fn empty_path_completes_immediately() {
        let (g, _, _) = line();
        let mut net = SimNet::new(&g);
        net.start_flow(SimTime::from_secs(1), &[], 1 << 30, 5);
        let t = net.next_event_time().unwrap();
        assert_eq!(t, SimTime::from_secs(1));
        let done = net.advance_to(t);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].1.tag, 5);
    }

    #[test]
    fn zero_byte_flow_costs_only_propagation() {
        let (g, _, links) = line();
        let mut net = SimNet::new(&g);
        net.start_flow(SimTime::ZERO, &fwd(&links), 0, 0);
        let t = net.next_event_time().unwrap();
        assert_eq!(t, SimTime::from_micros(2));
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn clock_must_be_monotone() {
        let (g, _, links) = line();
        let mut net = SimNet::new(&g);
        net.start_flow(SimTime::from_secs(2), &fwd(&links), 10, 0);
        net.advance_to(SimTime::from_secs(1));
    }

    #[test]
    fn weighted_flow_gets_larger_share() {
        let (g, _, links) = line();
        let mut net = SimNet::new(&g);
        let heavy = net.start_weighted_flow(SimTime::ZERO, &fwd(&links[..1]), 1_000_000, 3.0, 0);
        let light = net.start_flow(SimTime::ZERO, &fwd(&links[..1]), 1_000_000, 1);
        net.next_event_time();
        let rh = net.flow(heavy).unwrap().rate_bps;
        let rl = net.flow(light).unwrap().rate_bps;
        assert!((rh / rl - 3.0).abs() < 1e-6);
    }

    #[test]
    fn degraded_link_rerates_inflight_flow() {
        let (g, _, links) = line();
        let mut net = SimNet::new(&g);
        // 1 MB at 100 Gbps would finish at ~82 us.
        net.start_flow(SimTime::ZERO, &fwd(&links), 1_000_000, 0);
        // At 40 us (≈ 0.5 MB in), the first link browns out to 25%.
        let aborted = net.set_link_scale(SimTime::from_micros(40), links[0], 0.25);
        assert!(aborted.is_empty(), "degrade must not abort flows");
        assert!((net.link_utilization(links[0]) - 1.0).abs() < 1e-9);
        // Remaining ~0.5 MB at 25 Gbps = ~160 us more.
        let t = net.next_event_time().unwrap().as_micros_f64();
        assert!((t - 202.0).abs() < 2.0, "finish at {t} us");
        // Recovery at 100 us: 2.5e6 bits remain (60 us at 25 Gbps drained
        // 1.5e6), so line rate finishes them 25 us later.
        net.set_link_scale(SimTime::from_micros(100), links[0], 1.0);
        let t = net.next_event_time().unwrap().as_micros_f64();
        assert!((t - 127.0).abs() < 2.0, "finish at {t} us after recovery");
    }

    #[test]
    fn dead_link_aborts_crossing_flows_only() {
        let (g, _, links) = line();
        let mut net = SimNet::new(&g);
        let doomed = net.start_flow(SimTime::ZERO, &fwd(&links), 1_000_000, 7);
        let survivor = net.start_flow(SimTime::ZERO, &fwd(&links[1..]), 1_000_000, 8);
        let aborted = net.set_link_scale(SimTime::from_micros(10), links[0], 0.0);
        assert_eq!(aborted.len(), 1);
        assert_eq!(aborted[0].0, doomed);
        assert_eq!(aborted[0].1.tag, 7);
        // Progress was accrued up to the fault before the abort.
        assert!(aborted[0].1.remaining_bytes < 1_000_000.0);
        assert!(net.flow(survivor).is_some());
        // Dead link reads as fully busy with zero residual.
        assert!((net.link_utilization(links[0]) - 1.0).abs() < 1e-9);
        assert_eq!(net.residual_bandwidth()[links[0].idx()], 0.0);
        assert!((net.link_scale(links[0]) - 0.0).abs() < 1e-12);
        // A flow started across the dead link stalls rather than finishing.
        net.start_flow(SimTime::from_micros(20), &fwd(&links[..1]), 1_000, 9);
        let next = net.next_event_time().unwrap();
        assert!(next < SimTime::MAX, "survivor still finishes");
        let done = net.advance_to(SimTime::from_millis(1));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].1.tag, 8);
        // Recovery lets the stalled flow drain.
        net.set_link_scale(SimTime::from_millis(2), links[0], 1.0);
        let done = net.advance_to(SimTime::from_millis(3));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].1.tag, 9);
    }

    #[test]
    fn byte_conservation_across_rate_changes() {
        let (g, _, links) = line();
        let mut net = SimNet::new(&g);
        net.start_flow(SimTime::ZERO, &fwd(&links[..1]), 4_000_000, 0);
        // A second flow arrives mid-transfer and leaves via completion.
        net.start_flow(SimTime::from_micros(100), &fwd(&links[..1]), 1_000_000, 1);
        net.advance_to(SimTime::from_millis(5));
        assert_eq!(net.active_flow_count(), 0);
        assert!(
            (net.cumulative_bytes(links[0]) - 5_000_000.0).abs() < 10.0,
            "delivered {}",
            net.cumulative_bytes(links[0])
        );
    }

    /// The incremental engine and a forced full re-solve must agree bit
    /// for bit on a scenario that exercises scoped solves, completions,
    /// cancels, and a fault (`tests/equivalence.rs` covers arbitrary
    /// sequences; this is the in-crate smoke version).
    #[test]
    fn incremental_matches_full_resolve_bitwise() {
        let run = |full: bool| {
            let (g, _, links) = line();
            let mut net = SimNet::new(&g);
            net.set_full_resolve(full);
            let mut log: Vec<(u64, u64)> = Vec::new();
            net.start_flow(SimTime::ZERO, &fwd(&links), 2_000_000, 1);
            let b = net.start_flow(SimTime::from_micros(30), &fwd(&links[..1]), 1_000_000, 2);
            net.start_flow(SimTime::from_micros(40), &fwd(&links[1..]), 500_000, 3);
            net.set_link_scale(SimTime::from_micros(60), links[0], 0.5);
            for (id, f) in net.advance_to(SimTime::from_micros(120)) {
                log.push((id.0, f.tag));
            }
            net.cancel_flow(SimTime::from_micros(130), b);
            for (id, f) in net.advance_to(SimTime::from_millis(4)) {
                log.push((id.0, f.tag));
            }
            let bytes: Vec<u64> = (0..2)
                .map(|i| net.cumulative_bytes(links[i]).to_bits())
                .collect();
            (log, bytes, net.active_flow_count())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn tracer_sees_flow_and_link_events() {
        let (g, _, links) = line();
        let mut net = SimNet::new(&g);
        let tracer = hs_obs::Tracer::recording();
        net.set_tracer(&tracer);
        net.start_flow(SimTime::ZERO, &fwd(&links), 1_000_000, 7);
        // Degrade, then kill the first link: one re-rate, one abort.
        net.set_link_scale(SimTime::from_micros(10), links[0], 0.5);
        let dead = net.set_link_scale(SimTime::from_micros(20), links[0], 0.0);
        assert_eq!(dead.len(), 1);

        let recs = tracer.records();
        let start = recs.iter().find(|r| r.name == "flow_start").unwrap();
        assert_eq!(start.arg("bytes").and_then(hs_obs::Val::as_f64), Some(1e6));
        let scales: Vec<_> = recs.iter().filter(|r| r.name == "link_scale").collect();
        assert_eq!(scales.len(), 2);
        assert_eq!(
            scales[0].arg("rerated").and_then(hs_obs::Val::as_f64),
            Some(1.0)
        );
        assert_eq!(
            scales[1].arg("aborted").and_then(hs_obs::Val::as_f64),
            Some(1.0)
        );
        assert!(recs.iter().any(|r| r.name == "flow_abort"));
    }

    #[test]
    fn tracer_never_perturbs_flow_outcomes() {
        let run = |traced: bool| {
            let (g, _, links) = line();
            let mut net = SimNet::new(&g);
            if traced {
                net.set_tracer(&hs_obs::Tracer::recording());
            }
            net.start_flow(SimTime::ZERO, &fwd(&links), 2_000_000, 1);
            net.start_flow(SimTime::from_micros(50), &fwd(&links[..1]), 500_000, 2);
            net.set_link_scale(SimTime::from_micros(80), links[0], 0.5);
            let done = net.advance_to(SimTime::from_millis(5));
            (
                done.iter().map(|(id, f)| (id.0, f.tag)).collect::<Vec<_>>(),
                net.cumulative_bytes(links[0]),
            )
        };
        assert_eq!(run(false), run(true));
    }
}
