//! The flow-level network simulator.
//!
//! [`SimNet`] tracks a set of active [`Flow`]s, allocates link bandwidth
//! among them max-min fairly, and advances flow progress in lock-step with
//! an external clock. It is an *event source*: a parent simulation asks
//! [`SimNet::next_event_time`] when the earliest flow will finish, advances
//! its own clock, then calls [`SimNet::advance_to`] to collect completions.
//!
//! A flow's completion time is `max(serialization finish, start +
//! path propagation delay)`; serialization progress accrues at the flow's
//! current fair-share rate, which changes whenever flows start or finish.

use crate::fairshare::{compute_rates, FlowDemand};
use hs_des::{SimSpan, SimTime};
use hs_topology::{Graph, LinkId};
use std::collections::BTreeMap;

/// One directed hop: the link and whether it is traversed `a -> b`
/// (links are full duplex; each direction is its own capacity pool).
pub type DirLink = (LinkId, bool);

/// Dense slot index of a directed link.
#[inline]
fn slot(d: DirLink) -> usize {
    d.0.idx() * 2 + d.1 as usize
}

/// Identifier of an active (or completed) flow.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FlowId(pub u64);

/// An active transfer.
#[derive(Clone, Debug)]
pub struct Flow {
    /// Directed hops the flow traverses (loopless).
    pub path: Vec<DirLink>,
    /// Bytes still to serialize.
    pub remaining_bytes: f64,
    /// Total size at start (for reporting).
    pub size_bytes: u64,
    /// Current allocated rate, bits/s (∞ for empty paths).
    pub rate_bps: f64,
    /// Relative fair-share weight.
    pub weight: f64,
    /// Start time.
    pub started: SimTime,
    /// Total propagation delay along the path.
    pub prop: SimSpan,
    /// Completion cannot occur before this; once the flow drains, holds
    /// drain time + propagation (the last bit's arrival).
    pub earliest_finish: SimTime,
    /// Caller-supplied tag for demultiplexing completions.
    pub tag: u64,
}

/// Flow-level network state over a fixed topology.
pub struct SimNet {
    /// Per-link capacity (each *direction* gets the full capacity:
    /// full-duplex links). Current, i.e. after fault scaling.
    capacities: Vec<f64>,
    /// Nominal per-link capacity; `capacities[i] = base_capacities[i] *
    /// scale` where scale is set by [`SimNet::set_link_scale`].
    base_capacities: Vec<f64>,
    link_latency_ns: Vec<u64>,
    flows: BTreeMap<FlowId, Flow>,
    next_id: u64,
    clock: SimTime,
    /// Cumulative bytes delivered per directed link (the "hardware
    /// counters"; index = link*2 + direction).
    cum_bytes: Vec<f64>,
    /// Allocated rate per directed link (sum of flow rates), bits/s.
    link_rate: Vec<f64>,
    rates_dirty: bool,
    /// Flow/link event sink; no-op unless attached via
    /// [`SimNet::set_tracer`]. Never affects simulation state.
    tracer: hs_obs::Tracer,
}

impl SimNet {
    /// Create a simulator over the links of `graph`.
    pub fn new(graph: &Graph) -> Self {
        let capacities = graph.capacities();
        let link_latency_ns = graph.links().map(|(_, l)| l.latency_ns).collect();
        let n = capacities.len();
        SimNet {
            base_capacities: capacities.clone(),
            capacities,
            link_latency_ns,
            flows: BTreeMap::new(),
            next_id: 0,
            clock: SimTime::ZERO,
            cum_bytes: vec![0.0; 2 * n],
            link_rate: vec![0.0; 2 * n],
            rates_dirty: false,
            tracer: hs_obs::Tracer::noop(),
        }
    }

    /// Attach a tracer for flow start/abort and link-scale events.
    pub fn set_tracer(&mut self, tracer: &hs_obs::Tracer) {
        self.tracer = tracer.clone();
    }

    /// Current internal clock (last `advance_to` or flow start).
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Number of in-flight flows.
    pub fn active_flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Start a unit-weight flow of `bytes` over the directed `path` at
    /// time `now`.
    pub fn start_flow(&mut self, now: SimTime, path: &[DirLink], bytes: u64, tag: u64) -> FlowId {
        self.start_weighted_flow(now, path, bytes, 1.0, tag)
    }

    /// Start a flow with an explicit fair-share weight (used to model a
    /// collective step that opens several parallel streams).
    pub fn start_weighted_flow(
        &mut self,
        now: SimTime,
        path: &[DirLink],
        bytes: u64,
        weight: f64,
        tag: u64,
    ) -> FlowId {
        assert!(weight > 0.0, "flow weight must be positive");
        self.progress_to(now);
        let id = FlowId(self.next_id);
        self.next_id += 1;
        let prop_ns: u64 = path
            .iter()
            .map(|&(l, _)| self.link_latency_ns[l.idx()])
            .sum();
        let prop = SimSpan::from_nanos(prop_ns);
        self.flows.insert(
            id,
            Flow {
                path: path.to_vec(),
                remaining_bytes: bytes as f64,
                size_bytes: bytes,
                rate_bps: 0.0,
                weight,
                started: now,
                prop,
                earliest_finish: now + prop,
                tag,
            },
        );
        self.rates_dirty = true;
        self.tracer.flow_start(now, id.0, tag, bytes, path.len());
        id
    }

    /// Remove a flow before completion (e.g. a cancelled transfer).
    /// Returns the flow if it was active.
    pub fn cancel_flow(&mut self, now: SimTime, id: FlowId) -> Option<Flow> {
        self.progress_to(now);
        let f = self.flows.remove(&id);
        if f.is_some() {
            self.rates_dirty = true;
            self.tracer.flow_abort(now, id.0, "cancelled");
        }
        f
    }

    /// Inspect an active flow.
    pub fn flow(&self, id: FlowId) -> Option<&Flow> {
        self.flows.get(&id)
    }

    /// The time of the earliest flow completion, or `None` when idle.
    pub fn next_event_time(&mut self) -> Option<SimTime> {
        self.recompute_rates_if_dirty();
        let mut best: Option<SimTime> = None;
        for f in self.flows.values() {
            let t = self.finish_estimate(f);
            best = Some(match best {
                Some(b) if b <= t => b,
                _ => t,
            });
        }
        best
    }

    /// Advance the clock to `now`, accruing flow progress, and return the
    /// flows that completed (in completion-then-id order).
    pub fn advance_to(&mut self, now: SimTime) -> Vec<(FlowId, Flow)> {
        assert!(now >= self.clock, "SimNet clock must be monotone");
        let mut done = Vec::new();
        // Completions change rates, which changes later completions within
        // the same window — loop until no flow finishes at or before `now`.
        loop {
            self.recompute_rates_if_dirty();
            // Earliest finish estimate in the window.
            let mut next: Option<(SimTime, FlowId)> = None;
            for (&id, f) in &self.flows {
                let t = self.finish_estimate(f);
                if t <= now {
                    match next {
                        Some((bt, _)) if bt <= t => {}
                        _ => next = Some((t, id)),
                    }
                }
            }
            let Some((t, id)) = next else {
                self.progress_to(now);
                break;
            };
            self.progress_to(t);
            let mut f = self.flows.remove(&id).expect("flow vanished");
            f.remaining_bytes = 0.0;
            self.rates_dirty = true;
            done.push((id, f));
        }
        done
    }

    /// Fair-share utilization of a link in `[0, 1]`: the busier
    /// direction's allocated rate over capacity. This is the
    /// instantaneous `B(e)`-complement the online scheduler's cost
    /// tables consume.
    pub fn link_utilization(&mut self, l: LinkId) -> f64 {
        self.recompute_rates_if_dirty();
        let fwd = self.link_rate[l.idx() * 2];
        let rev = self.link_rate[l.idx() * 2 + 1];
        Self::util(fwd.max(rev), self.capacities[l.idx()])
    }

    /// Snapshot of all link utilizations (busier direction per link).
    pub fn utilization_snapshot(&mut self) -> Vec<f64> {
        self.recompute_rates_if_dirty();
        (0..self.capacities.len())
            .map(|i| {
                Self::util(
                    self.link_rate[i * 2].max(self.link_rate[i * 2 + 1]),
                    self.capacities[i],
                )
            })
            .collect()
    }

    /// Rate-over-capacity in `[0, 1]`; a dead link reads as fully busy so
    /// utilization-driven schedulers steer away from it.
    #[inline]
    fn util(rate: f64, capacity: f64) -> f64 {
        if capacity <= 0.0 {
            1.0
        } else {
            (rate / capacity).clamp(0.0, 1.0)
        }
    }

    /// Residual bandwidth `B(e) = C(e) - allocated` per link, bits/s
    /// (busier direction) — the planner's Table I input.
    pub fn residual_bandwidth(&mut self) -> Vec<f64> {
        self.recompute_rates_if_dirty();
        (0..self.capacities.len())
            .map(|i| {
                (self.capacities[i] - self.link_rate[i * 2].max(self.link_rate[i * 2 + 1])).max(0.0)
            })
            .collect()
    }

    /// Cumulative bytes delivered over a link since simulation start,
    /// both directions (monotone; models a switch hardware counter).
    pub fn cumulative_bytes(&self, l: LinkId) -> f64 {
        self.cum_bytes[l.idx() * 2] + self.cum_bytes[l.idx() * 2 + 1]
    }

    /// Cumulative bytes for one direction of a link.
    pub fn cumulative_bytes_dir(&self, l: LinkId, forward: bool) -> f64 {
        self.cum_bytes[l.idx() * 2 + forward as usize]
    }

    /// Link capacities (bits/s), after any fault scaling.
    pub fn capacities(&self) -> &[f64] {
        &self.capacities
    }

    /// Current capacity scale of a link: `1.0` healthy, `0.0` dead.
    pub fn link_scale(&self, l: LinkId) -> f64 {
        let base = self.base_capacities[l.idx()];
        if base <= 0.0 {
            return 1.0;
        }
        self.capacities[l.idx()] / base
    }

    /// Set a link's capacity to `factor` of nominal at time `now` (a
    /// fault when `factor < 1`, a recovery when it returns to `1.0`).
    ///
    /// Surviving flows are re-rated max-min fairly at the next query.
    /// When `factor` is zero the link is dead: every flow crossing it
    /// (either direction) is aborted and returned, with its progress
    /// accrued up to `now`, so the caller can retry over another route.
    /// Flows *started* across a dead link later are not rejected — they
    /// simply stall at rate 0 until the link recovers, which is how a
    /// fault-oblivious baseline behaves.
    pub fn set_link_scale(&mut self, now: SimTime, l: LinkId, factor: f64) -> Vec<(FlowId, Flow)> {
        assert!(
            factor.is_finite() && (0.0..=1.0).contains(&factor),
            "link scale must be in [0, 1], got {factor}"
        );
        self.progress_to(now);
        self.capacities[l.idx()] = self.base_capacities[l.idx()] * factor;
        self.rates_dirty = true;
        let crossing = || {
            self.flows
                .values()
                .filter(|f| f.path.iter().any(|&(fl, _)| fl == l))
                .count()
        };
        if factor > 0.0 {
            if self.tracer.is_enabled() {
                self.tracer
                    .link_scale(now, l.idx() as u64, factor, crossing(), 0);
            }
            return Vec::new();
        }
        let doomed: Vec<FlowId> = self
            .flows
            .iter()
            .filter(|(_, f)| f.path.iter().any(|&(fl, _)| fl == l))
            .map(|(&id, _)| id)
            .collect();
        if self.tracer.is_enabled() {
            self.tracer
                .link_scale(now, l.idx() as u64, factor, 0, doomed.len());
            for id in &doomed {
                self.tracer.flow_abort(now, id.0, "link_dead");
            }
        }
        doomed
            .into_iter()
            .map(|id| (id, self.flows.remove(&id).expect("doomed flow present")))
            .collect()
    }

    fn finish_estimate(&self, f: &Flow) -> SimTime {
        if f.remaining_bytes <= 0.0 || f.rate_bps.is_infinite() {
            // Drained (or an instantaneous local copy): waiting only for
            // the last bit's propagation.
            return f.earliest_finish.max(self.clock);
        }
        // simlint::allow(float-eq, 0.0 is an exact assigned sentinel for starved flows, never computed)
        if f.rate_bps == 0.0 {
            return SimTime::MAX;
        }
        let secs = f.remaining_bytes * 8.0 / f.rate_bps;
        let ser = self.clock + SimSpan::from_secs_f64(secs).saturating_add(SimSpan::from_nanos(1));
        (ser + f.prop).max(f.earliest_finish)
    }

    /// Accrue progress for all flows up to `t` (no completions handled).
    fn progress_to(&mut self, t: SimTime) {
        if t <= self.clock {
            return;
        }
        self.recompute_rates_if_dirty();
        let dt = (t - self.clock).as_secs_f64();
        for f in self.flows.values_mut() {
            if f.rate_bps > 0.0 && f.rate_bps.is_finite() && f.remaining_bytes > 0.0 {
                let bytes = f.rate_bps / 8.0 * dt;
                let consumed = bytes.min(f.remaining_bytes);
                // If the flow drains inside this window, record the last
                // bit's arrival time (drain instant + propagation).
                if consumed >= f.remaining_bytes {
                    let drain_secs = f.remaining_bytes * 8.0 / f.rate_bps;
                    let drained_at = self.clock + SimSpan::from_secs_f64(drain_secs);
                    f.earliest_finish = f.earliest_finish.max(drained_at + f.prop);
                }
                f.remaining_bytes -= consumed;
                if f.remaining_bytes < 1e-6 {
                    f.remaining_bytes = 0.0;
                }
                for &d in &f.path {
                    self.cum_bytes[slot(d)] += consumed;
                }
            } else if f.rate_bps.is_infinite() {
                // Empty-path flow: delivered instantly, no link bytes.
                f.remaining_bytes = 0.0;
            }
        }
        self.clock = t;
    }

    fn recompute_rates_if_dirty(&mut self) {
        if !self.rates_dirty {
            return;
        }
        // Dense directed-slot paths for the fair-share solver.
        let paths: Vec<Vec<usize>> = self
            .flows
            .values()
            .map(|f| f.path.iter().map(|&d| slot(d)).collect())
            .collect();
        let demands: Vec<FlowDemand<'_>> = paths
            .iter()
            .zip(self.flows.values())
            .map(|(p, f)| FlowDemand {
                links: p,
                weight: f.weight,
            })
            .collect();
        // Directed capacity vector: full capacity per direction.
        let mut dir_caps = Vec::with_capacity(self.capacities.len() * 2);
        for &c in &self.capacities {
            dir_caps.push(c);
            dir_caps.push(c);
        }
        let rates = compute_rates(&dir_caps, &demands);
        for r in self.link_rate.iter_mut() {
            *r = 0.0;
        }
        for ((f, rate), path) in self.flows.values_mut().zip(&rates).zip(&paths) {
            f.rate_bps = *rate;
            if rate.is_finite() {
                for &l in path {
                    self.link_rate[l] += rate;
                }
            }
        }
        self.rates_dirty = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs_topology::{
        graph::{bandwidth, GpuSpec, GraphBuilder, LinkKind, ServerId},
        NodeId,
    };

    /// Direct all hops "forward" (capacity is symmetric in these tests).
    fn fwd(links: &[LinkId]) -> Vec<DirLink> {
        links.iter().map(|&l| (l, true)).collect()
    }

    /// Two GPUs joined by one 100 G Ethernet link via a switch.
    fn line() -> (Graph, Vec<NodeId>, Vec<LinkId>) {
        let mut b = GraphBuilder::new();
        let g0 = b.add_gpu(ServerId(0), 0, GpuSpec::a100_40g());
        let g1 = b.add_gpu(ServerId(1), 0, GpuSpec::a100_40g());
        let s = b.add_access_switch(true, "s");
        let l0 = b.add_link(g0, s, LinkKind::Ethernet, bandwidth::ETH_100G, 1_000);
        let l1 = b.add_link(g1, s, LinkKind::Ethernet, bandwidth::ETH_100G, 1_000);
        (b.build(), vec![g0, g1, s], vec![l0, l1])
    }

    #[test]
    fn lone_flow_runs_at_line_rate() {
        let (g, _, links) = line();
        let mut net = SimNet::new(&g);
        // 1 MB over 100 Gbps, 2 hops of 1 us propagation: 80 us + 2 us.
        let id = net.start_flow(SimTime::ZERO, &fwd(&links), 1_000_000, 7);
        let t = net.next_event_time().unwrap();
        let us = t.as_micros_f64();
        assert!((us - 82.0).abs() < 0.5, "finish at {us} us");
        let done = net.advance_to(t);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, id);
        assert_eq!(done[0].1.tag, 7);
        assert_eq!(net.active_flow_count(), 0);
    }

    #[test]
    fn two_flows_share_then_speed_up() {
        let (g, _, links) = line();
        let mut net = SimNet::new(&g);
        // Both flows cross link l0 only (g0->switch), 1 MB each.
        let a = net.start_flow(SimTime::ZERO, &fwd(&links[..1]), 1_000_000, 0);
        let _b = net.start_flow(SimTime::ZERO, &fwd(&links[..1]), 2_000_000, 1);
        // Shared at 50 Gbps each. Flow a: 8e6 bits / 50e9 = 160 us.
        let t1 = net.next_event_time().unwrap();
        assert!((t1.as_micros_f64() - 161.0).abs() < 1.0, "{t1}");
        let done = net.advance_to(t1);
        assert_eq!(done[0].0, a);
        // Flow b then has 1 MB left at full 100 Gbps: 80 us more.
        let t2 = net.next_event_time().unwrap();
        assert!(
            (t2.as_micros_f64() - t1.as_micros_f64() - 80.0).abs() < 1.0,
            "t2={t2} t1={t1}"
        );
    }

    #[test]
    fn advance_past_multiple_completions() {
        let (g, _, links) = line();
        let mut net = SimNet::new(&g);
        net.start_flow(SimTime::ZERO, &fwd(&links[..1]), 1_000_000, 0);
        net.start_flow(SimTime::ZERO, &fwd(&links[..1]), 2_000_000, 1);
        net.start_flow(SimTime::ZERO, &fwd(&links[..1]), 3_000_000, 2);
        let done = net.advance_to(SimTime::from_millis(10));
        assert_eq!(done.len(), 3);
        // Completion order follows size here.
        assert_eq!(
            done.iter().map(|(_, f)| f.tag).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        // Conservation: 6 MB crossed link 0.
        assert!((net.cumulative_bytes(links[0]) - 6_000_000.0).abs() < 1.0);
        assert_eq!(net.cumulative_bytes(links[1]), 0.0);
    }

    #[test]
    fn utilization_and_residual() {
        let (g, _, links) = line();
        let mut net = SimNet::new(&g);
        net.start_flow(SimTime::ZERO, &fwd(&links[..1]), 100_000_000, 0);
        assert!((net.link_utilization(links[0]) - 1.0).abs() < 1e-9);
        assert_eq!(net.link_utilization(links[1]), 0.0);
        let res = net.residual_bandwidth();
        assert!(res[links[0].idx()] < 1.0);
        assert!((res[links[1].idx()] - bandwidth::ETH_100G).abs() < 1.0);
    }

    #[test]
    fn cancel_restores_bandwidth() {
        let (g, _, links) = line();
        let mut net = SimNet::new(&g);
        let a = net.start_flow(SimTime::ZERO, &fwd(&links[..1]), 1_000_000, 0);
        let _b = net.start_flow(SimTime::ZERO, &fwd(&links[..1]), 1_000_000, 1);
        let cancelled = net.cancel_flow(SimTime::from_micros(10), a).unwrap();
        // 10 us at 50 Gbps = 62.5 kB transferred before cancellation.
        assert!((cancelled.remaining_bytes - (1_000_000.0 - 62_500.0)).abs() < 100.0);
        // Remaining flow now gets full rate.
        assert!((net.link_utilization(links[0]) - 1.0).abs() < 1e-9);
        let t = net.next_event_time().unwrap();
        // b transferred 62.5 kB too; 937.5 kB left at 100 Gbps = 75 us.
        assert!((t.as_micros_f64() - 10.0 - 76.0).abs() < 1.0, "{t}");
    }

    #[test]
    fn empty_path_completes_immediately() {
        let (g, _, _) = line();
        let mut net = SimNet::new(&g);
        net.start_flow(SimTime::from_secs(1), &[], 1 << 30, 5);
        let t = net.next_event_time().unwrap();
        assert_eq!(t, SimTime::from_secs(1));
        let done = net.advance_to(t);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].1.tag, 5);
    }

    #[test]
    fn zero_byte_flow_costs_only_propagation() {
        let (g, _, links) = line();
        let mut net = SimNet::new(&g);
        net.start_flow(SimTime::ZERO, &fwd(&links), 0, 0);
        let t = net.next_event_time().unwrap();
        assert_eq!(t, SimTime::from_micros(2));
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn clock_must_be_monotone() {
        let (g, _, links) = line();
        let mut net = SimNet::new(&g);
        net.start_flow(SimTime::from_secs(2), &fwd(&links), 10, 0);
        net.advance_to(SimTime::from_secs(1));
    }

    #[test]
    fn weighted_flow_gets_larger_share() {
        let (g, _, links) = line();
        let mut net = SimNet::new(&g);
        let heavy = net.start_weighted_flow(SimTime::ZERO, &fwd(&links[..1]), 1_000_000, 3.0, 0);
        let light = net.start_flow(SimTime::ZERO, &fwd(&links[..1]), 1_000_000, 1);
        net.next_event_time();
        let rh = net.flow(heavy).unwrap().rate_bps;
        let rl = net.flow(light).unwrap().rate_bps;
        assert!((rh / rl - 3.0).abs() < 1e-6);
    }

    #[test]
    fn degraded_link_rerates_inflight_flow() {
        let (g, _, links) = line();
        let mut net = SimNet::new(&g);
        // 1 MB at 100 Gbps would finish at ~82 us.
        net.start_flow(SimTime::ZERO, &fwd(&links), 1_000_000, 0);
        // At 40 us (≈ 0.5 MB in), the first link browns out to 25%.
        let aborted = net.set_link_scale(SimTime::from_micros(40), links[0], 0.25);
        assert!(aborted.is_empty(), "degrade must not abort flows");
        assert!((net.link_utilization(links[0]) - 1.0).abs() < 1e-9);
        // Remaining ~0.5 MB at 25 Gbps = ~160 us more.
        let t = net.next_event_time().unwrap().as_micros_f64();
        assert!((t - 202.0).abs() < 2.0, "finish at {t} us");
        // Recovery at 100 us: 2.5e6 bits remain (60 us at 25 Gbps drained
        // 1.5e6), so line rate finishes them 25 us later.
        net.set_link_scale(SimTime::from_micros(100), links[0], 1.0);
        let t = net.next_event_time().unwrap().as_micros_f64();
        assert!((t - 127.0).abs() < 2.0, "finish at {t} us after recovery");
    }

    #[test]
    fn dead_link_aborts_crossing_flows_only() {
        let (g, _, links) = line();
        let mut net = SimNet::new(&g);
        let doomed = net.start_flow(SimTime::ZERO, &fwd(&links), 1_000_000, 7);
        let survivor = net.start_flow(SimTime::ZERO, &fwd(&links[1..]), 1_000_000, 8);
        let aborted = net.set_link_scale(SimTime::from_micros(10), links[0], 0.0);
        assert_eq!(aborted.len(), 1);
        assert_eq!(aborted[0].0, doomed);
        assert_eq!(aborted[0].1.tag, 7);
        // Progress was accrued up to the fault before the abort.
        assert!(aborted[0].1.remaining_bytes < 1_000_000.0);
        assert!(net.flow(survivor).is_some());
        // Dead link reads as fully busy with zero residual.
        assert!((net.link_utilization(links[0]) - 1.0).abs() < 1e-9);
        assert_eq!(net.residual_bandwidth()[links[0].idx()], 0.0);
        assert!((net.link_scale(links[0]) - 0.0).abs() < 1e-12);
        // A flow started across the dead link stalls rather than finishing.
        net.start_flow(SimTime::from_micros(20), &fwd(&links[..1]), 1_000, 9);
        let next = net.next_event_time().unwrap();
        assert!(next < SimTime::MAX, "survivor still finishes");
        let done = net.advance_to(SimTime::from_millis(1));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].1.tag, 8);
        // Recovery lets the stalled flow drain.
        net.set_link_scale(SimTime::from_millis(2), links[0], 1.0);
        let done = net.advance_to(SimTime::from_millis(3));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].1.tag, 9);
    }

    #[test]
    fn byte_conservation_across_rate_changes() {
        let (g, _, links) = line();
        let mut net = SimNet::new(&g);
        net.start_flow(SimTime::ZERO, &fwd(&links[..1]), 4_000_000, 0);
        // A second flow arrives mid-transfer and leaves via completion.
        net.start_flow(SimTime::from_micros(100), &fwd(&links[..1]), 1_000_000, 1);
        net.advance_to(SimTime::from_millis(5));
        assert_eq!(net.active_flow_count(), 0);
        assert!(
            (net.cumulative_bytes(links[0]) - 5_000_000.0).abs() < 10.0,
            "delivered {}",
            net.cumulative_bytes(links[0])
        );
    }

    #[test]
    fn tracer_sees_flow_and_link_events() {
        let (g, _, links) = line();
        let mut net = SimNet::new(&g);
        let tracer = hs_obs::Tracer::recording();
        net.set_tracer(&tracer);
        net.start_flow(SimTime::ZERO, &fwd(&links), 1_000_000, 7);
        // Degrade, then kill the first link: one re-rate, one abort.
        net.set_link_scale(SimTime::from_micros(10), links[0], 0.5);
        let dead = net.set_link_scale(SimTime::from_micros(20), links[0], 0.0);
        assert_eq!(dead.len(), 1);

        let recs = tracer.records();
        let start = recs.iter().find(|r| r.name == "flow_start").unwrap();
        assert_eq!(start.arg("bytes").and_then(hs_obs::Val::as_f64), Some(1e6));
        let scales: Vec<_> = recs.iter().filter(|r| r.name == "link_scale").collect();
        assert_eq!(scales.len(), 2);
        assert_eq!(
            scales[0].arg("rerated").and_then(hs_obs::Val::as_f64),
            Some(1.0)
        );
        assert_eq!(
            scales[1].arg("aborted").and_then(hs_obs::Val::as_f64),
            Some(1.0)
        );
        assert!(recs.iter().any(|r| r.name == "flow_abort"));
    }

    #[test]
    fn tracer_never_perturbs_flow_outcomes() {
        let run = |traced: bool| {
            let (g, _, links) = line();
            let mut net = SimNet::new(&g);
            if traced {
                net.set_tracer(&hs_obs::Tracer::recording());
            }
            net.start_flow(SimTime::ZERO, &fwd(&links), 2_000_000, 1);
            net.start_flow(SimTime::from_micros(50), &fwd(&links[..1]), 500_000, 2);
            net.set_link_scale(SimTime::from_micros(80), links[0], 0.5);
            let done = net.advance_to(SimTime::from_millis(5));
            (
                done.iter().map(|(id, f)| (id.0, f.tag)).collect::<Vec<_>>(),
                net.cumulative_bytes(links[0]),
            )
        };
        assert_eq!(run(false), run(true));
    }
}
