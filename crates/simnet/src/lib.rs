//! # hs-simnet — flow-level network simulation
//!
//! The paper's phenomena of interest — congestion collapse of in-network
//! aggregation under bursty traffic (§I, §II-C), NVLink offloading, and
//! load balancing across heterogeneous links — are all *flow-level*
//! effects: they depend on how concurrent transfers share link bandwidth,
//! not on per-packet behaviour. This crate therefore simulates the fabric
//! at flow granularity:
//!
//! * every transfer is a [`Flow`] over a fixed link path;
//! * link bandwidth is shared **max-min fairly** among the flows crossing
//!   it (the standard fluid approximation of per-flow fair queueing /
//!   DCTCP-like congestion control), recomputed whenever the flow set
//!   changes ([`fairshare`]);
//! * the simulator exposes a *pull* interface — [`SimNet::next_event_time`]
//!   / [`SimNet::advance_to`] — so the cluster simulator can interleave it
//!   with compute events;
//! * per-link byte counters and utilization estimates ([`monitor`]) play
//!   the role of the switch hardware counters and DCGM NVLink counters the
//!   paper's agents poll (§IV).
//!
//! Rate maintenance is incremental and two-tier: [`SimNet`] owns a
//! persistent [`SolverWorkspace`] plus a one-round aggregate solver
//! ([`OneRoundSolver`]), re-solves only the connected component of
//! links/flows a change touches (settling single-bottleneck components
//! in O(n) and handing congested ones to the exact water-filling loop),
//! and finds completions through a lazily-invalidated min-heap. Bulk
//! advances shard independent components across rayon workers with a
//! deterministic `(SimTime, FlowId)` event merge — see `net.rs`,
//! `shard.rs`, and DESIGN.md §9/§12. The from-scratch solver
//! ([`compute_rates`]) is retained as the reference oracle for the
//! equivalence suite.

pub mod fairshare;
pub mod monitor;
pub mod net;
mod shard;

pub use fairshare::{compute_rates, FlowSpan, OneRoundSolver, SolverWorkspace};
pub use monitor::LinkMonitor;
pub use net::{DirLink, Flow, FlowId, SimNet, SolveStats};
