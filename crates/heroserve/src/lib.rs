//! # HeroServe — hybrid communication scheduling for LLM serving
//!
//! A from-scratch Rust reproduction of *"Scalable and Fast Inference
//! Serving via Hybrid Communication Scheduling on Heterogeneous Networks"*
//! (Chen et al., IEEE CLUSTER 2025). HeroServe accelerates prefill/decode
//! disaggregated LLM serving by exploiting **heterogeneous** networks —
//! intra-server NVLink plus inter-server Ethernet with programmable
//! switches — instead of pushing every all-reduce over homogeneous
//! Ethernet.
//!
//! The two contributions, both implemented here:
//!
//! * [`planner`] — the **scalability-oriented offline planner**
//!   (Algorithm 1): jointly picks tensor/pipeline parallelism, GPU
//!   placement, per-group aggregation switch, and per-group communication
//!   scheme (INA `α` vs ring `β`, Eq. 7), maximizing served requests per
//!   second under TTFT/TPOT SLAs. Its network-estimation core
//!   ([`netest`], Algorithm 2) precomputes all-pairs shortest paths,
//!   groups GPUs with constrained k-means, and refines with random-swap
//!   perturbation.
//! * [`scheduler`] — the **load-aware online scheduler** (§III-D):
//!   per-group policy cost tables over candidate (scheme, path) policies,
//!   selection by `c* = argmin J(c, D)` (Eq. 16), virtual-utilization
//!   updates with the shared-link load-penalty function (Eqs. 17–18), and
//!   periodic synchronization against monitored link utilization (the
//!   central controller's role).
//!
//! [`system`] wires both into the [`hs_cluster`] simulator: `HeroServe`
//! plans a deployment, then serves a trace with the online scheduler
//! driving every collective. The [`queueing`] module supplies the
//! Pollaczek–Khinchine waiting-time estimate of §III-C1.
//!
//! ## Quickstart
//!
//! ```
//! use heroserve::prelude::*;
//!
//! // The paper's testbed: 4 GPU servers, 2 Tofino switches.
//! let topo = hs_topology::builders::testbed();
//! let workload = hs_workload::sharegpt_like();
//! let system = HeroServe::plan(&topo, &hs_model::ModelConfig::opt_13b(), &workload, 4.0)
//!     .expect("feasible deployment");
//! let report = system.serve_trace(42, 4.0, hs_des::SimTime::from_secs(5));
//! assert!(report.arrived > 0);
//! ```

pub mod autoscaler;
pub mod netest;
pub mod planner;
pub mod policy;
pub mod queueing;
pub mod scheduler;
pub mod spec;
pub mod system;

pub use autoscaler::{AutoscaleConfig, Autoscaler};
pub use planner::{plan, PlannerError, PlannerOutput, SchemeSpace, SolveStats};
pub use policy::KvSelectParams;
pub use scheduler::{HeroScheduler, KvSelection, SchedulerParams};
pub use spec::{ClusterPlan, GroupScheme, PlannerInput};
pub use system::HeroServe;

/// Convenient glob imports for examples and benches.
pub mod prelude {
    pub use crate::planner::{plan, PlannerOutput, SchemeSpace};
    pub use crate::scheduler::{HeroScheduler, KvSelection, SchedulerParams};
    pub use crate::spec::PlannerInput;
    pub use crate::system::HeroServe;
}
