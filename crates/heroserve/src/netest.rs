//! Algorithm 2 — network latency estimation.
//!
//! Steps, exactly as the paper lays them out:
//!
//! 1. **GPU grouping** — partition the candidate GPUs into groups of
//!    `P_tens` using a *constrained k-means* (k-medoids over the offline
//!    latency matrix `D(i,j)`, with exact group-size capacity).
//! 2. **Switch selection** — for each group, the INA-capable switch with
//!    the smallest worst-member delay.
//! 3. **Communication mode selection** — per group, the cheaper of INA
//!    (Eq. 8) and ring (Eq. 11); HeroServe's scheme space also includes
//!    the heterogeneous (NVLink-first) variants.
//! 4. **Perturbation** — random member swaps between groups, kept when
//!    they reduce total latency ("typically converges within five
//!    iterations").

use crate::spec::GroupScheme;
use hs_collective::latency::path_transfer_secs;
use hs_collective::{
    hierarchical_ina_latency, hierarchical_ring_latency, ina_latency, ring_latency, Scheme,
};
use hs_topology::{AllPairs, Graph, NodeId};
use rand::rngs::SmallRng;
use rand::Rng;

/// Which communication schemes a planner may assign (per system).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchemeSpace {
    /// Flat ring only — the DistServe baseline.
    RingOnly,
    /// Flat INA at the best switch, always — DS-SwitchML / DS-ATP.
    InaOnly,
    /// HeroServe's hybrid: hierarchical INA vs hierarchical ring vs the
    /// flat variants, whichever is fastest per group (Eq. 7's α/β choice
    /// over the heterogeneous options).
    Hybrid,
}

/// Inputs to one network estimation.
pub struct NetestInput<'a> {
    /// The fabric.
    pub graph: &'a Graph,
    /// Offline all-pairs structures (`D(i,j)`, `P(k,a)`).
    pub ap: &'a AllPairs,
    /// Residual bandwidth `B(e)` per link.
    pub avail: &'a [f64],
    /// Candidate GPUs (already memory-filtered by Algorithm 1).
    pub gpus: &'a [NodeId],
    /// Total groups to form (`replicas × P_pipe`).
    pub n_groups: usize,
    /// GPUs per group (`P_tens`).
    pub group_size: usize,
    /// Pipeline depth (consecutive groups of one replica).
    pub p_pipe: usize,
    /// Per-stage tensor-parallel sync volume per iteration, bytes.
    pub sync_bytes: u64,
    /// Stage-boundary activation volume, bytes (Eq. 6's `K·h`).
    pub pipe_bytes: u64,
    /// Allowed schemes.
    pub scheme_space: SchemeSpace,
    /// INA-capable switches.
    pub ina_switches: &'a [NodeId],
    /// Perturbation budget (passes over all groups).
    pub max_perturb_iters: usize,
}

/// The estimate (Algorithm 2's outputs: `CM`, `K_g`, `T_n`).
#[derive(Clone, Debug)]
pub struct NetEstimate {
    /// Groups, replica-major (`groups[r*p_pipe + s]` = replica r stage s).
    pub groups: Vec<Vec<NodeId>>,
    /// Scheme + latency per group, same order.
    pub schemes: Vec<GroupScheme>,
    /// Inter-stage pipeline latency per replica (max across replicas).
    pub t_pp: f64,
    /// Total per-iteration network latency `T_n` (worst replica).
    pub t_n: f64,
    /// Perturbation passes actually used.
    pub perturb_iters: usize,
    /// Group-latency evaluations performed (the deterministic work
    /// counter behind the planner's search budget).
    pub lat_evals: usize,
}

/// Constrained k-means (k-medoids) over the latency matrix: `n_groups`
/// groups of exactly `group_size`, minimizing within-group pairwise
/// latency. Deterministic given the input order.
pub fn constrained_kmeans(
    ap: &AllPairs,
    nodes: &[NodeId],
    n_groups: usize,
    group_size: usize,
) -> Vec<Vec<NodeId>> {
    assert!(n_groups * group_size <= nodes.len(), "not enough GPUs");
    assert!(n_groups > 0 && group_size > 0);
    // Initial medoids: farthest-point traversal (deterministic).
    let mut medoids: Vec<NodeId> = vec![nodes[0]];
    while medoids.len() < n_groups {
        let far = nodes
            .iter()
            .filter(|n| !medoids.contains(n))
            .max_by(|&&a, &&b| {
                let da = medoids
                    .iter()
                    .map(|&m| ap.dist(a, m))
                    .fold(f64::INFINITY, f64::min);
                let db = medoids
                    .iter()
                    .map(|&m| ap.dist(b, m))
                    .fold(f64::INFINITY, f64::min);
                da.partial_cmp(&db)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| b.cmp(&a))
            })
            .copied()
            .expect("nodes remain");
        medoids.push(far);
    }

    let mut groups: Vec<Vec<NodeId>> = Vec::new();
    for _round in 0..4 {
        // Capacity-constrained assignment: all (distance, node, medoid)
        // triples ascending, greedy fill.
        let mut pairs: Vec<(f64, NodeId, usize)> = Vec::with_capacity(nodes.len() * n_groups);
        for &n in nodes {
            for (gi, &m) in medoids.iter().enumerate() {
                pairs.push((ap.dist(n, m), n, gi));
            }
        }
        pairs.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.1.cmp(&b.1))
                .then_with(|| a.2.cmp(&b.2))
        });
        let mut new_groups: Vec<Vec<NodeId>> = vec![Vec::new(); n_groups];
        let mut assigned: Vec<NodeId> = Vec::new();
        for (_, n, gi) in pairs {
            if assigned.len() == n_groups * group_size {
                break;
            }
            if new_groups[gi].len() < group_size && !assigned.contains(&n) {
                new_groups[gi].push(n);
                assigned.push(n);
            }
        }
        // Medoid update: member with least total latency to its group.
        let mut changed = false;
        for (gi, g) in new_groups.iter().enumerate() {
            let best = g
                .iter()
                .min_by(|&&a, &&b| {
                    let da: f64 = g.iter().map(|&x| ap.dist(a, x)).sum();
                    let db: f64 = g.iter().map(|&x| ap.dist(b, x)).sum();
                    da.partial_cmp(&db)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then_with(|| a.cmp(&b))
                })
                .copied()
                .expect("nonempty group");
            if medoids[gi] != best {
                medoids[gi] = best;
                changed = true;
            }
        }
        groups = new_groups;
        if !changed {
            break;
        }
    }
    groups
}

/// Step 2: the INA switch with the smallest worst-member transfer time
/// for this group (`Find V_s with the smallest delay to the group`).
pub fn select_switch(
    graph: &Graph,
    ap: &AllPairs,
    avail: &[f64],
    group: &[NodeId],
    ina_switches: &[NodeId],
    bytes: u64,
) -> Option<NodeId> {
    ina_switches
        .iter()
        .min_by(|&&a, &&b| {
            let da = group
                .iter()
                .map(|&k| path_transfer_secs(graph, ap.path(k, a), bytes, Some(avail)))
                .fold(0.0f64, f64::max);
            let db = group
                .iter()
                .map(|&k| path_transfer_secs(graph, ap.path(k, b), bytes, Some(avail)))
                .fold(0.0f64, f64::max);
            da.partial_cmp(&db)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.cmp(&b))
        })
        .copied()
}

/// Step 3 (`getlatency`): the cheapest allowed scheme for `group`.
pub fn get_latency(
    graph: &Graph,
    ap: &AllPairs,
    avail: &[f64],
    group: &[NodeId],
    ina_switches: &[NodeId],
    bytes: u64,
    space: SchemeSpace,
) -> (Scheme, f64) {
    let switch = select_switch(graph, ap, avail, group, ina_switches, bytes);
    let mut candidates: Vec<(Scheme, f64)> = Vec::new();
    match space {
        SchemeSpace::RingOnly => {
            candidates.push((
                Scheme::Ring,
                ring_latency(graph, group, ap, bytes, Some(avail)),
            ));
        }
        SchemeSpace::InaOnly => {
            // SwitchML/ATP replace the *Ethernet* collective; a group
            // confined to one server still all-reduces over NVLink
            // (NCCL), exactly as their DistServe integrations would.
            let single_server = group.windows(2).all(|w| graph.same_server(w[0], w[1]));
            match switch {
                Some(sw) if !single_server => candidates.push((
                    Scheme::Ina { switch: sw },
                    ina_latency(graph, group, sw, ap, bytes, Some(avail)),
                )),
                _ => candidates.push((
                    Scheme::Ring,
                    ring_latency(graph, group, ap, bytes, Some(avail)),
                )),
            }
        }
        SchemeSpace::Hybrid => {
            candidates.push((
                Scheme::HierRing,
                hierarchical_ring_latency(graph, group, ap, bytes, Some(avail)),
            ));
            candidates.push((
                Scheme::Ring,
                ring_latency(graph, group, ap, bytes, Some(avail)),
            ));
            if let Some(sw) = switch {
                candidates.push((
                    Scheme::HierIna { switch: sw },
                    hierarchical_ina_latency(graph, group, sw, ap, bytes, Some(avail)),
                ));
                candidates.push((
                    Scheme::Ina { switch: sw },
                    ina_latency(graph, group, sw, ap, bytes, Some(avail)),
                ));
            }
        }
    }
    candidates
        .into_iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
        .expect("at least one candidate scheme")
}

/// Inter-stage pipeline latency for one replica's consecutive groups
/// (Eq. 6: `min_a max_{k∈K(i+1)} T_{k,a}` per boundary).
fn pipeline_latency(
    graph: &Graph,
    ap: &AllPairs,
    avail: &[f64],
    stages: &[Vec<NodeId>],
    bytes: u64,
) -> f64 {
    stages
        .windows(2)
        .map(|w| {
            w[0].iter()
                .map(|&a| {
                    w[1].iter()
                        .map(|&k| path_transfer_secs(graph, ap.path(a, k), bytes, Some(avail)))
                        .fold(0.0f64, f64::max)
                })
                .fold(f64::INFINITY, f64::min)
        })
        .sum()
}

/// Run Algorithm 2 end to end.
pub fn estimate_network_latency(input: &NetestInput<'_>, rng: &mut SmallRng) -> NetEstimate {
    let NetestInput {
        graph,
        ap,
        avail,
        gpus,
        n_groups,
        group_size,
        p_pipe,
        sync_bytes,
        pipe_bytes,
        scheme_space,
        ina_switches,
        max_perturb_iters,
    } = *input;

    // Step 1: grouping.
    let mut groups = constrained_kmeans(ap, gpus, n_groups, group_size);

    // Steps 2-3: per-group scheme + latency. Evaluations are counted so
    // the search budget is expressed in deterministic work units rather
    // than wall-clock time.
    let evals = std::cell::Cell::new(0usize);
    let latency_of = |group: &[NodeId]| -> (Scheme, f64) {
        evals.set(evals.get() + 1);
        get_latency(
            graph,
            ap,
            avail,
            group,
            ina_switches,
            sync_bytes,
            scheme_space,
        )
    };
    let mut lat: Vec<(Scheme, f64)> = groups.iter().map(|g| latency_of(g)).collect();

    // Step 4: perturbation. Random swaps between a group and another
    // randomly selected group; keep improvements.
    let mut iters = 0;
    if n_groups > 1 && group_size > 0 {
        let mut improvement = true;
        while improvement && iters < max_perturb_iters {
            improvement = false;
            iters += 1;
            for gi in 0..n_groups {
                let gj = rng.gen_range(0..n_groups);
                if gj == gi {
                    continue;
                }
                let mi = rng.gen_range(0..group_size);
                let mj = rng.gen_range(0..group_size);
                let before = lat[gi].1 + lat[gj].1;
                // Tentative swap.
                let (a, b) = (groups[gi][mi], groups[gj][mj]);
                groups[gi][mi] = b;
                groups[gj][mj] = a;
                let li = latency_of(&groups[gi]);
                let lj = latency_of(&groups[gj]);
                if li.1 + lj.1 + 1e-12 < before {
                    lat[gi] = li;
                    lat[gj] = lj;
                    improvement = true;
                } else {
                    // Revert.
                    groups[gi][mi] = a;
                    groups[gj][mj] = b;
                }
            }
        }
    }

    // T_n: per replica, sum of its stages' sync latencies plus its
    // pipeline transfers; report the worst replica (replicas run
    // concurrently).
    let replicas = n_groups / p_pipe.max(1);
    let mut t_n = 0.0f64;
    let mut t_pp_max = 0.0f64;
    for r in 0..replicas.max(1) {
        let lo = r * p_pipe;
        let hi = ((r + 1) * p_pipe).min(n_groups);
        if lo >= hi {
            continue;
        }
        let stage_sum: f64 = lat[lo..hi].iter().map(|(_, l)| l).sum();
        let t_pp = if hi - lo > 1 {
            pipeline_latency(graph, ap, avail, &groups[lo..hi], pipe_bytes)
        } else {
            0.0
        };
        t_pp_max = t_pp_max.max(t_pp);
        t_n = t_n.max(stage_sum + t_pp);
    }

    let schemes = groups
        .iter()
        .zip(&lat)
        .map(|(g, (s, l))| GroupScheme {
            group: g.clone(),
            scheme: *s,
            latency_s: *l,
        })
        .collect();

    NetEstimate {
        groups,
        schemes,
        t_pp: t_pp_max,
        t_n,
        perturb_iters: iters,
        lat_evals: evals.get(),
    }
}

/// Residual per-link bandwidth `B(e)` under a utilization snapshot:
/// `capacity × (1 − util)`, floored at 1 % of capacity so a saturated
/// link yields a large-but-finite transfer estimate instead of a
/// division blow-up (the flow would still trickle through under
/// max-min sharing).
pub fn available_bandwidth(g: &Graph, link_util: &[f64]) -> Vec<f64> {
    g.capacities()
        .iter()
        .enumerate()
        .map(|(i, &cap)| {
            let u = link_util.get(i).copied().unwrap_or(0.0).clamp(0.0, 1.0);
            (cap * (1.0 - u)).max(cap * 0.01)
        })
        .collect()
}

/// Estimated completion time of a striped KV-cache shipment from
/// `src_gpus` to `dst_gpus` over the current residual bandwidth: the
/// stripes (Eq. 15 rank pairs) run in parallel, so the shipment finishes
/// with its slowest stripe. This is the network term of the NetKV-style
/// decode-selection score — unlike a pure queue-length heuristic it sees
/// that an NVLink-local copy is ~100× cheaper than a congested Ethernet
/// hop.
pub fn kv_transfer_estimate(
    g: &Graph,
    ap: &AllPairs,
    src_gpus: &[NodeId],
    dst_gpus: &[NodeId],
    bytes: u64,
    avail: &[f64],
) -> f64 {
    hs_cluster::stripe_plan(src_gpus, dst_gpus, bytes)
        .iter()
        .filter(|s| ap.covers(s.src) && ap.covers(s.dst))
        .map(|s| path_transfer_secs(g, ap.path(s.src, s.dst), s.bytes, Some(avail)))
        .fold(0.0f64, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs_des::SeedSplitter;
    use hs_topology::builders::testbed;
    use hs_topology::LinkWeight;

    fn setup() -> (hs_topology::builders::BuiltTopology, AllPairs) {
        let t = testbed();
        let mut nodes = t.all_gpus();
        nodes.extend(&t.access_switches);
        let ap = AllPairs::compute(&t.graph, &nodes, LinkWeight::Latency, None);
        (t, ap)
    }

    #[test]
    fn kmeans_prefers_colocated_groups() {
        let (t, ap) = setup();
        let gpus = t.all_gpus();
        // 4 groups of 4 from 16 GPUs: the latency-optimal grouping is one
        // group per server (NVLink distance ≪ Ethernet distance).
        let groups = constrained_kmeans(&ap, &gpus, 4, 4);
        assert_eq!(groups.len(), 4);
        for g in &groups {
            assert_eq!(g.len(), 4);
            let s0 = t.graph.server_of(g[0]);
            assert!(
                g.iter().all(|&n| t.graph.server_of(n) == s0),
                "group spans servers: {g:?}"
            );
        }
        // All GPUs used exactly once.
        let mut all: Vec<NodeId> = groups.iter().flatten().copied().collect();
        all.sort();
        let mut expect = gpus.clone();
        expect.sort();
        assert_eq!(all, expect);
    }

    #[test]
    fn kmeans_handles_partial_coverage() {
        let (t, ap) = setup();
        let gpus = t.all_gpus();
        // 2 groups of 4 from 16 candidates: still server-pure.
        let groups = constrained_kmeans(&ap, &gpus, 2, 4);
        assert_eq!(groups.iter().map(Vec::len).sum::<usize>(), 8);
    }

    #[test]
    fn switch_selection_picks_nearest() {
        let (t, ap) = setup();
        // A group homed on GPUs 0,1 of server 0 connects to tofino0.
        let group = vec![t.gpus_by_server[0][0], t.gpus_by_server[0][1]];
        let sw = select_switch(
            &t.graph,
            &ap,
            &t.graph.capacities(),
            &group,
            &t.access_switches,
            1 << 20,
        )
        .unwrap();
        assert_eq!(sw, t.access_switches[0]);
    }

    /// Unit-pinning regression for the bandwidth-estimate audit: every
    /// transfer estimate in this module flows through
    /// `path_transfer_secs`, whose contract is payload **bits** over a
    /// **bits-per-second** capacity plus per-hop latency converted from
    /// **nanoseconds**. If anyone ever feeds bytes to the rate (or ns to
    /// the sum) the hand-derived expectation here breaks loudly.
    #[test]
    fn transfer_estimate_units_are_bits_per_second_and_nanoseconds() {
        let (t, ap) = setup();
        let src = t.all_gpus()[0];
        let dst = t.access_switches[0];
        let path = ap.path(src, dst);
        assert!(!path.links.is_empty());
        let bytes: u64 = 3 << 20;
        let mut expect_s = 0.0;
        for &l in &path.links {
            let link = t.graph.link(l);
            let payload_bits = bytes as f64 * 8.0;
            expect_s += payload_bits / link.capacity_bps + link.latency_ns as f64 * 1e-9;
        }
        let got_s = path_transfer_secs(&t.graph, path, bytes, None);
        assert!(
            (got_s - expect_s).abs() < 1e-15,
            "estimate {got_s} s != hand-derived {expect_s} s"
        );
        // Scale sanity: the serialization term must dominate pure
        // propagation for a MiB-scale payload, and a byte-as-bit slip
        // (×8 off) would leave this window.
        let prop_s: f64 = path
            .links
            .iter()
            .map(|&l| t.graph.link(l).latency_ns as f64 * 1e-9)
            .sum();
        assert!(got_s > prop_s && got_s < 1.0, "got {got_s} s");
    }

    #[test]
    fn hybrid_space_beats_ring_only() {
        let (t, ap) = setup();
        let avail = t.graph.capacities();
        // Cross-server group of 4 leaders: heterogeneity should win.
        let group: Vec<NodeId> = t.gpus_by_server.iter().map(|s| s[0]).collect();
        let (_, ring_l) = get_latency(
            &t.graph,
            &ap,
            &avail,
            &group,
            &t.access_switches,
            8 << 20,
            SchemeSpace::RingOnly,
        );
        let (scheme, hybrid_l) = get_latency(
            &t.graph,
            &ap,
            &avail,
            &group,
            &t.access_switches,
            8 << 20,
            SchemeSpace::Hybrid,
        );
        assert!(hybrid_l <= ring_l);
        assert!(
            matches!(scheme, Scheme::Ina { .. } | Scheme::HierIna { .. }),
            "expected an INA scheme for a cross-server group, got {scheme:?}"
        );
    }

    #[test]
    fn estimate_converges_within_budget() {
        let (t, ap) = setup();
        let avail = t.graph.capacities();
        let gpus = t.all_gpus();
        let input = NetestInput {
            graph: &t.graph,
            ap: &ap,
            avail: &avail,
            gpus: &gpus,
            n_groups: 4,
            group_size: 4,
            p_pipe: 2,
            sync_bytes: 4 << 20,
            pipe_bytes: 1 << 20,
            scheme_space: SchemeSpace::Hybrid,
            ina_switches: &t.access_switches,
            max_perturb_iters: 10,
        };
        let mut rng = SeedSplitter::new(5).stream("perturb");
        let est = estimate_network_latency(&input, &mut rng);
        assert_eq!(est.groups.len(), 4);
        assert_eq!(est.schemes.len(), 4);
        assert!(est.t_n > 0.0 && est.t_n.is_finite());
        // The paper reports convergence within ~5 iterations; allow a
        // margin but catch pathological oscillation.
        assert!(
            est.perturb_iters <= 8,
            "perturb iters = {}",
            est.perturb_iters
        );
        // t_n covers at least the slowest single group.
        let max_group = est
            .schemes
            .iter()
            .map(|s| s.latency_s)
            .fold(0.0f64, f64::max);
        assert!(est.t_n >= max_group);
    }

    #[test]
    fn available_bandwidth_floors_saturated_links() {
        let (t, _) = setup();
        let n = t.graph.link_count();
        let mut util = vec![0.0; n];
        util[0] = 1.0;
        util[1] = 0.5;
        let caps = t.graph.capacities();
        let avail = available_bandwidth(&t.graph, &util);
        assert_eq!(avail.len(), n);
        assert!(
            (avail[0] - caps[0] * 0.01).abs() < 1e-6,
            "saturated link floors at 1%"
        );
        assert!((avail[1] - caps[1] * 0.5).abs() < 1e-6);
        assert_eq!(avail[2], caps[2]);
    }

    #[test]
    fn kv_estimate_tracks_congestion_and_locality() {
        let (t, ap) = setup();
        let src: Vec<NodeId> = t.gpus_by_server[0][..2].to_vec();
        let local: Vec<NodeId> = t.gpus_by_server[0][2..].to_vec();
        let remote: Vec<NodeId> = t.gpus_by_server[1][..2].to_vec();
        let bytes = 64 << 20;
        let idle = available_bandwidth(&t.graph, &vec![0.0; t.graph.link_count()]);
        let est_local = kv_transfer_estimate(&t.graph, &ap, &src, &local, bytes, &idle);
        let est_remote = kv_transfer_estimate(&t.graph, &ap, &src, &remote, bytes, &idle);
        assert!(est_local > 0.0);
        assert!(
            est_local < est_remote,
            "NVLink-local shipment must beat Ethernet: {est_local} vs {est_remote}"
        );
        // Congesting the remote server's uplinks inflates only that path.
        let mut util = vec![0.0; t.graph.link_count()];
        for (lid, link) in t.graph.links() {
            if t.gpus_by_server[1].contains(&link.a) || t.gpus_by_server[1].contains(&link.b) {
                util[lid.idx()] = 0.9;
            }
        }
        let hot = available_bandwidth(&t.graph, &util);
        let est_remote_hot = kv_transfer_estimate(&t.graph, &ap, &src, &remote, bytes, &hot);
        let est_local_hot = kv_transfer_estimate(&t.graph, &ap, &src, &local, bytes, &hot);
        assert!(est_remote_hot > est_remote * 2.0);
        assert!((est_local_hot - est_local).abs() < 1e-12);
        // Degenerate shipment: nothing to move, zero estimate.
        assert_eq!(
            kv_transfer_estimate(&t.graph, &ap, &src, &src, bytes, &idle),
            0.0
        );
    }

    #[test]
    fn perturbation_never_worsens_total() {
        let (t, ap) = setup();
        let avail = t.graph.capacities();
        let gpus = t.all_gpus();
        let mk = |perturb: usize, seed: u64| {
            let input = NetestInput {
                graph: &t.graph,
                ap: &ap,
                avail: &avail,
                gpus: &gpus,
                n_groups: 4,
                group_size: 4,
                p_pipe: 1,
                sync_bytes: 4 << 20,
                pipe_bytes: 0,
                scheme_space: SchemeSpace::Hybrid,
                ina_switches: &t.access_switches,
                max_perturb_iters: perturb,
            };
            let mut rng = SeedSplitter::new(seed).stream("perturb");
            let est = estimate_network_latency(&input, &mut rng);
            est.schemes.iter().map(|s| s.latency_s).sum::<f64>()
        };
        for seed in 0..5 {
            let no_perturb = mk(0, seed);
            let with_perturb = mk(10, seed);
            assert!(
                with_perturb <= no_perturb + 1e-12,
                "perturbation worsened: {with_perturb} > {no_perturb}"
            );
        }
    }
}
