//! The load-aware online scheduler (§III-D).
//!
//! Each tensor-parallel group keeps a **policy cost table** (Fig. 5) over
//! its candidate (scheme, route) policies. On every `ncclAllreduce`-
//! equivalent — i.e. every iteration's collective — the scheduler:
//!
//! 1. selects `c* = argmin_c J(c, D)` (Eq. 16) where `J(c, D) = b_c + δ`
//!    with `b_c` the policy's virtual bandwidth-utilization cost and `δ`
//!    the utilization the new transfer of `D` bytes would add over the
//!    estimation window `T_u` on the policy's bottleneck links;
//! 2. charges the chosen policy `b'_{c*} = b_{c*} + δ` and every other
//!    policy `b'_c = b_c + δ·f_{(c*,c)}` (Eq. 17), where the load-penalty
//!    `f` captures how much of `c`'s route the chosen policy loads;
//! 3. periodically refreshes `f` with the exponentially smoothed sharing
//!    ratio `W_{(c*,c)} = Σ_{e ∈ c*∩c} B(e) / Σ_{e ∈ c} B(e)` (Eq. 18)
//!    and relaxes every `b_c` toward the *measured* utilization of its
//!    links — the role of the central controller's synchronization, which
//!    in this single-process simulation is exact.

use crate::netest::{available_bandwidth, kv_transfer_estimate};
use crate::policy::{build_policies, netkv_score, KvSelectParams, Policy};
use hs_cluster::{BusyPolicy, CommCtx, CommStrategy, KvCandidate, KvChoice, KvCtx};
use hs_collective::Scheme;
use hs_des::SimTime;
use hs_topology::routing::k_shortest_paths_avoiding;
use hs_topology::{AllPairs, Graph, LinkId, LinkWeight, NodeId};
use hs_workload::FaultKind;
use rustc_hash::FxHashSet;
use std::collections::BTreeMap;

/// Tunables of the online scheduler.
#[derive(Clone, Copy, Debug)]
pub struct SchedulerParams {
    /// Estimation window `T_u`, seconds (how long a transfer's load is
    /// assumed to occupy its links).
    pub t_u_s: f64,
    /// Penalty smoothing factor `γ` of Eq. 18.
    pub gamma: f64,
    /// Measurement-synchronization factor: how strongly monitored
    /// utilization pulls `b_c` back to reality each control-plane poll.
    pub kappa: f64,
    /// How many nearest INA switches get candidate policies.
    pub k_switches: usize,
    /// How the decode instance for a prefill→decode KV shipment is chosen.
    pub kv_select: KvSelection,
    /// Weights of the NetKV score (only read when `kv_select` is
    /// [`KvSelection::NetKv`]).
    pub kv_score: KvSelectParams,
}

/// Decode-instance selection policy for KV-cache shipments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KvSelection {
    /// The engine's default: fewest active decode requests (ties to the
    /// lowest instance index). Network-oblivious.
    LeastLoaded,
    /// NetKV-style network-aware selection: score each admissible decode
    /// instance by estimated striped KV transfer time over residual link
    /// bandwidth, plus decode-load and KV-pressure penalties.
    NetKv,
}

impl Default for SchedulerParams {
    fn default() -> Self {
        SchedulerParams {
            t_u_s: 0.05,
            gamma: 0.3,
            kappa: 0.5,
            k_switches: 2,
            kv_select: KvSelection::NetKv,
            kv_score: KvSelectParams::default(),
        }
    }
}

/// The per-group policy cost table (Fig. 5).
struct PolicyTable {
    policies: Vec<Policy>,
    /// Virtual utilization cost `b_c` per policy.
    b: Vec<f64>,
    /// Load penalty `f_{(i,j)}`: impact of choosing `i` on `j`.
    f: Vec<Vec<f64>>,
    /// Selections per policy (diagnostics/ablation).
    picks: Vec<u64>,
    /// Per-link capacities (bits/s) from the fabric graph, indexed by
    /// dense `LinkId` — Eq. 18's `B(e)` weights.
    link_caps: Vec<f64>,
    /// When virtual costs were last decayed (see [`Self::decay_to`]).
    last_decay: SimTime,
}

/// One Eq. 16 `select()` outcome with its audit trail.
struct Selection {
    idx: usize,
    /// The winning objective `J(c*, D) = b_{c*} + δ`.
    j: f64,
    /// The δ term of the winner.
    delta: f64,
    /// Candidates skipped because they crossed a dead link.
    dead_skipped: usize,
}

impl PolicyTable {
    fn new(policies: Vec<Policy>, link_caps: Vec<f64>) -> Self {
        let n = policies.len();
        // Initialize f with the *structural* sharing ratio (capacity
        // weighted); Eq. 18 refreshes it with live utilization later.
        let mut f = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    f[i][j] = sharing_ratio(&policies[i], &policies[j], &link_caps, None);
                }
            }
        }
        PolicyTable {
            b: vec![0.0; n],
            f,
            picks: vec![0; n],
            link_caps,
            last_decay: SimTime::ZERO,
            policies,
        }
    }

    /// Expire virtual charges older than the estimation window. A charge
    /// models a transfer occupying its links for roughly `T_u` seconds
    /// (that is δ's denominator), so costs decay exponentially with time
    /// constant `T_u` between selections. Without this, a slow or absent
    /// control-plane `refresh()` lets `b` grow without bound and the
    /// `(j / QUANTUM)` bucket in `select()` saturates, degenerating the
    /// argmin into pure latency tie-breaking.
    fn decay_to(&mut self, now: SimTime, t_u: f64) {
        let dt = now.saturating_since(self.last_decay).as_secs_f64();
        if dt <= 0.0 {
            return;
        }
        self.last_decay = now;
        let k = (-dt / t_u.max(1e-9)).exp();
        for b in &mut self.b {
            *b *= k;
        }
    }

    /// Eq. 16: pick the policy minimizing `J(c, D) = b_c + δ_c`;
    /// policies within one utilization quantum of each other are
    /// tie-broken by idle-fabric latency (the offline planner's scheme
    /// preference, so the hybrid choice degrades gracefully to "fastest
    /// scheme" when nothing is loaded).
    /// Policies crossing a dead link are infinite-cost — skipped outright
    /// so Eq. 16 routes around faults. `None` iff every candidate is dead.
    fn select(&self, bytes: u64, t_u: f64, dead: &FxHashSet<LinkId>) -> Option<Selection> {
        const QUANTUM: f64 = 0.10;
        let mut best: Option<Selection> = None;
        let mut best_key = (usize::MAX, f64::INFINITY);
        let mut dead_skipped = 0;
        for (i, p) in self.policies.iter().enumerate() {
            if !dead.is_empty() && p.links.iter().any(|l| dead.contains(l)) {
                dead_skipped += 1;
                continue;
            }
            let d = delta(p, bytes, t_u);
            let j = self.b[i] + d;
            let key = ((j / QUANTUM) as usize, p.base_latency_s);
            if best.is_none() || key.0 < best_key.0 || (key.0 == best_key.0 && key.1 < best_key.1) {
                best_key = key;
                best = Some(Selection {
                    idx: i,
                    j,
                    delta: d,
                    dead_skipped: 0,
                });
            }
        }
        best.map(|mut s| {
            s.dead_skipped = dead_skipped;
            s
        })
    }

    /// Eq. 17: charge the chosen policy and penalize the sharers.
    /// Returns the δ charged to the winner.
    fn charge(&mut self, chosen: usize, bytes: u64, t_u: f64) -> f64 {
        let d = delta(&self.policies[chosen], bytes, t_u);
        for i in 0..self.b.len() {
            if i == chosen {
                self.b[i] += d;
            } else {
                self.b[i] += d * self.f[chosen][i];
            }
        }
        self.picks[chosen] += 1;
        d
    }

    /// Largest virtual cost in the table (trace diagnostics).
    fn max_b(&self) -> f64 {
        self.b.iter().copied().fold(0.0, f64::max)
    }

    /// Eq. 18 + measurement sync.
    fn refresh(&mut self, link_util: &[f64], gamma: f64, kappa: f64) {
        let n = self.policies.len();
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    let w = sharing_ratio(
                        &self.policies[i],
                        &self.policies[j],
                        &self.link_caps,
                        Some(link_util),
                    );
                    self.f[i][j] = (1.0 - gamma) * self.f[i][j] + gamma * w;
                }
            }
        }
        // Pull virtual costs toward the measured utilization of each
        // policy's links (the controller's ground truth).
        for (i, p) in self.policies.iter().enumerate() {
            let measured = p
                .links
                .iter()
                .map(|l| link_util.get(l.idx()).copied().unwrap_or(0.0))
                .fold(0.0f64, f64::max);
            self.b[i] = (1.0 - kappa) * self.b[i] + kappa * measured;
        }
    }
}

/// Added *maximum* link-utilization ratio of transferring `bytes` over
/// the policy within the estimation window (Eq. 16's δ).
fn delta(p: &Policy, bytes: u64, t_u: f64) -> f64 {
    bytes as f64 * p.max_link_secs_per_byte / t_u
}

/// `W_{(c*,c)}`: how much of `c`'s route the chosen policy `c*` loads.
/// With `util`, links are weighted by `capacity × utilization` as the
/// paper monitors; without, by capacity alone (structural prior). The
/// capacity weights matter on heterogeneous routes: a shared 600 Gb/s
/// NVLink hop carries far more of `c`'s traffic than a shared 100 Gb/s
/// Ethernet hop, so it must dominate the ratio.
fn sharing_ratio(chosen: &Policy, other: &Policy, caps: &[f64], util: Option<&[f64]>) -> f64 {
    let weight = |l: hs_topology::LinkId| -> f64 {
        // Unknown links (stale table vs. grown graph) weigh as 1.0 so the
        // ratio stays defined instead of silently vanishing.
        let cap = caps.get(l.idx()).copied().unwrap_or(1.0);
        match util {
            Some(u) => cap * u.get(l.idx()).copied().unwrap_or(0.0).max(0.05),
            None => cap,
        }
    };
    // `other.links` is sorted; binary search for intersection.
    let mut shared = 0.0;
    let mut total = 0.0;
    for &l in &other.links {
        let w = weight(l);
        total += w;
        if chosen.links.binary_search(&l).is_ok() {
            shared += w;
        }
    }
    if total <= 0.0 {
        0.0
    } else {
        shared / total
    }
}

/// The HeroServe online scheduler, pluggable into the cluster simulator.
pub struct HeroScheduler {
    graph: Graph,
    ap: AllPairs,
    ina_switches: Vec<NodeId>,
    params: SchedulerParams,
    /// Keyed in group-id order: `on_monitor` walks every table and its
    /// visit order reaches the trace stream.
    tables: BTreeMap<u64, PolicyTable>,
    link_util: Vec<f64>,
    /// Cached alternative routes per endpoint pair (Yen's k-shortest),
    /// for the point-to-point path policies of Fig. 5. Ordered so fault
    /// invalidation sweeps are deterministic.
    route_cache: BTreeMap<(NodeId, NodeId), Vec<Vec<hs_simnet::DirLink>>>,
    /// Links currently out of service (fault notifications). Policies and
    /// routes crossing them are treated as infinite-cost.
    dead_links: FxHashSet<LinkId>,
    /// Decision-audit sink; no-op unless attached via `attach_tracer`.
    tracer: hs_obs::Tracer,
}

impl HeroScheduler {
    /// Build a scheduler over the fabric. `ap` must cover the GPUs and
    /// INA switches (reuse the planner's all-pairs structures).
    pub fn new(graph: &Graph, ap: AllPairs, params: SchedulerParams) -> Self {
        let ina_switches = graph.ina_switches();
        let link_util = vec![0.0; graph.link_count()];
        HeroScheduler {
            graph: graph.clone(),
            ap,
            ina_switches,
            params,
            tables: BTreeMap::new(),
            link_util,
            route_cache: BTreeMap::new(),
            dead_links: FxHashSet::default(),
            tracer: hs_obs::Tracer::noop(),
        }
    }

    /// Drop every cached point-to-point route (forces recomputation under
    /// the current dead-link set).
    pub fn invalidate_routes(&mut self) {
        self.route_cache.clear();
    }

    /// Drop cached routes that traverse any of `links` (targeted
    /// invalidation when a fault takes specific links down). Entries
    /// left with no surviving alternative are removed entirely so the
    /// next lookup recomputes them avoiding the dead set.
    pub fn invalidate_routes_touching(&mut self, links: &[LinkId]) {
        self.route_cache.retain(|_, routes| {
            routes.retain(|r| !r.iter().any(|(l, _)| links.contains(l)));
            !routes.is_empty()
        });
    }

    /// How many times each policy of `group_id` has been selected
    /// (diagnostics for the ablation benches).
    pub fn pick_counts(&self, group_id: u64) -> Option<Vec<(Scheme, u64)>> {
        self.tables.get(&group_id).map(|t| {
            t.policies
                .iter()
                .zip(&t.picks)
                .map(|(p, &c)| (p.scheme, c))
                .collect()
        })
    }

    fn table_for(&mut self, group_id: u64, group: &[NodeId]) -> Option<&mut PolicyTable> {
        if !self.tables.contains_key(&group_id) {
            let pols = build_policies(
                &self.graph,
                &self.ap,
                group,
                &self.ina_switches,
                self.params.k_switches,
            );
            if pols.is_empty() {
                return None;
            }
            self.tables
                .insert(group_id, PolicyTable::new(pols, self.graph.capacities()));
        }
        self.tables.get_mut(&group_id)
    }
}

impl CommStrategy for HeroScheduler {
    fn choose(&mut self, ctx: &CommCtx<'_>) -> Scheme {
        let t_u = self.params.t_u_s;
        if self.table_for(ctx.group_id, ctx.group).is_none() {
            return Scheme::Ring; // degenerate group
        }
        // Re-lookup (rather than holding table_for's borrow) so the tracer
        // field stays usable below; degrade gracefully either way.
        let Some(table) = self.tables.get_mut(&ctx.group_id) else {
            return Scheme::Ring;
        };
        table.decay_to(ctx.now, t_u);
        let n_candidates = table.policies.len();
        let Some(sel) = table.select(ctx.bytes, t_u, &self.dead_links) else {
            // Every candidate crosses a dead link: degrade to the plain
            // host-side ring and let retries ride out the fault.
            self.tracer.policy_selected(
                ctx.now,
                ctx.group_id,
                "Ring(degraded)",
                f64::INFINITY,
                0.0,
                n_candidates,
                n_candidates,
                ctx.bytes,
            );
            return Scheme::Ring;
        };
        let scheme = table.policies[sel.idx].scheme;
        self.tracer.policy_selected(
            ctx.now,
            ctx.group_id,
            scheme.label(),
            sel.j,
            sel.delta,
            n_candidates,
            sel.dead_skipped,
            ctx.bytes,
        );
        let d = table.charge(sel.idx, ctx.bytes, t_u);
        self.tracer
            .policy_charged(ctx.now, ctx.group_id, sel.idx, d, table.max_b());
        scheme
    }

    fn busy_policy(&self) -> BusyPolicy {
        BusyPolicy::FallbackHierRing
    }

    /// Route point-to-point transfers (KV cache, pipeline hops) over the
    /// least-loaded of the k shortest routes — the "next hop /
    /// transmission path" dimension of the policy table. On the paper's
    /// cross-connected testbed this spreads KV traffic over both Tofino
    /// switches instead of hammering one static path.
    fn choose_path(
        &mut self,
        src: NodeId,
        dst: NodeId,
        _bytes: u64,
        link_util: &[f64],
    ) -> Option<Vec<hs_simnet::DirLink>> {
        if src == dst {
            return None;
        }
        let graph = &self.graph;
        let dead = &self.dead_links;
        let routes = self.route_cache.entry((src, dst)).or_insert_with(|| {
            k_shortest_paths_avoiding(graph, src, dst, 3, LinkWeight::Latency, None, dead)
                .into_iter()
                // Alternatives more than ~2 hops longer than the best are
                // never worth the detour for bulk transfers.
                .scan(None::<usize>, |best, p| {
                    let hops = p.links.len();
                    let b = *best.get_or_insert(hops);
                    Some((hops <= b + 2).then_some(p.directed_links(graph)))
                })
                .flatten()
                .collect()
        });
        // Cached entries are invalidated on faults, but filter defensively
        // in case a route slipped through between notifications.
        if !dead.is_empty() {
            routes.retain(|r| !r.iter().any(|(l, _)| dead.contains(l)));
        }
        if routes.is_empty() {
            return None;
        }
        let score = |links: &[hs_simnet::DirLink]| -> (f64, usize) {
            let max_util = links
                .iter()
                .map(|(l, _)| link_util.get(l.idx()).copied().unwrap_or(0.0))
                .fold(0.0f64, f64::max);
            (max_util, links.len())
        };
        routes
            .iter()
            .min_by(|a, b| {
                let (ua, la) = score(a);
                let (ub, lb) = score(b);
                ua.partial_cmp(&ub)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| la.cmp(&lb))
            })
            .cloned()
    }

    fn network_aware_admission(&self) -> bool {
        self.params.kv_select == KvSelection::NetKv
    }

    /// NetKV-style decode selection: among the admissible candidates,
    /// minimize estimated striped transfer time over residual bandwidth
    /// plus load/pressure penalties. Ties (exactly equal scores) keep the
    /// lowest instance index — candidates arrive in ascending order, so
    /// strict `<` comparison is the deterministic tiebreak.
    fn choose_decode(&mut self, ctx: &KvCtx<'_>, candidates: &[KvCandidate]) -> Option<KvChoice> {
        if self.params.kv_select != KvSelection::NetKv {
            return None;
        }
        let avail = available_bandwidth(&self.graph, ctx.link_util);
        let mut best: Option<(f64, KvChoice)> = None;
        for c in candidates {
            let est = kv_transfer_estimate(
                &self.graph,
                &self.ap,
                ctx.src_gpus,
                &c.dst_gpus,
                ctx.bytes,
                &avail,
            );
            let reserved_frac = if c.capacity_tokens == 0 {
                1.0
            } else {
                1.0 - c.headroom_tokens as f64 / c.capacity_tokens as f64
            };
            let score = netkv_score(est, c.load, reserved_frac, &self.params.kv_score);
            let better = match &best {
                None => true,
                Some((b, _)) => score
                    .partial_cmp(b)
                    .is_some_and(|o| o == std::cmp::Ordering::Less),
            };
            if better {
                best = Some((
                    score,
                    KvChoice {
                        instance: c.instance,
                        est_transfer_s: est,
                    },
                ));
            }
        }
        best.map(|(_, c)| c)
    }

    fn on_monitor(&mut self, link_util: &[f64], now: SimTime) {
        self.link_util.clear();
        self.link_util.extend_from_slice(link_util);
        for (&gid, table) in self.tables.iter_mut() {
            // Refresh syncs b to measured utilization, superseding any
            // pending select-time decay.
            table.last_decay = now;
            table.refresh(link_util, self.params.gamma, self.params.kappa);
            self.tracer.table_refreshed(now, gid, table.max_b());
        }
    }

    /// React to fabric faults: track the dead-link set (Eq. 16 treats
    /// policies crossing it as infinite-cost) and invalidate the affected
    /// route-cache entries so point-to-point traffic re-routes.
    fn on_fault(&mut self, kind: &FaultKind, _now: SimTime) {
        match *kind {
            FaultKind::LinkDown { link } => {
                self.dead_links.insert(link);
                self.invalidate_routes_touching(&[link]);
            }
            FaultKind::LinkDegrade { link, factor } if factor <= 0.0 => {
                self.dead_links.insert(link);
                self.invalidate_routes_touching(&[link]);
            }
            FaultKind::LinkUp { link } => {
                self.dead_links.remove(&link);
                // Restored capacity may beat the detours chosen during the
                // outage; recompute everything.
                self.invalidate_routes();
            }
            FaultKind::SwitchFail { switch } => {
                let adjacent: Vec<LinkId> = self
                    .graph
                    .neighbors(switch)
                    .iter()
                    .map(|&(_, l)| l)
                    .collect();
                self.dead_links.extend(adjacent.iter().copied());
                self.invalidate_routes_touching(&adjacent);
            }
            FaultKind::SwitchRecover { switch } => {
                for &(_, l) in self.graph.neighbors(switch) {
                    self.dead_links.remove(&l);
                }
                self.invalidate_routes();
            }
            // Degrades short of outage and compute faults don't change
            // reachability; the monitor loop absorbs them via link_util.
            FaultKind::LinkDegrade { .. }
            | FaultKind::GpuStall { .. }
            | FaultKind::GpuRecover { .. } => {}
        }
    }

    fn name(&self) -> &str {
        "HeroServe"
    }

    fn attach_tracer(&mut self, tracer: &hs_obs::Tracer) {
        self.tracer = tracer.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs_topology::builders::testbed;
    use hs_topology::LinkWeight;

    pub(super) fn scheduler() -> (
        HeroScheduler,
        Vec<NodeId>,
        hs_topology::builders::BuiltTopology,
    ) {
        let t = testbed();
        let mut nodes = t.all_gpus();
        nodes.extend(&t.access_switches);
        let ap = AllPairs::compute(&t.graph, &nodes, LinkWeight::Latency, None);
        let group: Vec<NodeId> = t.gpus_by_server.iter().map(|s| s[0]).collect();
        (
            HeroScheduler::new(&t.graph, ap, SchedulerParams::default()),
            group,
            t,
        )
    }

    pub(super) fn ctx<'a>(group: &'a [NodeId], util: &'a [f64], bytes: u64) -> CommCtx<'a> {
        CommCtx {
            group_id: 1,
            group,
            bytes,
            now: SimTime::ZERO,
            link_util: util,
        }
    }

    #[test]
    fn prefers_heterogeneous_ina_when_idle() {
        let (mut s, group, t) = scheduler();
        let util = vec![0.0; t.graph.link_count()];
        let scheme = s.choose(&ctx(&group, &util, 1 << 20));
        assert!(
            matches!(scheme, Scheme::HierIna { .. }),
            "idle network should pick hierarchical INA, got {scheme:?}"
        );
    }

    #[test]
    fn repeated_load_spreads_across_policies() {
        let (mut s, group, _) = scheduler();
        let util = vec![];
        // Hammer the same group with large transfers without any
        // measurement relaxation: virtual costs build up and the argmin
        // rotates across policies.
        let mut seen = std::collections::HashSet::new();
        for _ in 0..50 {
            let scheme = s.choose(&ctx(&group, &util, 64 << 20));
            seen.insert(format!("{scheme:?}"));
        }
        assert!(
            seen.len() >= 2,
            "cost accumulation should rotate policies, saw {seen:?}"
        );
        let picks = s.pick_counts(1).unwrap();
        let total: u64 = picks.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 50);
    }

    #[test]
    fn monitor_feedback_steers_away_from_hot_links() {
        let (mut s, group, t) = scheduler();
        // First pick establishes the favorite (a hierarchical INA at some
        // switch). Then report its links as saturated.
        let idle = vec![0.0; t.graph.link_count()];
        let first = s.choose(&ctx(&group, &idle, 1 << 20));
        let Scheme::HierIna { switch } = first else {
            panic!("expected HierIna first, got {first:?}")
        };
        // Saturate every Ethernet link into that switch.
        let mut util = vec![0.0; t.graph.link_count()];
        for (lid, link) in t.graph.links() {
            if link.a == switch || link.b == switch {
                util[lid.idx()] = 1.0;
            }
        }
        for _ in 0..3 {
            s.on_monitor(&util, SimTime::ZERO);
        }
        let next = s.choose(&ctx(&group, &util, 1 << 20));
        assert_ne!(
            next, first,
            "scheduler kept using a saturated switch: {next:?}"
        );
    }

    #[test]
    fn busy_policy_is_hierarchical() {
        let (s, _, _) = scheduler();
        assert_eq!(s.busy_policy(), BusyPolicy::FallbackHierRing);
        assert_eq!(s.name(), "HeroServe");
    }

    #[test]
    fn degenerate_group_falls_back_to_ring() {
        let (mut s, _, t) = scheduler();
        let lone = vec![t.gpus_by_server[0][0]];
        let util = vec![];
        assert_eq!(s.choose(&ctx(&lone, &util, 1024)), Scheme::Ring);
    }

    #[test]
    fn switch_failure_steers_policies_and_routes() {
        let (mut s, group, t) = scheduler();
        let idle = vec![0.0; t.graph.link_count()];
        let first = s.choose(&ctx(&group, &idle, 1 << 20));
        let Scheme::HierIna { switch } = first else {
            panic!("expected HierIna first, got {first:?}")
        };

        // Warm the route cache across the fabric, then fail the favored
        // switch: every subsequent scheme and route must avoid it.
        let src = t.gpus_by_server[0][0];
        let dst = t.gpus_by_server[1][0];
        assert!(s.choose_path(src, dst, 1 << 20, &idle).is_some());

        s.on_fault(&FaultKind::SwitchFail { switch }, SimTime::ZERO);
        assert!(!s.dead_links.is_empty());

        for _ in 0..20 {
            let scheme = s.choose(&ctx(&group, &idle, 1 << 20));
            match scheme {
                Scheme::Ina { switch: sw } | Scheme::HierIna { switch: sw } => {
                    assert_ne!(sw, switch, "picked the failed switch: {scheme:?}");
                }
                _ => {}
            }
        }
        let route = s
            .choose_path(src, dst, 1 << 20, &idle)
            .expect("testbed is cross-connected; an alternative route exists");
        for (l, _) in &route {
            assert!(
                !s.dead_links.contains(l),
                "route crosses a dead link adjacent to the failed switch"
            );
        }

        // Recovery clears the dead set and the INA policies come back.
        s.on_fault(&FaultKind::SwitchRecover { switch }, SimTime::ZERO);
        assert!(s.dead_links.is_empty());
        let back = s.choose(&ctx(&group, &idle, 1 << 20));
        assert!(
            matches!(
                back,
                Scheme::Ina { .. } | Scheme::HierIna { .. } | Scheme::HierRing
            ),
            "post-recovery pick should leave plain ring behind, got {back:?}"
        );
    }

    /// A policy over the given links with neutral cost constants.
    fn policy_over(links: Vec<LinkId>) -> Policy {
        Policy {
            scheme: Scheme::Ring,
            links,
            max_link_secs_per_byte: 1e-10,
            base_latency_s: 1e-3,
        }
    }

    #[test]
    fn shared_nvlink_dominates_shared_ethernet_in_sharing_ratio() {
        // `other` crosses one NVLink-class link (600 Gb/s) and one
        // Ethernet link (100 Gb/s). A chooser sharing only the NVLink hop
        // loads 6/7 of `other`'s capacity-weighted route; sharing only the
        // Ethernet hop loads 1/7. The pre-fix code weighted both 0.5.
        let nv = LinkId(0);
        let eth = LinkId(1);
        let caps = vec![600e9, 100e9];
        let other = policy_over(vec![nv, eth]);
        let share_nv = sharing_ratio(&policy_over(vec![nv]), &other, &caps, None);
        let share_eth = sharing_ratio(&policy_over(vec![eth]), &other, &caps, None);
        assert!(
            (share_nv - 6.0 / 7.0).abs() < 1e-12,
            "NVLink share should be 6/7, got {share_nv}"
        );
        assert!(
            (share_eth - 1.0 / 7.0).abs() < 1e-12,
            "Ethernet share should be 1/7, got {share_eth}"
        );
        assert!(share_nv > share_eth * 5.0);

        // With utilization the capacity weighting persists: equal util on
        // both links must not wash out the 6:1 capacity asymmetry.
        let util = vec![0.5, 0.5];
        let share_nv_u = sharing_ratio(&policy_over(vec![nv]), &other, &caps, Some(&util));
        let share_eth_u = sharing_ratio(&policy_over(vec![eth]), &other, &caps, Some(&util));
        assert!((share_nv_u - 6.0 / 7.0).abs() < 1e-12);
        assert!(share_nv_u > share_eth_u * 5.0);
    }

    #[test]
    fn tables_use_real_graph_capacities() {
        let (mut s, group, t) = scheduler();
        let util = vec![0.0; t.graph.link_count()];
        s.choose(&ctx(&group, &util, 1024));
        let table = s.tables.get(&1).unwrap();
        assert_eq!(table.link_caps, t.graph.capacities());
        assert!(
            table.link_caps.iter().any(|&c| c > 200e9)
                && table.link_caps.iter().any(|&c| c < 200e9),
            "testbed should mix NVLink and Ethernet capacities"
        );
    }

    #[test]
    fn virtual_costs_stay_bounded_over_refresh_free_run() {
        let (mut s, group, _) = scheduler();
        let util = vec![];
        // Long run with *no* on_monitor refresh: selections every 10 ms,
        // estimation window 50 ms. Before the select-time decay, every
        // charge accumulated forever and b diverged linearly.
        let mut max_b = 0.0f64;
        for i in 0..10_000u64 {
            let now = SimTime::from_millis(10 * i);
            let c = CommCtx {
                group_id: 1,
                group: &group,
                bytes: 64 << 20,
                now,
                link_util: &util,
            };
            s.choose(&c);
            let table = s.tables.get(&1).unwrap();
            for &b in &table.b {
                assert!(b.is_finite() && b >= 0.0, "b went bad: {b}");
                max_b = max_b.max(b);
            }
        }
        // Steady state: per-step charge is delta ≈ bytes·secs_per_byte/T_u,
        // decayed by exp(-dt/T_u) each step. The geometric sum converges to
        // delta/(1-exp(-0.2)) — a small constant, nowhere near the
        // thousands an undecayed table reaches over 100 s of selections.
        assert!(
            max_b < 50.0,
            "virtual costs should stay bounded without refresh, got {max_b}"
        );
    }

    #[test]
    fn decay_is_noop_at_same_timestamp() {
        let (mut s, group, _) = scheduler();
        let util = vec![];
        s.choose(&ctx(&group, &util, 64 << 20));
        let before = s.tables.get(&1).unwrap().b.clone();
        // Same now: decay_to must not touch b before select.
        let table = s.tables.get_mut(&1).unwrap();
        table.decay_to(SimTime::ZERO, 0.05);
        assert_eq!(s.tables.get(&1).unwrap().b, before);
    }

    #[test]
    fn choose_emits_policy_audit_events() {
        let (mut s, group, t) = scheduler();
        let tracer = hs_obs::Tracer::recording();
        s.attach_tracer(&tracer);
        let util = vec![0.0; t.graph.link_count()];
        let scheme = s.choose(&ctx(&group, &util, 1 << 20));
        s.on_monitor(&util, SimTime::from_millis(100));
        let recs = tracer.records();
        let select = recs
            .iter()
            .find(|r| r.name == "policy_select")
            .expect("select audit event");
        assert_eq!(
            select.arg("scheme").and_then(hs_obs::Val::as_str),
            Some(scheme.label())
        );
        let j = select
            .arg("j")
            .and_then(hs_obs::Val::as_f64)
            .expect("J value present");
        assert!(j.is_finite() && j >= 0.0);
        assert!(recs.iter().any(|r| r.name == "policy_charge"));
        assert!(recs.iter().any(|r| r.name == "table_refresh"));
    }

    fn kv_candidate(
        instance: usize,
        dst_gpus: Vec<NodeId>,
        load: usize,
        headroom: u64,
    ) -> KvCandidate {
        KvCandidate {
            instance,
            load,
            headroom_tokens: headroom,
            capacity_tokens: 10_000,
            dst_gpus,
        }
    }

    #[test]
    fn netkv_prefers_nvlink_local_decode() {
        let (mut s, _, t) = scheduler();
        assert!(s.network_aware_admission());
        let src = t.gpus_by_server[0][..2].to_vec();
        let util = vec![0.0; t.graph.link_count()];
        let ctx = KvCtx {
            req: 0,
            bytes: 64 << 20,
            src_gpus: &src,
            link_util: &util,
            now: SimTime::ZERO,
        };
        // Equal load and headroom: the NVLink-local candidate's transfer
        // estimate dominates and it wins despite the higher index.
        let c = s
            .choose_decode(
                &ctx,
                &[
                    kv_candidate(0, t.gpus_by_server[1][..2].to_vec(), 1, 5_000),
                    kv_candidate(1, t.gpus_by_server[0][2..].to_vec(), 1, 5_000),
                ],
            )
            .expect("a choice among nonempty candidates");
        assert_eq!(c.instance, 1, "NVLink-local decode should win");
        assert!(c.est_transfer_s > 0.0);
    }

    #[test]
    fn netkv_routes_around_congested_uplinks() {
        let (mut s, _, t) = scheduler();
        let src = t.gpus_by_server[0].clone();
        let candidates = [
            kv_candidate(0, t.gpus_by_server[1].clone(), 1, 5_000),
            kv_candidate(1, t.gpus_by_server[3].clone(), 1, 5_000),
        ];
        // Idle fabric: symmetric estimates, lowest index wins the tie.
        let idle = vec![0.0; t.graph.link_count()];
        let ctx = KvCtx {
            req: 0,
            bytes: 256 << 20,
            src_gpus: &src,
            link_util: &idle,
            now: SimTime::ZERO,
        };
        let c = s.choose_decode(&ctx, &candidates).expect("choice");
        assert_eq!(c.instance, 0);
        // Saturate server 1's uplinks: the estimate through them inflates
        // and selection shifts to server 3 at equal load.
        let mut util = vec![0.0; t.graph.link_count()];
        for (lid, link) in t.graph.links() {
            if t.gpus_by_server[1].contains(&link.a) || t.gpus_by_server[1].contains(&link.b) {
                util[lid.idx()] = 0.95;
            }
        }
        let ctx = KvCtx {
            req: 0,
            bytes: 256 << 20,
            src_gpus: &src,
            link_util: &util,
            now: SimTime::ZERO,
        };
        let hot = s.choose_decode(&ctx, &candidates).expect("choice");
        assert_eq!(hot.instance, 1, "selection must route around congestion");
        assert!(hot.est_transfer_s < c.est_transfer_s * 10.0);
    }

    #[test]
    fn netkv_penalizes_kv_pressure() {
        let (mut s, _, t) = scheduler();
        let src = t.gpus_by_server[0].clone();
        let util = vec![0.0; t.graph.link_count()];
        let ctx = KvCtx {
            req: 0,
            bytes: 64 << 20,
            src_gpus: &src,
            link_util: &util,
            now: SimTime::ZERO,
        };
        // Symmetric network estimates; the nearly-full instance loses.
        let c = s
            .choose_decode(
                &ctx,
                &[
                    kv_candidate(0, t.gpus_by_server[1].clone(), 1, 100),
                    kv_candidate(1, t.gpus_by_server[3].clone(), 1, 9_000),
                ],
            )
            .expect("choice");
        assert_eq!(c.instance, 1, "KV pressure should repel admissions");
    }

    #[test]
    fn least_loaded_mode_disables_network_awareness() {
        let t = testbed();
        let mut nodes = t.all_gpus();
        nodes.extend(&t.access_switches);
        let ap = AllPairs::compute(&t.graph, &nodes, LinkWeight::Latency, None);
        let params = SchedulerParams {
            kv_select: KvSelection::LeastLoaded,
            ..SchedulerParams::default()
        };
        let mut s = HeroScheduler::new(&t.graph, ap, params);
        assert!(!s.network_aware_admission());
        let src = t.gpus_by_server[0].clone();
        let util = vec![0.0; t.graph.link_count()];
        let ctx = KvCtx {
            req: 0,
            bytes: 64 << 20,
            src_gpus: &src,
            link_util: &util,
            now: SimTime::ZERO,
        };
        assert!(
            s.choose_decode(
                &ctx,
                &[kv_candidate(0, t.gpus_by_server[1].clone(), 0, 9_000)]
            )
            .is_none(),
            "least-loaded mode must defer to the engine"
        );
    }

    #[test]
    fn sharing_ratio_bounds() {
        let (mut s, group, t) = scheduler();
        let util = vec![0.0; t.graph.link_count()];
        s.choose(&ctx(&group, &util, 1024));
        let table = s.tables.get(&1).unwrap();
        for row in &table.f {
            for &v in row {
                assert!((0.0..=1.0).contains(&v), "f out of range: {v}");
            }
        }
        // A policy fully contained in another has ratio 1 toward itself's
        // superset direction; self-entries are zero by construction.
        for i in 0..table.f.len() {
            assert_eq!(table.f[i][i], 0.0);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::tests::{ctx, scheduler};
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// `select()` never returns a policy crossing a dead link, for any
        /// dead-link subset and any transfer size.
        #[test]
        fn select_never_crosses_dead_links(
            mask in 0u64..(1 << 16),
            bytes in 0u64..(1 << 40),
        ) {
            let (mut s, group, _) = scheduler();
            s.choose(&ctx(&group, &[], 1024)); // force table build
            let table = s.tables.get(&1).unwrap();
            let mut links: Vec<LinkId> = table
                .policies
                .iter()
                .flat_map(|p| p.links.iter().copied())
                .collect();
            links.sort_unstable();
            links.dedup();
            let dead: FxHashSet<LinkId> = links
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1u64 << (i % 64)) != 0)
                .map(|(_, &l)| l)
                .collect();
            if let Some(sel) = table.select(bytes, 0.05, &dead) {
                let p = &table.policies[sel.idx];
                prop_assert!(
                    p.links.iter().all(|l| !dead.contains(l)),
                    "selected policy crosses a dead link"
                );
                prop_assert!(sel.j.is_finite());
            }
        }

        /// `charge()` keeps every virtual cost finite and non-negative
        /// under arbitrary byte volumes (including huge ones).
        #[test]
        fn charge_keeps_costs_finite(
            byte_sizes in proptest::collection::vec(0u64..u64::MAX, 1..64),
        ) {
            let (mut s, group, _) = scheduler();
            s.choose(&ctx(&group, &[], 1024));
            let table = s.tables.get_mut(&1).unwrap();
            let dead = FxHashSet::default();
            let t_u = SchedulerParams::default().t_u_s;
            for &bytes in &byte_sizes {
                if let Some(sel) = table.select(bytes, t_u, &dead) {
                    table.charge(sel.idx, bytes, t_u);
                }
                for &b in &table.b {
                    prop_assert!(
                        b.is_finite() && b >= 0.0,
                        "b must stay finite and non-negative, got {}",
                        b
                    );
                }
            }
        }
    }
}
