//! Elastic P/D pool sizing: the control-loop half of autoscaling.
//!
//! The engine half lives in [`hs_cluster::autoscale`]: a `ClusterSim`
//! owns a fixed fleet (the GPU *budget*) and exposes a
//! [`ScaleController`] hook at every monitor tick. This module supplies
//! the real controller — an [`Autoscaler`] that
//!
//! 1. keeps a **sliding window** of [`PoolSnapshot`]s and differences
//!    the cumulative counters to get windowed arrival / completion /
//!    SLA-attainment rates (the engine never guesses the window length);
//! 2. converts the windowed arrival rate into desired pool sizes with
//!    per-pool **unit rates** — the sustainable request throughput of
//!    one prefill / decode replica, derived from the planner's Eq. 12/13
//!    iteration-latency estimates;
//! 3. applies **asymmetric hysteresis**: growing jumps straight to the
//!    rate-sized target (and bypasses cooldown — under-capacity burns
//!    SLA, over-capacity only burns GPU-hours), while shrinking moves
//!    one instance per decision, only when every pressure signal is
//!    below its low-water mark, and only after a per-pool cooldown;
//! 4. optionally triggers **component-scoped planner re-solves** when
//!    the windowed rate drifts: the stored [`PlannerInput`] is re-run
//!    with the parallelism degrees pinned to the incumbent plan
//!    (`force_*_parallelism`), so only the communication schemes and
//!    unit rates are refreshed — the cheap slice of Algorithm 2, bounded
//!    by the same `perturb_budget` as the offline solve.
//!
//! Determinism: the controller is a pure function of the snapshot
//! sequence and its config — no wall clock, no unseeded randomness —
//! so elastic simulations replay bit-for-bit (see `tests/determinism.rs`).
//!
//! See DESIGN.md §13 for the control-loop derivation and the drain
//! semantics on the engine side.

use std::collections::VecDeque;

use hs_cluster::{PoolSnapshot, PoolTargets, ScaleController};

use crate::netest::SchemeSpace;
use crate::planner::{plan, PlannerOutput};
use crate::spec::PlannerInput;

/// Tuning knobs for the [`Autoscaler`] control loop.
///
/// Thresholds come in high/low pairs (hysteresis bands): growth triggers
/// above the high mark, shrink is *permitted* only below the low mark.
/// Widening a band trades reaction speed for fewer oscillations.
#[derive(Clone, Copy, Debug)]
pub struct AutoscaleConfig {
    /// Sliding-window length in monitor ticks; rates are measured over
    /// the whole window.
    pub window_ticks: usize,
    /// Ticks a pool must wait after a *shrink* before shrinking again.
    /// Growth ignores cooldown (see module docs).
    pub cooldown_ticks: usize,
    /// Queued prompts per Active prefill instance above which the
    /// prefill pool is considered hot.
    pub queue_high: f64,
    /// Queue depth per Active prefill instance below which prefill may
    /// shrink.
    pub queue_low: f64,
    /// Mean KV reservation utilization above which the decode pool is
    /// considered hot.
    pub kv_high: f64,
    /// KV reservation utilization below which decode may shrink.
    pub kv_low: f64,
    /// Windowed SLA attainment below which *both* pools are considered
    /// hot (attainment lags, so this is the backstop signal).
    pub attainment_low: f64,
    /// Capacity margin: pools are sized for `rate * headroom` rather
    /// than the bare windowed rate.
    pub headroom: f64,
    /// Floor on Active prefill instances.
    pub min_prefill: usize,
    /// Floor on Active decode instances.
    pub min_decode: usize,
    /// Fractional windowed-rate drift (vs. the rate at the last solve)
    /// that triggers a planner re-solve, when a planner is attached.
    pub resolve_rate_delta: f64,
}

impl Default for AutoscaleConfig {
    fn default() -> Self {
        AutoscaleConfig {
            window_ticks: 20,
            cooldown_ticks: 50,
            queue_high: 4.0,
            queue_low: 1.0,
            kv_high: 0.85,
            kv_low: 0.5,
            attainment_low: 0.9,
            headroom: 1.25,
            min_prefill: 1,
            min_decode: 1,
            resolve_rate_delta: 0.25,
        }
    }
}

/// The windowed-signal, rate-sizing [`ScaleController`] (module docs).
///
/// # Example
///
/// A traffic step from idle to 12 req/s makes the controller grow the
/// prefill pool to the rate-sized target in one decision:
///
/// ```
/// use heroserve::autoscaler::{AutoscaleConfig, Autoscaler};
/// use hs_cluster::{PoolSnapshot, ScaleController};
/// use hs_des::SimTime;
///
/// // One prefill replica sustains 2 req/s, one decode replica 4 req/s.
/// let mut ctl = Autoscaler::new(AutoscaleConfig::default(), 2.0, 4.0);
/// let snap = |s: u64, arrived: u64| PoolSnapshot {
///     now: SimTime::from_secs(s),
///     arrived,
///     done: arrived.saturating_sub(1),
///     done_sla_ok: arrived.saturating_sub(1),
///     prefill_queue: 0,
///     pending_admission: 0,
///     prefill_active: 1,
///     prefill_draining: 0,
///     prefill_parked: 7,
///     decode_active: 1,
///     decode_draining: 0,
///     decode_parked: 7,
///     kv_pressure: 0.2,
/// };
/// assert_eq!(ctl.on_tick(&snap(1, 0)), None); // window warm-up
/// let t = ctl.on_tick(&snap(2, 12)).expect("must scale");
/// // 12 req/s * 1.25 headroom => ceil(15/2) = 8 prefill, ceil(15/4) = 4 decode.
/// assert_eq!((t.prefill, t.decode), (8, 4));
/// ```
pub struct Autoscaler {
    cfg: AutoscaleConfig,
    window: VecDeque<PoolSnapshot>,
    prefill_cooldown: usize,
    decode_cooldown: usize,
    prefill_unit_rps: f64,
    decode_unit_rps: f64,
    expected_rate: f64,
    planner: Option<PlannerInput>,
    last_solve_rate: Option<f64>,
    resolves: usize,
    lat_evals: usize,
}

impl Autoscaler {
    /// Controller with explicit per-replica unit rates (requests/s one
    /// Active prefill / decode instance can sustain). Use
    /// [`Autoscaler::from_plan`] to derive the rates from a planner
    /// solve instead of supplying them by hand.
    pub fn new(cfg: AutoscaleConfig, prefill_unit_rps: f64, decode_unit_rps: f64) -> Self {
        assert!(
            prefill_unit_rps > 0.0 && decode_unit_rps > 0.0,
            "unit rates must be positive"
        );
        Autoscaler {
            cfg,
            window: VecDeque::new(),
            prefill_cooldown: 0,
            decode_cooldown: 0,
            prefill_unit_rps,
            decode_unit_rps,
            expected_rate: 0.0,
            planner: None,
            last_solve_rate: None,
            resolves: 0,
            lat_evals: 0,
        }
    }

    /// Controller seeded from an offline planner solve: unit rates come
    /// from the plan's per-iteration latency estimates, and `input` is
    /// retained (with the parallelism degrees pinned to the plan's
    /// choice) for component-scoped online re-solves.
    pub fn from_plan(cfg: AutoscaleConfig, input: &PlannerInput, output: &PlannerOutput) -> Self {
        let mut me = Self::new(
            cfg,
            prefill_unit_rps(input, output),
            decode_unit_rps(input, output),
        );
        let mut pinned = input.clone();
        pinned.force_prefill_parallelism = Some((output.prefill.p_tens, output.prefill.p_pipe));
        pinned.force_decode_parallelism = Some((output.decode.p_tens, output.decode.p_pipe));
        me.expected_rate = input.arrival_rate;
        me.last_solve_rate = Some(input.arrival_rate);
        me.planner = Some(pinned);
        me
    }

    /// Expected steady-state arrival rate, used only to size the pools
    /// *before* the first window fills (initial targets).
    pub fn with_expected_rate(mut self, rate: f64) -> Self {
        self.expected_rate = rate.max(0.0);
        self
    }

    /// Online planner re-solves triggered so far.
    pub fn resolves(&self) -> usize {
        self.resolves
    }

    /// Group-latency evaluations spent across all online re-solves (the
    /// planner's deterministic work measure).
    pub fn lat_evals(&self) -> usize {
        self.lat_evals
    }

    /// Current per-replica unit rates `(prefill, decode)`, req/s.
    pub fn unit_rates(&self) -> (f64, f64) {
        (self.prefill_unit_rps, self.decode_unit_rps)
    }

    /// Rate-based pool sizing: instances needed to sustain `rate` with
    /// the configured headroom, before clamping to the budget.
    fn size_for(&self, rate: f64) -> (usize, usize) {
        let need = |unit: f64| ((rate * self.cfg.headroom / unit).ceil()).max(0.0) as usize;
        (need(self.prefill_unit_rps), need(self.decode_unit_rps))
    }

    /// Re-run the planner at the new rate with parallelism pinned,
    /// refreshing the unit rates. Infeasible re-solves (rate beyond the
    /// pinned deployment's ceiling) keep the incumbent rates: the
    /// rate-sizing will already be asking for the whole budget.
    fn resolve(&mut self, rate: f64) {
        let Some(input) = self.planner.as_ref() else {
            return;
        };
        let mut input = input.clone();
        input.arrival_rate = rate;
        self.last_solve_rate = Some(rate);
        self.resolves += 1;
        if let Ok(out) = plan(&input, SchemeSpace::Hybrid) {
            self.lat_evals += out.stats.lat_evals;
            self.prefill_unit_rps = prefill_unit_rps(&input, &out);
            self.decode_unit_rps = decode_unit_rps(&input, &out);
        }
    }
}

/// Sustainable req/s of one prefill replica: a batch of `Q` prompts
/// completes per iteration, so `Q / (T_n + T_c)` (Eq. 3's denominator).
fn prefill_unit_rps(input: &PlannerInput, output: &PlannerOutput) -> f64 {
    let t_iter = output.prefill.est_network_s + output.prefill.est_compute_s;
    (input.batch.q as f64 / t_iter.max(1e-9)).max(1e-9)
}

/// Sustainable req/s of one decode replica: each request occupies a
/// batch slot for `K_out/Q` iterations, so `Q / (k_out_mean * (T_n + T_c))`.
fn decode_unit_rps(input: &PlannerInput, output: &PlannerOutput) -> f64 {
    let t_iter = output.decode.est_network_s + output.decode.est_compute_s;
    let k_out_mean = (input.batch.k_out as f64 / input.batch.q.max(1) as f64).max(1.0);
    (input.batch.q as f64 / (k_out_mean * t_iter.max(1e-9))).max(1e-9)
}

impl ScaleController for Autoscaler {
    fn initial_targets(&mut self, prefill_slots: usize, decode_slots: usize) -> PoolTargets {
        let (p, d) = self.size_for(self.expected_rate);
        PoolTargets {
            prefill: p.clamp(self.cfg.min_prefill, prefill_slots),
            decode: d.clamp(self.cfg.min_decode, decode_slots),
        }
    }

    fn on_tick(&mut self, snap: &PoolSnapshot) -> Option<PoolTargets> {
        self.window.push_back(snap.clone());
        while self.window.len() > self.cfg.window_ticks.max(2) {
            self.window.pop_front();
        }
        self.prefill_cooldown = self.prefill_cooldown.saturating_sub(1);
        self.decode_cooldown = self.decode_cooldown.saturating_sub(1);
        let first = self.window.front().expect("window never empty here");
        let dt = snap.now.saturating_since(first.now).as_secs_f64();
        if self.window.len() < 2 || dt <= 0.0 {
            return None;
        }

        // Windowed signals.
        let rate = (snap.arrived - first.arrived) as f64 / dt;
        let done = snap.done - first.done;
        let ok = snap.done_sla_ok - first.done_sla_ok;
        let attainment = if done == 0 {
            1.0
        } else {
            ok as f64 / done as f64
        };
        let queue_per_prefill = snap.prefill_queue as f64 / snap.prefill_active.max(1) as f64;

        // Refresh unit rates when the traffic level has genuinely moved.
        if self.planner.is_some() {
            let drifted = match self.last_solve_rate {
                None => true,
                Some(r0) => (rate - r0).abs() > self.cfg.resolve_rate_delta * r0.max(1e-9),
            };
            if drifted {
                self.resolve(rate);
            }
        }

        // Rate-based sizing, bumped one step when pressure says the
        // sizing is behind reality.
        let (mut want_p, mut want_d) = self.size_for(rate);
        let prefill_hot =
            queue_per_prefill > self.cfg.queue_high || attainment < self.cfg.attainment_low;
        let decode_hot = snap.kv_pressure > self.cfg.kv_high
            || snap.pending_admission > 0
            || attainment < self.cfg.attainment_low;
        if prefill_hot {
            want_p = want_p.max(snap.prefill_active + 1);
        }
        if decode_hot {
            want_d = want_d.max(snap.decode_active + 1);
        }
        want_p = want_p.clamp(self.cfg.min_prefill, snap.prefill_total());
        want_d = want_d.clamp(self.cfg.min_decode, snap.decode_total());

        // Asymmetric hysteresis: grow to target immediately; shrink one
        // step, only when calm, only out of cooldown.
        let prefill_calm =
            queue_per_prefill < self.cfg.queue_low && attainment >= self.cfg.attainment_low;
        let decode_calm = snap.kv_pressure < self.cfg.kv_low
            && snap.pending_admission == 0
            && attainment >= self.cfg.attainment_low;
        let tgt_p = resolve_pool(
            snap.prefill_active,
            want_p,
            prefill_calm,
            &mut self.prefill_cooldown,
            self.cfg.cooldown_ticks,
        );
        let tgt_d = resolve_pool(
            snap.decode_active,
            want_d,
            decode_calm,
            &mut self.decode_cooldown,
            self.cfg.cooldown_ticks,
        );
        if tgt_p == snap.prefill_active && tgt_d == snap.decode_active {
            return None;
        }
        Some(PoolTargets {
            prefill: tgt_p,
            decode: tgt_d,
        })
    }

    fn name(&self) -> &str {
        "heroserve-autoscaler"
    }
}

/// One pool's hysteresis step (see [`Autoscaler`] docs). Mutates the
/// pool's cooldown when a shrink is issued.
fn resolve_pool(
    active: usize,
    want: usize,
    calm: bool,
    cooldown: &mut usize,
    cooldown_ticks: usize,
) -> usize {
    if want > active {
        // Growth is urgent and cheap to undo; never throttle it.
        want
    } else if want < active && calm && *cooldown == 0 {
        // +1 because the caller decrements at the top of every tick,
        // including the one that issued this shrink: the next shrink is
        // possible exactly `cooldown_ticks` ticks from now.
        *cooldown = cooldown_ticks + 1;
        active - 1
    } else {
        active
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs_des::SimTime;

    fn snap(s: u64, arrived: u64, active: (usize, usize)) -> PoolSnapshot {
        PoolSnapshot {
            now: SimTime::from_secs(s),
            arrived,
            done: arrived,
            done_sla_ok: arrived,
            prefill_queue: 0,
            pending_admission: 0,
            prefill_active: active.0,
            prefill_draining: 0,
            prefill_parked: 4 - active.0,
            decode_active: active.1,
            decode_draining: 0,
            decode_parked: 4 - active.1,
            kv_pressure: 0.1,
        }
    }

    #[test]
    fn initial_targets_respect_floors_and_budget() {
        let mut c = Autoscaler::new(AutoscaleConfig::default(), 2.0, 4.0);
        let t = c.initial_targets(4, 4);
        assert_eq!(
            (t.prefill, t.decode),
            (1, 1),
            "idle start sits at the floor"
        );
        let mut c = Autoscaler::new(AutoscaleConfig::default(), 2.0, 4.0).with_expected_rate(100.0);
        let t = c.initial_targets(4, 4);
        assert_eq!((t.prefill, t.decode), (4, 4), "huge rate clamps to budget");
    }

    #[test]
    fn grows_straight_to_rate_sized_target() {
        let mut c = Autoscaler::new(AutoscaleConfig::default(), 2.0, 4.0);
        assert_eq!(c.on_tick(&snap(1, 0, (1, 1))), None);
        let t = c.on_tick(&snap(2, 12, (1, 1))).expect("grow");
        // 12 req/s * 1.25 => ceil(15/2)=8 clamp 4; ceil(15/4)=4.
        assert_eq!((t.prefill, t.decode), (4, 4));
    }

    #[test]
    fn shrinks_one_step_only_when_calm_and_cooled() {
        let cfg = AutoscaleConfig {
            cooldown_ticks: 2,
            ..AutoscaleConfig::default()
        };
        let mut c = Autoscaler::new(cfg, 2.0, 4.0);
        c.on_tick(&snap(1, 0, (4, 4)));
        // Idle traffic, calm signals: shrink both pools by exactly one.
        let t = c.on_tick(&snap(2, 0, (4, 4))).expect("shrink");
        assert_eq!((t.prefill, t.decode), (3, 3));
        // Cooldown holds the next shrink…
        assert_eq!(c.on_tick(&snap(3, 0, (3, 3))), None);
        assert_eq!(c.on_tick(&snap(4, 0, (3, 3))), None);
        // …then it proceeds.
        let t = c.on_tick(&snap(5, 0, (3, 3))).expect("shrink again");
        assert_eq!((t.prefill, t.decode), (2, 2));
    }

    #[test]
    fn hot_signals_bump_beyond_rate_sizing() {
        let mut c = Autoscaler::new(AutoscaleConfig::default(), 10.0, 10.0);
        c.on_tick(&snap(1, 0, (1, 1)));
        // Rate says 1 instance is plenty, but the queue is deep and KV
        // pressure is high: both pools get a one-step bump.
        let mut s = snap(2, 2, (1, 1));
        s.prefill_queue = 30;
        s.kv_pressure = 0.95;
        let t = c.on_tick(&s).expect("pressure grow");
        assert_eq!((t.prefill, t.decode), (2, 2));
    }

    #[test]
    fn pending_admissions_block_decode_shrink() {
        let mut c = Autoscaler::new(AutoscaleConfig::default(), 2.0, 4.0);
        c.on_tick(&snap(1, 0, (1, 4)));
        let mut s = snap(2, 0, (1, 4));
        s.pending_admission = 1;
        // decode_hot bumps want_d to active+1 = 5, clamped to 4: no move.
        assert_eq!(c.on_tick(&s), None);
    }

    #[test]
    fn attainment_collapse_is_a_grow_signal_for_both_pools() {
        let mut c = Autoscaler::new(AutoscaleConfig::default(), 10.0, 10.0);
        c.on_tick(&snap(1, 0, (1, 1)));
        let mut s = snap(2, 4, (1, 1));
        s.done = 10;
        s.done_sla_ok = 2; // 20% attainment in the window
        let t = c.on_tick(&s).expect("attainment grow");
        assert_eq!((t.prefill, t.decode), (2, 2));
    }
}
