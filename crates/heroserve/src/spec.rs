//! The planner's input and output records (Tables I and II).

use hs_cluster::InstanceSpec;
use hs_collective::Scheme;
use hs_model::{BatchStats, CostCoefficients, ModelConfig};
use hs_topology::{Graph, NodeId};
use rustc_hash::FxHashMap;

/// Table I — everything the offline planner consumes.
#[derive(Clone)]
pub struct PlannerInput {
    /// Model shape (`L, h, A, m, R`).
    pub model: ModelConfig,
    /// Fitted compute coefficients `C1…C6`.
    pub coef: CostCoefficients,
    /// Expected batch statistics (`Q, K_in, K_out, K_in2`), maintained by
    /// the online side with moving averages.
    pub batch: BatchStats,
    /// The fabric `G = <V, E>`.
    pub graph: Graph,
    /// Candidate prefill GPUs `V_g^p`.
    pub prefill_gpus: Vec<NodeId>,
    /// Candidate decode GPUs `V_g^d`.
    pub decode_gpus: Vec<NodeId>,
    /// Remaining GPU memory `M_g`, bytes.
    pub gpu_free_memory: FxHashMap<NodeId, u64>,
    /// Remaining edge bandwidth `B(e)`, bps (dense over links).
    pub avail_bandwidth: Vec<f64>,
    /// Request arrival rate `λ`, req/s.
    pub arrival_rate: f64,
    /// TTFT SLA `T_sla^pre`, seconds.
    pub ttft_sla_s: f64,
    /// TPOT SLA `T_sla^dec`, seconds.
    pub tpot_sla_s: f64,
    /// Reserved-memory ratio `R_frac` in `(0, 1]`.
    pub r_frac: f64,
    /// Candidate-configuration cap (`max_candi`; 20 in the paper).
    pub max_candi: usize,
    /// Seed for the perturbation RNG.
    pub seed: u64,
    /// Local-search budget: perturbation passes per candidate (Algorithm
    /// 2 step 4). A deterministic work-unit budget — the paper's "time
    /// budget" expressed in evaluation passes so identical inputs always
    /// explore identical search frontiers regardless of machine speed.
    pub perturb_budget: usize,
    /// Pin the prefill cluster to one `(P_tens, P_pipe)` (controlled
    /// experiments where all systems must share the paper's deployment;
    /// `None` = free search).
    pub force_prefill_parallelism: Option<(u32, u32)>,
    /// Pin the decode cluster's `(P_tens, P_pipe)`.
    pub force_decode_parallelism: Option<(u32, u32)>,
}

impl PlannerInput {
    /// Like [`PlannerInput::basic`] but with the paper's *interleaved*
    /// allocation (Fig. 4): each server contributes its first half of
    /// GPUs to the prefill cluster and the second half to the decode
    /// cluster. Tensor groups larger than half a server must then span
    /// servers — the cross-server regime (§II-B) the paper studies.
    pub fn interleaved(
        graph: &Graph,
        model: ModelConfig,
        coef: CostCoefficients,
        batch: BatchStats,
        arrival_rate: f64,
        ttft_sla_s: f64,
        tpot_sla_s: f64,
    ) -> Self {
        let mut input = Self::basic(
            graph,
            model,
            coef,
            batch,
            arrival_rate,
            ttft_sla_s,
            tpot_sla_s,
        );
        let mut prefill = Vec::new();
        let mut decode = Vec::new();
        // Group GPUs by server, preserving order.
        let mut by_server: Vec<(u32, Vec<NodeId>)> = Vec::new();
        for g in graph.gpus() {
            let s = graph.server_of(g).expect("gpu has server").0;
            match by_server.iter_mut().find(|(sid, _)| *sid == s) {
                Some((_, v)) => v.push(g),
                None => by_server.push((s, vec![g])),
            }
        }
        for (_, gpus) in by_server {
            let half = gpus.len() / 2;
            prefill.extend(&gpus[..half]);
            decode.extend(&gpus[half..]);
        }
        input.prefill_gpus = prefill;
        input.decode_gpus = decode;
        input
    }

    /// A default-shaped input for `graph` splitting GPUs evenly between
    /// prefill and decode, full memory free, full bandwidth available.
    pub fn basic(
        graph: &Graph,
        model: ModelConfig,
        coef: CostCoefficients,
        batch: BatchStats,
        arrival_rate: f64,
        ttft_sla_s: f64,
        tpot_sla_s: f64,
    ) -> Self {
        let gpus = graph.gpus();
        let half = gpus.len() / 2;
        let gpu_free_memory = gpus
            .iter()
            .map(|&g| (g, graph.gpu_spec(g).map(|s| s.memory_bytes).unwrap_or(0)))
            .collect();
        PlannerInput {
            model,
            coef,
            batch,
            avail_bandwidth: graph.capacities(),
            prefill_gpus: gpus[..half].to_vec(),
            decode_gpus: gpus[half..].to_vec(),
            graph: graph.clone(),
            gpu_free_memory,
            arrival_rate,
            ttft_sla_s,
            tpot_sla_s,
            r_frac: 0.9,
            max_candi: 20,
            seed: 0xC0FFEE,
            perturb_budget: 10,
            force_prefill_parallelism: None,
            force_decode_parallelism: None,
        }
    }
}

/// One tensor-parallel group's communication assignment (`α`/`β` plus its
/// aggregation switch `V_ina` and implied paths `P(k,a)`).
#[derive(Clone, Debug)]
pub struct GroupScheme {
    /// The group's GPUs.
    pub group: Vec<NodeId>,
    /// Chosen scheme (INA with switch, or ring; hierarchical variants for
    /// HeroServe's scheme space).
    pub scheme: Scheme,
    /// Estimated per-iteration communication latency, seconds.
    pub latency_s: f64,
}

/// The plan for one cluster (prefill or decode).
#[derive(Clone, Debug)]
pub struct ClusterPlan {
    /// Tensor-parallel degree.
    pub p_tens: u32,
    /// Pipeline-parallel degree.
    pub p_pipe: u32,
    /// Model replicas (each `p_pipe` stages × `p_tens` GPUs) — `K_g`.
    pub instances: Vec<InstanceSpec>,
    /// Per tensor group (replica-stage order) communication assignment.
    pub group_schemes: Vec<GroupScheme>,
    /// Estimated per-iteration network latency `T_n`, seconds.
    pub est_network_s: f64,
    /// Estimated per-iteration compute latency `T_c`, seconds.
    pub est_compute_s: f64,
}

impl ClusterPlan {
    /// GPUs used across all replicas.
    pub fn gpu_count(&self) -> usize {
        self.instances.iter().map(|i| i.gpu_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs_topology::builders::testbed;

    #[test]
    fn basic_input_splits_gpus() {
        let t = testbed();
        let input = PlannerInput::basic(
            &t.graph,
            ModelConfig::opt_13b(),
            CostCoefficients::default(),
            BatchStats::uniform(8, 256, 64),
            1.0,
            2.5,
            0.15,
        );
        assert_eq!(input.prefill_gpus.len(), 8);
        assert_eq!(input.decode_gpus.len(), 8);
        assert_eq!(input.avail_bandwidth.len(), t.graph.link_count());
        assert_eq!(input.gpu_free_memory.len(), 16);
        assert_eq!(input.max_candi, 20);
        // A100 servers report 40 GB free.
        let g0 = input.prefill_gpus[0];
        assert_eq!(input.gpu_free_memory[&g0], 40 * (1 << 30));
    }
}
