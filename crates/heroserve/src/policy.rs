//! Candidate policies for the online scheduler (Fig. 5's table rows).
//!
//! A *policy* is "a set of routing configurations, e.g., the transmission
//! scheme (INA or ring), the next hop, the transmission path and etc"
//! (§III-D). For each tensor-parallel group we enumerate the schemes the
//! hybrid space allows — hierarchical INA at each of the nearest
//! INA-capable switches, flat INA, hierarchical ring, flat ring — and
//! record the exact link set each would use, so costs can track shared
//! links precisely.

use hs_collective::{
    hierarchical_ina_latency, hierarchical_ring_latency, ina_latency, ring_latency, CollectivePlan,
    Scheme,
};
use hs_topology::{AllPairs, Graph, LinkId, NodeId};

/// One candidate (scheme, route set) for a group.
#[derive(Clone, Debug)]
pub struct Policy {
    /// The scheme this policy executes.
    pub scheme: Scheme,
    /// Every link the scheme's plan touches (deduplicated, sorted).
    pub links: Vec<LinkId>,
    /// Seconds of busiest-link occupancy per payload byte: the maximum
    /// over the policy's links of `(bytes the plan puts on that link per
    /// payload byte) × 8 / capacity`. Multiplying by a transfer volume
    /// and dividing by the estimation window yields the paper's δ — the
    /// *maximum bandwidth utilization ratio* the transfer adds (§III-D's
    /// policy cost is explicitly the max across involved links).
    pub max_link_secs_per_byte: f64,
    /// Closed-form latency of the scheme on an idle fabric, seconds per
    /// probe volume — the tiebreak among equally-loaded policies (the
    /// planner's latency preference carried into the online table).
    pub base_latency_s: f64,
}

/// Links a compiled plan touches.
fn plan_links(plan: &CollectivePlan) -> Vec<LinkId> {
    let mut links: Vec<LinkId> = plan
        .phases
        .iter()
        .flat_map(|p| {
            p.transfers
                .iter()
                .flat_map(|(ls, _)| ls.iter().map(|&(l, _)| l))
        })
        .collect();
    links.sort_unstable();
    links.dedup();
    links
}

/// Build the candidate policy list for `group`.
///
/// `k_switches` bounds how many nearest INA switches get their own
/// hierarchical-INA policy (path diversity for load balancing).
pub fn build_policies(
    g: &Graph,
    ap: &AllPairs,
    group: &[NodeId],
    ina_switches: &[NodeId],
    k_switches: usize,
) -> Vec<Policy> {
    // Reference volume: per-byte structure is what matters; compile with
    // a fixed probe size.
    const PROBE: u64 = 1 << 20;
    let mut policies = Vec::new();
    let mut push = |scheme: Scheme| {
        let base_latency_s = match scheme {
            Scheme::Ring => ring_latency(g, group, ap, PROBE, None),
            Scheme::HierRing => hierarchical_ring_latency(g, group, ap, PROBE, None),
            Scheme::Ina { switch } => ina_latency(g, group, switch, ap, PROBE, None),
            Scheme::HierIna { switch } => {
                hierarchical_ina_latency(g, group, switch, ap, PROBE, None)
            }
        };
        let plan = CollectivePlan::compile(g, ap, group, scheme, PROBE);
        if plan.phases.is_empty() {
            return;
        }
        let links = plan_links(&plan);
        if links.is_empty() {
            return;
        }
        // Bytes each *directed* link carries across the whole plan (full
        // duplex: the two directions are independent pools).
        let mut per_dir: std::collections::BTreeMap<(LinkId, bool), u64> =
            std::collections::BTreeMap::new();
        for phase in &plan.phases {
            for (ls, bytes) in &phase.transfers {
                for &d in ls {
                    *per_dir.entry(d).or_insert(0) += bytes;
                }
            }
        }
        let max_link_secs_per_byte = per_dir
            .iter()
            .map(|(&(l, _), &bytes)| (bytes as f64 / PROBE as f64) * 8.0 / g.link(l).capacity_bps)
            .fold(0.0f64, f64::max);
        policies.push(Policy {
            scheme,
            links,
            max_link_secs_per_byte,
            base_latency_s,
        });
    };

    // Nearest switches by worst-member hop distance (covered nodes only).
    let mut switches: Vec<NodeId> = ina_switches
        .iter()
        .filter(|&&s| ap.covers(s))
        .copied()
        .collect();
    switches.sort_by(|&a, &b| {
        let da = group.iter().map(|&k| ap.dist(k, a)).fold(0.0f64, f64::max);
        let db = group.iter().map(|&k| ap.dist(k, b)).fold(0.0f64, f64::max);
        da.partial_cmp(&db)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.cmp(&b))
    });
    for &sw in switches.iter().take(k_switches.max(1)) {
        push(Scheme::HierIna { switch: sw });
    }
    if let Some(&sw) = switches.first() {
        push(Scheme::Ina { switch: sw });
    }
    push(Scheme::HierRing);
    push(Scheme::Ring);
    policies
}

/// Weights of the NetKV-style decode-selection score: how many seconds of
/// estimated transfer time one unit of decode load / full KV-reservation
/// pressure is worth. The defaults make the network term dominate until a
/// candidate is several requests deeper or nearly out of KV headroom —
/// i.e. the policy degrades to least-loaded on a homogeneous idle fabric
/// and to nearest-instance under congestion.
#[derive(Clone, Copy, Debug)]
pub struct KvSelectParams {
    /// Seconds added per request already decoding on the candidate
    /// (a coarse queueing-delay proxy).
    pub load_weight_s: f64,
    /// Seconds added at 100 % KV reservation pressure (an almost-full
    /// instance is about to start deferring admissions).
    pub pressure_weight_s: f64,
}

impl Default for KvSelectParams {
    fn default() -> Self {
        KvSelectParams {
            load_weight_s: 0.010,
            pressure_weight_s: 0.050,
        }
    }
}

/// The NetKV decode-selection score (lower is better): estimated striped
/// KV transfer time over residual bandwidth, plus load and KV-pressure
/// penalties in transfer-time units.
pub fn netkv_score(
    est_transfer_s: f64,
    load: usize,
    reserved_frac: f64,
    p: &KvSelectParams,
) -> f64 {
    est_transfer_s
        + load as f64 * p.load_weight_s
        + reserved_frac.clamp(0.0, 1.0) * p.pressure_weight_s
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs_topology::builders::testbed;
    use hs_topology::LinkWeight;

    fn setup() -> (hs_topology::builders::BuiltTopology, AllPairs) {
        let t = testbed();
        let mut nodes = t.all_gpus();
        nodes.extend(&t.access_switches);
        let ap = AllPairs::compute(&t.graph, &nodes, LinkWeight::Latency, None);
        (t, ap)
    }

    #[test]
    fn builds_diverse_policies_for_cross_server_group() {
        let (t, ap) = setup();
        let group: Vec<NodeId> = t.gpus_by_server.iter().map(|s| s[0]).collect();
        let pols = build_policies(&t.graph, &ap, &group, &t.access_switches, 2);
        // 2 hier-INA + flat INA + hier ring + flat ring.
        assert_eq!(pols.len(), 5);
        let schemes: Vec<_> = pols.iter().map(|p| p.scheme).collect();
        assert!(schemes.iter().any(|s| matches!(s, Scheme::HierIna { .. })));
        assert!(schemes.contains(&Scheme::Ring));
        for p in &pols {
            assert!(!p.links.is_empty());
            assert!(p.max_link_secs_per_byte > 0.0);
            // Links sorted + deduped.
            for w in p.links.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn distinct_switches_give_distinct_link_sets() {
        let (t, ap) = setup();
        let group: Vec<NodeId> = t.gpus_by_server.iter().map(|s| s[0]).collect();
        let pols = build_policies(&t.graph, &ap, &group, &t.access_switches, 2);
        let ina_pols: Vec<&Policy> = pols
            .iter()
            .filter(|p| matches!(p.scheme, Scheme::HierIna { .. }))
            .collect();
        assert_eq!(ina_pols.len(), 2);
        assert_ne!(ina_pols[0].links, ina_pols[1].links);
    }

    #[test]
    fn singleton_group_has_no_policies() {
        let (t, ap) = setup();
        let group = vec![t.gpus_by_server[0][0]];
        let pols = build_policies(&t.graph, &ap, &group, &t.access_switches, 2);
        assert!(pols.is_empty());
    }

    #[test]
    fn hierarchical_ring_amplifies_less_on_ethernet() {
        // For a same-server pair the hierarchical schemes stay on NVLink;
        // the policy structure reflects it via NVLink-only link sets.
        let (t, ap) = setup();
        let group = vec![t.gpus_by_server[0][0], t.gpus_by_server[0][1]];
        let pols = build_policies(&t.graph, &ap, &group, &t.access_switches, 1);
        let hier = pols
            .iter()
            .find(|p| p.scheme == Scheme::HierRing)
            .expect("hier ring policy");
        assert!(hier
            .links
            .iter()
            .all(|&l| t.graph.link(l).kind == hs_topology::LinkKind::NvLink));
    }
}
