//! The HeroServe system facade: plan a deployment, then serve traces.
//!
//! Mirrors §IV's architecture — the central scheduler plans placement and
//! communication offline, GPU agents run the load-aware online scheduler,
//! switch agents enforce INA — wired into the `hs-cluster` simulator.

use crate::planner::{plan, PlannerError, PlannerOutput, SchemeSpace};
use crate::scheduler::{HeroScheduler, SchedulerParams};
use crate::spec::PlannerInput;
use hs_cluster::batching::BatchPolicy;
use hs_cluster::{ClusterConfig, ClusterSim, SimReport};
use hs_des::{SeedSplitter, SimSpan, SimTime};
use hs_model::profile::{fit, ProfileGrid};
use hs_model::{BatchStats, CostCoefficients, GpuModel, ModelConfig};
use hs_topology::builders::BuiltTopology;
use hs_topology::{AllPairs, LinkWeight, NodeId};
use hs_workload::{FaultPlan, Poisson, Trace, WorkloadSpec};

/// A planned HeroServe deployment, ready to serve traces.
pub struct HeroServe {
    /// The fabric.
    pub topology: BuiltTopology,
    /// The planner's decision.
    pub output: PlannerOutput,
    /// Model shape.
    pub model: ModelConfig,
    /// Fitted compute coefficients.
    pub coef: CostCoefficients,
    /// The workload (SLAs + length distributions).
    pub workload: WorkloadSpec,
    /// Online-scheduler tunables.
    pub sched_params: SchedulerParams,
    /// Per-switch concurrent INA-job capacity.
    pub ina_capacity_per_switch: usize,
    /// Bursty background cross traffic `(flows/s, bytes)`.
    pub background: Option<(f64, u64)>,
    /// Scheduled fabric faults injected during serving.
    pub faults: FaultPlan,
}

/// Default profiling-based coefficient fit for a topology's dominant GPU.
pub fn default_coefficients(model: &ModelConfig) -> CostCoefficients {
    fit(&GpuModel::a100(), model, &ProfileGrid::default()).coefficients
}

/// Estimated batch statistics from a workload's analytic means (the
/// moving-average state the online side would maintain, §III-B).
pub fn expected_batch(workload: &WorkloadSpec, q: u32) -> BatchStats {
    let l_in = workload.input.analytic_mean().round().max(1.0) as u64;
    let l_out = workload.output.analytic_mean().round().max(1.0) as u64;
    BatchStats::uniform(q, l_in, l_out)
}

impl HeroServe {
    /// Plan a deployment of `model` on `topo` for `workload` at the
    /// expected `rate` (req/s), using the hybrid scheme space.
    pub fn plan(
        topo: &BuiltTopology,
        model: &ModelConfig,
        workload: &WorkloadSpec,
        rate: f64,
    ) -> Result<Self, PlannerError> {
        let coef = default_coefficients(model);
        let input = PlannerInput::basic(
            &topo.graph,
            model.clone(),
            coef,
            expected_batch(workload, 8),
            rate,
            workload.ttft_sla_s,
            workload.tpot_sla_s,
        );
        let output = plan(&input, SchemeSpace::Hybrid)?;
        Ok(HeroServe {
            topology: topo.clone(),
            output,
            model: model.clone(),
            coef,
            workload: workload.clone(),
            sched_params: SchedulerParams::default(),
            ina_capacity_per_switch: 8,
            background: None,
            faults: FaultPlan::none(),
        })
    }

    /// Plan with a caller-supplied input (full control over memory,
    /// bandwidth, GPU split).
    pub fn plan_with_input(
        topo: &BuiltTopology,
        input: &PlannerInput,
        workload: &WorkloadSpec,
    ) -> Result<Self, PlannerError> {
        let output = plan(input, SchemeSpace::Hybrid)?;
        Ok(HeroServe {
            topology: topo.clone(),
            output,
            model: input.model.clone(),
            coef: input.coef,
            workload: workload.clone(),
            sched_params: SchedulerParams::default(),
            ina_capacity_per_switch: 8,
            background: None,
            faults: FaultPlan::none(),
        })
    }

    /// Inject a fault schedule into subsequent `serve` calls (builder
    /// style, for the fault drills and benches).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// All-pairs structures covering the planned GPUs and INA switches.
    pub fn all_pairs(&self) -> AllPairs {
        let mut nodes: Vec<NodeId> = self.topology.all_gpus();
        nodes.extend(self.topology.graph.ina_switches());
        nodes.sort_unstable();
        nodes.dedup();
        AllPairs::compute(&self.topology.graph, &nodes, LinkWeight::Latency, None)
    }

    /// The cluster-simulator configuration this plan induces.
    pub fn cluster_config(&self) -> ClusterConfig {
        let gpu_memory_bytes = self
            .topology
            .all_gpus()
            .iter()
            .filter_map(|&g| self.topology.graph.gpu_spec(g).map(|s| s.memory_bytes))
            .min()
            .unwrap_or(40 * (1 << 30));
        ClusterConfig {
            model: self.model.clone(),
            coef: self.coef,
            ttft_sla_s: self.workload.ttft_sla_s,
            tpot_sla_s: self.workload.tpot_sla_s,
            prefill: self.output.prefill.instances.clone(),
            decode: self.output.decode.instances.clone(),
            batch: BatchPolicy::default(),
            gpu_memory_bytes,
            monitor_period: SimSpan::from_millis(50),
            ina_capacity_per_switch: self.ina_capacity_per_switch,
            background: self.background,
            faults: self.faults.clone(),
        }
    }

    /// The online scheduler instance for this deployment.
    pub fn online_scheduler(&self) -> HeroScheduler {
        HeroScheduler::new(&self.topology.graph, self.all_pairs(), self.sched_params)
    }

    /// Serve a Poisson trace of this system's workload at `rate` req/s
    /// for `duration`, plus a drain margin; returns the report.
    pub fn serve_trace(&self, seed: u64, rate: f64, duration: SimTime) -> SimReport {
        let mut rng = SeedSplitter::new(seed).stream("trace");
        let mut arr = Poisson::new(rate);
        let trace = Trace::generate(&self.workload, &mut arr, &mut rng, duration);
        self.serve(&trace, duration)
    }

    /// Serve an explicit trace; the simulation runs to `horizon` plus a
    /// drain margin of 25 % (capped at 60 s) so in-flight requests can
    /// finish.
    pub fn serve(&self, trace: &Trace, horizon: SimTime) -> SimReport {
        let margin = horizon
            .saturating_since(SimTime::ZERO)
            .mul_f64(0.25)
            .min(SimSpan::from_secs(60));
        let mut sim = ClusterSim::new(
            &self.topology.graph,
            self.all_pairs(),
            self.cluster_config(),
            trace,
            Box::new(self.online_scheduler()),
        );
        sim.run(horizon + margin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs_topology::builders::testbed;

    #[test]
    fn plan_and_serve_chatbot() {
        let topo = testbed();
        let workload = hs_workload::sharegpt_like();
        // OPT-66B genuinely needs multi-GPU tensor groups on 32-40 GB
        // GPUs, so the communication path is exercised for real.
        let hs =
            HeroServe::plan(&topo, &ModelConfig::opt_66b(), &workload, 0.5).expect("feasible plan");
        assert!(hs.output.est_h_rps > 0.0);
        assert!(hs.output.prefill.p_tens * hs.output.prefill.p_pipe >= 4);
        let report = hs.serve_trace(7, 0.5, SimTime::from_secs(10));
        assert!(report.arrived > 2);
        assert!(report.completed > 0);
        assert_eq!(report.strategy, "HeroServe");
        // Tensor-parallel collectives actually ran.
        assert!(
            report.ina_ops + report.ring_ops > 0,
            "no collectives recorded"
        );
        assert!(report.nvlink_bytes > 0.0, "heterogeneous path unused");
    }

    #[test]
    fn cluster_config_reflects_plan() {
        let topo = testbed();
        let workload = hs_workload::sharegpt_like();
        let hs = HeroServe::plan(&topo, &ModelConfig::opt_13b(), &workload, 1.0).unwrap();
        let cfg = hs.cluster_config();
        assert_eq!(cfg.prefill.len(), hs.output.prefill.instances.len());
        assert_eq!(cfg.decode.len(), hs.output.decode.instances.len());
        assert_eq!(cfg.ttft_sla_s, 2.5);
        // Testbed min memory = V100 32 GB.
        assert_eq!(cfg.gpu_memory_bytes, 32 * (1 << 30));
    }

    #[test]
    fn expected_batch_uses_workload_means() {
        let b = expected_batch(&hs_workload::sharegpt_like(), 8);
        assert_eq!(b.q, 8);
        assert_eq!(b.k_in, 8 * 160);
    }
}
