//! Queueing-delay estimation (§III-C1).
//!
//! "We assume that request arrivals follow a Poisson process ... The
//! queuing delay is estimated using the Pollaczek–Khinchine equation:
//! `T_queue = λ·T_serve² / (2(1−ρ))` where `ρ = λ·T_serve`."
//!
//! This is the M/D/1 specialization of P-K (deterministic service — LLM
//! inference latency is highly predictable, the paper's stated
//! justification). The planner uses it both to estimate `T_req` and to
//! find the largest sustainable arrival rate under an SLA.

/// The paper's queueing estimate: expected waiting time in seconds for
/// arrival rate `lambda` (req/s) and deterministic service time
/// `t_serve` (s). Returns `f64::INFINITY` when the queue is unstable
/// (ρ ≥ 1).
pub fn pk_queue_delay(lambda: f64, t_serve: f64) -> f64 {
    if lambda <= 0.0 || t_serve <= 0.0 {
        return 0.0;
    }
    let rho = lambda * t_serve;
    if rho >= 1.0 {
        return f64::INFINITY;
    }
    lambda * t_serve * t_serve / (2.0 * (1.0 - rho))
}

/// Total request latency `T_req = T_queue + T_serve`.
pub fn request_latency(lambda: f64, t_serve: f64) -> f64 {
    pk_queue_delay(lambda, t_serve) + t_serve
}

/// The largest arrival rate (req/s) at which `T_queue + t_serve ≤ bound`
/// — the planner's per-replica capacity under a latency SLA. Closed form
/// from P-K:
///
/// `T_q = λs²/(2(1−λs)) ≤ bound − s  ⇒  λ ≤ 2(bound−s) / (s² + 2s(bound−s))`.
///
/// Returns 0 when the service time alone violates the bound.
pub fn max_rate_for_latency(t_serve: f64, bound: f64) -> f64 {
    if t_serve <= 0.0 {
        return f64::INFINITY;
    }
    if t_serve >= bound {
        return 0.0;
    }
    let slack = bound - t_serve;
    2.0 * slack / (t_serve * t_serve + 2.0 * t_serve * slack)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_load_no_queue() {
        assert_eq!(pk_queue_delay(0.0, 1.0), 0.0);
        assert_eq!(request_latency(0.0, 1.0), 1.0);
    }

    #[test]
    fn delay_grows_with_utilization() {
        let s = 0.1;
        let d1 = pk_queue_delay(1.0, s); // rho = 0.1
        let d5 = pk_queue_delay(5.0, s); // rho = 0.5
        let d9 = pk_queue_delay(9.0, s); // rho = 0.9
        assert!(d1 < d5 && d5 < d9);
        // M/D/1 at rho = 0.5: W = λ s² / (2 (1-ρ)) = 5*0.01/1 = 0.05.
        assert!((d5 - 0.05).abs() < 1e-12);
    }

    #[test]
    fn unstable_queue_is_infinite() {
        assert!(pk_queue_delay(10.0, 0.1).is_infinite());
        assert!(pk_queue_delay(11.0, 0.1).is_infinite());
    }

    #[test]
    fn max_rate_inverts_latency_bound() {
        let s = 0.1;
        let bound = 0.3;
        let lam = max_rate_for_latency(s, bound);
        assert!(lam > 0.0 && lam < 1.0 / s);
        // At that rate the latency equals the bound (within float noise).
        let achieved = request_latency(lam, s);
        assert!((achieved - bound).abs() < 1e-9, "achieved {achieved}");
        // Slightly above, it exceeds.
        assert!(request_latency(lam * 1.01, s) > bound);
    }

    #[test]
    fn infeasible_service_time() {
        assert_eq!(max_rate_for_latency(2.0, 1.0), 0.0);
        assert_eq!(max_rate_for_latency(1.0, 1.0), 0.0);
    }
}
