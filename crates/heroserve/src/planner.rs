//! Algorithm 1 — the scalability-oriented offline planner.
//!
//! Pipeline (§III-C3):
//!
//! 1. **Determine the minimum GPUs / generate candidates** — from the
//!    model size `R`, per-GPU free memory and the reserve ratio
//!    `R_frac`, enumerate `(P_tens, P_pipe)` combinations (up to
//!    `max_candi`; the paper finds 20 near-optimal).
//! 2. **Estimate overheads** — prefill and decode clusters are evaluated
//!    concurrently (the paper's two threads; here a rayon join plus
//!    parallel candidate evaluation): each candidate is memory-filtered
//!    (`m_req = R/(P_tens·P_pipe·R_frac)`), grouped and priced by
//!    Algorithm 2 ([`crate::netest`]), and costed with Eqs. 12–13.
//! 3. **Select the optimal configuration** — the feasible combination
//!    (TTFT and TPOT SLAs met) maximizing scalability `H`.
//!
//! Scalability here is the system's sustainable request rate
//! `H = min(prefill capacity, decode capacity)` with queueing priced by
//! Pollaczek–Khinchine — a capacity-form of the paper's `H = 1/T_req`
//! (documented in EXPERIMENTS.md; at the knee `1/T_req` and capacity
//! coincide).

pub use crate::netest::SchemeSpace;
use crate::netest::{estimate_network_latency, NetEstimate, NetestInput};
use crate::queueing::pk_queue_delay;
use crate::spec::{ClusterPlan, PlannerInput};
use hs_cluster::InstanceSpec;
use hs_collective::latency::path_transfer_secs;
use hs_des::SeedSplitter;
use hs_model::{decode_latency_secs, prefill_latency_secs, MemoryModel};
use hs_topology::{AllPairs, LinkWeight, NodeId};
use rayon::prelude::*;

/// Planner failure modes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlannerError {
    /// No `(P_tens, P_pipe)` combination fits the memory constraints.
    NotEnoughGpus,
    /// Configurations exist but none meets both SLAs at the given rate.
    NoFeasibleConfig,
}

impl std::fmt::Display for PlannerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlannerError::NotEnoughGpus => write!(f, "model does not fit on the candidate GPUs"),
            PlannerError::NoFeasibleConfig => {
                write!(f, "no parallelism configuration meets the latency SLAs")
            }
        }
    }
}

impl std::error::Error for PlannerError {}

/// Solve diagnostics (planner-cost experiments).
#[derive(Clone, Copy, Debug, Default)]
pub struct SolveStats {
    /// Candidate `(P_tens, P_pipe)` pairs examined per cluster.
    pub candidates_examined: usize,
    /// Candidates that survived memory filtering.
    pub memory_feasible: usize,
    /// Combinations meeting both SLAs.
    pub sla_feasible: usize,
    /// Worst perturbation iteration count seen (paper: ≤ 5 typical).
    pub max_perturb_iters: usize,
    /// Group-latency evaluations across all candidates — the
    /// deterministic work measure the search budget is expressed in.
    pub lat_evals: usize,
    /// Wall-clock seconds spent planning. Reporting only: nothing reads
    /// it back, and plan output is identical whatever it says. `None`
    /// when the embedding disables wall-clock sampling.
    pub elapsed_s: Option<f64>,
}

/// The planner's decision (Table II).
#[derive(Clone, Debug)]
pub struct PlannerOutput {
    /// Prefill cluster plan.
    pub prefill: ClusterPlan,
    /// Decode cluster plan.
    pub decode: ClusterPlan,
    /// Estimated KV transfer latency `T_f`, seconds.
    pub est_t_f_s: f64,
    /// Estimated TTFT `T_pre = T_n^pre + T_c^pre` (Eq. 3), seconds.
    pub est_ttft_s: f64,
    /// Estimated TPOT `T_dec = T_n^dec + T_c^dec + T_f` (Eq. 4), seconds.
    pub est_tpot_s: f64,
    /// Estimated scalability `H` (sustainable req/s).
    pub est_h_rps: f64,
    /// Estimated queueing delay at the input arrival rate, seconds.
    pub est_queue_s: f64,
    /// Diagnostics.
    pub stats: SolveStats,
}

/// One evaluated per-cluster candidate.
#[derive(Clone, Debug)]
struct Candidate {
    p_tens: u32,
    p_pipe: u32,
    replicas: usize,
    net: NetEstimate,
    t_c: f64,
    t_n: f64,
}

/// Enumerate `(P_tens, P_pipe)` candidates for one cluster, memory-first
/// (Algorithm 1 step 1). Returns pairs with the eligible GPU lists.
fn gen_tp_pp_candidates(
    input: &PlannerInput,
    gpus: &[NodeId],
    force: Option<(u32, u32)>,
) -> Vec<(u32, u32, Vec<NodeId>)> {
    let mut out = Vec::new();
    let n = gpus.len() as u32;
    for p_tens in [1u32, 2, 4, 8] {
        if p_tens > n {
            break;
        }
        for p_pipe in 1u32..=4 {
            if p_tens * p_pipe > n {
                break;
            }
            if let Some((ft, fp)) = force {
                if p_tens != ft || p_pipe != fp {
                    continue;
                }
            }
            let m_req = MemoryModel::required_bytes(&input.model, p_tens, p_pipe, input.r_frac);
            let eligible: Vec<NodeId> = gpus
                .iter()
                .filter(|g| input.gpu_free_memory.get(g).copied().unwrap_or(0) >= m_req)
                .copied()
                .collect();
            if (eligible.len() as u32) < p_tens * p_pipe {
                continue; // Algorithm 1 lines 7-8 / 14-15
            }
            out.push((p_tens, p_pipe, eligible));
        }
    }
    // Prefer fewer GPUs per replica (more replicas), then higher TP
    // (lower latency) — then cap at max_candi.
    out.sort_by_key(|(pt, pp, _)| (pt * pp, u32::MAX - pt));
    out.truncate(input.max_candi);
    out
}

/// Evaluate every candidate for one cluster (prefill or decode) in
/// parallel (Algorithm 1's per-cluster thread).
#[allow(clippy::too_many_arguments)]
fn evaluate_cluster(
    input: &PlannerInput,
    ap: &AllPairs,
    gpus: &[NodeId],
    ina_switches: &[NodeId],
    space: SchemeSpace,
    is_prefill: bool,
    seeds: &SeedSplitter,
) -> (Vec<Candidate>, usize) {
    let force = if is_prefill {
        input.force_prefill_parallelism
    } else {
        input.force_decode_parallelism
    };
    let candidates = gen_tp_pp_candidates(input, gpus, force);
    let examined = candidates.len();
    let evaluated: Vec<Candidate> = candidates
        .into_par_iter()
        .enumerate()
        .map(|(ci, (p_tens, p_pipe, eligible))| {
            let per_replica = (p_tens * p_pipe) as usize;
            let replicas = eligible.len() / per_replica;
            let n_groups = replicas * p_pipe as usize;
            let tokens = if is_prefill {
                input.batch.k_in
            } else {
                input.batch.q as u64
            };
            let sync_bytes = input.model.sync_bytes_total(tokens) / p_pipe.max(1) as u64;
            let pipe_bytes = tokens * input.model.hidden as u64 * input.model.precision.bytes();
            let mut rng =
                seeds.indexed_stream(if is_prefill { "prefill" } else { "decode" }, ci as u64);
            let net = estimate_network_latency(
                &NetestInput {
                    graph: &input.graph,
                    ap,
                    avail: &input.avail_bandwidth,
                    gpus: &eligible,
                    n_groups,
                    group_size: p_tens as usize,
                    p_pipe: p_pipe as usize,
                    sync_bytes,
                    pipe_bytes,
                    scheme_space: space,
                    ina_switches,
                    max_perturb_iters: input.perturb_budget,
                },
                &mut rng,
            );
            let t_c = if is_prefill {
                prefill_latency_secs(&input.coef, &input.model, &input.batch, p_tens)
            } else {
                decode_latency_secs(&input.coef, &input.model, &input.batch, p_tens, p_pipe)
            };
            Candidate {
                p_tens,
                p_pipe,
                replicas,
                t_n: net.t_n,
                net,
                t_c,
            }
        })
        .collect();
    (evaluated, examined)
}

/// Estimated KV-cache transfer latency `T_f` (Eqs. 14–15): prefill
/// replica GPUs stream their shards to positionally paired decode GPUs;
/// the slowest pair bounds the transfer.
fn estimate_t_f(input: &PlannerInput, ap: &AllPairs, pre: &Candidate, dec: &Candidate) -> f64 {
    let (Some(pg), Some(dg)) = (pre.net.groups.first(), dec.net.groups.first()) else {
        return 0.0;
    };
    let mean_input = if input.batch.q > 0 {
        input.batch.k_in / input.batch.q as u64
    } else {
        input.batch.k_in
    };
    let kv_total = mean_input * input.model.kv_bytes_per_token();
    let pairs = pg.len().max(1) as u64;
    let shard = kv_total / pairs;
    pg.iter()
        .enumerate()
        .map(|(i, &k)| {
            let z = dg[i % dg.len()];
            path_transfer_secs(
                &input.graph,
                ap.path(k, z),
                shard,
                Some(&input.avail_bandwidth),
            )
        })
        .fold(0.0f64, f64::max)
}

fn to_plan(c: &Candidate) -> ClusterPlan {
    let p_pipe = c.p_pipe as usize;
    let instances = (0..c.replicas)
        .map(|r| InstanceSpec {
            stages: c.net.groups[r * p_pipe..(r + 1) * p_pipe].to_vec(),
        })
        .collect();
    ClusterPlan {
        p_tens: c.p_tens,
        p_pipe: c.p_pipe,
        instances,
        group_schemes: c.net.schemes.clone(),
        est_network_s: c.t_n,
        est_compute_s: c.t_c,
    }
}

/// Run the offline planner over `input`, restricted to `space` (HeroServe
/// uses [`SchemeSpace::Hybrid`]; the baselines use the others — §V).
pub fn plan(input: &PlannerInput, space: SchemeSpace) -> Result<PlannerOutput, PlannerError> {
    // The search budget is `input.perturb_budget` (deterministic work
    // units); wall-clock is sampled only to fill the reporting field.
    // simlint::allow(wall-clock, reporting-only elapsed_s; never feeds budgets or plan output)
    let start = std::time::Instant::now();
    let seeds = SeedSplitter::new(input.seed);

    // Offline matrices (Algorithm 2 lines 1-3), computed once over GPUs +
    // INA switches; "scheduled asynchronously" in the paper — here simply
    // first, then shared by every parallel candidate evaluation.
    let ina_switches = input.graph.ina_switches();
    let mut nodes: Vec<NodeId> = input
        .prefill_gpus
        .iter()
        .chain(input.decode_gpus.iter())
        .copied()
        .collect();
    nodes.extend(&ina_switches);
    nodes.sort_unstable();
    nodes.dedup();
    let ap = AllPairs::compute(&input.graph, &nodes, LinkWeight::Latency, None);

    // The paper's two cluster threads.
    let ((pre_cands, pre_examined), (dec_cands, dec_examined)) = rayon::join(
        || {
            evaluate_cluster(
                input,
                &ap,
                &input.prefill_gpus,
                &ina_switches,
                space,
                true,
                &seeds,
            )
        },
        || {
            evaluate_cluster(
                input,
                &ap,
                &input.decode_gpus,
                &ina_switches,
                space,
                false,
                &seeds,
            )
        },
    );
    if pre_cands.is_empty() || dec_cands.is_empty() {
        return Err(PlannerError::NotEnoughGpus);
    }

    let q = input.batch.q.max(1) as f64;
    let mean_out = if input.batch.q > 0 {
        (input.batch.k_out as f64 / q).max(1.0)
    } else {
        input.batch.k_out.max(1) as f64
    };

    let mut best: Option<(f64, &Candidate, &Candidate, f64, f64, f64, f64)> = None;
    let mut sla_feasible = 0usize;
    for pre in &pre_cands {
        let t_pre = pre.t_c + pre.t_n; // Eq. 3
        if t_pre > input.ttft_sla_s {
            continue;
        }
        for dec in &dec_cands {
            let t_f = estimate_t_f(input, &ap, pre, dec);
            // Eq. 4 with T_f amortized over the request's output tokens:
            // the KV cache transfers once per request, not once per token,
            // so its per-token contribution is T_f / K_out — the form
            // under which long-prompt (LongBench) workloads remain
            // feasible, matching the paper's testbed behaviour. The
            // measured TPOT in `hs-cluster` uses the same accounting.
            let t_dec = dec.t_c + dec.t_n + t_f / mean_out;
            if t_dec > input.tpot_sla_s {
                continue;
            }
            sla_feasible += 1;
            // Capacity: prefill serves Q requests per iteration; decode
            // produces Q tokens per iteration and a request needs
            // mean_out of them.
            let prefill_rate = pre.replicas as f64 * q / t_pre.max(1e-9);
            let decode_rate = dec.replicas as f64 * q / ((dec.t_c + dec.t_n).max(1e-9) * mean_out);
            let h = prefill_rate.min(decode_rate);
            if best.as_ref().map(|(bh, ..)| h > *bh).unwrap_or(true) {
                best = Some((
                    h,
                    pre,
                    dec,
                    t_f,
                    t_pre,
                    t_dec,
                    prefill_rate.min(decode_rate),
                ));
            }
        }
    }

    let max_perturb = pre_cands
        .iter()
        .chain(dec_cands.iter())
        .map(|c| c.net.perturb_iters)
        .max()
        .unwrap_or(0);
    let lat_evals = pre_cands
        .iter()
        .chain(dec_cands.iter())
        .map(|c| c.net.lat_evals)
        .sum();
    let stats = SolveStats {
        candidates_examined: pre_examined + dec_examined,
        memory_feasible: pre_cands.len() + dec_cands.len(),
        sla_feasible,
        max_perturb_iters: max_perturb,
        lat_evals,
        elapsed_s: Some(start.elapsed().as_secs_f64()),
    };

    let Some((h, pre, dec, t_f, t_pre, t_dec, _)) = best else {
        return Err(PlannerError::NoFeasibleConfig);
    };
    // Queueing at the offered rate (utilization against capacity H).
    let service = 1.0 / h.max(1e-9);
    let queue = pk_queue_delay(input.arrival_rate, service);
    Ok(PlannerOutput {
        prefill: to_plan(pre),
        decode: to_plan(dec),
        est_t_f_s: t_f,
        est_ttft_s: t_pre,
        est_tpot_s: t_dec,
        est_h_rps: h,
        est_queue_s: queue,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs_model::profile::{fit, ProfileGrid};
    use hs_model::{BatchStats, GpuModel, ModelConfig};
    use hs_topology::builders::testbed;

    fn input(model: ModelConfig, rate: f64) -> PlannerInput {
        let t = testbed();
        let fitted = fit(&GpuModel::a100(), &model, &ProfileGrid::default());
        PlannerInput::basic(
            &t.graph,
            model,
            fitted.coefficients,
            BatchStats::uniform(8, 256, 64),
            rate,
            2.5,
            0.15,
        )
    }

    #[test]
    fn plans_opt_13b_on_testbed() {
        let inp = input(ModelConfig::opt_13b(), 2.0);
        let out = plan(&inp, SchemeSpace::Hybrid).expect("feasible");
        assert!(out.prefill.p_tens >= 1);
        assert!(out.prefill.gpu_count() <= 8);
        assert!(out.decode.gpu_count() <= 8);
        assert!(!out.prefill.instances.is_empty());
        assert!(!out.decode.instances.is_empty());
        assert!(out.est_ttft_s <= 2.5);
        assert!(out.est_tpot_s <= 0.15);
        assert!(out.est_h_rps > 0.0);
        assert!(out.stats.candidates_examined > 0);
        // Every instance spec is structurally valid.
        for i in out.prefill.instances.iter().chain(&out.decode.instances) {
            assert!(i.validate().is_ok());
        }
    }

    #[test]
    fn hybrid_beats_or_matches_ring_only() {
        let inp = input(ModelConfig::opt_13b(), 2.0);
        let hybrid = plan(&inp, SchemeSpace::Hybrid).expect("hybrid feasible");
        let ring = plan(&inp, SchemeSpace::RingOnly).expect("ring feasible");
        assert!(
            hybrid.est_h_rps >= ring.est_h_rps * 0.999,
            "hybrid {} < ring {}",
            hybrid.est_h_rps,
            ring.est_h_rps
        );
        // And lower (or equal) estimated TTFT.
        assert!(hybrid.est_ttft_s <= ring.est_ttft_s + 1e-9);
    }

    #[test]
    fn oversized_model_fails_cleanly() {
        // OPT-175B cannot fit on 8x40GB with r_frac 0.9 at max 8x4 ways.
        let inp = input(ModelConfig::opt_175b(), 1.0);
        assert_eq!(
            plan(&inp, SchemeSpace::Hybrid).err(),
            Some(PlannerError::NotEnoughGpus)
        );
    }

    #[test]
    fn strict_sla_fails_cleanly() {
        let mut inp = input(ModelConfig::opt_13b(), 1.0);
        inp.ttft_sla_s = 1e-6;
        assert_eq!(
            plan(&inp, SchemeSpace::Hybrid).err(),
            Some(PlannerError::NoFeasibleConfig)
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let inp = input(ModelConfig::opt_13b(), 2.0);
        let a = plan(&inp, SchemeSpace::Hybrid).unwrap();
        let b = plan(&inp, SchemeSpace::Hybrid).unwrap();
        assert_eq!(a.est_h_rps, b.est_h_rps);
        assert_eq!(a.prefill.instances, b.prefill.instances);
        assert_eq!(a.decode.instances, b.decode.instances);
    }

    #[test]
    fn max_candi_one_is_worse_or_equal() {
        let inp20 = input(ModelConfig::opt_13b(), 2.0);
        let mut inp1 = inp20.clone();
        inp1.max_candi = 1;
        let h20 = plan(&inp20, SchemeSpace::Hybrid).unwrap().est_h_rps;
        let h1 = plan(&inp1, SchemeSpace::Hybrid)
            .map(|o| o.est_h_rps)
            .unwrap_or(0.0);
        assert!(h20 >= h1 * 0.999, "h20 {h20} < h1 {h1}");
    }
}
