//! # hs-des — deterministic discrete-event simulation engine
//!
//! The HeroServe reproduction runs every experiment on a software simulation
//! of the paper's testbed (GPU servers, NVLink, Ethernet, programmable
//! switches). All simulators in the workspace — the flow-level network
//! simulator (`hs-simnet`), the in-network-aggregation switch model
//! (`hs-switch`) and the serving-cluster simulator (`hs-cluster`) — are
//! driven by the primitives in this crate:
//!
//! * [`SimTime`] / [`SimSpan`] — integer-nanosecond instants and durations.
//!   Integer time makes every run bit-for-bit reproducible; there is no
//!   floating-point drift in event ordering.
//! * [`EventQueue`] — a stable priority queue of `(time, event)` pairs.
//!   Events scheduled for the same instant pop in FIFO order, which removes
//!   the usual source of nondeterminism in heap-based simulators.
//! * [`Simulation`] — a minimal run loop over an [`EventHandler`].
//! * [`rng`] — seed-splittable small RNGs so that independent model
//!   components draw from independent, reproducible streams.
//!
//! The engine is deliberately "pull"-friendly: components such as the
//! network simulator expose `next_event_time()` / `advance_to(t)` so a
//! parent simulation can interleave several event sources without shared
//! closures or trait objects crossing crate boundaries.

pub mod queue;
pub mod rng;
pub mod sim;
pub mod time;

pub use queue::EventQueue;
pub use rng::{stream_rng, SeedSplitter};
pub use sim::{ClockError, EventHandler, Simulation};
pub use time::{SimSpan, SimTime};
