//! Integer-nanosecond simulation time.
//!
//! All simulators in the workspace share a single clock type so that events
//! produced by different components (network flows, batch iterations, policy
//! ticks) are totally ordered without floating-point comparisons.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A non-negative duration on the simulation clock, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimSpan(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; useful as an "infinite" horizon sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    ///
    /// Negative and non-finite inputs clamp to zero: model code computes
    /// latencies from fitted constants and tiny negative values can appear
    /// from extrapolation; clamping keeps the clock monotone.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime((s * 1e9).round().min(u64::MAX as f64) as u64)
    }

    /// Raw nanoseconds since the epoch.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds since the epoch as a float (for reporting only).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Microseconds since the epoch as a float (for reporting only).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Scale this instant by a non-negative float factor, staying in the
    /// integer-nanosecond domain and rounding exactly once.
    ///
    /// This is the sanctioned way to scale a timestamp (e.g. trace time
    /// dilation): round-tripping through `as_secs_f64`/`from_secs_f64`
    /// rounds twice and loses low bits on large clocks, which breaks
    /// bit-identical replays. Negative and non-finite factors clamp to
    /// zero, matching `from_secs_f64`.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> SimTime {
        if !factor.is_finite() || factor <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime((self.0 as f64 * factor).round().min(u64::MAX as f64) as u64)
    }

    /// Saturating difference `self - earlier`.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimSpan {
        SimSpan(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference; `None` if `earlier` is after `self`.
    #[inline]
    pub fn checked_since(self, earlier: SimTime) -> Option<SimSpan> {
        self.0.checked_sub(earlier.0).map(SimSpan)
    }
}

impl SimSpan {
    /// The zero-length span.
    pub const ZERO: SimSpan = SimSpan(0);
    /// The maximum representable span.
    pub const MAX: SimSpan = SimSpan(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimSpan(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimSpan(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimSpan(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimSpan(s * 1_000_000_000)
    }

    /// Construct from fractional seconds (clamped to `[0, MAX]`).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimSpan::ZERO;
        }
        SimSpan((s * 1e9).round().min(u64::MAX as f64) as u64)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds as a float (for reporting only).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Microseconds as a float (for reporting only).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// True when the span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating addition of two spans.
    #[inline]
    pub fn saturating_add(self, rhs: SimSpan) -> SimSpan {
        SimSpan(self.0.saturating_add(rhs.0))
    }

    /// Multiply the span by an integer factor (saturating).
    #[inline]
    pub fn saturating_mul(self, factor: u64) -> SimSpan {
        SimSpan(self.0.saturating_mul(factor))
    }

    /// Scale the span by a non-negative float factor, staying in the
    /// integer-nanosecond domain and rounding exactly once (see
    /// [`SimTime::mul_f64`]). Negative and non-finite factors clamp to
    /// zero.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> SimSpan {
        if !factor.is_finite() || factor <= 0.0 {
            return SimSpan::ZERO;
        }
        SimSpan((self.0 as f64 * factor).round().min(u64::MAX as f64) as u64)
    }
}

impl Add<SimSpan> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimSpan) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimSpan> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimSpan) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimSpan> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimSpan) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimSpan;
    /// Panics in debug builds if `rhs` is after `self`; saturates in release.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimSpan {
        debug_assert!(rhs.0 <= self.0, "SimTime subtraction went negative");
        SimSpan(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimSpan {
    type Output = SimSpan;
    #[inline]
    fn add(self, rhs: SimSpan) -> SimSpan {
        SimSpan(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimSpan {
    #[inline]
    fn add_assign(&mut self, rhs: SimSpan) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimSpan {
    type Output = SimSpan;
    #[inline]
    fn sub(self, rhs: SimSpan) -> SimSpan {
        debug_assert!(rhs.0 <= self.0, "SimSpan subtraction went negative");
        SimSpan(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimSpan {
    #[inline]
    fn sub_assign(&mut self, rhs: SimSpan) {
        debug_assert!(rhs.0 <= self.0, "SimSpan subtraction went negative");
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimSpan {
    type Output = SimSpan;
    #[inline]
    fn mul(self, rhs: u64) -> SimSpan {
        SimSpan(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimSpan {
    type Output = SimSpan;
    #[inline]
    fn div(self, rhs: u64) -> SimSpan {
        SimSpan(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.6}s", self.as_secs_f64())
        }
    }
}

impl fmt::Display for SimSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Compute the time to serialize `bytes` onto a link of `bits_per_sec`
/// bandwidth, rounded up to the next nanosecond so a transfer never
/// completes "for free".
#[inline]
pub fn transfer_span(bytes: u64, bits_per_sec: f64) -> SimSpan {
    if bytes == 0 {
        return SimSpan::ZERO;
    }
    if bits_per_sec.is_nan() || bits_per_sec <= 0.0 {
        return SimSpan::MAX;
    }
    let secs = (bytes as f64 * 8.0) / bits_per_sec;
    let ns = (secs * 1e9).ceil();
    if ns >= u64::MAX as f64 {
        SimSpan::MAX
    } else {
        SimSpan::from_nanos(ns.max(1.0) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_micros(4).as_nanos(), 4_000);
        assert_eq!(SimSpan::from_secs(1), SimSpan::from_millis(1000));
    }

    #[test]
    fn float_roundtrip() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn mul_f64_rounds_once_in_the_nanos_domain() {
        // 1_000_000_013 × 1.5 = 1_500_000_019.5 exactly (both factors
        // representable); rounding half away from zero gives …020. The
        // f64-seconds round-trip this helper replaces rounds three times
        // and lands on …019 — the 1 ns drift that breaks bit-identity.
        let t = SimTime::from_nanos(1_000_000_013);
        assert_eq!(t.mul_f64(1.5).as_nanos(), 1_500_000_020);
        let via_secs = SimTime::from_secs_f64(t.as_secs_f64() * 1.5);
        assert_eq!(via_secs.as_nanos(), 1_500_000_019);
        let s = SimSpan::from_nanos(1_000_000_013);
        assert_eq!(s.mul_f64(1.5).as_nanos(), 1_500_000_020);
    }

    #[test]
    fn mul_f64_identity_and_clamps() {
        // Below 2^53 the ns count is exactly representable, so scaling
        // by 1.0 is the identity.
        let t = SimTime::from_nanos(8_123_456_789_012_345);
        assert_eq!(t.mul_f64(1.0), t);
        assert_eq!(t.mul_f64(0.0), SimTime::ZERO);
        assert_eq!(t.mul_f64(-2.0), SimTime::ZERO);
        assert_eq!(t.mul_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimSpan::from_secs(4).mul_f64(0.25), SimSpan::from_secs(1));
        assert_eq!(SimSpan::MAX.mul_f64(f64::INFINITY), SimSpan::ZERO);
    }

    #[test]
    fn negative_and_nan_clamp_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimSpan::from_secs_f64(-0.5), SimSpan::ZERO);
        assert_eq!(
            SimSpan::from_secs_f64(f64::INFINITY),
            SimSpan::ZERO.saturating_add(SimSpan::ZERO)
        );
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimSpan::from_millis(500);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        let d = t - SimTime::from_secs(1);
        assert_eq!(d, SimSpan::from_millis(500));
        assert_eq!(SimSpan::from_secs(4) / 2, SimSpan::from_secs(2));
        assert_eq!(SimSpan::from_secs(2) * 3, SimSpan::from_secs(6));
    }

    #[test]
    fn saturating_since() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(b.saturating_since(a), SimSpan::from_secs(1));
        assert_eq!(a.saturating_since(b), SimSpan::ZERO);
        assert_eq!(a.checked_since(b), None);
    }

    #[test]
    fn transfer_span_basics() {
        // 1 MB over 100 Gbps = 8e6 / 1e11 = 80 us.
        let d = transfer_span(1_000_000, 100e9);
        assert_eq!(d, SimSpan::from_micros(80));
        assert_eq!(transfer_span(0, 100e9), SimSpan::ZERO);
        assert_eq!(transfer_span(1, 0.0), SimSpan::MAX);
        // Rounds up: a single byte over 100 Gbps is sub-nanosecond but not free.
        assert!(transfer_span(1, 100e9) >= SimSpan::from_nanos(1));
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![
            SimTime::from_secs(3),
            SimTime::ZERO,
            SimTime::from_millis(10),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                SimTime::ZERO,
                SimTime::from_millis(10),
                SimTime::from_secs(3)
            ]
        );
    }
}
