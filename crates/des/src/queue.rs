//! Stable event priority queue.
//!
//! A binary heap keyed by `(SimTime, sequence)` where `sequence` is a
//! monotonically increasing insertion counter. Two events scheduled for the
//! same instant therefore pop in the order they were pushed, which makes
//! simulation traces independent of heap internals — a prerequisite for the
//! bit-for-bit reproducibility promised in DESIGN.md.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first, and
        // among equal times, lowest sequence number first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of simulation events with FIFO tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            popped: 0,
        }
    }

    /// Create an empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            popped: 0,
        }
    }

    /// Schedule `event` to fire at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Remove and return the earliest event, with its firing time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| {
            self.popped += 1;
            (s.time, s.event)
        })
    }

    /// The firing time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events that have been popped so far (a cheap
    /// progress/diagnostics counter).
    pub fn popped_count(&self) -> u64 {
        self.popped
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), "c");
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(3), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10), 10);
        q.push(SimTime::from_secs(5), 5);
        assert_eq!(q.pop().unwrap().1, 5);
        q.push(SimTime::from_secs(7), 7);
        q.push(SimTime::from_secs(6), 6);
        assert_eq!(q.pop().unwrap().1, 6);
        assert_eq!(q.pop().unwrap().1, 7);
        assert_eq!(q.pop().unwrap().1, 10);
    }

    #[test]
    fn peek_and_counters() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(1), ());
        q.push(SimTime::from_secs(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        q.pop();
        assert_eq!(q.popped_count(), 1);
        q.clear();
        assert!(q.is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Popped times are non-decreasing, and events with equal times come
        /// out in insertion order, for arbitrary push sequences.
        #[test]
        fn pop_order_is_stable(times in proptest::collection::vec(0u64..50, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_nanos(t), i);
            }
            let mut last: Option<(SimTime, usize)> = None;
            while let Some((t, idx)) = q.pop() {
                if let Some((lt, lidx)) = last {
                    prop_assert!(t >= lt);
                    if t == lt {
                        prop_assert!(idx > lidx, "FIFO violated at equal timestamps");
                    }
                }
                last = Some((t, idx));
            }
        }
    }
}
