//! Seed-splittable random number streams.
//!
//! Every stochastic component of the simulation (arrival process, request
//! length sampling, planner perturbation, background traffic) draws from its
//! own named stream derived from a single experiment seed. Adding a new
//! consumer of randomness therefore never perturbs the draws seen by
//! existing components — experiment rows stay reproducible across code
//! changes that introduce new streams.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Derives independent [`SmallRng`] streams from one master seed.
#[derive(Clone, Copy, Debug)]
pub struct SeedSplitter {
    master: u64,
}

impl SeedSplitter {
    /// Create a splitter from the experiment's master seed.
    pub fn new(master: u64) -> Self {
        SeedSplitter { master }
    }

    /// The master seed this splitter was built from.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// An RNG for the stream named `label` (e.g. `"arrivals"`).
    pub fn stream(&self, label: &str) -> SmallRng {
        SmallRng::seed_from_u64(mix(self.master, hash_label(label)))
    }

    /// An RNG for the `index`-th member of a stream family (e.g. one stream
    /// per GPU or per request).
    pub fn indexed_stream(&self, label: &str, index: u64) -> SmallRng {
        SmallRng::seed_from_u64(mix(mix(self.master, hash_label(label)), index))
    }

    /// A derived splitter, for handing a whole sub-tree of streams to a
    /// component.
    pub fn child(&self, label: &str) -> SeedSplitter {
        SeedSplitter {
            master: mix(self.master, hash_label(label)),
        }
    }
}

/// Convenience: a standalone stream RNG from `(seed, label)`.
pub fn stream_rng(seed: u64, label: &str) -> SmallRng {
    SeedSplitter::new(seed).stream(label)
}

/// FNV-1a over the label bytes — stable across platforms and Rust versions
/// (unlike `DefaultHasher`).
fn hash_label(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in label.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer — decorrelates nearby seeds.
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = stream_rng(42, "arrivals");
        let mut b = stream_rng(42, "arrivals");
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_labels_differ() {
        let mut a = stream_rng(42, "arrivals");
        let mut b = stream_rng(42, "lengths");
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = stream_rng(1, "arrivals");
        let mut b = stream_rng(2, "arrivals");
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn indexed_streams_are_independent() {
        let s = SeedSplitter::new(7);
        let mut r0 = s.indexed_stream("gpu", 0);
        let mut r1 = s.indexed_stream("gpu", 1);
        let v0: Vec<u64> = (0..8).map(|_| r0.gen()).collect();
        let v1: Vec<u64> = (0..8).map(|_| r1.gen()).collect();
        assert_ne!(v0, v1);
    }

    #[test]
    fn child_splitters_are_consistent() {
        let s = SeedSplitter::new(7);
        let mut via_child = s.child("cluster").stream("arrivals");
        let mut again = s.child("cluster").stream("arrivals");
        for _ in 0..8 {
            assert_eq!(via_child.gen::<u64>(), again.gen::<u64>());
        }
    }

    #[test]
    fn label_hash_is_stable() {
        // Pin the FNV output so accidental algorithm changes are caught:
        // a changed hash silently reshuffles every experiment's randomness.
        assert_eq!(super::hash_label(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(super::hash_label("a"), 0xaf63_dc4c_8601_ec8c);
    }
}
