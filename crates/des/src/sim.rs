//! A minimal event-loop runner.
//!
//! Larger simulators in this workspace (notably `hs-cluster`) own their
//! event loops directly because they interleave several event sources; this
//! runner exists for self-contained models and for tests, and demonstrates
//! the canonical handler pattern.

use std::fmt;

use crate::queue::EventQueue;
use crate::time::SimTime;

/// A model that reacts to events and may schedule more.
pub trait EventHandler {
    /// The event payload type.
    type Event;

    /// Handle `event` firing at `now`; push follow-up events onto `queue`.
    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>);
}

/// An attempt to schedule an event before the current clock.
///
/// Release builds used to accept these silently (the guard was a
/// `debug_assert!`), which let a buggy model time-travel: the event would
/// fire "now" but with a stale timestamp, corrupting every latency derived
/// from it. External scheduling now surfaces the error; events a *handler*
/// pushes into the past are clamped to the clock and counted (see
/// [`Simulation::clock_violations`]) so a long run degrades loudly instead
/// of deadlocking mid-simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClockError {
    /// The clock at the time of the attempt.
    pub now: SimTime,
    /// The (past) time the event asked for.
    pub event_time: SimTime,
}

impl fmt::Display for ClockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "event scheduled into the past: t={} < now={}",
            self.event_time, self.now
        )
    }
}

impl std::error::Error for ClockError {}

/// Drives an [`EventHandler`] until the queue drains or a horizon is hit.
pub struct Simulation<M: EventHandler> {
    /// The model under simulation.
    pub model: M,
    /// Pending events.
    pub queue: EventQueue<M::Event>,
    now: SimTime,
    clock_violations: u64,
}

impl<M: EventHandler> Simulation<M> {
    /// Wrap `model` with an empty event queue at time zero.
    pub fn new(model: M) -> Self {
        Simulation {
            model,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            clock_violations: 0,
        }
    }

    /// The current simulation clock.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// How many events a handler pushed into the past; each was clamped to
    /// fire at the then-current clock instead. Zero in a healthy model.
    pub fn clock_violations(&self) -> u64 {
        self.clock_violations
    }

    /// Schedule an initial/external event. Fails if `time` is already in
    /// the past — the caller chose the timestamp, so it can pick a valid
    /// one; silently accepting it would fire the event with a stale clock.
    pub fn schedule(&mut self, time: SimTime, event: M::Event) -> Result<(), ClockError> {
        if time < self.now {
            return Err(ClockError {
                now: self.now,
                event_time: time,
            });
        }
        self.queue.push(time, event);
        Ok(())
    }

    /// Run until the queue is empty. Returns the final clock value.
    pub fn run(&mut self) -> SimTime {
        self.run_until(SimTime::MAX)
    }

    /// Run until the queue is empty or the next event would fire after
    /// `horizon`. Events at exactly `horizon` are processed. Returns the
    /// clock, which is `min(last event time, horizon)` when the horizon cut
    /// the run short.
    ///
    /// Queue entries behind the clock (a handler pushed into the past) are
    /// clamped to fire at the current clock and counted in
    /// [`clock_violations`](Self::clock_violations) rather than rewinding
    /// time.
    pub fn run_until(&mut self, horizon: SimTime) -> SimTime {
        while let Some(t) = self.queue.peek_time() {
            if t > horizon {
                self.now = horizon;
                return self.now;
            }
            let (t, ev) = self.queue.pop().expect("peeked event vanished");
            if t < self.now {
                self.clock_violations += 1;
            } else {
                self.now = t;
            }
            self.model.handle(self.now, ev, &mut self.queue);
        }
        self.now
    }

    /// Process exactly one event, if any. Returns the time it fired at
    /// (clamped to the clock if it was scheduled into the past).
    pub fn step(&mut self) -> Option<SimTime> {
        let (t, ev) = self.queue.pop()?;
        if t < self.now {
            self.clock_violations += 1;
        } else {
            self.now = t;
        }
        self.model.handle(self.now, ev, &mut self.queue);
        Some(self.now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimSpan;

    /// A counter that reschedules itself `remaining` times.
    struct Ticker {
        ticks: Vec<SimTime>,
        remaining: u32,
        period: SimSpan,
    }

    impl EventHandler for Ticker {
        type Event = ();

        fn handle(&mut self, now: SimTime, _: (), queue: &mut EventQueue<()>) {
            self.ticks.push(now);
            if self.remaining > 0 {
                self.remaining -= 1;
                queue.push(now + self.period, ());
            }
        }
    }

    #[test]
    fn periodic_self_scheduling() {
        let mut sim = Simulation::new(Ticker {
            ticks: vec![],
            remaining: 4,
            period: SimSpan::from_secs(1),
        });
        sim.schedule(SimTime::ZERO, ()).unwrap();
        let end = sim.run();
        assert_eq!(end, SimTime::from_secs(4));
        assert_eq!(sim.model.ticks.len(), 5);
        assert_eq!(sim.model.ticks[3], SimTime::from_secs(3));
        assert_eq!(sim.clock_violations(), 0);
    }

    #[test]
    fn horizon_stops_run() {
        let mut sim = Simulation::new(Ticker {
            ticks: vec![],
            remaining: 100,
            period: SimSpan::from_secs(1),
        });
        sim.schedule(SimTime::ZERO, ()).unwrap();
        let end = sim.run_until(SimTime::from_secs(10));
        // Events at t=0..=10 fire (11 ticks); the t=11 event stays queued.
        assert_eq!(sim.model.ticks.len(), 11);
        assert_eq!(end, SimTime::from_secs(10));
        assert_eq!(sim.queue.len(), 1);
    }

    #[test]
    fn step_processes_one_event() {
        let mut sim = Simulation::new(Ticker {
            ticks: vec![],
            remaining: 2,
            period: SimSpan::from_millis(10),
        });
        sim.schedule(SimTime::from_millis(1), ()).unwrap();
        assert_eq!(sim.step(), Some(SimTime::from_millis(1)));
        assert_eq!(sim.model.ticks.len(), 1);
        assert_eq!(sim.step(), Some(SimTime::from_millis(11)));
        assert_eq!(sim.step(), Some(SimTime::from_millis(21)));
        assert_eq!(sim.step(), None);
    }

    #[test]
    fn scheduling_into_the_past_is_an_error() {
        let mut sim = Simulation::new(Ticker {
            ticks: vec![],
            remaining: 0,
            period: SimSpan::from_secs(1),
        });
        sim.schedule(SimTime::from_secs(5), ()).unwrap();
        sim.run();
        assert_eq!(sim.now(), SimTime::from_secs(5));
        let err = sim.schedule(SimTime::from_secs(3), ()).unwrap_err();
        assert_eq!(err.now, SimTime::from_secs(5));
        assert_eq!(err.event_time, SimTime::from_secs(3));
        assert!(err.to_string().contains("into the past"));
        // Scheduling exactly at the clock is fine.
        sim.schedule(SimTime::from_secs(5), ()).unwrap();
    }

    /// A handler that misbehaves: pushes one follow-up event *behind* the
    /// clock. The runner must clamp it, not rewind.
    struct TimeTraveler {
        ticks: Vec<SimTime>,
        pushed_bad: bool,
    }

    impl EventHandler for TimeTraveler {
        type Event = ();

        fn handle(&mut self, now: SimTime, _: (), queue: &mut EventQueue<()>) {
            self.ticks.push(now);
            if !self.pushed_bad {
                self.pushed_bad = true;
                queue.push(SimTime::ZERO, ()); // into the past
                queue.push(now + SimSpan::from_secs(1), ());
            }
        }
    }

    #[test]
    fn run_until_clamps_past_events_and_counts_violations() {
        let mut sim = Simulation::new(TimeTraveler {
            ticks: vec![],
            pushed_bad: false,
        });
        sim.schedule(SimTime::from_secs(10), ()).unwrap();
        let end = sim.run();
        // The t=0 push fires clamped at t=10; the clock never goes back.
        assert_eq!(
            sim.model.ticks,
            vec![
                SimTime::from_secs(10),
                SimTime::from_secs(10),
                SimTime::from_secs(11),
            ]
        );
        assert_eq!(end, SimTime::from_secs(11));
        assert_eq!(sim.clock_violations(), 1);
    }

    #[test]
    fn step_clamps_past_events_and_counts_violations() {
        let mut sim = Simulation::new(TimeTraveler {
            ticks: vec![],
            pushed_bad: false,
        });
        sim.schedule(SimTime::from_secs(10), ()).unwrap();
        assert_eq!(sim.step(), Some(SimTime::from_secs(10)));
        // Next queued event is the bad t=0 push; it fires at the clock.
        assert_eq!(sim.step(), Some(SimTime::from_secs(10)));
        assert_eq!(sim.clock_violations(), 1);
        assert_eq!(sim.step(), Some(SimTime::from_secs(11)));
    }
}
