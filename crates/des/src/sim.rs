//! A minimal event-loop runner.
//!
//! Larger simulators in this workspace (notably `hs-cluster`) own their
//! event loops directly because they interleave several event sources; this
//! runner exists for self-contained models and for tests, and demonstrates
//! the canonical handler pattern.

use crate::queue::EventQueue;
use crate::time::SimTime;

/// A model that reacts to events and may schedule more.
pub trait EventHandler {
    /// The event payload type.
    type Event;

    /// Handle `event` firing at `now`; push follow-up events onto `queue`.
    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>);
}

/// Drives an [`EventHandler`] until the queue drains or a horizon is hit.
pub struct Simulation<M: EventHandler> {
    /// The model under simulation.
    pub model: M,
    /// Pending events.
    pub queue: EventQueue<M::Event>,
    now: SimTime,
}

impl<M: EventHandler> Simulation<M> {
    /// Wrap `model` with an empty event queue at time zero.
    pub fn new(model: M) -> Self {
        Simulation {
            model,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
        }
    }

    /// The current simulation clock.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule an initial/external event.
    pub fn schedule(&mut self, time: SimTime, event: M::Event) {
        debug_assert!(time >= self.now, "scheduling into the past");
        self.queue.push(time, event);
    }

    /// Run until the queue is empty. Returns the final clock value.
    pub fn run(&mut self) -> SimTime {
        self.run_until(SimTime::MAX)
    }

    /// Run until the queue is empty or the next event would fire after
    /// `horizon`. Events at exactly `horizon` are processed. Returns the
    /// clock, which is `min(last event time, horizon)` when the horizon cut
    /// the run short.
    pub fn run_until(&mut self, horizon: SimTime) -> SimTime {
        while let Some(t) = self.queue.peek_time() {
            if t > horizon {
                self.now = horizon;
                return self.now;
            }
            let (t, ev) = self.queue.pop().expect("peeked event vanished");
            debug_assert!(t >= self.now, "event queue went backwards");
            self.now = t;
            self.model.handle(t, ev, &mut self.queue);
        }
        self.now
    }

    /// Process exactly one event, if any. Returns its firing time.
    pub fn step(&mut self) -> Option<SimTime> {
        let (t, ev) = self.queue.pop()?;
        debug_assert!(t >= self.now);
        self.now = t;
        self.model.handle(t, ev, &mut self.queue);
        Some(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimSpan;

    /// A counter that reschedules itself `remaining` times.
    struct Ticker {
        ticks: Vec<SimTime>,
        remaining: u32,
        period: SimSpan,
    }

    impl EventHandler for Ticker {
        type Event = ();

        fn handle(&mut self, now: SimTime, _: (), queue: &mut EventQueue<()>) {
            self.ticks.push(now);
            if self.remaining > 0 {
                self.remaining -= 1;
                queue.push(now + self.period, ());
            }
        }
    }

    #[test]
    fn periodic_self_scheduling() {
        let mut sim = Simulation::new(Ticker {
            ticks: vec![],
            remaining: 4,
            period: SimSpan::from_secs(1),
        });
        sim.schedule(SimTime::ZERO, ());
        let end = sim.run();
        assert_eq!(end, SimTime::from_secs(4));
        assert_eq!(sim.model.ticks.len(), 5);
        assert_eq!(sim.model.ticks[3], SimTime::from_secs(3));
    }

    #[test]
    fn horizon_stops_run() {
        let mut sim = Simulation::new(Ticker {
            ticks: vec![],
            remaining: 100,
            period: SimSpan::from_secs(1),
        });
        sim.schedule(SimTime::ZERO, ());
        let end = sim.run_until(SimTime::from_secs(10));
        // Events at t=0..=10 fire (11 ticks); the t=11 event stays queued.
        assert_eq!(sim.model.ticks.len(), 11);
        assert_eq!(end, SimTime::from_secs(10));
        assert_eq!(sim.queue.len(), 1);
    }

    #[test]
    fn step_processes_one_event() {
        let mut sim = Simulation::new(Ticker {
            ticks: vec![],
            remaining: 2,
            period: SimSpan::from_millis(10),
        });
        sim.schedule(SimTime::from_millis(1), ());
        assert_eq!(sim.step(), Some(SimTime::from_millis(1)));
        assert_eq!(sim.model.ticks.len(), 1);
        assert_eq!(sim.step(), Some(SimTime::from_millis(11)));
        assert_eq!(sim.step(), Some(SimTime::from_millis(21)));
        assert_eq!(sim.step(), None);
    }
}
