//! # hs-baselines — the paper's comparator systems
//!
//! §V evaluates HeroServe against three baselines, all running on the
//! *same* prefill/decode-disaggregated serving stack with continuous
//! batching — only placement planning and the communication path differ:
//!
//! * **DistServe** — plain ring all-reduce over Ethernet, no INA. Its
//!   planner is the same search restricted to [`SchemeSpace::RingOnly`].
//! * **DS-SwitchML** — DistServe + SwitchML synchronous INA: every
//!   tensor group aggregates at its planner-assigned switch; when switch
//!   aggregation capacity is exhausted the collective *waits* (lock-step
//!   semantics).
//! * **DS-ATP** — DistServe + ATP asynchronous best-effort INA: same
//!   switch assignment, but on exhaustion the collective *falls back* to
//!   end-host ring aggregation.
//!
//! [`BaselineKind::deploy`] builds a ready-to-run deployment (plan +
//! strategy) for any of the four systems, so experiment harnesses sweep
//! `[DistServe, DsAtp, DsSwitchml, HeroServe]` uniformly.

use heroserve::planner::{plan, PlannerError, PlannerOutput, SchemeSpace};
use heroserve::spec::PlannerInput;
use heroserve::system::{default_coefficients, expected_batch, HeroServe};
use hs_cluster::batching::BatchPolicy;
use hs_cluster::{BusyPolicy, ClusterConfig, ClusterSim, CommStrategy, SimReport, StaticStrategy};
use hs_collective::Scheme;
use hs_des::{SeedSplitter, SimSpan, SimTime};
use hs_model::ModelConfig;
use hs_topology::builders::BuiltTopology;
use hs_topology::{AllPairs, LinkWeight, NodeId};
use hs_workload::{FaultPlan, Poisson, Trace, WorkloadSpec};
use rustc_hash::FxHashMap;

/// Which system to deploy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BaselineKind {
    /// DistServe: ring only.
    DistServe,
    /// DistServe + ATP asynchronous INA.
    DsAtp,
    /// DistServe + SwitchML synchronous INA.
    DsSwitchml,
    /// HeroServe (for uniform sweeps).
    HeroServe,
}

impl BaselineKind {
    /// All four systems in the paper's reporting order.
    pub fn all() -> [BaselineKind; 4] {
        [
            BaselineKind::DistServe,
            BaselineKind::DsAtp,
            BaselineKind::DsSwitchml,
            BaselineKind::HeroServe,
        ]
    }

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            BaselineKind::DistServe => "DistServe",
            BaselineKind::DsAtp => "DS-ATP",
            BaselineKind::DsSwitchml => "DS-SwitchML",
            BaselineKind::HeroServe => "HeroServe",
        }
    }

    /// The planner scheme space each system searches.
    pub fn scheme_space(&self) -> SchemeSpace {
        match self {
            BaselineKind::DistServe => SchemeSpace::RingOnly,
            BaselineKind::DsAtp | BaselineKind::DsSwitchml => SchemeSpace::InaOnly,
            BaselineKind::HeroServe => SchemeSpace::Hybrid,
        }
    }
}

/// A deployed system: plan + cluster config + strategy factory.
pub struct Deployment {
    /// Which system.
    pub kind: BaselineKind,
    /// The fabric.
    pub topology: BuiltTopology,
    /// Planner decision.
    pub output: PlannerOutput,
    /// Workload (SLAs).
    pub workload: WorkloadSpec,
    /// Model.
    pub model: ModelConfig,
    coef: hs_model::CostCoefficients,
    /// Per-switch concurrent INA-job capacity (switch SRAM pressure knob).
    pub ina_capacity_per_switch: usize,
    /// Bursty background cross traffic `(flows/s, bytes)`.
    pub background: Option<(f64, u64)>,
    /// Scheduled fabric faults injected during serving.
    pub faults: FaultPlan,
    /// HeroServe's full system object when `kind == HeroServe`.
    hero: Option<HeroServe>,
}

impl BaselineKind {
    /// Plan a deployment of `model` on `topo` for `workload` at `rate`.
    pub fn deploy(
        self,
        topo: &BuiltTopology,
        model: &ModelConfig,
        workload: &WorkloadSpec,
        rate: f64,
    ) -> Result<Deployment, PlannerError> {
        let coef = default_coefficients(model);
        let input = PlannerInput::basic(
            &topo.graph,
            model.clone(),
            coef,
            expected_batch(workload, 8),
            rate,
            workload.ttft_sla_s,
            workload.tpot_sla_s,
        );
        self.deploy_with_input(topo, &input, workload)
    }

    /// Plan with an explicit planner input.
    pub fn deploy_with_input(
        self,
        topo: &BuiltTopology,
        input: &PlannerInput,
        workload: &WorkloadSpec,
    ) -> Result<Deployment, PlannerError> {
        let (output, hero) = if self == BaselineKind::HeroServe {
            let h = HeroServe::plan_with_input(topo, input, workload)?;
            (h.output.clone(), Some(h))
        } else {
            (plan(input, self.scheme_space())?, None)
        };
        Ok(Deployment {
            kind: self,
            topology: topo.clone(),
            output,
            workload: workload.clone(),
            model: input.model.clone(),
            coef: input.coef,
            ina_capacity_per_switch: 8,
            background: None,
            faults: FaultPlan::none(),
            hero,
        })
    }
}

impl Deployment {
    /// Inject a fault schedule into subsequent `serve` calls (builder
    /// style; the same trace can then be replayed against every system).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Override the online scheduler's tunables (e.g. the KV decode-
    /// selection policy for A/B sweeps). No-op for static baselines,
    /// which have no online scheduler.
    pub fn with_scheduler_params(mut self, params: heroserve::scheduler::SchedulerParams) -> Self {
        if let Some(h) = &mut self.hero {
            h.sched_params = params;
        }
        self
    }

    /// All-pairs structures over GPUs + INA switches.
    pub fn all_pairs(&self) -> AllPairs {
        let mut nodes: Vec<NodeId> = self.topology.all_gpus();
        nodes.extend(self.topology.graph.ina_switches());
        nodes.sort_unstable();
        nodes.dedup();
        AllPairs::compute(&self.topology.graph, &nodes, LinkWeight::Latency, None)
    }

    /// The communication strategy this system runs online.
    pub fn strategy(&self) -> Box<dyn CommStrategy> {
        match self.kind {
            BaselineKind::HeroServe => Box::new(
                self.hero
                    .as_ref()
                    .expect("hero deployment")
                    .online_scheduler(),
            ),
            BaselineKind::DistServe => Box::new(StaticStrategy::uniform(
                "DistServe",
                Scheme::Ring,
                BusyPolicy::FallbackRing,
            )),
            BaselineKind::DsAtp | BaselineKind::DsSwitchml => {
                // Static per-group INA assignment from the planner (the
                // integration point of ATP/SwitchML into DistServe): map
                // each group's GPU set to its planned switch.
                let mut assignment: FxHashMap<Vec<NodeId>, Scheme> = FxHashMap::default();
                for gs in self
                    .output
                    .prefill
                    .group_schemes
                    .iter()
                    .chain(&self.output.decode.group_schemes)
                {
                    let mut key = gs.group.clone();
                    key.sort_unstable();
                    assignment.insert(key, gs.scheme);
                }
                let busy = if self.kind == BaselineKind::DsSwitchml {
                    BusyPolicy::Wait
                } else {
                    BusyPolicy::FallbackRing
                };
                let name = self.kind.name();
                Box::new(StaticStrategy::per_group(
                    name,
                    move |_, group| {
                        let mut key = group.to_vec();
                        key.sort_unstable();
                        assignment.get(&key).copied().unwrap_or(Scheme::Ring)
                    },
                    busy,
                ))
            }
        }
    }

    /// Cluster configuration induced by the plan.
    pub fn cluster_config(&self) -> ClusterConfig {
        if let Some(h) = &self.hero {
            let mut cfg = h.cluster_config();
            cfg.ina_capacity_per_switch = self.ina_capacity_per_switch;
            cfg.background = self.background;
            cfg.faults = self.faults.clone();
            return cfg;
        }
        let gpu_memory_bytes = self
            .topology
            .all_gpus()
            .iter()
            .filter_map(|&g| self.topology.graph.gpu_spec(g).map(|s| s.memory_bytes))
            .min()
            .unwrap_or(40 * (1 << 30));
        ClusterConfig {
            model: self.model.clone(),
            coef: self.coef,
            ttft_sla_s: self.workload.ttft_sla_s,
            tpot_sla_s: self.workload.tpot_sla_s,
            prefill: self.output.prefill.instances.clone(),
            decode: self.output.decode.instances.clone(),
            batch: BatchPolicy::default(),
            gpu_memory_bytes,
            monitor_period: SimSpan::from_millis(50),
            ina_capacity_per_switch: self.ina_capacity_per_switch,
            background: self.background,
            faults: self.faults.clone(),
        }
    }

    /// Serve a Poisson trace at `rate` for `duration` (+drain margin).
    pub fn serve_trace(&self, seed: u64, rate: f64, duration: SimTime) -> SimReport {
        let mut rng = SeedSplitter::new(seed).stream("trace");
        let mut arr = Poisson::new(rate);
        let trace = Trace::generate(&self.workload, &mut arr, &mut rng, duration);
        self.serve(&trace, duration)
    }

    /// Serve a Poisson trace at `rate` with observability attached.
    pub fn serve_trace_observed(
        &self,
        seed: u64,
        rate: f64,
        duration: SimTime,
        tracer: &hs_obs::Tracer,
        metrics: &hs_obs::MetricsRegistry,
    ) -> SimReport {
        let mut rng = SeedSplitter::new(seed).stream("trace");
        let mut arr = Poisson::new(rate);
        let trace = Trace::generate(&self.workload, &mut arr, &mut rng, duration);
        self.serve_observed(&trace, duration, tracer, metrics)
    }

    /// Serve an explicit trace.
    pub fn serve(&self, trace: &Trace, horizon: SimTime) -> SimReport {
        self.serve_observed(
            trace,
            horizon,
            &hs_obs::Tracer::noop(),
            &hs_obs::MetricsRegistry::disabled(),
        )
    }

    /// Serve an explicit trace with observability attached: the tracer
    /// and registry record the run (request lifecycle, collectives,
    /// faults, link utilization) without changing its outcome.
    pub fn serve_observed(
        &self,
        trace: &Trace,
        horizon: SimTime,
        tracer: &hs_obs::Tracer,
        metrics: &hs_obs::MetricsRegistry,
    ) -> SimReport {
        let margin = horizon
            .saturating_since(SimTime::ZERO)
            .mul_f64(0.25)
            .min(SimSpan::from_secs(60));
        let mut sim = ClusterSim::new(
            &self.topology.graph,
            self.all_pairs(),
            self.cluster_config(),
            trace,
            self.strategy(),
        );
        sim.set_obs(tracer, metrics);
        sim.run(horizon + margin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs_topology::builders::testbed;

    #[test]
    fn all_four_systems_deploy_and_serve() {
        let topo = testbed();
        let workload = hs_workload::sharegpt_like();
        let model = ModelConfig::opt_66b();
        for kind in BaselineKind::all() {
            let d = kind
                .deploy(&topo, &model, &workload, 0.3)
                .unwrap_or_else(|e| panic!("{} failed to plan: {e}", kind.name()));
            let report = d.serve_trace(3, 0.3, SimTime::from_secs(8));
            assert!(report.arrived > 0, "{}: no arrivals", kind.name());
            assert!(report.completed > 0, "{}: nothing completed", kind.name());
            assert_eq!(report.strategy, kind.name());
        }
    }

    #[test]
    fn observed_serve_matches_plain_serve() {
        let topo = testbed();
        let workload = hs_workload::sharegpt_like();
        let d = BaselineKind::DistServe
            .deploy(&topo, &ModelConfig::opt_66b(), &workload, 0.3)
            .unwrap();
        let mut rng = SeedSplitter::new(5).stream("trace");
        let mut arr = Poisson::new(0.5);
        let trace = Trace::generate(&workload, &mut arr, &mut rng, SimTime::from_secs(6));
        let plain = d.serve(&trace, SimTime::from_secs(6));
        let tracer = hs_obs::Tracer::recording();
        let metrics = hs_obs::MetricsRegistry::recording();
        let observed = d.serve_observed(&trace, SimTime::from_secs(6), &tracer, &metrics);
        assert_eq!(plain.completed, observed.completed);
        assert_eq!(plain.mean_ttft_s, observed.mean_ttft_s);
        assert_eq!(plain.eth_bytes, observed.eth_bytes);
        assert!(!tracer.is_empty(), "observed run recorded no events");
        assert_eq!(
            metrics.counter_value("requests_arrived"),
            Some(observed.arrived as u64)
        );
    }

    #[test]
    fn distserve_never_uses_ina() {
        let topo = testbed();
        let workload = hs_workload::sharegpt_like();
        let d = BaselineKind::DistServe
            .deploy(&topo, &ModelConfig::opt_66b(), &workload, 0.3)
            .unwrap();
        let report = d.serve_trace(4, 0.3, SimTime::from_secs(8));
        assert_eq!(report.ina_ops, 0);
        assert!(report.ring_ops > 0);
    }

    #[test]
    fn switchml_and_atp_use_ina() {
        let topo = testbed();
        let workload = hs_workload::sharegpt_like();
        let model = ModelConfig::opt_66b();
        for kind in [BaselineKind::DsSwitchml, BaselineKind::DsAtp] {
            // Interleaved allocation forces cross-server tensor groups,
            // the regime where INA is actually installed.
            let input = heroserve::spec::PlannerInput::interleaved(
                &topo.graph,
                model.clone(),
                heroserve::system::default_coefficients(&model),
                heroserve::system::expected_batch(&workload, 8),
                0.3,
                workload.ttft_sla_s,
                workload.tpot_sla_s,
            );
            let d = kind.deploy_with_input(&topo, &input, &workload).unwrap();
            // Planner in InaOnly space must assign INA schemes to
            // multi-GPU groups.
            let has_ina = d
                .output
                .prefill
                .group_schemes
                .iter()
                .chain(&d.output.decode.group_schemes)
                .any(|g| matches!(g.scheme, Scheme::Ina { .. }));
            assert!(has_ina, "{} plan has no INA groups", kind.name());
            let report = d.serve_trace(4, 0.3, SimTime::from_secs(8));
            assert!(report.ina_ops > 0, "{}: no INA ops", kind.name());
        }
    }

    #[test]
    fn scheme_spaces_match_paper_roles() {
        assert_eq!(
            BaselineKind::DistServe.scheme_space(),
            SchemeSpace::RingOnly
        );
        assert_eq!(BaselineKind::DsAtp.scheme_space(), SchemeSpace::InaOnly);
        assert_eq!(
            BaselineKind::DsSwitchml.scheme_space(),
            SchemeSpace::InaOnly
        );
        assert_eq!(BaselineKind::HeroServe.scheme_space(), SchemeSpace::Hybrid);
    }
}
