//! Data-level collective execution — semantic correctness.
//!
//! The latency models and flow plans say how long an all-reduce takes;
//! this module proves the schemes compute the *same numbers*. Ring
//! all-reduce is executed chunk-by-chunk (reduce-scatter + all-gather,
//! exactly NCCL's dataflow); INA all-reduce pushes real packets through
//! the [`hs_switch`] dataplane, fixed point and all; the hierarchical
//! scheme composes local reduction with either. Tests assert all three
//! agree within fixed-point quantization tolerance.

use hs_switch::{
    AggMode, DataplaneAction, FixPoint, InaDataplane, InaPacket, JobConfig, JobId, WorkerId,
};

/// Reference: element-wise sum of all workers' vectors.
pub fn reference_sum(data: &[Vec<f32>]) -> Vec<f32> {
    assert!(!data.is_empty());
    let n = data[0].len();
    let mut out = vec![0.0f32; n];
    for v in data {
        assert_eq!(v.len(), n, "ragged worker vectors");
        for (o, &x) in out.iter_mut().zip(v) {
            *o += x;
        }
    }
    out
}

/// Ring all-reduce executed as reduce-scatter + all-gather over `P`
/// chunks. Mutates every worker's vector to the full sum and returns the
/// number of point-to-point transfers performed (for invariants:
/// `2·P·(P−1)` chunks move in total).
pub fn ring_allreduce_data(data: &mut [Vec<f32>]) -> usize {
    let p = data.len();
    if p < 2 {
        return 0;
    }
    let n = data[0].len();
    assert!(data.iter().all(|v| v.len() == n));
    // Chunk boundaries: chunk c covers [bounds[c], bounds[c+1]).
    let bounds: Vec<usize> = (0..=p).map(|c| c * n / p).collect();
    let mut transfers = 0;

    // Reduce-scatter: step s, worker i sends chunk (i - s) mod p to
    // worker (i+1) mod p, which accumulates it.
    for s in 0..p - 1 {
        for i in 0..p {
            let src = i;
            let dst = (i + 1) % p;
            let c = (i + p - s) % p;
            let (lo, hi) = (bounds[c], bounds[c + 1]);
            let chunk: Vec<f32> = data[src][lo..hi].to_vec();
            for (d, x) in data[dst][lo..hi].iter_mut().zip(chunk) {
                *d += x;
            }
            transfers += 1;
        }
    }
    // All-gather: worker (c+1) mod p now owns the full sum of chunk c;
    // circulate ownership.
    for s in 0..p - 1 {
        for i in 0..p {
            let src = i;
            let dst = (i + 1) % p;
            let c = (i + p - s + 1) % p; // chunk fully reduced at src
            let (lo, hi) = (bounds[c], bounds[c + 1]);
            let chunk: Vec<f32> = data[src][lo..hi].to_vec();
            data[dst][lo..hi].copy_from_slice(&chunk);
            transfers += 1;
        }
    }
    transfers
}

/// INA all-reduce: chunk every worker's vector into switch-slot-sized
/// packets and stream them through `dp`. Returns the aggregated vector
/// every worker receives (the multicast payloads reassembled).
///
/// # Panics
/// Panics if the dataplane stalls (no progress) — with a window ≥ 1 and
/// in-order packets this cannot happen for an admitted job.
pub fn ina_allreduce_data(dp: &mut InaDataplane, job: JobId, data: &[Vec<f32>]) -> Vec<f32> {
    let p = data.len();
    assert!(p >= 1);
    let n = data[0].len();
    let lanes = dp.lanes();
    let chunks = n.div_ceil(lanes);
    let mut result = vec![0.0f32; n];
    for seq in 0..chunks {
        let lo = seq * lanes;
        let hi = ((seq + 1) * lanes).min(n);
        let mut got = false;
        for (w, v) in data.iter().enumerate() {
            let mut payload = vec![0.0f32; lanes];
            payload[..hi - lo].copy_from_slice(&v[lo..hi]);
            match dp.process(&InaPacket {
                job,
                worker: WorkerId(w as u32),
                seq: seq as u32,
                values: payload,
            }) {
                DataplaneAction::Complete { values, .. } => {
                    result[lo..hi].copy_from_slice(&values[..hi - lo]);
                    got = true;
                }
                DataplaneAction::Accepted => {}
                other => panic!("INA all-reduce stalled: {other:?}"),
            }
        }
        assert!(got, "chunk {seq} never completed");
    }
    result
}

/// Hierarchical all-reduce: sum within local groups, all-reduce the
/// leaders through the switch dataplane, return the broadcast result.
/// `groups` partitions worker indices by server.
pub fn hierarchical_ina_allreduce_data(
    dp: &mut InaDataplane,
    job: JobId,
    data: &[Vec<f32>],
    groups: &[Vec<usize>],
) -> Vec<f32> {
    // Local reduce: leader vector = sum of its group's vectors (NVLink
    // is lossless fp32 here; no fixed point on the local hop).
    let locals: Vec<Vec<f32>> = groups
        .iter()
        .map(|members| {
            let vs: Vec<Vec<f32>> = members.iter().map(|&m| data[m].clone()).collect();
            reference_sum(&vs)
        })
        .collect();
    if locals.len() == 1 {
        return locals.into_iter().next().expect("one group");
    }
    ina_allreduce_data(dp, job, &locals)
}

/// Convenience: a fresh dataplane admitted for `fanin` workers.
pub fn test_dataplane(fanin: u32, lanes: usize, slots: usize) -> (InaDataplane, JobId) {
    let mut dp = InaDataplane::new(slots, lanes);
    let job = JobId(0);
    dp.admit_job(
        job,
        JobConfig {
            fanin,
            window: slots.min(8) as u32,
            fixpoint: FixPoint::default(),
            mode: AggMode::SwitchMlSync,
        },
    )
    .expect("admission");
    (dp, job)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn worker_data(p: usize, n: usize) -> Vec<Vec<f32>> {
        (0..p)
            .map(|w| {
                (0..n)
                    .map(|i| ((w * 31 + i * 7) % 100) as f32 / 10.0 - 5.0)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn ring_equals_reference() {
        for p in [2usize, 3, 4, 7] {
            for n in [1usize, 8, 37, 64] {
                let mut data = worker_data(p, n);
                let expect = reference_sum(&data);
                let transfers = ring_allreduce_data(&mut data);
                assert_eq!(transfers, 2 * p * (p - 1));
                for v in &data {
                    for (a, b) in v.iter().zip(&expect) {
                        assert!((a - b).abs() < 1e-4, "ring p={p} n={n}: {a} vs {b}");
                    }
                }
            }
        }
    }

    #[test]
    fn ina_equals_reference_within_quantum() {
        let p = 4;
        let n = 50;
        let data = worker_data(p, n);
        let expect = reference_sum(&data);
        let (mut dp, job) = test_dataplane(p as u32, 8, 16);
        let got = ina_allreduce_data(&mut dp, job, &data);
        let fp = FixPoint::default();
        for (a, b) in got.iter().zip(&expect) {
            assert!(
                (a - b).abs() <= p as f32 * fp.quantum() + 1e-4,
                "INA: {a} vs {b}"
            );
        }
    }

    #[test]
    fn hierarchical_equals_flat() {
        let p = 6;
        let n = 24;
        let data = worker_data(p, n);
        let expect = reference_sum(&data);
        // Servers: {0,1,2}, {3,4}, {5}.
        let groups = vec![vec![0, 1, 2], vec![3, 4], vec![5]];
        let (mut dp, job) = test_dataplane(3, 8, 16); // fanin = leader count
        let got = hierarchical_ina_allreduce_data(&mut dp, job, &data, &groups);
        let fp = FixPoint::default();
        for (a, b) in got.iter().zip(&expect) {
            assert!((a - b).abs() <= 4.0 * fp.quantum() + 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn single_group_hierarchical_is_local_sum() {
        let data = worker_data(3, 10);
        let expect = reference_sum(&data);
        let (mut dp, job) = test_dataplane(1, 8, 4);
        let got = hierarchical_ina_allreduce_data(&mut dp, job, &data, &[vec![0, 1, 2]]);
        assert_eq!(got, expect);
    }

    #[test]
    fn singleton_ring_is_noop() {
        let mut data = worker_data(1, 5);
        let orig = data.clone();
        assert_eq!(ring_allreduce_data(&mut data), 0);
        assert_eq!(data, orig);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Ring and INA all-reduce agree with the reference sum (and hence
        /// each other) for arbitrary worker counts, lengths and values.
        #[test]
        fn schemes_agree(
            p in 2usize..6,
            n in 1usize..40,
            seed in 0u64..1000,
        ) {
            let data: Vec<Vec<f32>> = (0..p)
                .map(|w| {
                    (0..n)
                        .map(|i| {
                            let x = seed
                                .wrapping_mul(0x9e3779b97f4a7c15)
                                .wrapping_add(((w * 1000 + i) as u64).wrapping_mul(0x517cc1b727220a95));
                            ((x >> 33) % 2000) as f32 / 100.0 - 10.0
                        })
                        .collect()
                })
                .collect();
            let expect = reference_sum(&data);
            let mut ring = data.clone();
            ring_allreduce_data(&mut ring);
            let (mut dp, job) = test_dataplane(p as u32, 8, 16);
            let ina = ina_allreduce_data(&mut dp, job, &data);
            let fp = hs_switch::FixPoint::default();
            let tol = p as f32 * fp.quantum() + 1e-3;
            for i in 0..n {
                prop_assert!((ring[0][i] - expect[i]).abs() < 1e-3);
                prop_assert!((ina[i] - expect[i]).abs() <= tol);
            }
        }
    }
}
