//! Phase-structured collective execution over the flow simulator.
//!
//! The cluster simulator runs every all-reduce as real network flows so
//! that concurrent collectives, KV-cache transfers and background traffic
//! contend for bandwidth — the congestion that HeroServe's scheduler is
//! designed to dodge. A collective is compiled to a [`CollectivePlan`]
//! (a sequence of [`Phase`]s, each a set of concurrent transfers plus an
//! optional post-phase fixed delay such as the switch aggregation time)
//! and stepped by a [`CollectiveExec`] state machine.

use crate::latency::{by_server, AGG_DELAY};
use hs_des::{SimSpan, SimTime};
use hs_simnet::{DirLink, FlowId, SimNet};
use hs_topology::{AllPairs, Graph, NodeId};
use rustc_hash::FxHashSet;

/// Which all-reduce scheme to compile (the planner's `α`/`β` selection
/// plus HeroServe's heterogeneous variants).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scheme {
    /// Flat ring all-reduce over the group order.
    Ring,
    /// Flat INA: everyone collects to / distributes from `switch`.
    Ina {
        /// Aggregation switch.
        switch: NodeId,
    },
    /// NVLink-local reduce, ring among per-server leaders, local
    /// broadcast.
    HierRing,
    /// NVLink-local reduce, INA among per-server leaders at `switch`,
    /// local broadcast (HeroServe's heterogeneous INA).
    HierIna {
        /// Aggregation switch.
        switch: NodeId,
    },
}

impl Scheme {
    /// Static scheme name (switch-agnostic), for traces and reports.
    pub fn label(&self) -> &'static str {
        match self {
            Scheme::Ring => "Ring",
            Scheme::Ina { .. } => "Ina",
            Scheme::HierRing => "HierRing",
            Scheme::HierIna { .. } => "HierIna",
        }
    }
}

/// One phase: transfers that run concurrently, then an optional fixed
/// delay before the next phase (e.g. switch aggregation).
#[derive(Clone, Debug, Default)]
pub struct Phase {
    /// `(directed path, bytes)` transfers started together.
    pub transfers: Vec<(Vec<DirLink>, u64)>,
    /// Delay after the last transfer completes.
    pub post_delay: SimSpan,
}

/// A compiled collective: ordered phases.
#[derive(Clone, Debug, Default)]
pub struct CollectivePlan {
    /// Phases in execution order.
    pub phases: Vec<Phase>,
}

impl CollectivePlan {
    /// Compile `scheme` for `group` moving `total_bytes` of
    /// synchronization data (the full vector size `D`).
    ///
    /// Empty/singleton groups produce an empty plan (nothing to do);
    /// transfers whose path is empty (co-located endpoints) are elided.
    pub fn compile(
        g: &Graph,
        ap: &AllPairs,
        group: &[NodeId],
        scheme: Scheme,
        total_bytes: u64,
    ) -> Self {
        if group.len() < 2 || total_bytes == 0 {
            return CollectivePlan::default();
        }
        match scheme {
            Scheme::Ring => Self::ring(g, ap, group, total_bytes),
            Scheme::Ina { switch } => Self::ina(g, ap, group, switch, total_bytes),
            Scheme::HierRing => Self::hierarchical(g, ap, group, None, total_bytes),
            Scheme::HierIna { switch } => {
                Self::hierarchical(g, ap, group, Some(switch), total_bytes)
            }
        }
    }

    fn push_transfer(
        phase: &mut Phase,
        g: &Graph,
        ap: &AllPairs,
        from: NodeId,
        to: NodeId,
        bytes: u64,
    ) {
        if from == to || bytes == 0 {
            return;
        }
        let path = ap.path(from, to);
        if path.links.is_empty() {
            return;
        }
        phase.transfers.push((path.directed_links(g), bytes));
    }

    fn ring(g: &Graph, ap: &AllPairs, group: &[NodeId], total_bytes: u64) -> Self {
        let p = group.len();
        let chunk = (total_bytes / p as u64).max(1);
        let steps = 2 * (p - 1);
        let mut phases = Vec::with_capacity(steps);
        for _ in 0..steps {
            let mut phase = Phase::default();
            for i in 0..p {
                Self::push_transfer(&mut phase, g, ap, group[i], group[(i + 1) % p], chunk);
            }
            phases.push(phase);
        }
        CollectivePlan { phases }
    }

    /// Streaming INA (SwitchML's pipelined aggregation): the switch
    /// multicasts aggregated chunks while later chunks are still being
    /// collected, so on full-duplex links the collection (up) and
    /// distribution (down) directions run *concurrently*. One phase with
    /// both directions' flows models this; the single aggregation delay
    /// covers the pipeline fill.
    fn ina(g: &Graph, ap: &AllPairs, group: &[NodeId], switch: NodeId, bytes: u64) -> Self {
        let mut phase = Phase {
            transfers: vec![],
            post_delay: AGG_DELAY,
        };
        for &k in group {
            Self::push_transfer(&mut phase, g, ap, k, switch, bytes);
            Self::push_transfer(&mut phase, g, ap, switch, k, bytes);
        }
        CollectivePlan {
            phases: vec![phase],
        }
    }

    /// NVLink-local reduce → inter-server step among leaders → local
    /// broadcast. `switch = None` uses a ring among leaders.
    fn hierarchical(
        g: &Graph,
        ap: &AllPairs,
        group: &[NodeId],
        switch: Option<NodeId>,
        bytes: u64,
    ) -> Self {
        let locals = by_server(g, group);
        let leaders: Vec<NodeId> = locals.iter().map(|(_, ms)| ms[0]).collect();
        let mut phases = Vec::new();

        // Phase 1: members stream to their leader (concurrent across
        // servers; NVLink paths).
        let mut reduce = Phase::default();
        for (_, members) in &locals {
            for &m in &members[1..] {
                Self::push_transfer(&mut reduce, g, ap, m, members[0], bytes);
            }
        }
        if !reduce.transfers.is_empty() {
            phases.push(reduce);
        }

        // Phase 2: inter-server among leaders.
        if leaders.len() >= 2 {
            let inter = match switch {
                Some(sw) => Self::ina(g, ap, &leaders, sw, bytes).phases,
                None => Self::ring(g, ap, &leaders, bytes).phases,
            };
            phases.extend(inter);
        }

        // Phase 3: leaders broadcast to members.
        let mut bcast = Phase::default();
        for (_, members) in &locals {
            for &m in &members[1..] {
                Self::push_transfer(&mut bcast, g, ap, members[0], m, bytes);
            }
        }
        if !bcast.transfers.is_empty() {
            phases.push(bcast);
        }
        CollectivePlan { phases }
    }

    /// Total bytes injected into the network by this plan (a load metric;
    /// the heterogeneous plans move much of it onto NVLink).
    pub fn total_network_bytes(&self) -> u64 {
        self.phases
            .iter()
            .flat_map(|p| p.transfers.iter().map(|(_, b)| *b))
            .sum()
    }
}

/// Execution progress of a collective.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Progress {
    /// Flows are in flight; wait for their completions.
    InFlight,
    /// All flows of the phase completed; the caller must schedule a timer
    /// for the given span and then call [`CollectiveExec::on_timer`].
    StartTimer(SimSpan),
    /// The collective is complete.
    Done,
}

/// State machine stepping a [`CollectivePlan`] on a [`SimNet`].
pub struct CollectiveExec {
    plan: CollectivePlan,
    phase: usize,
    outstanding: FxHashSet<FlowId>,
    tag: u64,
}

impl CollectiveExec {
    /// Wrap a compiled plan; `tag` is attached to every flow so the
    /// driving engine can route completions back here.
    pub fn new(plan: CollectivePlan, tag: u64) -> Self {
        CollectiveExec {
            plan,
            phase: 0,
            outstanding: FxHashSet::default(),
            tag,
        }
    }

    /// The tag flows carry.
    pub fn tag(&self) -> u64 {
        self.tag
    }

    /// Begin execution at `now`. May return `Done` immediately for empty
    /// plans.
    pub fn start(&mut self, net: &mut SimNet, now: SimTime) -> Progress {
        self.enter_phase(net, now)
    }

    /// Notify that one of this collective's flows completed.
    ///
    /// # Panics
    /// Panics if `id` is not one of this collective's outstanding flows —
    /// the engine's demux must be exact.
    pub fn on_flow_complete(&mut self, net: &mut SimNet, now: SimTime, id: FlowId) -> Progress {
        assert!(
            self.outstanding.remove(&id),
            "flow {id:?} does not belong to collective {}",
            self.tag
        );
        if !self.outstanding.is_empty() {
            return Progress::InFlight;
        }
        // Phase complete.
        let delay = self.plan.phases[self.phase].post_delay;
        if !delay.is_zero() {
            return Progress::StartTimer(delay);
        }
        self.phase += 1;
        self.enter_phase(net, now)
    }

    /// Whether `id` is one of this collective's in-flight flows.
    pub fn owns_flow(&self, id: FlowId) -> bool {
        self.outstanding.contains(&id)
    }

    /// Abort the collective: cancel every still-outstanding flow (a fault
    /// already removed some from the network — those are passed in
    /// `already_gone`) and clear the in-flight set, so the engine can
    /// recompile and retry over surviving links. Returns how many flows
    /// were cancelled here.
    pub fn abort(&mut self, net: &mut SimNet, now: SimTime, already_gone: &[FlowId]) -> usize {
        // Cancel in ascending flow-id order: the in-flight set is
        // hash-ordered, and cancellation order reaches the tracer stream.
        let mut ids: Vec<FlowId> = std::mem::take(&mut self.outstanding).into_iter().collect();
        ids.sort_unstable();
        let mut cancelled = 0;
        for id in ids {
            if !already_gone.contains(&id) && net.cancel_flow(now, id).is_some() {
                cancelled += 1;
            }
        }
        cancelled
    }

    /// Notify that a previously requested post-phase timer elapsed.
    pub fn on_timer(&mut self, net: &mut SimNet, now: SimTime) -> Progress {
        debug_assert!(self.outstanding.is_empty());
        self.phase += 1;
        self.enter_phase(net, now)
    }

    fn enter_phase(&mut self, net: &mut SimNet, now: SimTime) -> Progress {
        loop {
            let Some(phase) = self.plan.phases.get(self.phase) else {
                return Progress::Done;
            };
            if phase.transfers.is_empty() {
                if !phase.post_delay.is_zero() {
                    return Progress::StartTimer(phase.post_delay);
                }
                self.phase += 1;
                continue;
            }
            for (path, bytes) in &phase.transfers {
                let id = net.start_flow(now, path, *bytes, self.tag);
                self.outstanding.insert(id);
            }
            return Progress::InFlight;
        }
    }
}

/// Convenience driver: run a single collective to completion on an
/// otherwise idle network and return its duration. Used by tests and by
/// the aggregation-throughput experiment (Fig. 9's measurement loop).
pub fn run_isolated(
    g: &Graph,
    ap: &AllPairs,
    group: &[NodeId],
    scheme: Scheme,
    total_bytes: u64,
) -> SimSpan {
    let mut net = SimNet::new(g);
    run_on(&mut net, SimTime::ZERO, g, ap, group, scheme, total_bytes)
}

/// Run a single collective to completion on an existing network (which
/// may carry other traffic that keeps flowing meanwhile). Returns the
/// collective's duration from `start`.
pub fn run_on(
    net: &mut SimNet,
    start: SimTime,
    g: &Graph,
    ap: &AllPairs,
    group: &[NodeId],
    scheme: Scheme,
    total_bytes: u64,
) -> SimSpan {
    let plan = CollectivePlan::compile(g, ap, group, scheme, total_bytes);
    let mut exec = CollectiveExec::new(plan, u64::MAX);
    let mut now = start;
    let mut progress = exec.start(net, now);
    loop {
        match progress {
            Progress::Done => return now - start,
            Progress::StartTimer(d) => {
                now += d;
                // Other traffic keeps draining while the switch aggregates.
                for _ in net.advance_to(now) {}
                progress = exec.on_timer(net, now);
            }
            Progress::InFlight => {
                let t = net
                    .next_event_time()
                    .expect("in-flight collective implies pending flows");
                now = t;
                let done = net.advance_to(t);
                let mut next = Progress::InFlight;
                for (id, f) in done {
                    if f.tag == exec.tag() {
                        next = exec.on_flow_complete(net, now, id);
                    }
                }
                progress = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::{hierarchical_ina_latency, ina_latency, ring_latency};
    use hs_topology::builders::fig2_micro;
    use hs_topology::LinkWeight;

    fn setup() -> (hs_topology::builders::Fig2Micro, AllPairs) {
        let m = fig2_micro();
        let mut nodes = m.gpus.to_vec();
        nodes.push(m.access);
        nodes.push(m.core);
        let ap = AllPairs::compute(&m.graph, &nodes, LinkWeight::Latency, None);
        (m, ap)
    }

    #[test]
    fn empty_and_singleton_plans_are_noops() {
        let (m, ap) = setup();
        let p = CollectivePlan::compile(&m.graph, &ap, &m.gpus[..1], Scheme::Ring, 1 << 20);
        assert!(p.phases.is_empty());
        let p = CollectivePlan::compile(&m.graph, &ap, &m.gpus, Scheme::Ring, 0);
        assert!(p.phases.is_empty());
        let d = run_isolated(&m.graph, &ap, &m.gpus[..1], Scheme::Ring, 1 << 20);
        assert!(d.is_zero());
    }

    #[test]
    fn ring_plan_shape() {
        let (m, ap) = setup();
        let p = CollectivePlan::compile(&m.graph, &ap, &m.gpus, Scheme::Ring, 3_000_000);
        assert_eq!(p.phases.len(), 4); // 2(P-1)
        for ph in &p.phases {
            assert_eq!(ph.transfers.len(), 3);
            assert!(ph.post_delay.is_zero());
            for (_, b) in &ph.transfers {
                assert_eq!(*b, 1_000_000);
            }
        }
    }

    #[test]
    fn ina_plan_shape() {
        let (m, ap) = setup();
        let p = CollectivePlan::compile(
            &m.graph,
            &ap,
            &m.gpus,
            Scheme::Ina { switch: m.core },
            1 << 20,
        );
        // Streaming INA: one overlapped phase with up + down flows.
        assert_eq!(p.phases.len(), 1);
        assert_eq!(p.phases[0].transfers.len(), 6);
        assert_eq!(p.phases[0].post_delay, AGG_DELAY);
    }

    #[test]
    fn hierarchical_moves_bytes_off_ethernet() {
        let (m, ap) = setup();
        let flat = CollectivePlan::compile(
            &m.graph,
            &ap,
            &m.gpus,
            Scheme::Ina { switch: m.core },
            1 << 20,
        );
        let hier = CollectivePlan::compile(
            &m.graph,
            &ap,
            &m.gpus,
            Scheme::HierIna { switch: m.access },
            1 << 20,
        );
        // Count Ethernet-link bytes only.
        let eth_bytes = |p: &CollectivePlan| -> u64 {
            p.phases
                .iter()
                .flat_map(|ph| ph.transfers.iter())
                .map(|(links, b)| {
                    links
                        .iter()
                        .filter(|&&(l, _)| m.graph.link(l).kind == hs_topology::LinkKind::Ethernet)
                        .count() as u64
                        * b
                })
                .sum()
        };
        assert!(
            eth_bytes(&hier) < eth_bytes(&flat) / 2,
            "hier {} vs flat {}",
            eth_bytes(&hier),
            eth_bytes(&flat)
        );
    }

    #[test]
    fn executed_ina_matches_closed_form() {
        let (m, ap) = setup();
        let bytes = 1 << 20;
        let measured = run_isolated(
            &m.graph,
            &ap,
            &m.gpus,
            Scheme::Ina { switch: m.core },
            bytes,
        )
        .as_secs_f64();
        let predicted = ina_latency(&m.graph, &m.gpus, m.core, &ap, bytes, None);
        // The closed form is store-and-forward per hop (the paper's
        // Eq. 8-10 arithmetic); the flow simulation is cut-through and
        // full duplex, so it may run faster on multi-hop paths and
        // slower under trunk sharing. Bound it both ways.
        assert!(measured >= predicted * 0.3, "{measured} << {predicted}");
        assert!(measured <= predicted * 2.2, "{measured} >> {predicted}");
    }

    #[test]
    fn executed_ring_matches_closed_form() {
        let (m, ap) = setup();
        let bytes = 3 << 20;
        let measured = run_isolated(&m.graph, &ap, &m.gpus, Scheme::Ring, bytes).as_secs_f64();
        let predicted = ring_latency(&m.graph, &m.gpus, &ap, bytes, None);
        // Same rationale as the INA check: cut-through vs
        // store-and-forward bounds.
        assert!(measured >= predicted * 0.3, "{measured} << {predicted}");
        assert!(measured <= predicted * 2.2, "{measured} vs {predicted}");
    }

    #[test]
    fn executed_hierarchical_beats_homogeneous() {
        let (m, ap) = setup();
        let bytes = 1 << 20;
        let homo = run_isolated(
            &m.graph,
            &ap,
            &m.gpus,
            Scheme::Ina { switch: m.core },
            bytes,
        );
        let hetero = run_isolated(
            &m.graph,
            &ap,
            &m.gpus,
            Scheme::HierIna { switch: m.access },
            bytes,
        );
        assert!(
            hetero.as_secs_f64() < 0.75 * homo.as_secs_f64(),
            "hetero {hetero} vs homo {homo}"
        );
        let predicted = hierarchical_ina_latency(&m.graph, &m.gpus, m.access, &ap, bytes, None);
        assert!(hetero.as_secs_f64() >= predicted * 0.99);
    }

    #[test]
    fn concurrent_collectives_contend() {
        let (m, ap) = setup();
        let bytes = 4 << 20;
        // Run one collective alone, then two of the same concurrently.
        let alone = run_isolated(
            &m.graph,
            &ap,
            &m.gpus,
            Scheme::Ina { switch: m.core },
            bytes,
        );
        let mut net = SimNet::new(&m.graph);
        // Background: a bulk flow on the S2->S1 trunk, the bottleneck the
        // collection phase already shares between GN1 and GN2.
        let bg_path = ap.path(m.access, m.core).directed_links(&m.graph);
        net.start_flow(SimTime::ZERO, &bg_path, 1 << 30, 0);
        let contended = run_on(
            &mut net,
            SimTime::ZERO,
            &m.graph,
            &ap,
            &m.gpus,
            Scheme::Ina { switch: m.core },
            bytes,
        );
        assert!(
            contended.as_secs_f64() > 1.3 * alone.as_secs_f64(),
            "contended {contended} vs alone {alone}"
        );
    }
}
